// Micro-benchmarks (google-benchmark) for the search's hot paths: state
// signatures, the CLOSED flat set, the OPEN heap, context replay +
// expansion, level computation, processor-isomorphism classes, and the
// upper-bound list scheduler. These are the quantities behind the paper's
// core argument that a *computationally cheap* cost function wins.
#include <benchmark/benchmark.h>

#include "core/astar.hpp"
#include "core/expansion.hpp"
#include "core/open_list.hpp"
#include "dag/generators.hpp"
#include "machine/automorphism.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace optsched;

dag::TaskGraph bench_graph(std::uint32_t v) {
  dag::RandomDagParams p;
  p.num_nodes = v;
  p.ccr = 1.0;
  p.seed = 777;
  return dag::random_dag(p);
}

void BM_SignatureExtend(benchmark::State& state) {
  util::Key128 sig = core::root_signature();
  std::uint32_t i = 0;
  for (auto _ : state) {
    sig = core::extend_signature(sig, i & 63, i & 7,
                                 static_cast<double>(i));
    benchmark::DoNotOptimize(sig);
    ++i;
  }
}
BENCHMARK(BM_SignatureExtend);

void BM_FlatSetInsert(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    util::FlatSet128 set(1 << 16);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i)
      set.insert({rng() | 1, rng()});
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FlatSetInsert);

void BM_FlatSetContains(benchmark::State& state) {
  util::FlatSet128 set(1 << 16);
  util::Rng rng(2);
  std::vector<util::Key128> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back({rng() | 1, rng()});
    set.insert(keys.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_FlatSetContains);

void BM_OpenListPushPop(benchmark::State& state) {
  util::Rng rng(3);
  core::OpenList open;
  for (int i = 0; i < 1000; ++i)
    open.push({static_cast<double>(rng.uniform_u64(0, 1 << 20)), 0.0, 0});
  for (auto _ : state) {
    open.push({static_cast<double>(rng.uniform_u64(0, 1 << 20)), 0.0, 0});
    benchmark::DoNotOptimize(open.pop());
  }
}
BENCHMARK(BM_OpenListPushPop);

void BM_ComputeLevels(benchmark::State& state) {
  const auto g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto lv = dag::compute_levels(g);
    benchmark::DoNotOptimize(lv.cp_length);
  }
}
BENCHMARK(BM_ComputeLevels)->Arg(32)->Arg(128)->Arg(512);

void BM_ContextLoadAndExpand(benchmark::State& state) {
  // Cost of one expansion (replay + children) at mid-depth — the paper's
  // per-state cost that its cheap h keeps small.
  const auto v = static_cast<std::uint32_t>(state.range(0));
  const auto g = bench_graph(v);
  const auto m = machine::Machine::fully_connected(4);
  const core::SearchProblem problem(g, m);
  core::SearchConfig cfg;
  core::Expander expander(problem, cfg);
  core::StateArena arena;
  util::FlatSet128 seen(1 << 12);

  core::State root;
  root.sig = core::root_signature();
  root.parent = core::kNoParent;
  core::StateIndex cur = arena.add(root);
  // Descend to half depth.
  for (std::uint32_t d = 0; d < v / 2; ++d) {
    std::vector<core::StateIndex> kids;
    expander.expand(arena, seen, cur, 1e300,
                    [&](core::StateIndex k, const core::State&) {
                      kids.push_back(k);
                    });
    if (kids.empty()) break;
    cur = kids.front();
  }

  for (auto _ : state) {
    state.PauseTiming();
    util::FlatSet128 fresh(1 << 10);
    state.ResumeTiming();
    std::uint64_t children = 0;
    expander.expand(arena, fresh, cur, 1e300,
                    [&](core::StateIndex, const core::State&) { ++children; });
    benchmark::DoNotOptimize(children);
  }
}
BENCHMARK(BM_ContextLoadAndExpand)->Arg(16)->Arg(32)->Arg(64);

void BM_IsomorphismClasses(benchmark::State& state) {
  const auto m = machine::Machine::hypercube(4);  // |Aut| = 384
  const machine::AutomorphismGroup group(m);
  std::vector<bool> busy(16, false);
  busy[0] = busy[5] = true;
  std::vector<machine::ProcId> rep;
  for (auto _ : state) {
    group.state_classes(busy, rep);
    benchmark::DoNotOptimize(rep.data());
  }
}
BENCHMARK(BM_IsomorphismClasses);

void BM_UpperBoundListSchedule(benchmark::State& state) {
  const auto g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  const auto m = machine::Machine::fully_connected(8);
  for (auto _ : state) {
    auto s = sched::upper_bound_schedule(g, m);
    benchmark::DoNotOptimize(s.makespan());
  }
}
BENCHMARK(BM_UpperBoundListSchedule)->Arg(32)->Arg(128);

void BM_FullAStarSmall(benchmark::State& state) {
  // End-to-end optimal search on a small instance (the Table 1 v=10 cell).
  const auto g = bench_graph(10);
  const auto m = machine::Machine::fully_connected(4);
  const core::SearchProblem problem(g, m);
  for (auto _ : state) {
    auto r = core::astar_schedule(problem);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_FullAStarSmall)->Unit(benchmark::kMillisecond);

}  // namespace
