// Micro-benchmarks (google-benchmark) for the search's hot paths: state
// signatures, the CLOSED flat set, the OPEN heap, context replay +
// expansion, level computation, processor-isomorphism classes, and the
// upper-bound list scheduler. These are the quantities behind the paper's
// core argument that a *computationally cheap* cost function wins.
#include <benchmark/benchmark.h>

#include "core/astar.hpp"
#include "core/bucket_queue.hpp"
#include "core/expansion.hpp"
#include "core/heuristics.hpp"
#include "core/hotpath.hpp"
#include "core/open_list.hpp"
#include "dag/generators.hpp"
#include "machine/automorphism.hpp"
#include "parallel/dist_protocol.hpp"
#include "parallel/wire.hpp"
#include "sched/list_scheduler.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"

namespace {

using namespace optsched;

dag::TaskGraph bench_graph(std::uint32_t v) {
  dag::RandomDagParams p;
  p.num_nodes = v;
  p.ccr = 1.0;
  p.seed = 777;
  return dag::random_dag(p);
}

void BM_SignatureExtend(benchmark::State& state) {
  util::Key128 sig = core::root_signature();
  std::uint32_t i = 0;
  for (auto _ : state) {
    sig = core::extend_signature(sig, i & 63, i & 7,
                                 static_cast<double>(i));
    benchmark::DoNotOptimize(sig);
    ++i;
  }
}
BENCHMARK(BM_SignatureExtend);

void BM_FlatSetInsert(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    util::FlatSet128 set(1 << 16);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i)
      set.insert({rng() | 1, rng()});
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FlatSetInsert);

void BM_FlatSetContains(benchmark::State& state) {
  util::FlatSet128 set(1 << 16);
  util::Rng rng(2);
  std::vector<util::Key128> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back({rng() | 1, rng()});
    set.insert(keys.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.contains(keys[i % keys.size()]));
    ++i;
  }
}
BENCHMARK(BM_FlatSetContains);

void BM_OpenListPushPop(benchmark::State& state) {
  util::Rng rng(3);
  core::OpenList open;
  for (int i = 0; i < 1000; ++i)
    open.push({static_cast<double>(rng.uniform_u64(0, 1 << 20)), 0.0, 0});
  for (auto _ : state) {
    open.push({static_cast<double>(rng.uniform_u64(0, 1 << 20)), 0.0, 0});
    benchmark::DoNotOptimize(open.pop());
  }
}
BENCHMARK(BM_OpenListPushPop);

// ---- bucketed OPEN vs 4-ary heap -----------------------------------------
//
// The same mixed push/pop/prune stream through both OPEN structures at a
// steady frontier size, with on-grid integer f values so the comparison is
// purely structural (the bucket queue only runs on exact grids anyway).
// bench/run_hotpath.sh commits the ratio to BENCH_pr8.json.

constexpr std::uint64_t kBenchFMax = 1 << 17;

core::KeyScale integer_grid() {
  core::KeyScale ks;
  ks.exact = true;
  ks.shift = 0;
  ks.scale = 1.0;
  return ks;
}

template <typename Queue>
void mixed_push_pop_prune(benchmark::State& state, Queue& open,
                          std::size_t frontier) {
  // A*-like stream: children are pushed above the last popped f (an
  // admissible h makes pops weakly monotone), spread over a ~4k-key slack
  // band. When the band nears the key-space ceiling the run re-seeds —
  // amortized noise, identical for both structures.
  constexpr std::uint64_t kSlack = 4096;
  util::Rng rng(41);
  double base = 0.0;
  auto entry = [&] {
    return core::OpenEntry{base + static_cast<double>(
                                      rng.uniform_u64(1, kSlack)),
                           static_cast<double>(rng.uniform_u64(0, 64)), 0};
  };
  auto refill = [&] {
    open.clear();
    base = 0.0;
    for (std::size_t i = 0; i < frontier; ++i) open.push(entry());
  };
  refill();
  std::size_t tick = 0;
  for (auto _ : state) {
    open.push(entry());
    open.push(entry());
    benchmark::DoNotOptimize(open.pop());
    base = open.pop().f;
    if (++tick % 4096 == 0) {
      // Periodic incumbent improvement: drop the worst tail and refill,
      // as upper-bound pruning does mid-search.
      open.prune_at_least(base + kSlack * 7 / 8);
      while (open.size() < frontier) open.push(entry());
    }
    if (base + kSlack + 1 >= static_cast<double>(kBenchFMax)) refill();
  }
  state.SetItemsProcessed(state.iterations() * 4);
}

void BM_OpenHeapPushPop(benchmark::State& state) {
  core::OpenList open;
  mixed_push_pop_prune(state, open,
                       static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_OpenHeapPushPop)->Arg(1000)->Arg(100000);

void BM_BucketPushPop(benchmark::State& state) {
  core::BucketQueue open(integer_grid(), static_cast<double>(kBenchFMax));
  mixed_push_pop_prune(state, open,
                       static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_BucketPushPop)->Arg(1000)->Arg(100000);

// ---- heuristic evaluation: scalar vs wide --------------------------------
//
// h_path's est_seed pass through the runtime-dispatched kernel vs the
// forced-scalar reference, at a realistic mid-search context. Args are
// {num_nodes, scalar?}.

void BM_HeuristicEval(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  const auto g = bench_graph(v);
  const auto m = machine::Machine::fully_connected(4);
  const core::SearchProblem problem(g, m);
  core::SearchConfig cfg;
  core::Expander expander(problem, cfg);
  core::StateArena arena;
  util::FlatSet128 seen(1 << 12);

  core::State root;
  root.sig = core::root_signature();
  root.parent = core::kNoParent;
  core::StateIndex cur = arena.add(root);
  for (std::uint32_t d = 0; d < v / 2; ++d) {
    std::vector<core::StateIndex> kids;
    expander.expand(arena, seen, cur, 1e300,
                    [&](core::StateIndex k, const core::State&) {
                      kids.push_back(k);
                    });
    if (kids.empty()) break;
    cur = kids.front();
  }
  core::ExpansionContext ctx(problem);
  ctx.load(arena, cur);
  std::vector<double> scratch(2 * g.num_nodes(), 0.0);

  core::hotpath::force_scalar(state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_h(
        core::HFunction::kPath, problem, ctx.view(), scratch.data()));
  }
  core::hotpath::force_scalar(false);
}
BENCHMARK(BM_HeuristicEval)
    ->ArgNames({"v", "scalar"})
    ->Args({128, 1})
    ->Args({128, 0})
    ->Args({512, 1})
    ->Args({512, 0});

void BM_ComputeLevels(benchmark::State& state) {
  const auto g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto lv = dag::compute_levels(g);
    benchmark::DoNotOptimize(lv.cp_length);
  }
}
BENCHMARK(BM_ComputeLevels)->Arg(32)->Arg(128)->Arg(512);

void BM_ContextLoadAndExpand(benchmark::State& state) {
  // Cost of one expansion at mid-depth with a warm context (move_to is a
  // no-op re-load here) — the paper's per-state cost that its cheap h
  // keeps small. BM_ReplayFull/BM_ReplayDelta below isolate the replay
  // component over a realistic pop sequence.
  const auto v = static_cast<std::uint32_t>(state.range(0));
  const auto g = bench_graph(v);
  const auto m = machine::Machine::fully_connected(4);
  const core::SearchProblem problem(g, m);
  core::SearchConfig cfg;
  core::Expander expander(problem, cfg);
  core::StateArena arena;
  util::FlatSet128 seen(1 << 12);

  core::State root;
  root.sig = core::root_signature();
  root.parent = core::kNoParent;
  core::StateIndex cur = arena.add(root);
  // Descend to half depth.
  for (std::uint32_t d = 0; d < v / 2; ++d) {
    std::vector<core::StateIndex> kids;
    expander.expand(arena, seen, cur, 1e300,
                    [&](core::StateIndex k, const core::State&) {
                      kids.push_back(k);
                    });
    if (kids.empty()) break;
    cur = kids.front();
  }

  for (auto _ : state) {
    state.PauseTiming();
    util::FlatSet128 fresh(1 << 10);
    state.ResumeTiming();
    std::uint64_t children = 0;
    expander.expand(arena, fresh, cur, 1e300,
                    [&](core::StateIndex, const core::State&) { ++children; });
    benchmark::DoNotOptimize(children);
  }
}
BENCHMARK(BM_ContextLoadAndExpand)->Arg(16)->Arg(32)->Arg(64);

// ---- delta replay vs full replay -----------------------------------------
//
// Replays a realistic best-first pop sequence (recorded from a capped A*
// run on a fig6-scale instance) through the expansion context twice: once
// rebuilding from the root per pop (the pre-delta behaviour), once via
// move_to's LCA rewind. The ratio is the core argument for the delta path.

struct ReplayFixture {
  explicit ReplayFixture(std::uint32_t v)
      : graph(bench_graph(v)),
        machine(machine::Machine::fully_connected(4)),
        problem(graph, machine),
        expander(problem, core::SearchConfig{}),
        seen(1 << 14) {
    core::State root;
    root.sig = core::root_signature();
    root.parent = core::kNoParent;
    const auto root_idx = arena.add(root);
    seen.insert(root.sig);

    // Record the pop order of a capped best-first search — the exact
    // sequence of states a real A* run loads the context for.
    core::OpenList open;
    open.push({0.0, 0.0, root_idx});
    while (!open.empty() && pops.size() < 512) {
      const core::OpenEntry e = open.pop();
      if (arena.hot(e.index).depth() == problem.num_nodes()) continue;
      pops.push_back(e.index);
      expander.expand(arena, seen, e.index, 1e300,
                      [&](core::StateIndex k, const core::State& child) {
                        open.push({child.f(), child.g, k});
                      });
    }
  }

  dag::TaskGraph graph;
  machine::Machine machine;
  core::SearchProblem problem;
  core::Expander expander;
  core::StateArena arena;
  util::FlatSet128 seen;
  std::vector<core::StateIndex> pops;
};

void BM_ReplayFull(benchmark::State& state) {
  ReplayFixture fx(static_cast<std::uint32_t>(state.range(0)));
  core::ExpansionContext ctx(fx.problem);
  for (auto _ : state) {
    for (const auto idx : fx.pops) ctx.load(fx.arena, idx);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.pops.size()));
}
BENCHMARK(BM_ReplayFull)->Arg(12)->Arg(16)->Arg(32);

void BM_ReplayDelta(benchmark::State& state) {
  ReplayFixture fx(static_cast<std::uint32_t>(state.range(0)));
  core::ExpansionContext ctx(fx.problem);
  for (auto _ : state) {
    for (const auto idx : fx.pops) ctx.move_to(fx.arena, idx);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.pops.size()));
}
BENCHMARK(BM_ReplayDelta)->Arg(12)->Arg(16)->Arg(32);

// ---- AoS vs SoA arena ----------------------------------------------------
//
// The pop/stale-filter pass touches f, g, parent, and depth of scattered
// states. With the former 56-byte AoS record that drags the 128-bit
// signature and finish time through the cache; the 24-byte hot record
// leaves them in the cold array.

/// The pre-split arena record, reconstructed for comparison.
struct AosState {
  util::Key128 sig;
  double finish, g, h;
  core::StateIndex parent;
  std::uint32_t node, proc, depth;
};

constexpr std::size_t kScanStates = 1 << 16;

std::vector<std::uint32_t> scan_order() {
  // Pseudo-random visit order: frontier pops are scattered, not linear.
  std::vector<std::uint32_t> order(kScanStates);
  util::Rng rng(99);
  for (auto& i : order)
    i = static_cast<std::uint32_t>(rng.uniform_u64(0, kScanStates - 1));
  return order;
}

void BM_ArenaScanAoS(benchmark::State& state) {
  std::vector<AosState> arena(kScanStates);
  util::Rng rng(7);
  for (std::size_t i = 0; i < kScanStates; ++i) {
    arena[i].g = static_cast<double>(rng.uniform_u64(0, 1 << 20));
    arena[i].h = static_cast<double>(rng.uniform_u64(0, 1 << 20));
    arena[i].parent = static_cast<core::StateIndex>(i / 2);
    arena[i].depth = static_cast<std::uint32_t>(i % 64);
  }
  const auto order = scan_order();
  for (auto _ : state) {
    double acc = 0.0;
    std::uint64_t depths = 0;
    for (const auto i : order) {
      acc += arena[i].g + arena[i].h;
      depths += arena[i].depth;
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(depths);
  }
  state.SetItemsProcessed(state.iterations() * kScanStates);
}
BENCHMARK(BM_ArenaScanAoS);

void BM_ArenaScanSoAHot(benchmark::State& state) {
  core::StateArena arena;
  util::Rng rng(7);
  for (std::size_t i = 0; i < kScanStates; ++i) {
    core::State s;
    s.sig = {rng() | 1, rng()};
    s.g = static_cast<double>(rng.uniform_u64(0, 1 << 20));
    s.h = static_cast<double>(rng.uniform_u64(0, 1 << 20));
    s.parent = static_cast<core::StateIndex>(i / 2);
    s.node = static_cast<std::uint32_t>(i % 64);
    s.proc = 0;
    s.depth = static_cast<std::uint32_t>(i % 64);
    arena.add(s);
  }
  const auto order = scan_order();
  for (auto _ : state) {
    double acc = 0.0;
    std::uint64_t depths = 0;
    for (const auto i : order) {
      const core::HotState& s = arena.hot(i);
      acc += s.f;
      depths += s.depth();
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(depths);
  }
  state.SetItemsProcessed(state.iterations() * kScanStates);
}
BENCHMARK(BM_ArenaScanSoAHot);

void BM_IsomorphismClasses(benchmark::State& state) {
  const auto m = machine::Machine::hypercube(4);  // |Aut| = 384
  const machine::AutomorphismGroup group(m);
  std::vector<bool> busy(16, false);
  busy[0] = busy[5] = true;
  std::vector<machine::ProcId> rep;
  for (auto _ : state) {
    group.state_classes(busy, rep);
    benchmark::DoNotOptimize(rep.data());
  }
}
BENCHMARK(BM_IsomorphismClasses);

void BM_UpperBoundListSchedule(benchmark::State& state) {
  const auto g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  const auto m = machine::Machine::fully_connected(8);
  for (auto _ : state) {
    auto s = sched::upper_bound_schedule(g, m);
    benchmark::DoNotOptimize(s.makespan());
  }
}
BENCHMARK(BM_UpperBoundListSchedule)->Arg(32)->Arg(128);

void BM_FullAStarSmall(benchmark::State& state) {
  // End-to-end optimal search on a small instance (the Table 1 v=10 cell).
  const auto g = bench_graph(10);
  const auto m = machine::Machine::fully_connected(4);
  const core::SearchProblem problem(g, m);
  for (auto _ : state) {
    auto r = core::astar_schedule(problem);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_FullAStarSmall)->Unit(benchmark::kMillisecond);

// ---- dist wire codecs (v1 JSON vs v2 binary) ------------------------------
//
// Realistic outbox shape: sibling exports sharing a deep prefix and
// diverging in the last assignment — the case the v2 delta encoding is
// designed around. Arg = states per batch (1 / 32 / 256).

std::vector<par::StateMsg> wire_batch_states(std::int64_t count) {
  std::vector<std::pair<dag::NodeId, machine::ProcId>> prefix;
  for (std::uint32_t i = 0; i < 20; ++i)
    prefix.emplace_back(i, i % 4);
  std::vector<par::StateMsg> states;
  for (std::int64_t i = 0; i < count; ++i) {
    par::StateMsg msg;
    msg.assignments = prefix;
    msg.assignments.emplace_back(
        static_cast<dag::NodeId>(20 + i % 8),
        static_cast<machine::ProcId>(i % 4));
    msg.f = 100.25 + static_cast<double>(i);
    states.push_back(std::move(msg));
  }
  return states;
}

std::string wire_v1_frame(const std::vector<par::StateMsg>& states) {
  util::Json arr{util::Json::Array{}};
  for (const auto& s : states) arr.push_back(par::state_msg_to_json(s));
  util::Json frame;
  frame["t"] = "batch";
  frame["to"] = 1;
  frame["states"] = std::move(arr);
  return frame.dump() + '\n';
}

void BM_WireEncodeBatch(benchmark::State& state) {
  const bool v2 = state.range(0) != 0;
  const auto states = wire_batch_states(state.range(1));
  std::size_t bytes = 0;
  for (auto _ : state) {
    if (v2) {
      par::wire::BatchEncoder enc;
      enc.reset(1);
      for (const auto& s : states) enc.append(s.assignments, s.f);
      const std::string frame = enc.take_frame();
      bytes = frame.size();
      benchmark::DoNotOptimize(frame.data());
    } else {
      const std::string frame = wire_v1_frame(states);
      bytes = frame.size();
      benchmark::DoNotOptimize(frame.data());
    }
  }
  state.counters["frame_bytes"] = static_cast<double>(bytes);
  state.counters["states"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_WireEncodeBatch)
    ->ArgNames({"v2", "states"})
    ->Args({0, 1})
    ->Args({0, 32})
    ->Args({0, 256})
    ->Args({1, 1})
    ->Args({1, 32})
    ->Args({1, 256});

void BM_WireDecodeBatch(benchmark::State& state) {
  const bool v2 = state.range(0) != 0;
  const auto states = wire_batch_states(state.range(1));
  std::string v1_line = wire_v1_frame(states);
  v1_line.pop_back();  // read_line strips the newline before parse
  par::wire::BatchEncoder enc;
  enc.reset(1);
  for (const auto& s : states) enc.append(s.assignments, s.f);
  const std::string v2_frame = enc.take_frame();
  // Payload view, as read_frame hands it to the decoder.
  par::wire::Reader hdr(std::string_view(v2_frame).substr(2));
  const std::uint64_t payload_len = hdr.varint();
  const std::string_view v2_payload =
      std::string_view(v2_frame).substr(v2_frame.size() - payload_len);

  for (auto _ : state) {
    if (v2) {
      const auto batch = par::wire::decode_batch(v2_payload);
      benchmark::DoNotOptimize(batch.states.data());
    } else {
      const auto j = util::Json::parse(v1_line);
      std::vector<par::StateMsg> out;
      for (const auto& s : j.at("states").as_array())
        out.push_back(par::state_msg_from_json(s));
      benchmark::DoNotOptimize(out.data());
    }
  }
}
BENCHMARK(BM_WireDecodeBatch)
    ->ArgNames({"v2", "states"})
    ->Args({0, 1})
    ->Args({0, 32})
    ->Args({0, 256})
    ->Args({1, 1})
    ->Args({1, 32})
    ->Args({1, 256});

}  // namespace
