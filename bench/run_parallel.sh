#!/usr/bin/env bash
# Parallel-transport sweep: ring vs work stealing at 1-8 PPEs over the
# bench corpus, via the suite runner itself (differential oracle and
# ScheduleValidator armed, so a transport bug fails the snapshot instead
# of silently recording it). Committed as BENCH_pr5.json. Usage:
#
#   bench/run_parallel.sh [build-dir] [out.json]
#
# The headline comparison is duplicate work: with PPE-local SEEN sets the
# ring re-expands every state that two PPEs reach independently, so its
# total context loads (loads_full + loads_incremental ~ expansions) grow
# with the PPE count; the work-stealing mode's hash-sharded table keeps
# duplicate detection global, holding loads near the serial count. Compare
# the per-engine `total_loads_full` + `total_loads_incremental` (and
# `total_shard_hits` for how many cross-PPE duplicates the shards caught)
# in the JSON aggregates.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_parallel_local.json}

BIN="$BUILD_DIR/examples/optsched_cli"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . &&" \
       "cmake --build $BUILD_DIR --target optsched_cli)" >&2
  exit 1
fi

# Serial A* as the oracle reference, then both transports at 1-8 PPEs.
# PIN=compact|spread adds CPU pinning + first-touch placement to every
# parallel engine (PR 8); default keeps the historical unpinned sweep.
PIN=${PIN:-none}
SUFFIX=""
if [[ "$PIN" != "none" ]]; then
  SUFFIX=":pin=${PIN}"
fi
ENGINES="astar"
for mode in ring ws; do
  for ppes in 1 2 4 8; do
    ENGINES+=",parallel:mode=${mode}:ppes=${ppes}${SUFFIX}"
  done
done

# --jobs 1: each parallel solve owns the machine, so the sweep measures
# the transports, not contention between concurrently solved instances.
"$BIN" suite \
  --corpus "$(dirname "$0")/corpus_bench.txt" \
  --engines "$ENGINES" \
  --jobs 1 \
  --json "$OUT"

echo "wrote $OUT"
