#!/usr/bin/env bash
# End-to-end suite snapshot: run the workload suite runner itself over the
# bench corpus and emit its JSON report for the perf trajectory (committed
# as BENCH_pr<N>.json when a PR moves an engine or the runner). Usage:
#
#   bench/run_suite.sh [build-dir] [out.json] [jobs]
#
# Unlike bench_micro (per-operation costs), this records whole-solve
# behaviour per engine — expansion counts, delta-load ratios, peak
# memory — with the differential oracle and ScheduleValidator armed, so a
# perf regression that breaks correctness fails the snapshot instead of
# silently recording it.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_suite_local.json}
JOBS=${3:-$(nproc)}

BIN="$BUILD_DIR/examples/optsched_cli"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . &&" \
       "cmake --build $BUILD_DIR --target optsched_cli)" >&2
  exit 1
fi

"$BIN" suite \
  --corpus "$(dirname "$0")/corpus_bench.txt" \
  --engines astar,ida,chenyu \
  --jobs "$JOBS" \
  --json "$OUT"

echo "wrote $OUT"
