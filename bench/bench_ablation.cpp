// Ablation benches (DESIGN.md experiments A1/A2), quantifying the §4.2
// narrative "the pruning techniques reduce the running times consistently
// by about 20%" one technique at a time, plus the heuristic-function
// ablation (the paper argues a *cheap* h beats an expensive one — the
// h_path/h_composite columns measure what a stronger-but-costlier bound
// buys on the same instances).
//
//   $ ./bench_ablation [--vmax N] [--budget-ms MS] [--full]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "util/timer.hpp"

using namespace optsched;

namespace {

struct Outcome {
  std::string time;
  std::uint64_t generated;
};

Outcome run(const core::SearchProblem& problem, core::SearchConfig cfg,
            double budget_ms) {
  cfg.time_budget_ms = budget_ms;
  util::Timer t;
  const auto r = core::astar_schedule(problem, cfg);
  return {bench::cell_time(t.seconds(), !r.proved_optimal),
          r.stats.generated};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto opt = bench::parse_sweep(cli, /*default_vmax=*/12,
                                /*default_budget_ms=*/3000.0);
  if (cli.maybe_print_help(
          "Ablation: per-technique pruning and heuristic-function impact"))
    return 0;
  cli.validate();

  const double ccr = 1.0;

  // --- A1: one pruning technique removed at a time --------------------
  {
    util::Table table({"v", "all", "-isomorphism", "-equivalence",
                       "-upper bound", "none"});
    for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
      const auto graph = bench::paper_workload(ccr, v);
      const auto machine = bench::paper_machine(v);
      const core::SearchProblem problem(graph, machine);

      auto& row = table.row().cell(static_cast<int>(v));
      {
        core::SearchConfig cfg;
        row.cell(run(problem, cfg, opt.budget_ms).time);
      }
      for (int drop = 0; drop < 3; ++drop) {
        core::SearchConfig cfg;
        if (drop == 0) cfg.prune.processor_isomorphism = false;
        if (drop == 1) cfg.prune.node_equivalence = false;
        if (drop == 2) cfg.prune.upper_bound = false;
        row.cell(run(problem, cfg, opt.budget_ms).time);
      }
      {
        core::SearchConfig cfg;
        cfg.prune = core::PruneConfig::none();
        row.cell(run(problem, cfg, opt.budget_ms).time);
      }
    }
    table.print(std::cout,
                "A1: pruning ablation, CCR = 1.0 (time per cell; each "
                "column removes one technique)");
    if (opt.csv) table.write_csv(std::cout);
    std::printf("\n");
  }

  // --- A2: heuristic-function ablation ---------------------------------
  {
    util::Table table({"v", "h_zero", "h_paper", "h_path", "h_composite",
                       "gen(paper)", "gen(composite)"});
    for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
      const auto graph = bench::paper_workload(ccr, v);
      const auto machine = bench::paper_machine(v);
      const core::SearchProblem problem(graph, machine);

      auto& row = table.row().cell(static_cast<int>(v));
      std::uint64_t gen_paper = 0, gen_comp = 0;
      for (const auto h :
           {core::HFunction::kZero, core::HFunction::kPaper,
            core::HFunction::kPath, core::HFunction::kComposite}) {
        core::SearchConfig cfg;
        cfg.h = h;
        const auto outcome = run(problem, cfg, opt.budget_ms);
        row.cell(outcome.time);
        if (h == core::HFunction::kPaper) gen_paper = outcome.generated;
        if (h == core::HFunction::kComposite) gen_comp = outcome.generated;
      }
      row.cell(gen_paper).cell(gen_comp);
    }
    table.print(std::cout, "A2: heuristic ablation, CCR = 1.0");
    if (opt.csv) table.write_csv(std::cout);
  }
  return 0;
}
