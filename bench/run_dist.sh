#!/usr/bin/env bash
# Distributed-transport sweep: serial A* vs multi-process HDA*
# (mode=dist) at 2/4/8 worker processes over the bench corpus, via the
# suite runner itself — differential oracle and ScheduleValidator armed,
# so every dist solve is cross-checked against the serial optimum before
# it is recorded, and a transport bug fails the snapshot instead of
# silently landing in it. Committed as BENCH_pr9.json (JSON wire) and
# BENCH_pr10.json (binary wire v2 — DESIGN.md §11). Usage:
#
#   bench/run_dist.sh [build-dir] [out.json]
#
# The headline numbers are the wire counters in the JSON aggregates:
# `total_states_serialized` / `total_batches_sent` show how much of the
# frontier crosses process boundaries under signature-hash ownership
# (the HDA* trade: no shared memory at all, every duplicate check
# resolved by the owner), `total_states_deduped_at_send` what the
# send-side filters suppressed, `total_flushes` / `total_bytes_sent`
# the gathered-write syscall amortization, and
# `total_termination_rounds` how many quiescence evaluations the
# coordinator's Mattern-style detector needed (O(status frames) since
# wire v2's idle backoff + dirty-flag caching). Compare expanded totals
# against the serial row for the duplicate-work overhead of fully
# partitioned SEEN sets, and total_time_ms across BENCH_pr9 vs
# BENCH_pr10 for the wire-path speedup at identical semantics.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_dist_local.json}

BIN="$BUILD_DIR/examples/optsched_cli"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . &&" \
       "cmake --build $BUILD_DIR --target optsched_cli)" >&2
  exit 1
fi

ENGINES="astar"
for procs in 2 4 8; do
  ENGINES+=",parallel:mode=dist:procs=${procs}"
done

# --jobs 1: each dist solve owns the machine (the coordinator forks
# `procs` worker processes), so the sweep measures the transport, not
# contention between concurrently solved instances.
"$BIN" suite \
  --corpus "$(dirname "$0")/corpus_bench.txt" \
  --engines "$ENGINES" \
  --jobs 1 \
  --json "$OUT"

echo "wrote $OUT"
