#!/usr/bin/env bash
# Serving-layer snapshot: solve latency through the resident daemon, cold
# (every request is a fresh solve) vs warm (every request is served from
# the result cache), at 1, 4, and 8 concurrent clients (committed as
# BENCH_pr7.json). Usage:
#
#   bench/run_server.sh [build-dir] [out.json]
#
# Each concurrency point restarts the daemon so the cold pass really is
# cold, then replays the same corpus on the warm cache. The headline
# figure is the warm mean latency: a cache hit skips the solve entirely,
# so it isolates the serving overhead (socket round-trip + cache lookup)
# from solver time. The suite runner keeps its differential oracle and
# ScheduleValidator armed, so a daemon that returned a wrong cached
# answer would fail the snapshot instead of recording it.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_server_local.json}

BIN="$BUILD_DIR/examples/optsched_cli"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . &&" \
       "cmake --build $BUILD_DIR --target optsched_cli)" >&2
  exit 1
fi

CORPUS="$(dirname "$0")/../tests/data/corpus_smoke.txt"
ENGINE=astar
WORKERS=$(nproc)
SOCK="/tmp/optsched_bench_$$.sock"
TMP=$(mktemp -d)
DAEMON_PID=""

stop_daemon() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    "$BIN" shutdown --socket "$SOCK" >/dev/null 2>&1 || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  DAEMON_PID=""
}
cleanup() {
  stop_daemon
  rm -rf "$TMP" "$SOCK"
}
trap cleanup EXIT

start_daemon() {
  "$BIN" serve --socket "$SOCK" --workers "$WORKERS" \
    > "$TMP/serve.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$TMP/serve.log" && return
    sleep 0.1
  done
  echo "error: daemon did not come up; log:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}

for clients in 1 4 8; do
  start_daemon  # fresh daemon => empty cache => pass 1 is genuinely cold
  for pass in cold warm; do
    "$BIN" suite \
      --corpus "$CORPUS" \
      --engines "$ENGINE" \
      --via-socket "$SOCK" \
      --jobs "$clients" \
      --json "$TMP/${pass}_${clients}.json" >/dev/null
  done
  stop_daemon

  jq -n --argjson clients "$clients" \
     --slurpfile cold "$TMP/cold_${clients}.json" \
     --slurpfile warm "$TMP/warm_${clients}.json" '
    def agg(r): {
      wall_ms: r.suite.wall_ms,
      runs: r.aggregates.astar.runs,
      cache_hits: r.aggregates.astar.cache_hits,
      mean_latency_ms:
        (r.aggregates.astar.total_time_ms / r.aggregates.astar.runs),
      p95_latency_ms:
        ([r.records[].time_ms] | sort
         | .[(length * 95 / 100 | floor)] // 0)
    };
    {clients: $clients,
     cold: agg($cold[0]),
     warm: agg($warm[0])}' \
    > "$TMP/point_${clients}.json"
done

jq -s --arg corpus "$(basename "$CORPUS")" --arg engine "$ENGINE" \
   --argjson workers "$WORKERS" \
   '{bench: "server", corpus: $corpus, engine: $engine,
     daemon_workers: $workers, concurrency: .}' \
   "$TMP"/point_*.json > "$OUT"

echo "wrote $OUT"
