#!/usr/bin/env bash
# Hot-path snapshot (PR 8): the bucketed OPEN list and the branchless/SIMD
# evaluation path, committed as BENCH_pr8.json. Three sections:
#
#   hotpath_micro — google-benchmark JSON for BM_OpenHeapPushPop vs
#       BM_BucketPushPop (mixed push/pop/prune at 1k and 100k frontiers;
#       the acceptance bar is >= 1.3x bucket-over-heap items/s) and
#       BM_HeuristicEval scalar-vs-wide (h_path's est_seed kernel).
#   queue_suite — the bench corpus through astar with queue=heap,
#       queue=bucket, and queue=auto. The suite's differential oracle and
#       validator are armed, so a pop-order divergence fails the snapshot;
#       per-record queue_kind/fallback_reason columns document which
#       instances bucketed and why the rest fell back.
#   parallel_pin — bench/run_parallel.sh rerun with PIN=compact: both
#       transports at 1-8 PPEs with threads pinned and arenas/deques
#       first-touched from their own PPE (compare against BENCH_pr5.json).
#
# Usage: bench/run_hotpath.sh [build-dir] [out.json]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_hotpath_local.json}

BIN="$BUILD_DIR/examples/optsched_cli"
MICRO="$BUILD_DIR/bench/bench_micro"
for exe in "$BIN" "$MICRO"; do
  if [[ ! -x "$exe" ]]; then
    echo "error: $exe not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$MICRO" \
  --benchmark_filter='BM_OpenHeapPushPop|BM_BucketPushPop|BM_HeuristicEval' \
  --benchmark_min_time=0.5 \
  --benchmark_format=json >"$TMP/micro.json"

"$BIN" suite \
  --corpus "$(dirname "$0")/corpus_bench.txt" \
  --engines "astar:queue=heap,astar:queue=bucket,astar" \
  --jobs 1 \
  --json "$TMP/queue.json"

PIN=compact "$(dirname "$0")/run_parallel.sh" "$BUILD_DIR" "$TMP/pin.json"

{
  echo '{'
  echo '"hotpath_micro":'
  cat "$TMP/micro.json"
  echo ',"queue_suite":'
  cat "$TMP/queue.json"
  echo ',"parallel_pin":'
  cat "$TMP/pin.json"
  echo '}'
} >"$OUT"

echo "wrote $OUT"
