#!/usr/bin/env bash
# Run the bench_micro hot-path suite and emit a JSON snapshot for the perf
# trajectory (committed as BENCH_pr<N>.json at each PR that moves a hot
# path). Usage:
#
#   bench/run_bench.sh [build-dir] [out.json]
#
# The suite covers the per-expansion cost centers: signature extension, the
# CLOSED flat set, the OPEN heap, full- vs delta-replay context loads
# (BM_ReplayFull / BM_ReplayDelta, fig6-scale instances), the AoS-vs-SoA
# arena scan, isomorphism classes, and the end-to-end small A*.
set -euo pipefail

# Default output is an uncommitted scratch name: pass BENCH_pr<N>.json
# explicitly when recording a PR's committed snapshot, so an argument-less
# run never clobbers earlier evidence.
BUILD_DIR=${1:-build}
OUT=${2:-BENCH_local.json}

BIN="$BUILD_DIR/bench/bench_micro"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (configure with google-benchmark installed:" \
       "cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_micro)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_(SignatureExtend|FlatSet|OpenList|Replay|ArenaScan|ContextLoadAndExpand|IsomorphismClasses|FullAStarSmall)' \
  --benchmark_min_time=0.2 \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

echo "wrote $OUT"
