// Figure 6 reproduction: speedup of the parallel A* over the serial A*
// with 2/4/8/16 PPEs for CCR in {0.1, 1.0, 10.0}.
//
// Expected shape (paper §4.3): moderately sub-linear speedup, slightly
// degrading with graph size and more irregular at high CCR. NOTE on
// substitution: the paper measured wall-clock on a 16-node Intel Paragon;
// PPEs here are threads, so wall-clock speedup saturates at the host's
// hardware-thread count (printed below). The work ratio (parallel/serial
// expansions, the paper's "extra states") and the PPE load balance carry
// the machine-independent signal.
//
//   $ ./bench_fig6 [--vmax N] [--budget-ms MS] [--ppes 2,4,8,16] [--full]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "core/astar.hpp"
#include "parallel/parallel_astar.hpp"
#include "util/timer.hpp"

using namespace optsched;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto opt = bench::parse_sweep(cli, /*default_vmax=*/12,
                                /*default_budget_ms=*/4000.0);
  cli.describe("ppes", "comma-separated PPE counts (default 2,4,8,16)");
  if (cli.maybe_print_help("Reproduce Figure 6: parallel A* speedups"))
    return 0;
  cli.validate();

  std::vector<std::uint32_t> ppe_counts;
  {
    std::stringstream ss(cli.get("ppes", "2,4,8,16"));
    for (std::string tok; std::getline(ss, tok, ',');)
      ppe_counts.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }

  std::printf("== Figure 6: parallel A* speedup (host has %u hardware "
              "threads) ==\n\n",
              std::thread::hardware_concurrency());

  for (const double ccr : bench::kPaperCcrs) {
    std::vector<std::string> header{"v", "serial"};
    for (const auto q : ppe_counts) {
      header.push_back("S(" + std::to_string(q) + ")");
      header.push_back("work(" + std::to_string(q) + ")");
    }
    util::Table table(header);

    for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
      const auto machine = bench::paper_machine(v);

      // Pick a cell instance the serial search can prove (see
      // bench_common.hpp), preferring ones that are not trivially fast so
      // the speedup measurement has signal.
      double serial_time = 0.0;
      core::SearchResult serial{sched::Schedule(bench::paper_workload(ccr, v),
                                                machine),
                                0, false, 1.0, core::Termination::kOptimal,
                                {}};
      const int attempt = bench::select_tractable_instance(
          ccr, v, [&](const dag::TaskGraph& graph) {
            const core::SearchProblem problem(graph, machine);
            core::SearchConfig cfg;
            cfg.time_budget_ms = opt.budget_ms;
            util::Timer t;
            serial = core::astar_schedule(problem, cfg);
            serial_time = t.seconds();
            return serial.proved_optimal;
          });

      auto& row = table.row().cell(static_cast<int>(v));
      if (attempt < 0) {
        row.cell("TIMEOUT");
        for (std::size_t k = 0; k < ppe_counts.size(); ++k)
          row.cell("-").cell("-");
        continue;
      }
      const auto graph =
          bench::paper_workload(ccr, v, static_cast<std::uint32_t>(attempt));
      const core::SearchProblem problem(graph, machine);
      row.cell(bench::cell_time(serial_time, false));
      for (const auto q : ppe_counts) {
        par::ParallelConfig cfg;
        cfg.num_ppes = q;
        cfg.search.time_budget_ms = opt.budget_ms;
        util::Timer t;
        const auto r = par::parallel_astar_schedule(problem, cfg);
        const double elapsed = t.seconds();
        if (!r.result.proved_optimal) {
          row.cell("-").cell("-");
          continue;
        }
        if (r.result.makespan != serial.makespan) {
          row.cell("MISMATCH").cell("-");
          continue;
        }
        row.cell(serial_time / elapsed, 2)
            .cell(serial.stats.expanded
                      ? static_cast<double>(r.result.stats.expanded) /
                            static_cast<double>(serial.stats.expanded)
                      : 0.0,
                  2);
      }
    }
    char title[96];
    std::snprintf(title, sizeof title,
                  "CCR = %.1f   (S(q) = wall speedup, work(q) = parallel/"
                  "serial expansions)",
                  ccr);
    table.print(std::cout, title);
    if (opt.csv) table.write_csv(std::cout);
    std::printf("\n");
  }
  return 0;
}
