// Figure 6 reproduction: speedup of the parallel A* over the serial A*
// with 2/4/8/16 PPEs for CCR in {0.1, 1.0, 10.0}.
//
// Both columns run through the unified solver API ("astar" and "parallel"
// with a ppes=... option), the same path the CLI uses.
//
// Expected shape (paper §4.3): moderately sub-linear speedup, slightly
// degrading with graph size and more irregular at high CCR. NOTE on
// substitution: the paper measured wall-clock on a 16-node Intel Paragon;
// PPEs here are threads, so wall-clock speedup saturates at the host's
// hardware-thread count (printed below). The work ratio (parallel/serial
// expansions, the paper's "extra states") and the PPE load balance carry
// the machine-independent signal.
//
//   $ ./bench_fig6 [--vmax N] [--budget-ms MS] [--ppes 2,4,8,16] [--full]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace optsched;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto opt = bench::parse_sweep(cli, /*default_vmax=*/12,
                                /*default_budget_ms=*/4000.0);
  cli.describe("ppes", "comma-separated PPE counts (default 2,4,8,16)");
  if (cli.maybe_print_help("Reproduce Figure 6: parallel A* speedups"))
    return 0;
  cli.validate();

  std::vector<std::uint32_t> ppe_counts;
  {
    std::stringstream ss(cli.get("ppes", "2,4,8,16"));
    for (std::string tok; std::getline(ss, tok, ',');)
      ppe_counts.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }

  std::printf("== Figure 6: parallel A* speedup (host has %u hardware "
              "threads) ==\n\n",
              std::thread::hardware_concurrency());

  for (const double ccr : bench::kPaperCcrs) {
    std::vector<std::string> header{"v", "serial"};
    for (const auto q : ppe_counts) {
      header.push_back("S(" + std::to_string(q) + ")");
      header.push_back("work(" + std::to_string(q) + ")");
    }
    util::Table table(header);

    for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
      const auto machine = bench::paper_machine(v);

      // Pick a cell instance the serial search can prove (see
      // bench_common.hpp), preferring ones that are not trivially fast so
      // the speedup measurement has signal.
      double serial_time = 0.0;
      double serial_makespan = 0.0;
      std::uint64_t serial_expanded = 0;
      const int attempt = bench::select_tractable_instance(
          ccr, v, [&](const dag::TaskGraph& graph) {
            api::SolveRequest request(graph, machine);
            request.limits.time_budget_ms = opt.budget_ms;
            util::Timer t;
            const auto serial = api::solve("astar", request);
            serial_time = t.seconds();
            serial_makespan = serial.makespan;
            serial_expanded = serial.stats.search.expanded;
            return serial.proved_optimal;
          });

      auto& row = table.row().cell(static_cast<int>(v));
      if (attempt < 0) {
        row.cell("TIMEOUT");
        for (std::size_t k = 0; k < ppe_counts.size(); ++k)
          row.cell("-").cell("-");
        continue;
      }
      const auto graph =
          bench::paper_workload(ccr, v, static_cast<std::uint32_t>(attempt));
      row.cell(bench::cell_time(serial_time, false));
      for (const auto q : ppe_counts) {
        api::SolveRequest request(graph, machine);
        request.limits.time_budget_ms = opt.budget_ms;
        request.options["ppes"] = std::to_string(q);
        util::Timer t;
        const auto r = api::solve("parallel", request);
        const double elapsed = t.seconds();
        if (!r.proved_optimal) {
          row.cell("-").cell("-");
          continue;
        }
        if (r.makespan != serial_makespan) {
          row.cell("MISMATCH").cell("-");
          continue;
        }
        row.cell(serial_time / elapsed, 2)
            .cell(serial_expanded
                      ? static_cast<double>(r.stats.search.expanded) /
                            static_cast<double>(serial_expanded)
                      : 0.0,
                  2);
      }
    }
    char title[96];
    std::snprintf(title, sizeof title,
                  "CCR = %.1f   (S(q) = wall speedup, work(q) = parallel/"
                  "serial expansions)",
                  ccr);
    table.print(std::cout, title);
    if (opt.csv) table.write_csv(std::cout);
    std::printf("\n");
  }
  return 0;
}
