// Table 1 reproduction: running times of (a) Chen & Yu's branch-and-bound,
// (b) A* without the §3.2 pruning techniques ("A* full"), and (c) A* with
// all prunings, on the §4.1 random workloads for CCR in {0.1, 1.0, 10.0}.
//
// All three columns run through the unified solver API — the same
// engine-name + option-string path the CLI uses ("chenyu", "astar" with
// prune=none, "astar") — so this bench doubles as a smoke test of the
// public surface.
//
// Expected shape (paper §4.2): times grow steeply with v and with CCR;
// Chen & Yu is consistently the slowest (expensive per-state underestimate);
// pruning buys A* a consistent further reduction. Absolute values are
// hardware-bound — the paper's Paragon needed 120 s for a v=10 cell that a
// modern core finishes in milliseconds; conversely its v=32 cells took up
// to 7 *days*, which no laptop bench reproduces. Per-cell instance
// selection (see bench_common.hpp) keeps every printed row comparable:
// each cell uses the first §4.1 instance the pruned A* can prove within
// the probe budget, and all three algorithms run on that instance.
//
//   $ ./bench_table1 [--vmax N] [--budget-ms MS] [--full] [--csv]
#include <cstdio>
#include <iostream>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace optsched;

namespace {

struct Cell {
  double seconds = 0.0;
  bool timed_out = false;
  std::uint64_t expanded = 0;
};

Cell run(const std::string& engine, const api::Options& options,
         const dag::TaskGraph& graph, const machine::Machine& machine,
         double budget_ms) {
  api::SolveRequest request(graph, machine);
  request.limits.time_budget_ms = budget_ms;
  request.options = options;
  util::Timer t;
  const auto r = api::solve(engine, request);
  return {t.seconds(), !r.proved_optimal, r.stats.search.expanded};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto opt = bench::parse_sweep(cli, /*default_vmax=*/16,
                                /*default_budget_ms=*/2000.0);
  if (cli.maybe_print_help(
          "Reproduce Table 1: Chen&Yu B&B vs A*-full vs pruned A* runtimes"))
    return 0;
  cli.validate();

  std::printf("== Table 1: serial scheduling times ==\n");
  std::printf("per-cell probe budget %.0f ms (others get 4x); 'TIMEOUT' = "
              "no tractable instance found, like the paper's '-'\n\n",
              opt.budget_ms);

  for (const double ccr : bench::kPaperCcrs) {
    util::Table table({"v", "Chen", "A*full", "A*", "exp(Chen)",
                       "exp(A*full)", "exp(A*)", "inst"});
    for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
      const auto machine = bench::paper_machine(v);
      Cell probe_cell;
      const int attempt = bench::select_tractable_instance(
          ccr, v, [&](const dag::TaskGraph& graph) {
            probe_cell = run("astar", {}, graph, machine, opt.budget_ms);
            return !probe_cell.timed_out;
          });

      auto& row = table.row().cell(static_cast<int>(v));
      if (attempt < 0) {
        row.cell("TIMEOUT").cell("TIMEOUT").cell("TIMEOUT");
        row.cell("-").cell("-").cell("-").cell("-");
        continue;
      }
      const auto graph =
          bench::paper_workload(ccr, v, static_cast<std::uint32_t>(attempt));
      const Cell chen =
          run("chenyu", {}, graph, machine, 4 * opt.budget_ms);
      const Cell full = run("astar", {{"prune", "none"}}, graph, machine,
                            4 * opt.budget_ms);

      row.cell(bench::cell_time(chen.seconds, chen.timed_out))
          .cell(bench::cell_time(full.seconds, full.timed_out))
          .cell(bench::cell_time(probe_cell.seconds, false))
          .cell(chen.expanded)
          .cell(full.expanded)
          .cell(probe_cell.expanded)
          .cell(attempt);
    }
    char title[96];
    std::snprintf(title, sizeof title, "CCR = %.1f", ccr);
    table.print(std::cout, title);
    if (opt.csv) table.write_csv(std::cout);
    std::printf("\n");
  }
  std::printf("shape check: times grow with v within each column; on solved "
              "cells Chen >= A*full >= A*.\n");
  return 0;
}
