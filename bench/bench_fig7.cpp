// Figure 7 reproduction: the parallel Aε* with ε = 0.2 and ε = 0.5 —
// percentage deviation from the optimal schedule length (plots a, c) and
// the Aε*/A* scheduling-time ratio (plots b, d), per CCR and graph size.
//
// All runs go through the unified solver API: the `parallel` engine with
// ppes=... for the exact baseline, plus epsilon=... for the approximate
// variant.
//
// Expected shape (paper §4.4): actual deviations stay well below the
// 100ε% guarantee (often 0 for small graphs); time ratios drop well below
// 1 (the paper reports 10-40% savings at ε=0.2 and 50-70% at ε=0.5).
//
//   $ ./bench_fig7 [--vmax N] [--budget-ms MS] [--ppes Q] [--full]
#include <cstdio>
#include <iostream>

#include "api/registry.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace optsched;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  auto opt = bench::parse_sweep(cli, /*default_vmax=*/12,
                                /*default_budget_ms=*/4000.0);
  cli.describe("ppes", "PPE count (paper: 16)");
  if (cli.maybe_print_help(
          "Reproduce Figure 7: parallel Aepsilon* deviation and time ratio"))
    return 0;
  cli.validate();
  const auto ppes = static_cast<std::uint32_t>(cli.get_int("ppes", 16));

  std::printf("== Figure 7: parallel Aepsilon* with %u PPEs ==\n\n", ppes);

  for (const double eps : {0.2, 0.5}) {
    for (const double ccr : bench::kPaperCcrs) {
      util::Table table({"v", "optimal", "Aeps SL", "deviation%", "bound%",
                         "time(A*)", "time(Aeps)", "ratio"});
      for (std::uint32_t v = opt.vmin; v <= opt.vmax; v += opt.vstep) {
        const auto machine = bench::paper_machine(v);

        // Cell instance: first one the serial search can prove (the
        // deviation column needs a known optimum).
        const int attempt = bench::select_tractable_instance(
            ccr, v, [&](const dag::TaskGraph& graph) {
              api::SolveRequest request(graph, machine);
              request.limits.time_budget_ms = opt.budget_ms;
              return api::solve("astar", request).proved_optimal;
            });

        auto& row = table.row().cell(static_cast<int>(v));
        if (attempt < 0) {
          row.cell("TIMEOUT").cell("-").cell("-").cell("-").cell("-")
              .cell("-").cell("-");
          continue;
        }
        const auto graph =
            bench::paper_workload(ccr, v, static_cast<std::uint32_t>(attempt));

        api::SolveRequest exact_request(graph, machine);
        exact_request.limits.time_budget_ms = 4 * opt.budget_ms;
        exact_request.options["ppes"] = std::to_string(ppes);
        util::Timer t_exact;
        const auto exact = api::solve("parallel", exact_request);
        const double exact_time = t_exact.seconds();

        api::SolveRequest eps_request = exact_request;
        eps_request.options["epsilon"] = std::to_string(eps);
        util::Timer t_eps;
        const auto approx = api::solve("parallel", eps_request);
        const double eps_time = t_eps.seconds();

        if (!exact.proved_optimal) {
          row.cell("TIMEOUT").cell("-").cell("-").cell("-").cell("-")
              .cell("-").cell("-");
          continue;
        }
        const double deviation =
            100.0 * (approx.makespan - exact.makespan) / exact.makespan;
        row.cell(exact.makespan, 0)
            .cell(approx.makespan, 0)
            .cell(deviation, 2)
            .cell(100.0 * eps, 0)
            .cell(util::format_seconds(exact_time))
            .cell(util::format_seconds(eps_time))
            .cell(eps_time / exact_time, 2);
      }
      char title[96];
      std::snprintf(title, sizeof title, "epsilon = %.1f, CCR = %.1f", eps,
                    ccr);
      table.print(std::cout, title);
      if (opt.csv) table.write_csv(std::cout);
      std::printf("\n");
    }
  }
  std::printf("shape check: deviation%% stays below bound%% everywhere; "
              "time ratio < 1 and smaller for epsilon = 0.5.\n");
  return 0;
}
