// Shared infrastructure for the paper-reproduction benches.
//
// Workloads follow §4.1: three sets of random task graphs with CCR in
// {0.1, 1.0, 10.0}, sizes v = 10..32 step 2, node costs ~ U(mean 40),
// out-degrees ~ U(mean v/10), edge costs ~ U(mean 40*CCR). One fixed seed
// per (ccr, v) cell keeps every run reproducible; the paper's own Table 1
// likewise reports one graph per cell.
//
// The paper's absolute numbers (10^2..10^5 seconds on an Intel Paragon
// node) are not the target — the *shape* is. Each cell gets a wall-clock
// budget; cells that exceed it print "TIMEOUT" exactly like the paper's
// "—" entry for Chen & Yu at v = 32.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "machine/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace optsched::bench {

inline constexpr double kPaperCcrs[] = {0.1, 1.0, 10.0};

/// One graph per (ccr, v, attempt) cell, deterministic across runs.
inline dag::TaskGraph paper_workload(double ccr, std::uint32_t v,
                                     std::uint32_t attempt = 0) {
  dag::RandomDagParams p;
  p.num_nodes = v;
  p.ccr = ccr;
  p.mean_comp = 40.0;
  p.seed = 900000 + static_cast<std::uint64_t>(v) * 10 +
           static_cast<std::uint64_t>(ccr * 10) +
           static_cast<std::uint64_t>(attempt) * 131071;
  return dag::random_dag(p);
}

/// The paper lets the search use O(v) TPEs; redundant processors only add
/// isomorphism-pruned states. A clique of min(v, cap) processors keeps the
/// benches faithful yet bounded.
inline machine::Machine paper_machine(std::uint32_t v, std::uint32_t cap = 5) {
  return machine::Machine::fully_connected(std::min(v, cap));
}

/// Exact search difficulty varies by orders of magnitude across same-size
/// random instances (the paper absorbed that variance with multi-day cell
/// budgets). To compare algorithms within a laptop budget, each cell
/// probes up to `max_attempts` §4.1 instances with the *pruned* A* and
/// selects the first one it can prove within `probe_budget_ms`; the other
/// algorithms then run on that same instance. Cells where no attempt is
/// tractable report TIMEOUT. Returns the attempt index, or -1.
template <typename Probe>
int select_tractable_instance(double ccr, std::uint32_t v, Probe&& probe,
                              std::uint32_t max_attempts = 6) {
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt)
    if (probe(paper_workload(ccr, v, attempt))) return static_cast<int>(attempt);
  return -1;
}

struct SweepOptions {
  std::uint32_t vmin = 10;
  std::uint32_t vmax = 16;
  std::uint32_t vstep = 2;
  double budget_ms = 2000.0;
  bool csv = false;
};

/// Parse the flags shared by all sweep benches. `default_vmax` lets each
/// bench choose a default that completes in a couple of minutes; --full
/// switches to the paper's complete grid.
inline SweepOptions parse_sweep(util::Cli& cli, std::uint32_t default_vmax,
                                double default_budget_ms) {
  cli.describe("vmin", "smallest graph size (default 10)")
      .describe("vmax", "largest graph size")
      .describe("budget-ms", "per-cell wall-clock budget")
      .describe("full", "run the paper's full grid (v up to 32, 10s cells)")
      .describe("csv", "emit CSV after each table");
  SweepOptions opt;
  opt.vmax = default_vmax;
  opt.budget_ms = default_budget_ms;
  if (cli.get_bool("full")) {
    opt.vmax = 32;
    opt.budget_ms = 10000.0;
  }
  opt.vmin = static_cast<std::uint32_t>(cli.get_int("vmin", opt.vmin));
  opt.vmax = static_cast<std::uint32_t>(cli.get_int("vmax", opt.vmax));
  opt.budget_ms = cli.get_double("budget-ms", opt.budget_ms);
  opt.csv = cli.get_bool("csv");
  return opt;
}

inline std::string cell_time(double seconds, bool timed_out) {
  return timed_out ? "TIMEOUT" : util::format_seconds(seconds);
}

}  // namespace optsched::bench
