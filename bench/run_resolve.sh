#!/usr/bin/env bash
# Warm-start re-solve snapshot: run the churn corpus (single deltas plus
# 4- and 16-delta chains) through `optsched_cli resolve`, which solves
# every perturbed instance twice — warm through a SolveSession and cold
# from scratch — with the bit-agreement oracle armed, so a warm-start
# soundness bug fails the snapshot instead of silently recording it.
# Committed as BENCH_pr6.json. Usage:
#
#   bench/run_resolve.sh [build-dir] [out.json]
#
# The headline figure is `single_delta_skip_mean_pct` (mean exact
# 100 * (1 - warm/cold expansions) over first-delta steps; acceptance
# floor 30%). `by_step` tracks how the saving decays along longer churn
# chains: warm state is re-compacted after every delta, so late steps
# retain only what the whole delta history left clean.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_resolve_local.json}

BIN="$BUILD_DIR/examples/optsched_cli"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . &&" \
       "cmake --build $BUILD_DIR --target optsched_cli)" >&2
  exit 1
fi

"$BIN" resolve \
  --corpus "$(dirname "$0")/corpus_resolve.txt" \
  --json "$OUT"

echo "wrote $OUT"
