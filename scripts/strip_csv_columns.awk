# Drop CSV columns *by header name* before a determinism diff.
#
#   awk -f scripts/strip_csv_columns.awk -v strip=colA,colB report.csv
#
# Reads the header row, resolves each name in `strip` to its column
# index, and prints every row without those columns. This replaces the
# old positional `rev | cut -d, -fN- | rev` idiom, which silently
# diffed the wrong columns whenever a new column landed in (or moved
# out of) the trailing run-dependent zone. A name in `strip` that is
# not present in the header is a hard error (exit 2): a renamed or
# removed column must fail the CI job loudly, not quietly re-enter the
# determinism diff.
#
# Fields are split with a character-level scanner that respects
# double-quoted cells (the suite/churn `spec` column contains commas,
# e.g. machine=clique:3@1,2,4), so this runs under any POSIX awk —
# no gawk FPAT dependency.

BEGIN {
  if (strip == "") {
    print "strip_csv_columns.awk: pass -v strip=name[,name...]" > "/dev/stderr"
    bad = 2
    exit 2
  }
  nstrip = split(strip, names, ",")
  for (i = 1; i <= nstrip; i++) want[names[i]] = 1
}

{
  # Split $0 into cells[1..ncell], honoring quotes. Doubled quotes
  # inside a quoted cell toggle the state twice, which is still
  # correct for deciding whether a comma is a separator.
  ncell = 0
  cell = ""
  inq = 0
  len = length($0)
  for (i = 1; i <= len; i++) {
    c = substr($0, i, 1)
    if (c == "\"") {
      inq = !inq
      cell = cell c
    } else if (c == "," && !inq) {
      cells[++ncell] = cell
      cell = ""
    } else {
      cell = cell c
    }
  }
  cells[++ncell] = cell

  if (NR == 1) {
    for (i = 1; i <= ncell; i++)
      if (cells[i] in want) {
        drop[i] = 1
        found[cells[i]] = 1
      }
    for (name in want)
      if (!(name in found)) {
        printf "strip_csv_columns.awk: column '%s' not in header: %s\n", \
               name, $0 > "/dev/stderr"
        bad = 2
        exit 2
      }
  }

  out = ""
  first = 1
  for (i = 1; i <= ncell; i++) {
    if (i in drop) continue
    out = out (first ? "" : ",") cells[i]
    first = 0
  }
  print out
}

END { if (bad) exit bad }
