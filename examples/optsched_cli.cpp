// optsched_cli — schedule a task-graph file from the command line.
//
// The downstream-user entry point: read a graph in the text format
// (dag/io.hpp), pick a machine and an engine from the solver registry,
// print the schedule. Engines are dispatched through the unified API
// (api/registry.hpp), so anything `--list-engines` shows — including the
// portfolio meta-solver and any externally registered engine — works here
// without CLI changes.
//
//   $ ./optsched_cli graph.tg --machine clique:4 --engine astar
//   $ ./optsched_cli graph.tg --machine ring:8 --engine aeps --epsilon 0.2
//   $ ./optsched_cli graph.tg --machine mesh:2x3 --engine parallel --ppes 8
//   $ ./optsched_cli graph.tg --engine ida --opts h=composite,prune=all
//   $ ./optsched_cli --demo --engine portfolio   # race all optimal engines
//   $ ./optsched_cli --list-engines
//
// The `suite` subcommand fans a workload corpus (workload/corpus.hpp) out
// across a thread pool, cross-checks engines with the differential oracle,
// and emits CSV/JSON reports. Exit status is nonzero on any oracle
// mismatch, validator violation, or solve error:
//
//   $ ./optsched_cli suite --corpus tests/data/corpus_smoke.txt
//       --engines astar,ida,chenyu --jobs 4 --csv report.csv
//
// The `resolve` subcommand exercises warm-start re-solve under instance
// churn (api::SolveSession): each case is one scenario plus a chain of
// perturbations; every step is solved warm through the session AND cold
// from scratch, cross-checked by the warm-vs-cold oracle. Exit status is
// nonzero on any oracle mismatch or error:
//
//   $ ./optsched_cli resolve --corpus tests/data/corpus_churn.txt
//   $ ./optsched_cli resolve --spec "family=layered layers=3 width=3"
//         --deltas "delta=taskcost node=4 cost=25; delta=procdrop proc=1"
//
// The serving subcommands run the solver as a resident service
// (server/daemon.hpp): `serve` hosts a daemon on a Unix-domain socket;
// `submit` ships a corpus to it (with an optional cold-solve
// bit-agreement oracle and a cache-hit-rate gate for CI); `status` and
// `shutdown` poke a running daemon. `suite --via-socket <path>` routes
// the whole suite runner — oracle, validator and all — through a daemon:
//
//   $ ./optsched_cli serve --socket /tmp/optsched.sock --workers 4 &
//   $ ./optsched_cli submit --socket /tmp/optsched.sock
//       --corpus tests/data/corpus_smoke.txt --engine astar --oracle
//   $ ./optsched_cli shutdown --socket /tmp/optsched.sock
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "api/registry.hpp"
#include "dag/graph.hpp"
#include "dag/io.hpp"
#include "dag/stg.hpp"
#include "machine/spec.hpp"
#include "sched/metrics.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workload/churn.hpp"
#include "workload/corpus.hpp"
#include "workload/suite.hpp"

using namespace optsched;

namespace {

std::string engine_help() {
  std::string names;
  for (const auto& name : api::SolverRegistry::instance().names()) {
    if (!names.empty()) names += " | ";
    names += name;
  }
  return names + " (default astar; see --list-engines)";
}

std::string verdict_for(const api::SolveResult& r) {
  if (r.proved_optimal)
    return r.bound_factor == 1.0
               ? "optimal (" + r.engine + ")"
               : "within bound factor " + std::to_string(r.bound_factor) +
                     " (" + r.engine + ")";
  if (r.reason == core::Termination::kHeuristic)
    return "heuristic (no optimality guarantee)";
  return std::string("incumbent only: ") + core::to_string(r.reason);
}

/// `optsched_cli suite ...` — run a scenario corpus through the workload
/// suite runner. argv[0] here is the literal "suite".
int suite_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("corpus", "corpus file, one scenario spec per line (required)")
      .describe("engines", "comma-separated engine specs "
                           "name[:key=value...] (colon-separated options, "
                           "e.g. parallel:mode=ws:ppes=4), or 'optimal' "
                           "for every serial optimality-proving engine "
                           "that honors budgets/cancellation "
                           "(default optimal)")
      .describe("jobs", "worker threads sharding the corpus "
                        "(default hardware concurrency)")
      .describe("budget-ms", "per-instance time budget (default unlimited)")
      .describe("max-expansions",
                "per-instance expansion budget (default unlimited)")
      .describe("max-memory-mb",
                "per-instance search-memory cap (default unlimited)")
      .describe("no-validate", "skip ScheduleValidator on returned schedules")
      .describe("no-oracle", "skip the cross-engine differential oracle")
      .describe("via-socket",
                "route every run through a resident daemon listening on "
                "this Unix-socket path (see `optsched_cli serve`); "
                "validation and the oracle apply to the returned "
                "schedules exactly as to in-process runs")
      .describe("csv", "write the per-run report table to this file")
      .describe("json", "write the full JSON report to this file")
      .describe("progress", "print one line per finished run");
  if (cli.maybe_print_help(
          "Run a workload corpus across engines with an oracle"))
    return 0;
  cli.validate();

  OPTSCHED_REQUIRE(cli.has("corpus"), "suite requires --corpus <file>");
  const auto corpus = workload::load_corpus_file(cli.get("corpus", ""));

  workload::SuiteConfig config;
  const std::string engines = cli.get("engines", "optimal");
  // The default set excludes engines that ignore limits and cancellation
  // (the brute-force `exhaustive` oracle would hang with no way to budget
  // or abort the run) and multithreaded ones (their expanded/generated/
  // peak-memory stats are timing-dependent, which would break the
  // documented rerun-and-diff determinism of the report).
  config.engines =
      engines == "optimal"
          ? api::SolverRegistry::instance().names_matching(
                [](const api::EngineCaps& caps) {
                  return caps.optimal && caps.anytime && !caps.parallel;
                })
          : util::split(engines, ',');
  const std::int64_t jobs = cli.get_int(
      "jobs", std::max(1u, std::thread::hardware_concurrency()));
  OPTSCHED_REQUIRE(jobs >= 1, "--jobs must be >= 1");
  config.jobs = static_cast<unsigned>(jobs);
  config.limits.time_budget_ms = cli.get_double("budget-ms", 0.0);
  const std::int64_t max_expansions = cli.get_int("max-expansions", 0);
  OPTSCHED_REQUIRE(max_expansions >= 0, "--max-expansions must be >= 0");
  config.limits.max_expansions = static_cast<std::uint64_t>(max_expansions);
  const std::int64_t max_memory_mb = cli.get_int("max-memory-mb", 0);
  OPTSCHED_REQUIRE(max_memory_mb >= 0, "--max-memory-mb must be >= 0");
  config.limits.max_memory_bytes =
      static_cast<std::size_t>(max_memory_mb) * 1024 * 1024;
  config.validate_schedules = !cli.get_bool("no-validate");
  config.differential_oracle = !cli.get_bool("no-oracle");
  if (cli.has("via-socket")) {
    // One Client (one connection) per suite worker thread; the daemon
    // multiplexes them onto its own bounded pool.
    const std::string socket_path = cli.get("via-socket", "");
    config.remote_solve = [socket_path](const workload::Instance& instance,
                                        const std::string& engine_spec,
                                        const api::SolveLimits& limits) {
      thread_local std::unique_ptr<server::Client> client;
      if (!client) client = std::make_unique<server::Client>(socket_path);
      server::SolveCommand command;
      command.spec = instance.name;
      command.engine = engine_spec;
      command.limits = limits;
      return server::rebuild_result(instance, client->solve_raw(command));
    };
  }
  if (cli.get_bool("progress"))
    config.on_record = [](const workload::SuiteRecord& rec) {
      std::fprintf(stderr, "  [%zu] %s: makespan %.2f (%s)%s\n", rec.instance,
                   rec.engine.c_str(), rec.makespan, rec.termination.c_str(),
                   rec.error.empty() ? "" : " ERROR");
    };

  const workload::SuiteReport report = workload::run_suite(corpus, config);
  std::printf("%s", report.summary().c_str());

  if (cli.has("csv")) {
    std::ofstream out(cli.get("csv", ""));
    OPTSCHED_REQUIRE(out.good(), "cannot write --csv file");
    workload::write_csv(report, out);
    std::printf("wrote %s\n", cli.get("csv", "").c_str());
  }
  if (cli.has("json")) {
    std::ofstream out(cli.get("json", ""));
    OPTSCHED_REQUIRE(out.good(), "cannot write --json file");
    workload::write_json(report, out);
    std::printf("wrote %s\n", cli.get("json", "").c_str());
  }
  return report.ok() ? 0 : 1;
}

/// `optsched_cli resolve ...` — warm-start re-solve chains with the
/// warm-vs-cold oracle. argv[0] here is the literal "resolve".
int resolve_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("corpus",
               "churn corpus file: 'scenario | delta | delta' per line")
      .describe("spec", "inline scenario spec (alternative to --corpus)")
      .describe("deltas",
                "with --spec: ';'-separated perturbation chain, e.g. "
                "\"delta=taskcost node=3 cost=25; delta=procdrop proc=1\"")
      .describe("engine", "engine spec name[:key=value...] (default astar)")
      .describe("budget-ms", "per-solve time budget (default unlimited)")
      .describe("max-expansions",
                "per-solve expansion budget (default unlimited)")
      .describe("csv", "write the per-step report table to this file")
      .describe("json", "write the full JSON report to this file")
      .describe("progress", "print one line per finished step");
  if (cli.maybe_print_help(
          "Warm-start re-solve under churn, with a warm-vs-cold oracle"))
    return 0;
  cli.validate();

  std::vector<workload::ChurnCase> corpus;
  if (cli.has("corpus")) {
    corpus = workload::load_churn_corpus_file(cli.get("corpus", ""));
  } else {
    OPTSCHED_REQUIRE(cli.has("spec"),
                     "resolve requires --corpus <file> or --spec <scenario>");
    workload::ChurnCase churn_case;
    churn_case.base = workload::ScenarioSpec::parse(cli.get("spec", ""));
    for (const auto& part : util::split(cli.get("deltas", ""), ';')) {
      const std::string text = util::trim(part);
      if (text.empty()) continue;
      churn_case.chain.push_back(workload::PerturbationSpec::parse(text));
    }
    OPTSCHED_REQUIRE(!churn_case.chain.empty(),
                     "--deltas needs at least one perturbation");
    corpus.push_back(std::move(churn_case));
  }

  workload::ChurnConfig config;
  config.engine = cli.get("engine", "astar");
  config.limits.time_budget_ms = cli.get_double("budget-ms", 0.0);
  const std::int64_t max_expansions = cli.get_int("max-expansions", 0);
  OPTSCHED_REQUIRE(max_expansions >= 0, "--max-expansions must be >= 0");
  config.limits.max_expansions = static_cast<std::uint64_t>(max_expansions);
  if (cli.get_bool("progress"))
    config.on_record = [](const workload::ChurnRecord& rec) {
      std::fprintf(stderr,
                   "  [case %zu step %zu] warm %.2f / cold %.2f, "
                   "expanded %llu vs %llu (%.1f%% skipped)%s\n",
                   rec.case_index, rec.step, rec.warm_makespan,
                   rec.cold_makespan,
                   static_cast<unsigned long long>(rec.warm_expanded),
                   static_cast<unsigned long long>(rec.cold_expanded),
                   rec.search_skipped_pct,
                   rec.oracle_ok ? "" : " MISMATCH");
    };

  const workload::ChurnReport report = workload::run_churn(corpus, config);
  std::printf("%s", report.summary().c_str());

  if (cli.has("csv")) {
    std::ofstream out(cli.get("csv", ""));
    OPTSCHED_REQUIRE(out.good(), "cannot write --csv file");
    workload::write_churn_csv(report, out);
    std::printf("wrote %s\n", cli.get("csv", "").c_str());
  }
  if (cli.has("json")) {
    std::ofstream out(cli.get("json", ""));
    OPTSCHED_REQUIRE(out.good(), "cannot write --json file");
    workload::write_churn_json(report, out);
    std::printf("wrote %s\n", cli.get("json", "").c_str());
  }
  return report.ok() ? 0 : 1;
}

/// Bitwise double comparison for the cache-soundness oracle: a cached
/// reply must reproduce the cold solve exactly, not within tolerance.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// `optsched_cli serve --socket <path> ...` — host the resident daemon.
int serve_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("socket", "Unix-domain socket path to listen on (required)")
      .describe("workers", "solver worker threads (default 2)")
      .describe("queue-cap", "max queued jobs before typed overload "
                             "rejects (default 64)")
      .describe("cache-mb", "result-cache byte budget in MiB, 0 disables "
                            "(default 64)")
      .describe("memory-budget-mb",
                "global search-memory governor across in-flight jobs in "
                "MiB, 0 disables (default 1024)")
      .describe("job-memory-mb",
                "per-job search-memory cap when a command sets none; also "
                "its governor reservation (default 128)")
      .describe("budget-ms",
                "per-job time budget when a command sets none (default "
                "unlimited)");
  if (cli.maybe_print_help("Run the solver as a resident daemon")) return 0;
  cli.validate();

  OPTSCHED_REQUIRE(cli.has("socket"), "serve requires --socket <path>");
  server::DaemonConfig config;
  config.socket_path = cli.get("socket", "");
  const std::int64_t workers = cli.get_int("workers", 2);
  OPTSCHED_REQUIRE(workers >= 1, "--workers must be >= 1");
  config.workers = static_cast<unsigned>(workers);
  const std::int64_t queue_cap = cli.get_int("queue-cap", 64);
  OPTSCHED_REQUIRE(queue_cap >= 1, "--queue-cap must be >= 1");
  config.queue_cap = static_cast<std::size_t>(queue_cap);
  auto mib = [&cli](const char* flag, std::int64_t fallback) {
    const std::int64_t v = cli.get_int(flag, fallback);
    OPTSCHED_REQUIRE(v >= 0, std::string("--") + flag + " must be >= 0");
    return static_cast<std::size_t>(v) * 1024 * 1024;
  };
  config.cache_bytes = mib("cache-mb", 64);
  config.memory_budget = mib("memory-budget-mb", 1024);
  config.default_job_memory = mib("job-memory-mb", 128);
  config.default_budget_ms = cli.get_double("budget-ms", 0.0);

  server::Daemon daemon(std::move(config));
  daemon.start();
  // One flushed readiness line so scripts can wait for it before
  // connecting (CI greps for "listening on").
  std::printf("listening on %s (workers %u, queue cap %zu, cache %zu MiB, "
              "memory budget %zu MiB)\n",
              daemon.config().socket_path.c_str(), daemon.config().workers,
              daemon.config().queue_cap, daemon.config().cache_bytes >> 20,
              daemon.config().memory_budget >> 20);
  std::fflush(stdout);
  daemon.wait();
  const server::StatusReply status = daemon.status();
  std::printf("daemon stopped: %llu accepted, %llu completed, %llu "
              "rejected, %llu cache hits served\n",
              static_cast<unsigned long long>(status.accepted),
              static_cast<unsigned long long>(status.completed),
              static_cast<unsigned long long>(status.rejected),
              static_cast<unsigned long long>(status.cache_hits_served));
  return 0;
}

/// `optsched_cli submit ...` — ship a corpus to a running daemon, with
/// the cache-soundness oracle (a daemon reply must bit-agree with a cold
/// in-process solve) and a cache-hit-rate gate for CI warm passes.
int submit_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("socket", "daemon socket path (required)")
      .describe("corpus", "corpus file, one scenario spec per line")
      .describe("spec", "inline scenario spec (alternative to --corpus)")
      .describe("engine", "engine spec name[:key=value...] (default astar)")
      .describe("budget-ms", "per-job time budget (default daemon's)")
      .describe("max-expansions", "per-job expansion budget (default none)")
      .describe("max-memory-mb", "per-job search-memory cap "
                                 "(default daemon's)")
      .describe("no-cache", "force fresh solves (skip the daemon's cache)")
      .describe("oracle", "cold-solve each instance in-process and require "
                          "bit-agreement with the daemon's reply")
      .describe("min-hit-rate", "fail unless at least this fraction of "
                                "replies were cache hits (e.g. 0.9)")
      .describe("csv", "write the per-run report table to this file")
      .describe("progress", "print one line per reply");
  if (cli.maybe_print_help("Submit scenarios to a resident daemon")) return 0;
  cli.validate();

  OPTSCHED_REQUIRE(cli.has("socket"), "submit requires --socket <path>");
  std::vector<workload::ScenarioSpec> corpus;
  if (cli.has("corpus")) {
    corpus = workload::load_corpus_file(cli.get("corpus", ""));
  } else {
    OPTSCHED_REQUIRE(cli.has("spec"),
                     "submit requires --corpus <file> or --spec <scenario>");
    corpus.push_back(workload::ScenarioSpec::parse(cli.get("spec", "")));
  }

  server::SolveCommand base;
  base.engine = cli.get("engine", "astar");
  base.limits.time_budget_ms = cli.get_double("budget-ms", 0.0);
  const std::int64_t max_expansions = cli.get_int("max-expansions", 0);
  OPTSCHED_REQUIRE(max_expansions >= 0, "--max-expansions must be >= 0");
  base.limits.max_expansions = static_cast<std::uint64_t>(max_expansions);
  const std::int64_t max_memory_mb = cli.get_int("max-memory-mb", 0);
  OPTSCHED_REQUIRE(max_memory_mb >= 0, "--max-memory-mb must be >= 0");
  base.limits.max_memory_bytes =
      static_cast<std::size_t>(max_memory_mb) * 1024 * 1024;
  base.no_cache = cli.get_bool("no-cache");
  const bool oracle = cli.get_bool("oracle");
  const double min_hit_rate = cli.get_double("min-hit-rate", 0.0);
  OPTSCHED_REQUIRE(min_hit_rate >= 0.0 && min_hit_rate <= 1.0,
                   "--min-hit-rate must be in [0, 1]");

  server::Client client(cli.get("socket", ""));
  const auto [engine_name, engine_options] =
      api::parse_engine_spec(base.engine);

  struct Row {
    std::string spec, termination, error;
    double makespan = 0.0, bound_factor = 0.0;
    bool proved_optimal = false, valid = false, cache_hit = false;
    std::uint64_t expanded = 0, generated = 0, cache_lookups = 0;
    std::size_t peak_memory_bytes = 0, cache_bytes = 0;
    double queue_wait_ms = 0.0, time_ms = 0.0;
  };
  std::vector<Row> rows;
  std::size_t hits = 0, failures = 0;
  double queue_wait_total = 0.0;

  for (const auto& spec : corpus) {
    Row row;
    row.spec = spec.to_string();
    const util::Timer timer;
    try {
      const workload::Instance instance = spec.materialize();
      server::SolveCommand command = base;
      command.spec = instance.name;
      const server::SolveReply reply = client.solve_raw(command);
      const api::SolveResult result =
          server::rebuild_result(instance, reply);
      row.makespan = result.makespan;
      row.proved_optimal = result.proved_optimal;
      row.bound_factor = result.bound_factor;
      row.termination = core::to_string(result.reason);
      row.expanded = result.stats.search.expanded;
      row.generated = result.stats.search.generated;
      row.peak_memory_bytes = result.stats.search.peak_memory_bytes;
      row.cache_hit = reply.cache_hit;
      row.cache_lookups = reply.cache_lookups;
      row.cache_bytes = reply.cache_bytes;
      row.queue_wait_ms = reply.queue_wait_ms;
      sched::validate(result.schedule);
      row.valid = true;
      if (oracle) {
        // Cold in-process reference: the daemon's reply — cached or
        // fresh — must reproduce it bit for bit.
        api::SolveRequest request(instance.graph, instance.machine,
                                  instance.comm);
        request.limits = base.limits;
        request.options = engine_options;
        const api::SolveResult cold = api::solve(engine_name, request);
        if (!bits_equal(result.makespan, cold.makespan))
          throw util::Error("oracle: makespan " +
                            util::format_number(result.makespan) +
                            " != cold " +
                            util::format_number(cold.makespan));
        for (dag::NodeId n = 0; n < instance.graph.num_nodes(); ++n) {
          const auto& got = result.schedule.placement(n);
          const auto& want = cold.schedule.placement(n);
          if (got.proc != want.proc || !bits_equal(got.start, want.start) ||
              !bits_equal(got.finish, want.finish))
            throw util::Error(
                "oracle: node " + std::to_string(n) + " placed (" +
                std::to_string(got.proc) + ", " +
                util::format_number(got.start) + ") but cold solve says (" +
                std::to_string(want.proc) + ", " +
                util::format_number(want.start) + ")");
        }
      }
    } catch (const std::exception& ex) {
      row.error = ex.what();
      ++failures;
    }
    row.time_ms = timer.millis();
    if (row.cache_hit) ++hits;
    queue_wait_total += row.queue_wait_ms;
    if (cli.get_bool("progress"))
      std::fprintf(stderr, "  [%zu] %s: makespan %.2f (%s)%s%s\n",
                   rows.size(), row.spec.c_str(), row.makespan,
                   row.termination.c_str(), row.cache_hit ? " [cache]" : "",
                   row.error.empty() ? "" : " ERROR");
    rows.push_back(std::move(row));
  }

  const double hit_rate = rows.empty() ? 0.0
                                       : static_cast<double>(hits) /
                                             static_cast<double>(rows.size());
  std::printf("submit: %zu runs via %s, %zu cache hits (%.0f%%), %zu "
              "failures, mean queue wait %.2f ms%s\n",
              rows.size(), base.engine.c_str(), hits, hit_rate * 100.0,
              failures,
              rows.empty() ? 0.0 : queue_wait_total /
                                       static_cast<double>(rows.size()),
              oracle ? ", oracle: bit-agreement checked" : "");

  if (cli.has("csv")) {
    std::ofstream out(cli.get("csv", ""));
    OPTSCHED_REQUIRE(out.good(), "cannot write --csv file");
    // Same determinism contract as the suite CSV: the serving-layer
    // columns (cache_hit..queue_wait_ms) and time_ms are run-dependent;
    // everything else is a pure function of (spec, engine), so CI diffs
    // passes after stripping those columns by name with
    // scripts/strip_csv_columns.awk.
    out << "spec,engine,makespan,proved_optimal,bound_factor,termination,"
           "expanded,generated,peak_memory_bytes,valid,error,cache_hit,"
           "cache_lookups,cache_bytes,queue_wait_ms,time_ms\n";
    for (const auto& r : rows) {
      out << '"' << r.spec << "\"," << base.engine << ','
          << util::format_number(r.makespan) << ','
          << (r.proved_optimal ? 1 : 0) << ','
          << util::format_number_lenient(r.bound_factor) << ',' << r.termination
          << ',' << r.expanded << ',' << r.generated << ','
          << r.peak_memory_bytes << ',' << (r.valid ? 1 : 0) << ','
          << r.error << ',' << (r.cache_hit ? 1 : 0) << ','
          << r.cache_lookups << ',' << r.cache_bytes << ','
          << util::format_number(r.queue_wait_ms) << ','
          << util::format_number(r.time_ms) << '\n';
    }
    std::printf("wrote %s\n", cli.get("csv", "").c_str());
  }

  if (failures) return 1;
  if (hit_rate < min_hit_rate) {
    std::fprintf(stderr, "error: cache hit rate %.2f below --min-hit-rate "
                         "%.2f\n",
                 hit_rate, min_hit_rate);
    return 1;
  }
  return 0;
}

/// `optsched_cli status --socket <path>` — one status round-trip.
int status_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("socket", "daemon socket path (required)");
  if (cli.maybe_print_help("Query a resident daemon")) return 0;
  cli.validate();
  OPTSCHED_REQUIRE(cli.has("socket"), "status requires --socket <path>");
  server::Client client(cli.get("socket", ""));
  const server::StatusReply s = client.status();
  std::printf("jobs: %llu accepted, %llu completed, %llu rejected; queue "
              "%zu/%zu, %zu in flight on %u workers\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.rejected), s.queue_depth,
              s.queue_cap, s.in_flight, s.workers);
  std::printf("memory governor: %zu/%zu MiB reserved\n",
              s.memory_reserved >> 20, s.memory_budget >> 20);
  std::printf("cache: %llu/%llu hits, %zu entries (%zu/%zu KiB), %llu "
              "insertions, %llu evictions\n",
              static_cast<unsigned long long>(s.cache.hits),
              static_cast<unsigned long long>(s.cache.lookups),
              s.cache.entries, s.cache.bytes >> 10,
              s.cache.byte_budget >> 10,
              static_cast<unsigned long long>(s.cache.insertions),
              static_cast<unsigned long long>(s.cache.evictions));
  return 0;
}

/// `optsched_cli shutdown --socket <path>` — ask a daemon to drain.
int shutdown_main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("socket", "daemon socket path (required)");
  if (cli.maybe_print_help("Shut a resident daemon down")) return 0;
  cli.validate();
  OPTSCHED_REQUIRE(cli.has("socket"), "shutdown requires --socket <path>");
  server::Client client(cli.get("socket", ""));
  client.shutdown();
  std::printf("daemon at %s acknowledged shutdown\n",
              cli.get("socket", "").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc >= 2 && std::string(argv[1]) == "suite")
    return suite_main(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "resolve")
    return resolve_main(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "serve")
    return serve_main(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "submit")
    return submit_main(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "status")
    return status_main(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "shutdown")
    return shutdown_main(argc - 1, argv + 1);
  util::Cli cli(argc, argv);
  cli.describe("machine", "target machine, kind:size (default clique:4)")
      .describe("engine", engine_help())
      .describe("opts", "engine options, key=value[,key=value...] "
                        "(see --list-engines)")
      .describe("epsilon", "shorthand for --opts epsilon=...")
      .describe("ppes", "shorthand for --opts ppes=...")
      .describe("budget-ms", "search budget (default unlimited)")
      .describe("max-expansions", "state-expansion budget (default unlimited)")
      .describe("progress", "print progress lines during the search")
      .describe("hop-scaled", "scale comm costs by topology hop distance")
      .describe("gantt", "print the ASCII Gantt chart (default true)")
      .describe("stg", "input is in STG format (Kasahara suite)")
      .describe("stg-ccr", "synthesize STG comm costs at this CCR (default 0)")
      .describe("metrics", "print schedule quality metrics (default true)")
      .describe("demo", "schedule the paper's Figure 1 example")
      .describe("list-engines", "list registered engines and exit")
      .describe("markdown", "with --list-engines: emit a markdown table");
  if (cli.maybe_print_help("Schedule a task-graph file (also: "
                           "`optsched_cli suite --help` for corpus runs)"))
    return 0;
  cli.validate();

  if (cli.get_bool("list-engines")) {
    if (cli.get_bool("markdown")) {
      std::printf("%s", api::format_engine_table(true).c_str());
    } else {
      std::printf("registered engines:\n%s",
                  api::format_engine_table(false).c_str());
    }
    return 0;
  }

  dag::TaskGraph graph = [&] {
    if (cli.get_bool("demo")) return dag::paper_figure1();
    OPTSCHED_REQUIRE(!cli.positional().empty(),
                     "usage: optsched_cli <graph.tg> [flags] (or --demo)");
    if (cli.get_bool("stg")) {
      dag::StgOptions opt;
      opt.ccr = cli.get_double("stg-ccr", 0.0);
      return dag::read_stg_file(cli.positional().front(), opt);
    }
    return dag::read_text_file(cli.positional().front());
  }();

  const machine::Machine machine = machine::machine_from_spec(
      cli.get("machine", cli.get_bool("demo") ? "ring:3" : "clique:4"));
  const auto comm = cli.get_bool("hop-scaled")
                        ? machine::CommMode::kHopScaled
                        : machine::CommMode::kUnitDistance;
  const std::string engine = cli.get("engine", "astar");

  api::SolveRequest request(graph, machine, comm);
  request.limits.time_budget_ms = cli.get_double("budget-ms", 0.0);
  const std::int64_t max_expansions = cli.get_int("max-expansions", 0);
  OPTSCHED_REQUIRE(max_expansions >= 0, "--max-expansions must be >= 0");
  request.limits.max_expansions =
      static_cast<std::uint64_t>(max_expansions);
  request.options = api::parse_options(cli.get("opts", ""));
  if (cli.has("epsilon")) request.options["epsilon"] = cli.get("epsilon", "");
  if (cli.has("ppes")) request.options["ppes"] = cli.get("ppes", "");
  if (cli.get_bool("progress"))
    request.progress = [](const core::ProgressEvent& e) {
      std::fprintf(stderr,
                   "  ... %llu expanded, bound >= %.1f, incumbent %.1f "
                   "(%.1fs)\n",
                   static_cast<unsigned long long>(e.expanded),
                   e.lower_bound, e.incumbent, e.elapsed_seconds);
    };

  std::printf("graph: %zu tasks, %zu edges, CCR %.2f | machine: %s (%u "
              "procs) | engine: %s\n\n",
              graph.num_nodes(), graph.num_edges(), graph.ccr(),
              machine.topology_name().c_str(), machine.num_procs(),
              engine.c_str());

  const api::SolveResult result = api::solve(engine, request);

  sched::validate(result.schedule);
  std::printf("schedule length: %.2f  [%s]\n", result.makespan,
              verdict_for(result).c_str());
  if (result.stats.search.expanded > 0)
    std::printf("states expanded: %llu, generated: %llu, peak memory ~%zu "
                "KiB\n",
                static_cast<unsigned long long>(result.stats.search.expanded),
                static_cast<unsigned long long>(
                    result.stats.search.generated),
                result.stats.search.peak_memory_bytes / 1024);
  if (result.stats.search.queue_kind[0] != '\0') {
    std::printf("open list: %s", result.stats.search.queue_kind);
    if (result.stats.search.bucket_peak > 0)
      std::printf(", peak bucket span %llu",
                  static_cast<unsigned long long>(
                      result.stats.search.bucket_peak));
    if (result.stats.search.queue_fallback[0] != '\0')
      std::printf(" (auto fallback: %s)",
                  result.stats.search.queue_fallback);
    std::printf("\n");
  }
  if (result.stats.search.loads_full + result.stats.search.loads_incremental >
      0)
    std::printf("context loads: %llu full, %llu delta; arena hot/cold ~%zu/"
                "%zu KiB\n",
                static_cast<unsigned long long>(
                    result.stats.search.loads_full),
                static_cast<unsigned long long>(
                    result.stats.search.loads_incremental),
                result.stats.search.arena_hot_bytes / 1024,
                result.stats.search.arena_cold_bytes / 1024);
  if (!result.stats.parallel_mode.empty()) {
    // expanded_per_ppe is sorted descending (the per-thread attribution is
    // timing-dependent); print the distribution plus min/max.
    const auto& per_ppe = result.stats.expanded_per_ppe;
    std::string balance;
    for (const auto n : per_ppe)
      balance += (balance.empty() ? "" : "/") + std::to_string(n);
    std::printf("parallel[%s]: %zu PPEs (%u pinned), expanded max/min "
                "%llu/%llu (%s)\n",
                result.stats.parallel_mode.c_str(), per_ppe.size(),
                result.stats.pins_applied,
                static_cast<unsigned long long>(
                    per_ppe.empty() ? 0 : per_ppe.front()),
                static_cast<unsigned long long>(
                    per_ppe.empty() ? 0 : per_ppe.back()),
                balance.c_str());
    if (result.stats.parallel_mode == "dist") {
      std::printf("  wire: %llu states serialized into %llu batches, "
                  "%llu relayed; termination: %llu rounds\n",
                  static_cast<unsigned long long>(
                      result.stats.states_serialized),
                  static_cast<unsigned long long>(result.stats.batches_sent),
                  static_cast<unsigned long long>(
                      result.stats.states_transferred),
                  static_cast<unsigned long long>(
                      result.stats.termination_rounds));
      std::printf("  wire: %llu deduped at send, %llu gathered writes "
                  "(%.1f batches/write), %llu bytes on the wire\n",
                  static_cast<unsigned long long>(
                      result.stats.states_deduped_at_send),
                  static_cast<unsigned long long>(result.stats.flushes),
                  result.stats.flushes
                      ? static_cast<double>(result.stats.batches_sent) /
                            static_cast<double>(result.stats.flushes)
                      : 0.0,
                  static_cast<unsigned long long>(result.stats.bytes_sent));
    }
    else if (result.stats.parallel_mode == "ws")
      std::printf("  stealing: %llu steals (%llu states) in %llu attempts, "
                  "%llu donations; dedup: %u shards, %llu duplicates "
                  "filtered\n",
                  static_cast<unsigned long long>(result.stats.steals),
                  static_cast<unsigned long long>(
                      result.stats.states_transferred),
                  static_cast<unsigned long long>(
                      result.stats.steal_attempts),
                  static_cast<unsigned long long>(result.stats.donations),
                  result.stats.shards,
                  static_cast<unsigned long long>(result.stats.shard_hits));
    else
      std::printf("  comm: %llu messages (%llu states), %llu rounds\n",
                  static_cast<unsigned long long>(result.stats.messages_sent),
                  static_cast<unsigned long long>(
                      result.stats.states_transferred),
                  static_cast<unsigned long long>(result.stats.comm_rounds));
  }
  if (result.stats.engines_raced > 0)
    std::printf("portfolio: %u engines raced, '%s' won\n",
                result.stats.engines_raced, result.engine.c_str());
  std::printf("\n");
  if (cli.get_bool("gantt", true))
    std::printf("%s", sched::render_gantt(result.schedule).c_str());
  if (cli.get_bool("metrics", true))
    std::printf("\n%s",
                sched::format_metrics(sched::compute_metrics(result.schedule))
                    .c_str());
  return 0;
} catch (const optsched::util::Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
