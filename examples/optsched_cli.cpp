// optsched_cli — schedule a task-graph file from the command line.
//
// The downstream-user entry point: read a graph in the text format
// (dag/io.hpp), pick a machine and an engine, print the schedule.
//
//   $ ./optsched_cli graph.tg --machine clique:4 --engine astar
//   $ ./optsched_cli graph.tg --machine ring:8 --engine aeps --epsilon 0.2
//   $ ./optsched_cli graph.tg --machine mesh:2x3 --engine parallel --ppes 8
//   $ ./optsched_cli --demo            # uses the paper's Figure 1 example
#include <cstdio>
#include <iostream>
#include <string>

#include "bnb/chen_yu.hpp"
#include "core/astar.hpp"
#include "core/ida_star.hpp"
#include "dag/graph.hpp"
#include "dag/io.hpp"
#include "dag/stg.hpp"
#include "machine/spec.hpp"
#include "parallel/parallel_astar.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/metrics.hpp"
#include "util/cli.hpp"

using namespace optsched;

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  cli.describe("machine", "target machine, kind:size (default clique:4)")
      .describe("engine",
                "astar | aeps | ida | parallel | chenyu | blevel | mcp | etf "
                "(default astar)")
      .describe("epsilon", "Aeps* approximation factor (default 0.2)")
      .describe("ppes", "parallel engine PPE count (default 4)")
      .describe("budget-ms", "search budget (default unlimited)")
      .describe("hop-scaled", "scale comm costs by topology hop distance")
      .describe("gantt", "print the ASCII Gantt chart (default true)")
      .describe("stg", "input is in STG format (Kasahara suite)")
      .describe("stg-ccr", "synthesize STG comm costs at this CCR (default 0)")
      .describe("metrics", "print schedule quality metrics (default true)")
      .describe("demo", "schedule the paper's Figure 1 example");
  if (cli.maybe_print_help("Schedule a task-graph file")) return 0;
  cli.validate();

  dag::TaskGraph graph = [&] {
    if (cli.get_bool("demo")) return dag::paper_figure1();
    OPTSCHED_REQUIRE(!cli.positional().empty(),
                     "usage: optsched_cli <graph.tg> [flags] (or --demo)");
    if (cli.get_bool("stg")) {
      dag::StgOptions opt;
      opt.ccr = cli.get_double("stg-ccr", 0.0);
      return dag::read_stg_file(cli.positional().front(), opt);
    }
    return dag::read_text_file(cli.positional().front());
  }();

  const machine::Machine machine = machine::machine_from_spec(
      cli.get("machine", cli.get_bool("demo") ? "ring:3" : "clique:4"));
  const auto comm = cli.get_bool("hop-scaled")
                        ? machine::CommMode::kHopScaled
                        : machine::CommMode::kUnitDistance;
  const std::string engine = cli.get("engine", "astar");
  const double budget = cli.get_double("budget-ms", 0.0);

  std::printf("graph: %zu tasks, %zu edges, CCR %.2f | machine: %s (%u "
              "procs) | engine: %s\n\n",
              graph.num_nodes(), graph.num_edges(), graph.ccr(),
              machine.topology_name().c_str(), machine.num_procs(),
              engine.c_str());

  sched::Schedule schedule(graph, machine, comm);
  std::string verdict;
  if (engine == "blevel" || engine == "mcp" || engine == "etf") {
    schedule = engine == "blevel" ? sched::upper_bound_schedule(graph, machine, comm)
               : engine == "mcp" ? sched::mcp(graph, machine, comm)
                                 : sched::etf(graph, machine, comm);
    verdict = "heuristic (no optimality guarantee)";
  } else if (engine == "chenyu") {
    const core::SearchProblem problem(graph, machine, comm);
    bnb::ChenYuConfig cfg;
    cfg.time_budget_ms = budget;
    const auto r = bnb::chen_yu_schedule(problem, cfg);
    schedule = r.schedule;
    verdict = r.proved_optimal ? "optimal (Chen&Yu B&B)" : "budget-limited";
  } else if (engine == "parallel") {
    const core::SearchProblem problem(graph, machine, comm);
    par::ParallelConfig cfg;
    cfg.num_ppes = static_cast<std::uint32_t>(cli.get_int("ppes", 4));
    cfg.search.time_budget_ms = budget;
    cfg.search.epsilon = cli.get_double("epsilon", 0.0);
    const auto r = par::parallel_astar_schedule(problem, cfg);
    schedule = r.result.schedule;
    verdict = r.result.proved_optimal
                  ? (cfg.search.epsilon > 0 ? "within (1+eps) of optimal"
                                            : "optimal (parallel A*)")
                  : "budget-limited";
  } else if (engine == "ida") {
    core::SearchConfig cfg;
    cfg.time_budget_ms = budget;
    const auto r = core::ida_star_schedule(graph, machine, cfg, comm);
    schedule = r.schedule;
    verdict = r.proved_optimal ? "optimal (IDA*)" : "budget-limited";
  } else if (engine == "astar" || engine == "aeps") {
    core::SearchConfig cfg;
    cfg.time_budget_ms = budget;
    if (engine == "aeps") cfg.epsilon = cli.get_double("epsilon", 0.2);
    const auto r = core::astar_schedule(graph, machine, cfg, comm);
    schedule = r.schedule;
    verdict = !r.proved_optimal  ? "budget-limited"
              : cfg.epsilon > 0 ? "within (1+eps) of optimal"
                                : "optimal (A*)";
    std::printf("states expanded: %llu, generated: %llu, peak memory ~%zu "
                "KiB\n",
                static_cast<unsigned long long>(r.stats.expanded),
                static_cast<unsigned long long>(r.stats.generated),
                r.stats.peak_memory_bytes / 1024);
  } else {
    throw util::Error("unknown engine '" + engine + "'");
  }

  sched::validate(schedule);
  std::printf("schedule length: %.2f  [%s]\n\n", schedule.makespan(),
              verdict.c_str());
  if (cli.get_bool("gantt", true))
    std::printf("%s", sched::render_gantt(schedule).c_str());
  if (cli.get_bool("metrics", true))
    std::printf("\n%s",
                sched::format_metrics(sched::compute_metrics(schedule))
                    .c_str());
  return 0;
} catch (const optsched::util::Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
