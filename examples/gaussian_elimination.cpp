// Scheduling a real application kernel: Gaussian elimination.
//
// The paper's introduction motivates optimal scheduling for "critical
// applications in which performance is the primary objective". This
// example schedules the classic Gaussian-elimination task DAG onto a
// 4-processor clique and compares the optimal schedule against classic
// list heuristics (HLFET, MCP, ETF) — exactly the "optimal solutions as a
// reference to assess the performance of scheduling heuristics" use case.
//
//   $ ./gaussian_elimination [--dim N] [--comm C] [--budget-ms MS]
#include <cstdio>
#include <iostream>

#include "core/astar.hpp"
#include "dag/generators.hpp"
#include "sched/list_scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("dim", "matrix dimension (default 4)")
      .describe("comm", "per-edge communication cost (default 25)")
      .describe("procs", "number of processors (default 4)")
      .describe("budget-ms", "search budget in ms (default 10000)");
  if (cli.maybe_print_help("Optimal vs heuristic scheduling of Gaussian elimination"))
    return 0;
  cli.validate();

  const auto dim = static_cast<std::uint32_t>(cli.get_int("dim", 4));
  const double comm = cli.get_double("comm", 25.0);
  const auto procs = static_cast<std::uint32_t>(cli.get_int("procs", 4));

  const dag::TaskGraph graph = dag::gaussian_elimination(dim, 40.0, comm);
  const machine::Machine machine = machine::Machine::fully_connected(procs);
  std::printf("Gaussian elimination, %ux%u matrix: %zu tasks, %zu edges, "
              "CCR %.2f, %u processors\n\n",
              dim, dim, graph.num_nodes(), graph.num_edges(), graph.ccr(),
              procs);

  core::SearchConfig cfg;
  cfg.time_budget_ms = cli.get_double("budget-ms", 10000.0);
  const auto optimal = core::astar_schedule(graph, machine, cfg);

  util::Table table({"scheduler", "makespan", "vs optimal"});
  auto add = [&](const char* name, double makespan) {
    table.row().cell(name).cell(makespan, 0).cell(
        makespan / optimal.makespan, 3);
  };
  add(optimal.proved_optimal ? "A* (optimal)" : "A* (anytime best)",
      optimal.makespan);
  add("HLFET", sched::hlfet(graph, machine).makespan());
  add("MCP", sched::mcp(graph, machine).makespan());
  add("ETF", sched::etf(graph, machine).makespan());
  add("b-level list", sched::upper_bound_schedule(graph, machine).makespan());
  table.print(std::cout, "schedule lengths");

  std::printf("\n%s\n", sched::render_gantt(optimal.schedule).c_str());
  return 0;
}
