// Scheduling a real application kernel: Gaussian elimination.
//
// The paper's introduction motivates optimal scheduling for "critical
// applications in which performance is the primary objective". This
// example schedules the classic Gaussian-elimination task DAG onto a
// 4-processor clique and compares the optimal schedule against every list
// heuristic in the solver registry — exactly the "optimal solutions as a
// reference to assess the performance of scheduling heuristics" use case.
//
//   $ ./gaussian_elimination [--dim N] [--comm C] [--budget-ms MS]
#include <cstdio>
#include <iostream>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("dim", "matrix dimension (default 4)")
      .describe("comm", "per-edge communication cost (default 25)")
      .describe("procs", "number of processors (default 4)")
      .describe("budget-ms", "search budget in ms (default 10000)");
  if (cli.maybe_print_help("Optimal vs heuristic scheduling of Gaussian elimination"))
    return 0;
  cli.validate();

  const auto dim = static_cast<std::uint32_t>(cli.get_int("dim", 4));
  const double comm = cli.get_double("comm", 25.0);
  const auto procs = static_cast<std::uint32_t>(cli.get_int("procs", 4));

  const dag::TaskGraph graph = dag::gaussian_elimination(dim, 40.0, comm);
  const machine::Machine machine = machine::Machine::fully_connected(procs);
  std::printf("Gaussian elimination, %ux%u matrix: %zu tasks, %zu edges, "
              "CCR %.2f, %u processors\n\n",
              dim, dim, graph.num_nodes(), graph.num_edges(), graph.ccr(),
              procs);

  api::SolveRequest request(graph, machine);
  request.limits.time_budget_ms = cli.get_double("budget-ms", 10000.0);
  const auto optimal = api::solve("astar", request);

  util::Table table({"scheduler", "makespan", "vs optimal"});
  auto add = [&](const std::string& name, double makespan) {
    table.row().cell(name).cell(makespan, 0).cell(
        makespan / optimal.makespan, 3);
  };
  add(optimal.proved_optimal ? "astar (optimal)" : "astar (anytime best)",
      optimal.makespan);
  const auto& registry = api::SolverRegistry::instance();
  for (const auto& name : registry.names()) {
    if (registry.info(name).caps.is_heuristic())
      add(name, api::solve(name, api::SolveRequest(graph, machine)).makespan);
  }
  table.print(std::cout, "schedule lengths");

  std::printf("\n%s\n", sched::render_gantt(optimal.schedule).c_str());
  return 0;
}
