// Using optimal schedules to grade heuristics — the paper's second
// motivation: "optimal solutions for a set of benchmark problems can serve
// as a reference to assess the performance of various scheduling
// heuristics".
//
// Generates a batch of random workloads small enough to solve exactly,
// then reports each list heuristic's average and worst-case deviation
// from the true optimum. The heuristics under test are discovered from
// the solver registry (every engine with no capability flags is a
// polynomial heuristic), so a newly registered heuristic shows up here
// automatically.
//
//   $ ./heuristic_showdown [--count N] [--nodes V] [--ccr C]
#include <cstdio>
#include <iostream>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("count", "number of random workloads (default 20)")
      .describe("nodes", "tasks per workload (default 10)")
      .describe("ccr", "communication-to-computation ratio (default 1.0)")
      .describe("procs", "processors (default 3)")
      .describe("budget-ms", "per-instance exact-search budget (default 3000)");
  if (cli.maybe_print_help(
          "Grade list heuristics against optimal schedules"))
    return 0;
  cli.validate();

  const int count = static_cast<int>(cli.get_int("count", 20));
  dag::RandomDagParams params;
  params.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 10));
  params.ccr = cli.get_double("ccr", 1.0);
  const machine::Machine machine = machine::Machine::fully_connected(
      static_cast<std::uint32_t>(cli.get_int("procs", 3)));

  // Registry-driven contestant list: every polynomial list heuristic.
  const auto& registry = api::SolverRegistry::instance();
  struct Entry {
    std::string name;
    util::Accumulator deviation;
    int optimal_hits = 0;
  };
  std::vector<Entry> entries;
  for (const auto& name : registry.names())
    if (registry.info(name).caps.is_heuristic()) entries.push_back({name, {}, 0});

  int solved = 0;
  for (int i = 0; i < count; ++i) {
    params.seed = 1000 + static_cast<std::uint64_t>(i);
    const dag::TaskGraph graph = dag::random_dag(params);

    api::SolveRequest request(graph, machine);
    request.limits.time_budget_ms = cli.get_double("budget-ms", 3000.0);
    const auto exact = api::solve("astar", request);
    if (!exact.proved_optimal) continue;  // skip unsolved instances
    ++solved;

    for (auto& entry : entries) {
      const double makespan =
          api::solve(entry.name, api::SolveRequest(graph, machine)).makespan;
      const double dev =
          100.0 * (makespan - exact.makespan) / exact.makespan;
      entry.deviation.add(dev);
      if (dev < 1e-9) ++entry.optimal_hits;
    }
  }

  std::printf("solved %d/%d instances exactly (v=%u, ccr=%.1f, p=%u)\n\n",
              solved, count, params.num_nodes, params.ccr,
              machine.num_procs());
  util::Table table(
      {"heuristic", "avg dev%", "worst dev%", "optimal hits"});
  for (const auto& e : entries) {
    table.row()
        .cell(e.name)
        .cell(e.deviation.mean(), 2)
        .cell(e.deviation.count() ? e.deviation.max() : 0.0, 2)
        .cell(std::to_string(e.optimal_hits) + "/" + std::to_string(solved));
  }
  table.print(std::cout, "heuristic deviation from optimal");
  return 0;
}
