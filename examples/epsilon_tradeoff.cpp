// The Aε* quality/time trade-off (paper §3.4 and Figure 7).
//
// Sweeps the approximation factor ε over a random workload via the
// unified API (`aeps` engine with an epsilon=... option string) and
// reports, for each ε, the schedule length (and % deviation from optimal)
// and the search effort relative to exact A* — the paper's headline
// observation is that actual deviations stay well below the (1+ε)
// guarantee while the time saved is substantial.
//
//   $ ./epsilon_tradeoff [--nodes N] [--ccr C] [--seed S]
#include <cstdio>
#include <iostream>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("nodes", "graph size (default 11)")
      .describe("ccr", "communication-to-computation ratio (default 1.0)")
      .describe("seed", "workload seed (default 7)")
      .describe("procs", "processors (default 3)");
  if (cli.maybe_print_help("Aepsilon* quality/time trade-off sweep")) return 0;
  cli.validate();

  dag::RandomDagParams params;
  params.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 11));
  params.ccr = cli.get_double("ccr", 1.0);
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const dag::TaskGraph graph = dag::random_dag(params);
  const machine::Machine machine = machine::Machine::fully_connected(
      static_cast<std::uint32_t>(cli.get_int("procs", 3)));
  const api::SolveRequest request(graph, machine);

  util::Timer exact_timer;
  const auto exact = api::solve("astar", request);
  const double exact_time = exact_timer.seconds();
  std::printf("workload: v=%u ccr=%.1f seed=%llu | optimal = %.0f "
              "(%s, %.1fms, %llu expansions)\n\n",
              params.num_nodes, params.ccr,
              static_cast<unsigned long long>(params.seed), exact.makespan,
              exact.proved_optimal ? "proved" : "budget-limited",
              exact_time * 1e3,
              static_cast<unsigned long long>(exact.stats.search.expanded));

  util::Table table({"epsilon", "makespan", "deviation%", "guarantee%",
                     "expansions", "time ratio"});
  for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    api::SolveRequest sweep = request;
    sweep.options["epsilon"] = std::to_string(eps);
    util::Timer t;
    const auto r = api::solve("aeps", sweep);
    const double elapsed = t.seconds();
    table.row()
        .cell(eps, 2)
        .cell(r.makespan, 0)
        .cell(100.0 * (r.makespan - exact.makespan) / exact.makespan, 2)
        .cell(100.0 * eps, 0)
        .cell(static_cast<std::uint64_t>(r.stats.search.expanded))
        .cell(exact_time > 0 ? elapsed / exact_time : 1.0, 3);
  }
  table.print(std::cout, "Aepsilon* sweep (deviation is actual, guarantee is the bound)");
  return 0;
}
