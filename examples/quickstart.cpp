// Quickstart: schedule the paper's Figure 1 example optimally.
//
// Builds the 6-task DAG of Kwok & Ahmad's Figure 1(a), the 3-processor
// ring of Figure 1(b), runs the A* scheduler, and prints the optimal
// schedule (length 14, the paper's Figure 4) as an ASCII Gantt chart.
//
//   $ ./quickstart
#include <cstdio>

#include "core/astar.hpp"
#include "dag/graph.hpp"
#include "dag/io.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace optsched;

  // 1. The task graph: either build programmatically...
  dag::TaskGraph graph = dag::paper_figure1();
  //    ...or parse the same thing from the text format (dag::read_text).

  // 2. The target machine: 3 homogeneous processors in a ring.
  machine::Machine machine = machine::Machine::paper_ring3();

  // 3. Search for an optimal schedule. The default configuration enables
  //    all of the paper's pruning techniques and its heuristic function.
  core::SearchResult result = core::astar_schedule(graph, machine);

  std::printf("optimal schedule length : %.0f time units\n", result.makespan);
  std::printf("proved optimal          : %s\n",
              result.proved_optimal ? "yes" : "no");
  std::printf("states expanded         : %llu\n",
              static_cast<unsigned long long>(result.stats.expanded));
  std::printf("states generated        : %llu\n",
              static_cast<unsigned long long>(result.stats.generated));
  std::printf("\n%s\n", sched::render_gantt(result.schedule).c_str());

  std::printf("per-task placements:\n");
  for (dag::NodeId n = 0; n < graph.num_nodes(); ++n) {
    const auto& pl = result.schedule.placement(n);
    std::printf("  %-3s -> PE%u  [%4.1f, %4.1f)\n", graph.name(n).c_str(),
                pl.proc, pl.start, pl.finish);
  }
  return 0;
}
