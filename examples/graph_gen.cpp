// graph_gen — generate task-graph files for experiments.
//
// Emits the paper's §4.1 random workloads or any structured generator in
// the text format understood by optsched_cli / dag::read_text, plus an
// analysis report of the generated workload.
//
//   $ ./graph_gen --kind random --nodes 20 --ccr 1.0 --seed 7 --out g.tg
//   $ ./graph_gen --kind gauss --dim 5 --out gauss5.tg
//   $ ./graph_gen --kind fft --points 8 --dot g.dot
#include <cstdio>
#include <fstream>
#include <iostream>

#include "dag/analysis.hpp"
#include "dag/generators.hpp"
#include "dag/io.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) try {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("kind",
               "random | gauss | fft | forkjoin | outtree | intree | "
               "layered | diamond | chain | independent (default random)")
      .describe("nodes", "random: node count (default 20)")
      .describe("ccr", "random: communication/computation ratio (default 1)")
      .describe("seed", "random: seed (default 1)")
      .describe("dim", "gauss: matrix dimension (default 5)")
      .describe("points", "fft: point count, power of two (default 8)")
      .describe("width", "forkjoin/layered: width (default 4)")
      .describe("depth", "trees/layered/diamond/chain: depth (default 3)")
      .describe("branch", "trees: branching factor (default 2)")
      .describe("comp", "structured: node cost (default 40)")
      .describe("comm", "structured: edge cost (default 40)")
      .describe("out", "write the graph to this file (default stdout)")
      .describe("dot", "also write Graphviz DOT to this file")
      .describe("stats", "print the workload analysis report (default true)");
  if (cli.maybe_print_help("Generate task-graph workloads")) return 0;
  cli.validate();

  const std::string kind = cli.get("kind", "random");
  const double comp = cli.get_double("comp", 40.0);
  const double comm = cli.get_double("comm", 40.0);
  const auto width = static_cast<std::uint32_t>(cli.get_int("width", 4));
  const auto depth = static_cast<std::uint32_t>(cli.get_int("depth", 3));
  const auto branch = static_cast<std::uint32_t>(cli.get_int("branch", 2));

  const dag::TaskGraph graph = [&]() -> dag::TaskGraph {
    if (kind == "random") {
      dag::RandomDagParams p;
      p.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 20));
      p.ccr = cli.get_double("ccr", 1.0);
      p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
      return dag::random_dag(p);
    }
    if (kind == "gauss")
      return dag::gaussian_elimination(
          static_cast<std::uint32_t>(cli.get_int("dim", 5)), comp, comm);
    if (kind == "fft")
      return dag::fft(static_cast<std::uint32_t>(cli.get_int("points", 8)),
                      comp, comm);
    if (kind == "forkjoin") return dag::fork_join(width, comp, comm);
    if (kind == "outtree") return dag::out_tree(branch, depth, comp, comm);
    if (kind == "intree") return dag::in_tree(branch, depth, comp, comm);
    if (kind == "layered") return dag::layered(depth, width, comp, comm);
    if (kind == "diamond") return dag::diamond(depth, comp, comm);
    if (kind == "chain") return dag::chain(depth, comp, comm);
    if (kind == "independent")
      return dag::independent_tasks(width, comp);
    throw util::Error("unknown --kind '" + kind + "'");
  }();

  const std::string out_path = cli.get("out", "");
  if (out_path.empty()) {
    dag::write_text(graph, std::cout);
  } else {
    dag::write_text_file(graph, out_path);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }

  const std::string dot_path = cli.get("dot", "");
  if (!dot_path.empty()) {
    std::ofstream dot(dot_path);
    OPTSCHED_REQUIRE(dot.good(), "cannot open " + dot_path);
    dag::write_dot(graph, dot);
    std::fprintf(stderr, "wrote %s\n", dot_path.c_str());
  }

  if (cli.get_bool("stats", true))
    std::fprintf(stderr, "%s",
                 dag::format_stats(graph, dag::analyze(graph)).c_str());
  return 0;
} catch (const optsched::util::Error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
