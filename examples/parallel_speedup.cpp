// Parallel A* demonstration (paper §3.3 / Figure 6).
//
// Runs the thread-parallel A* with increasing PPE counts (via the unified
// API's `parallel` engine with a ppes=... option) on one workload and
// reports wall-clock time, total expansions (the parallel search does
// extra work — the paper's "extra states" observation), and the balance of
// work across PPEs.
//
//   $ ./parallel_speedup [--nodes N] [--ccr C] [--seed S] [--max-ppes Q]
#include <cstdio>
#include <iostream>
#include <thread>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace optsched;

  util::Cli cli(argc, argv);
  cli.describe("nodes", "graph size (default 11)")
      .describe("ccr", "communication-to-computation ratio (default 0.1)")
      .describe("seed", "workload seed (default 42)")
      .describe("procs", "target processors (default 3)")
      .describe("max-ppes", "largest PPE count to try (default 8)");
  if (cli.maybe_print_help("Parallel A* speedup demonstration")) return 0;
  cli.validate();

  dag::RandomDagParams params;
  params.num_nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 11));
  params.ccr = cli.get_double("ccr", 0.1);
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const dag::TaskGraph graph = dag::random_dag(params);
  const machine::Machine machine = machine::Machine::fully_connected(
      static_cast<std::uint32_t>(cli.get_int("procs", 3)));
  const api::SolveRequest request(graph, machine);

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  util::Timer serial_timer;
  const auto serial = api::solve("astar", request);
  const double serial_time = serial_timer.seconds();
  std::printf("serial A*: SL=%.0f (%s) in %s, %llu expansions\n\n",
              serial.makespan, serial.proved_optimal ? "optimal" : "budget",
              util::format_seconds(serial_time).c_str(),
              static_cast<unsigned long long>(serial.stats.search.expanded));

  util::Table table({"PPEs", "SL", "time", "speedup", "expansions",
                     "work ratio", "balance", "msgs"});
  const auto max_ppes =
      static_cast<std::uint32_t>(cli.get_int("max-ppes", 8));
  for (std::uint32_t q = 2; q <= max_ppes; q *= 2) {
    api::SolveRequest sweep = request;
    sweep.options["ppes"] = std::to_string(q);
    util::Timer t;
    const auto r = api::solve("parallel", sweep);
    const double elapsed = t.seconds();
    std::uint64_t max_per_ppe = 0, total = 0;
    for (const auto e : r.stats.expanded_per_ppe) {
      max_per_ppe = std::max(max_per_ppe, e);
      total += e;
    }
    const double balance =
        max_per_ppe ? static_cast<double>(total) /
                          (static_cast<double>(q) *
                           static_cast<double>(max_per_ppe))
                    : 1.0;
    table.row()
        .cell(static_cast<int>(q))
        .cell(r.makespan, 0)
        .cell(util::format_seconds(elapsed))
        .cell(serial_time / elapsed, 2)
        .cell(static_cast<std::uint64_t>(total))
        .cell(serial.stats.search.expanded
                  ? static_cast<double>(total) /
                        static_cast<double>(serial.stats.search.expanded)
                  : 0.0,
              2)
        .cell(balance, 2)
        .cell(static_cast<std::uint64_t>(r.stats.messages_sent));
  }
  table.print(std::cout,
              "parallel A* (work ratio = parallel/serial expansions; "
              "balance = 1.0 means perfectly even PPE load)");
  std::printf("\nNote: wall-clock speedup requires as many hardware threads "
              "as PPEs;\non fewer cores the 'work ratio' and 'balance' "
              "columns carry the signal.\n");
  return 0;
}
