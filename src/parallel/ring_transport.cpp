#include "parallel/ring_transport.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "util/flat_set.hpp"

namespace optsched::par {

/// One PPE's endpoint: the PPE-local SEEN set, the shrinking-period
/// bookkeeping, and the communication-round choreography ported from the
/// pre-transport implementation (behaviour-preserving).
class RingLink final : public PpeLink {
 public:
  RingLink(RingTransport& transport, std::uint32_t id)
      : PpeLink(transport.status(id)),
        t_(transport),
        id_(id),
        seen_(1 << 10),
        period_(period_for_round(0)) {}

  bool dedup_insert(const util::Key128& sig) override {
    return seen_.insert(sig);
  }

  void record_signature(const util::Key128& sig) override {
    seen_.insert(sig);
  }

  void after_expand(PpeHost& host) override {
    if (++period_counter_ < period_) return;
    period_counter_ = 0;
    communicate(host);
    ++round_;
    period_ = period_for_round(round_);
  }

  /// Empty frontier: idle/drain dance. Either the mailbox refills OPEN,
  /// or global quiescence flips the shared done flag.
  void on_empty(PpeHost& host) override {
    status().idle.store(true, std::memory_order_release);
    publish(host.frontier_min_f(), host.frontier_size());
    drain_mailbox(host, std::chrono::microseconds(200));
    if (host.frontier_size() > 0) {
      mark_busy();
      return;
    }
    // Sound termination: all PPEs idle and nothing in flight. Re-read the
    // idle flags after the counter — a receiver marks itself busy before
    // acknowledging, so a message consumed between the two reads flips a
    // flag the re-check observes.
    if (t_.all_idle() && !t_.net_.anything_in_flight() && t_.all_idle())
      t_.set_done();
  }

  std::size_t memory_bytes() const override { return seen_.memory_bytes(); }

 private:
  std::uint32_t period_for_round(std::uint32_t round) const {
    const std::uint32_t v = t_.num_nodes_;
    const std::uint32_t shifted = round + 1 >= 31 ? 0u : (v >> (round + 1));
    return std::max(shifted, t_.min_period_);
  }

  void drain_mailbox(PpeHost& host, std::chrono::microseconds wait) {
    auto& box = t_.net_.mailbox(id_);
    bool first = true;
    while (true) {
      std::optional<Message> msg =
          first && wait.count() > 0 ? box.take_for(wait) : box.try_take();
      if (!msg) break;
      first = false;
      // Mark busy *before* acknowledging so the termination detector never
      // sees "all idle, nothing in flight" while a message is half-processed.
      mark_busy();
      host.import_batch(msg->states);
      t_.net_.acknowledge_receipt();
    }
  }

  void send(std::uint32_t to, std::vector<StateMsg> states) {
    t_.states_transferred_.fetch_add(states.size(),
                                     std::memory_order_relaxed);
    t_.messages_sent_.fetch_add(1, std::memory_order_relaxed);
    t_.net_.send(to, {std::move(states), id_});
  }

  void communicate(PpeHost& host) {
    publish(host.frontier_min_f(), host.frontier_size());
    t_.comm_rounds_.fetch_add(1, std::memory_order_relaxed);

    const auto& neighbors = t_.net_.neighbors(id_);
    if (neighbors.empty() || host.frontier_size() == 0) {
      drain_mailbox(host, std::chrono::microseconds(0));
      return;
    }

    // Neighbourhood election (paper: "vote and elect the best cost state,
    // which is then expanded by all the participating PPEs; the resulting
    // new states then go to each neighbouring PPE in a RR fashion"). The
    // owner of the locally best state expands it and scatters the children
    // round-robin over the neighbourhood, which realizes the same data
    // flow without duplicating the expansion on every participant.
    const double my_fmin = host.frontier_min_f();
    bool i_am_best = true;
    for (const auto nb : neighbors)
      if (t_.status(nb).min_f.load(std::memory_order_acquire) <
          my_fmin - 1e-12)
        i_am_best = false;

    if (i_am_best && !host.dominated()) {
      const auto children = host.expand_collect(host.pop_best());
      // Scatter children: self first, then neighbours round-robin.
      std::uint32_t cursor = 0;
      std::vector<std::vector<StateMsg>> outbound(neighbors.size());
      for (const core::StateIndex idx : children) {
        if (cursor == 0) {
          host.push_index(idx);
        } else {
          outbound[cursor - 1].push_back(host.serialize(idx));
        }
        cursor =
            (cursor + 1) % (static_cast<std::uint32_t>(neighbors.size()) + 1);
      }
      for (std::size_t k = 0; k < neighbors.size(); ++k)
        if (!outbound[k].empty()) send(neighbors[k], std::move(outbound[k]));
    }

    // Round-robin load sharing toward the neighbourhood average (§3.3).
    std::uint64_t total = host.frontier_size();
    std::vector<std::uint64_t> nb_sizes(neighbors.size());
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      nb_sizes[k] =
          t_.status(neighbors[k]).open_size.load(std::memory_order_acquire);
      total += nb_sizes[k];
    }
    const std::uint64_t average = total / (neighbors.size() + 1);
    if (host.frontier_size() > average + 1) {
      const std::size_t surplus = host.frontier_size() - average;
      std::vector<std::uint32_t> deficit;
      for (std::size_t k = 0; k < neighbors.size(); ++k)
        if (nb_sizes[k] < average) deficit.push_back(neighbors[k]);
      if (!deficit.empty()) {
        const auto extracted =
            host.extract_surplus(std::min<std::size_t>(surplus, 256));
        std::vector<std::vector<StateMsg>> outbound(deficit.size());
        for (const core::StateIndex idx : extracted) {
          outbound[rr_cursor_ % deficit.size()].push_back(host.serialize(idx));
          ++rr_cursor_;
        }
        for (std::size_t k = 0; k < deficit.size(); ++k)
          if (!outbound[k].empty()) send(deficit[k], std::move(outbound[k]));
      }
    }

    drain_mailbox(host, std::chrono::microseconds(0));
    publish(host.frontier_min_f(), host.frontier_size());
  }

  RingTransport& t_;
  std::uint32_t id_;
  util::FlatSet128 seen_;  ///< PPE-local duplicate detection (the paper's)
  std::uint32_t round_ = 0;
  std::uint64_t period_counter_ = 0;
  std::uint64_t period_;
  std::uint32_t rr_cursor_ = 0;  ///< round-robin pointer for load sharing
};

RingTransport::RingTransport(std::uint32_t num_ppes,
                             MailboxNetwork::Topology topology,
                             std::uint32_t min_period,
                             std::uint32_t num_nodes,
                             std::atomic<bool>& done)
    : Transport(num_ppes, done),
      net_(num_ppes, topology),
      min_period_(min_period),
      num_nodes_(num_nodes) {}

std::unique_ptr<PpeLink> RingTransport::connect(std::uint32_t ppe) {
  return std::make_unique<RingLink>(*this, ppe);
}

void RingTransport::collect(ParallelStats& out) const {
  out.mode = TransportMode::kRing;
  out.messages_sent = messages_sent_.load();
  out.states_transferred = states_transferred_.load();
  out.comm_rounds = comm_rounds_.load();
}

}  // namespace optsched::par
