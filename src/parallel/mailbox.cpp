#include "parallel/mailbox.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace optsched::par {

MailboxNetwork::MailboxNetwork(std::uint32_t num_ppes, Topology topology)
    : num_ppes_(num_ppes),
      mailboxes_(num_ppes),
      neighbors_(num_ppes) {
  OPTSCHED_REQUIRE(num_ppes >= 1, "need at least one PPE");
  if (num_ppes == 1) return;

  switch (topology) {
    case Topology::kRing:
      for (std::uint32_t i = 0; i < num_ppes_; ++i) {
        neighbors_[i].push_back((i + 1) % num_ppes_);
        if (num_ppes_ > 2)
          neighbors_[i].push_back((i + num_ppes_ - 1) % num_ppes_);
      }
      break;
    case Topology::kMesh: {
      // Near-square mesh, row-major (the Paragon's layout).
      auto cols = static_cast<std::uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(num_ppes_))));
      const std::uint32_t rows = (num_ppes_ + cols - 1) / cols;
      auto id = [cols](std::uint32_t r, std::uint32_t c) {
        return r * cols + c;
      };
      for (std::uint32_t r = 0; r < rows; ++r)
        for (std::uint32_t c = 0; c < cols; ++c) {
          const std::uint32_t i = id(r, c);
          if (i >= num_ppes_) continue;
          if (c + 1 < cols && id(r, c + 1) < num_ppes_) {
            neighbors_[i].push_back(id(r, c + 1));
            neighbors_[id(r, c + 1)].push_back(i);
          }
          if (r + 1 < rows && id(r + 1, c) < num_ppes_) {
            neighbors_[i].push_back(id(r + 1, c));
            neighbors_[id(r + 1, c)].push_back(i);
          }
        }
      break;
    }
    case Topology::kFullyConnected:
      for (std::uint32_t i = 0; i < num_ppes_; ++i)
        for (std::uint32_t j = 0; j < num_ppes_; ++j)
          if (i != j) neighbors_[i].push_back(j);
      break;
  }
}

}  // namespace optsched::par
