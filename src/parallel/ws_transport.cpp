#include "parallel/ws_transport.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace optsched::par {

namespace {

/// Approximate heap footprint of a deque's contents.
std::size_t deque_bytes(const std::vector<Donation>& items) {
  std::size_t n = items.capacity() * sizeof(Donation);
  for (const auto& d : items)
    n += d.msg.assignments.capacity() * sizeof(d.msg.assignments[0]);
  return n;
}

}  // namespace

class WsLink final : public PpeLink {
 public:
  WsLink(WsTransport& transport, std::uint32_t id)
      : PpeLink(transport.status(id)), t_(transport), id_(id) {}

  bool dedup_insert(const util::Key128& sig) override {
    if (t_.table_.insert(sig)) return true;
    t_.shard_hits_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void record_signature(const util::Key128& sig) override {
    t_.table_.insert(sig);  // cross-PPE repeats are no-ops by design
  }

  void after_expand(PpeHost& host) override {
    // Nothing in ws mode reads the published status on the hot path
    // (stealing watches deque sizes, quiescence watches idle flags; min_f
    // only feeds the throttled progress lower bound), so refresh it
    // sparsely instead of paying shared-cache-line stores per expansion.
    if ((++publish_counter_ & 31u) == 0)
      publish(host.frontier_min_f(), host.frontier_size());
    maybe_donate(host);
  }

  void on_empty(PpeHost& host) override {
    publish(host.frontier_min_f(), host.frontier_size());

    // 1) Reclaim the own deque — by arena index, no replay needed.
    auto& own = t_.deques_[id_];
    if (own.size.load(std::memory_order_acquire) != 0) {
      mark_busy();  // before removal: keeps quiescence detection sound
      std::vector<core::StateIndex> indices;
      {
        const std::lock_guard<std::mutex> lock(own.mu);
        indices.reserve(own.items.size());
        for (const Donation& d : own.items) indices.push_back(d.local_index);
        own.items.clear();
        own.size.store(0, std::memory_order_release);
        own.bytes.store(deque_bytes(own.items), std::memory_order_relaxed);
      }
      if (!indices.empty()) {
        host.push_batch(indices);
        return;
      }
    }

    // 2) Steal sweep: victims round-robin from id+1, best-f suffix of the
    //    first nonempty deque, one batch.
    t_.steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t q = t_.num_ppes();
    for (std::uint32_t k = 1; k < q; ++k) {
      auto& victim = t_.deques_[(id_ + k) % q];
      if (victim.size.load(std::memory_order_acquire) == 0) continue;
      mark_busy();  // before removal, as above
      std::vector<StateMsg> batch;
      {
        const std::lock_guard<std::mutex> lock(victim.mu);
        const std::size_t take =
            std::min<std::size_t>(t_.steal_batch_, victim.items.size());
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(victim.items.back().msg));
          victim.items.pop_back();
        }
        victim.size.store(victim.items.size(), std::memory_order_release);
        victim.bytes.store(deque_bytes(victim.items),
                           std::memory_order_relaxed);
      }
      if (batch.empty()) continue;
      t_.steals_.fetch_add(1, std::memory_order_relaxed);
      t_.states_stolen_.fetch_add(batch.size(), std::memory_order_relaxed);
      host.import_batch(batch);
      return;
    }

    // 3) Nothing anywhere: advertise idle and test global quiescence.
    //    Re-read the idle flags after the deque sizes — a thief marks
    //    itself busy before removing a batch, so a steal racing the check
    //    flips a flag the re-check observes.
    status().idle.store(true, std::memory_order_release);
    if (t_.all_idle() && t_.all_deques_empty() && t_.all_idle()) {
      t_.set_done();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  std::size_t memory_bytes() const override {
    // This PPE's share of the shared table plus its own deque.
    return t_.table_.memory_bytes() / t_.num_ppes() +
           t_.deques_[id_].bytes.load(std::memory_order_relaxed);
  }

 private:
  /// Top the own deque up when thieves have drained it below one batch
  /// and the private frontier can spare a batch without starving.
  void maybe_donate(PpeHost& host) {
    if (t_.num_ppes() == 1) return;
    auto& own = t_.deques_[id_];
    if (own.size.load(std::memory_order_acquire) >= t_.steal_batch_) return;
    if (host.frontier_size() < 4 * static_cast<std::size_t>(t_.steal_batch_))
      return;

    const auto best = host.extract_best(t_.steal_batch_);
    if (best.empty()) return;
    std::vector<Donation> adds;
    adds.reserve(best.size());
    for (const core::StateIndex idx : best) {
      StateMsg msg = host.serialize(idx);
      const double f = msg.f;
      adds.push_back({std::move(msg), f, idx});
    }
    {
      const std::lock_guard<std::mutex> lock(own.mu);
      for (auto& d : adds) own.items.push_back(std::move(d));
      std::stable_sort(own.items.begin(), own.items.end(),
                       [](const Donation& a, const Donation& b) {
                         return a.f > b.f;  // best-f block is the suffix
                       });
      own.size.store(own.items.size(), std::memory_order_release);
      own.bytes.store(deque_bytes(own.items), std::memory_order_relaxed);
    }
    t_.donations_.fetch_add(1, std::memory_order_relaxed);
  }

  WsTransport& t_;
  std::uint32_t id_;
  std::uint32_t publish_counter_ = 0;
};

WsTransport::WsTransport(std::uint32_t num_ppes, std::uint32_t steal_batch,
                         std::uint32_t shards, std::atomic<bool>& done)
    : Transport(num_ppes, done),
      // Auto-sizing honours the same ceiling the API enforces for
      // explicit requests: the table allocates eagerly, before any
      // memory budget is polled.
      table_(shards ? shards : std::min(4 * num_ppes, 4096u)),
      deques_(num_ppes),
      steal_batch_(steal_batch) {
  OPTSCHED_REQUIRE(steal_batch >= 1, "steal batch must be >= 1");
}

std::unique_ptr<PpeLink> WsTransport::connect(std::uint32_t ppe) {
  return std::make_unique<WsLink>(*this, ppe);
}

void WsTransport::collect(ParallelStats& out) const {
  out.mode = TransportMode::kWorkStealing;
  out.states_transferred = states_stolen_.load();
  out.steal_attempts = steal_attempts_.load();
  out.steals = steals_.load();
  out.donations = donations_.load();
  out.shards = table_.num_shards();
  out.shard_hits = shard_hits_.load();
}

}  // namespace optsched::par
