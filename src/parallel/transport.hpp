// Pluggable parallel-search transports.
//
// PR 3 left the parallel layer as one hard-coded scheme: the paper's ring
// mailboxes with periodic neighbour rebalancing and PPE-local duplicate
// detection. This header splits that scheme into an architecture so the
// same per-PPE search worker (parallel_astar.cpp) can run over different
// distribution strategies:
//
//   Transport          the per-run substrate shared by all PPEs — owns the
//                      communication structures, the published per-PPE
//                      status used for quiescence detection and progress
//                      lower bounds, and the mode-specific counters.
//   PpeLink            one PPE's endpoint into the transport, called only
//                      from that PPE's thread. Supplies the pluggable
//                      duplicate-detection probe for freshly generated
//                      states and the two scheduling hooks
//                      (after_expand / on_empty) the search worker
//                      delegates to.
//   PpeHost            the narrow view of a PPE a transport manipulates:
//                      frontier inspection, batched push, serialization of
//                      states into self-contained messages, and import of
//                      received batches into the local arena.
//   PartitionStrategy  deterministic ownership of the seed frontier (the
//                      paper's interleaved hand-out, or signature-hash
//                      ownership for the work-stealing mode).
//
// Two transports exist: the paper's ring-mailbox scheme
// (ring_transport.hpp) and a work-stealing frontier with a hash-sharded
// transposition table (ws_transport.hpp). See those headers for the
// scheme-specific discussion, and DESIGN.md §4 for the architecture
// rationale.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "util/flat_set.hpp"

namespace optsched::core {
class SearchProblem;
}

namespace optsched::par {

struct ParallelConfig;  // parallel_astar.hpp

/// Which distribution strategy the parallel engine runs.
enum class TransportMode : std::uint8_t {
  kRing,          ///< paper §3.3: static partition + periodic rebalancing
  kWorkStealing,  ///< per-PPE deques + hash-sharded duplicate detection
  /// HDA* over worker *processes*: signature-hash ownership, serialized
  /// state batches over AF_UNIX sockets, coordinator-side termination
  /// detection (parallel/dist_transport.hpp). Does not run on the
  /// in-process Transport/PpeLink substrate below — the dispatch in
  /// parallel_astar_schedule routes it to the distributed harness.
  kDistributed,
};

const char* to_string(TransportMode mode);

/// A transferred search state: the assignment sequence from the root.
/// The receiver replays it to rebuild times, signature and cost — the
/// same few dozen bytes the Paragon implementation shipped. Messages are
/// self-contained so no transport ever reads another PPE's arena (arenas
/// grow concurrently; cross-thread reads would race with reallocation).
struct StateMsg {
  std::vector<std::pair<dag::NodeId, machine::ProcId>> assignments;
  double f = 0.0;  ///< sender's f value (receiver recomputes and asserts)
};

/// Transport-level counters for one run, reported through SolveStats to
/// the CLI and suite reports. Ring runs leave the steal/shard counters 0
/// and vice versa.
struct ParallelStats {
  TransportMode mode = TransportMode::kRing;
  // Ring-mailbox scheme.
  std::uint64_t messages_sent = 0;
  std::uint64_t states_transferred = 0;  ///< shipped over mailboxes or stolen
  std::uint64_t comm_rounds = 0;
  // Work-stealing scheme.
  std::uint64_t steal_attempts = 0;  ///< sweeps that looked for a victim
  std::uint64_t steals = 0;          ///< batches actually taken
  std::uint64_t donations = 0;       ///< publishes into the owner's deque
  // Hash-sharded duplicate detection.
  std::uint32_t shards = 0;      ///< shard count of the global table
  /// Duplicate generations filtered by the shared table. Counts *every*
  /// duplicate (the ws mode has no separate local set), so it upper-
  /// bounds the cross-PPE share — the part the ring's local SEEN misses.
  std::uint64_t shard_hits = 0;
  /// Per-PPE expansion counts. Thread-timing dependent; consumers emit it
  /// sorted or aggregated (min/max/total) so reports diff deterministically
  /// modulo load balance, not PPE numbering.
  std::vector<std::uint64_t> expanded_per_ppe;
  /// PPE counts: what the caller asked for vs. what actually ran after the
  /// initial-frontier feedability clamp (ws mode on tiny instances).
  std::uint32_t requested_ppes = 0;
  std::uint32_t effective_ppes = 0;
  /// Worker threads successfully pinned to a CPU (parallel/placement.hpp);
  /// 0 when pin=none or the platform has no affinity support.
  std::uint32_t pins_applied = 0;
  // Distributed (multi-process) scheme — 0 for the in-process modes.
  std::uint64_t states_serialized = 0;   ///< states encoded into wire batches
  std::uint64_t batches_sent = 0;        ///< batch frames shipped worker->worker
  std::uint64_t termination_rounds = 0;  ///< quiescence-condition evaluations
  /// Remote-owned children suppressed by the send-side duplicate filter
  /// (wire.hpp SendFilter) before serialization.
  std::uint64_t states_deduped_at_send = 0;
  /// Gathered socket writes on the worker side; states_serialized /
  /// batches_sent is the mean batch size, batches_sent / flushes the
  /// mean frames-per-syscall.
  std::uint64_t flushes = 0;
  /// Bytes written to dist sockets across all processes (workers + the
  /// coordinator's relay writers).
  std::uint64_t bytes_sent = 0;
};

/// Published per-PPE status: the quiescence-detection flags plus the
/// frontier summary other PPEs read (ring election, progress lower
/// bounds). One cache line per PPE.
struct alignas(64) PpeStatus {
  std::atomic<double> min_f{std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> open_size{0};
  std::atomic<bool> idle{false};
};

/// The narrow view of one PPE's search state a transport manipulates.
/// Implemented by the search worker (parallel_astar.cpp); every method is
/// called from that PPE's own thread.
class PpeHost {
 public:
  virtual ~PpeHost() = default;

  virtual std::uint32_t id() const = 0;
  virtual std::size_t frontier_size() const = 0;
  virtual double frontier_min_f() const = 0;  ///< +inf when empty
  /// Can this PPE's frontier still improve on the shared incumbent?
  virtual bool dominated() const = 0;

  virtual core::StateIndex pop_best() = 0;  ///< precondition: nonempty
  virtual void push_index(core::StateIndex idx) = 0;
  /// Batched push of local arena indices (OpenList::push_batch underneath).
  virtual void push_batch(const std::vector<core::StateIndex>& indices) = 0;
  /// Remove up to n entries biased away from the best (ring load sharing).
  virtual std::vector<core::StateIndex> extract_surplus(std::size_t n) = 0;
  /// Remove the n best-f entries (work-stealing donations).
  virtual std::vector<core::StateIndex> extract_best(std::size_t n) = 0;

  /// Self-contained message for a local state (assignment-sequence walk).
  virtual StateMsg serialize(core::StateIndex idx) const = 0;
  /// Replay received states into the local arena and batch-push them onto
  /// the frontier; complete schedules are offered to the shared incumbent.
  virtual void import_batch(const std::vector<StateMsg>& msgs) = 0;
  /// Expand a state immediately (ring's neighbourhood election), returning
  /// the surviving non-goal children's arena indices; goals are offered to
  /// the shared incumbent internally. Counts as a normal expansion.
  virtual std::vector<core::StateIndex> expand_collect(
      core::StateIndex idx) = 0;
};

/// One PPE's endpoint into the transport. Constructed by
/// Transport::connect before the worker threads start; all methods are
/// called from the owning PPE's thread only.
class PpeLink {
 public:
  explicit PpeLink(PpeStatus& status) : status_(&status) {}
  virtual ~PpeLink() = default;

  /// Duplicate-detection probe/insert for one freshly generated state:
  /// true when the signature is new. Ring: the PPE-local SEEN set (the
  /// paper's scheme — cross-PPE duplicates pass). Work stealing: the
  /// global hash-sharded table (cross-PPE duplicates are filtered).
  virtual bool dedup_insert(const util::Key128& sig) = 0;

  /// Called once from the owning PPE's thread before any search work, so
  /// links can first-touch their thread-local structures from the right
  /// CPU after pinning. Default: nothing to warm.
  virtual void on_thread_start() {}

  /// Record a signature without using the probe result: the deterministic
  /// seed expansion runs identically on every PPE against a throwaway
  /// local set, and imported states were already accounted by their
  /// sender. Ring inserts into the local SEEN; work stealing inserts into
  /// the shard table, where cross-PPE repeats are no-ops.
  virtual void record_signature(const util::Key128& sig) = 0;

  /// Post-expansion hook: ring runs its periodic communication rounds,
  /// work stealing tops up the owner's donation deque.
  virtual void after_expand(PpeHost& host) = 0;

  /// Empty-frontier hook: refill from the transport (mailbox drain, deque
  /// reclaim, steal sweep) or detect global quiescence and set the shared
  /// done flag. The kernel policy always retries the loop after this.
  virtual void on_empty(PpeHost& host) = 0;

  /// Transport memory attributed to this PPE (its share of shared
  /// structures), for the per-PPE memory-cap accounting.
  virtual std::size_t memory_bytes() const = 0;

  void mark_busy() { status_->idle.store(false, std::memory_order_release); }
  void mark_idle() { status_->idle.store(true, std::memory_order_release); }
  void publish(double min_f, std::size_t open_size) {
    status_->min_f.store(min_f, std::memory_order_release);
    status_->open_size.store(open_size, std::memory_order_release);
  }

 protected:
  PpeStatus& status() { return *status_; }

 private:
  PpeStatus* status_;
};

/// Deterministic ownership of the rank-ordered seed frontier. Every PPE
/// computes the identical seed expansion, so ownership must be a pure
/// function of (rank, signature) — no startup communication.
class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;
  virtual std::uint32_t owner_of(std::size_t rank, const util::Key128& sig,
                                 std::uint32_t num_ppes) const = 0;
};

/// The paper's §3.3 interleaved hand-out: 1st -> PPE 0, 2nd -> PPE q-1,
/// 3rd -> PPE 1, ...; extras round-robin.
class InterleavePartition final : public PartitionStrategy {
 public:
  std::uint32_t owner_of(std::size_t rank, const util::Key128&,
                         std::uint32_t q) const override {
    if (rank < q) {
      return (rank % 2 == 0) ? static_cast<std::uint32_t>(rank / 2)
                             : q - 1 - static_cast<std::uint32_t>(rank / 2);
    }
    return static_cast<std::uint32_t>(rank - q) % q;
  }
};

/// HDA*-style signature-hash ownership for the work-stealing mode: the
/// same mix that routes a state to its dedup shard routes seed states to
/// their starting PPE, so the initial partition is already hash-uniform.
class HashPartition final : public PartitionStrategy {
 public:
  std::uint32_t owner_of(std::size_t, const util::Key128& sig,
                         std::uint32_t q) const override {
    return static_cast<std::uint32_t>(
        util::splitmix64(sig.hi ^ (sig.lo * 0x9e3779b97f4a7c15ULL)) % q);
  }
};

/// The per-run substrate shared by all PPEs.
class Transport {
 public:
  Transport(std::uint32_t num_ppes, std::atomic<bool>& done)
      : num_ppes_(num_ppes),
        done_(&done),
        status_(std::make_unique<PpeStatus[]>(num_ppes)) {}
  virtual ~Transport() = default;

  virtual TransportMode mode() const = 0;
  virtual std::unique_ptr<PpeLink> connect(std::uint32_t ppe) = 0;
  virtual const PartitionStrategy& partition() const = 0;
  /// Fill in the mode-specific counters (expanded_per_ppe is the
  /// caller's: it comes from the workers, not the transport).
  virtual void collect(ParallelStats& out) const = 0;

  std::uint32_t num_ppes() const noexcept { return num_ppes_; }

  /// Min published frontier f across PPEs (progress lower bound).
  double global_lower_bound() const {
    double lb = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < num_ppes_; ++i)
      lb = std::min(lb, status_[i].min_f.load(std::memory_order_acquire));
    return lb;
  }

 protected:
  PpeStatus& status(std::uint32_t ppe) { return status_[ppe]; }

  bool all_idle() const {
    for (std::uint32_t i = 0; i < num_ppes_; ++i)
      if (!status_[i].idle.load(std::memory_order_acquire)) return false;
    return true;
  }

  void set_done() { done_->store(true, std::memory_order_release); }

 private:
  std::uint32_t num_ppes_;
  std::atomic<bool>* done_;
  std::unique_ptr<PpeStatus[]> status_;
};

/// Build the transport for config.mode. `problem` supplies instance
/// parameters (the ring's communication-period schedule derives from the
/// node count, the shard table sizes off it).
std::unique_ptr<Transport> make_transport(const ParallelConfig& config,
                                          const core::SearchProblem& problem,
                                          std::atomic<bool>& done);

}  // namespace optsched::par
