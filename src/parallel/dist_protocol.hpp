// Wire protocol of the distributed (multi-process) HDA* transport.
//
// The coordinator and its worker processes speak one JSON object per
// line over AF_UNIX socketpairs — the same newline framing and strict
// util::Json value model as the serving layer (server/protocol.hpp),
// reused here so a malformed or truncated frame is a typed util::Error,
// never UB. Every frame carries a type tag "t"; the handshake frames
// ("hello", "init") also carry a version tag "v" so a coordinator and a
// worker built from different binaries fail fast instead of
// misinterpreting each other.
//
// Frame vocabulary (kWireVersion = 2):
//
//   worker -> coordinator
//     hello   {t, v, rank}                     handshake
//     batch   {t, to, states:[{a:[[n,p]..], f}..]}  states owned by `to`
//     goal    {t, len, a:[[n,p]..]}            complete schedule found
//     status  {t, idle, rcvd, exp, open, minf} liveness + Mattern counters
//     limit   {t, reason}                      worker-side cap tripped
//     err     {t, msg}                         typed failure before exit
//     bye     {t, <full counter set>}          final stats, then _exit(0)
//
//   coordinator -> worker
//     init    {t, v, wire, graph, machine, comm, cfg, procs, rank,
//              seed_bound, mem_bytes, batch, flush_us}
//     batch   {t, states:[..]}                 relay of another worker's batch
//     bound   {t, len}                         incumbent broadcast
//     stop    {t, reason}                      terminate (0 = quiescent)
//
// Version 2 keeps this vocabulary and the JSON encoding of every rare
// frame, but moves the hot frames (batch/status/bound) to the binary
// framing in parallel/wire.hpp when the negotiated `wire` field of the
// init frame says 2 (the `wire=v1|v2` engine option; the handshake
// itself is always JSON, so a peer from a different binary still fails
// fast on the version tag). The JSON batch shapes above remain the v1
// codec, kept as the differential baseline.
//
// A state travels as its assignment sequence from the root — the same
// self-contained representation the in-process transports ship
// (par::StateMsg) — plus the sender's f value, which the receiver
// recomputes and asserts, so a disagreement between the processes'
// heuristic evaluations surfaces immediately instead of corrupting the
// search.
//
// DistTermination is the coordinator's Mattern-style quiescence
// detector, factored out as a pure event-driven class so the
// delayed/reordered-delivery unit tests can drive it without sockets:
// the coordinator counts batch frames *enqueued* for each worker
// (before any socket write), workers report batch frames *processed*
// in every status, and the search is quiescent exactly when every
// worker's latest status says idle AND processed == enqueued for every
// worker. A worker only becomes busy again by receiving a frame, and
// that frame's enqueue bumped the sent counter before the check could
// run — so the condition is stable once true.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "parallel/transport.hpp"
#include "util/jsonl.hpp"

namespace optsched::par {

inline constexpr int kWireVersion = 2;

// ---- instance + config serialization (init frame payloads) ---------------

/// weights + [src, dst, cost] edge triples; names are not shipped (the
/// schedule is reconstructed against the coordinator's original graph).
util::Json graph_to_json(const dag::TaskGraph& graph);
dag::TaskGraph graph_from_json(const util::Json& j);

/// adjacency lists + speeds + topology name (Machine's public generic
/// constructor rebuilds hop distances itself).
util::Json machine_to_json(const machine::Machine& machine);
machine::Machine machine_from_json(const util::Json& j);

/// The search-shaping subset of SearchConfig: prune flags, h, queue,
/// h_weight, epsilon. Limits and controls stay coordinator-side.
util::Json search_config_to_json(const core::SearchConfig& config);
core::SearchConfig search_config_from_json(const util::Json& j);

// ---- state batches -------------------------------------------------------

/// [[node, proc], ...] — the shared payload of batch states and goal
/// frames.
util::Json assignments_to_json(
    const std::vector<std::pair<dag::NodeId, machine::ProcId>>& seq);
std::vector<std::pair<dag::NodeId, machine::ProcId>> assignments_from_json(
    const util::Json& j);

util::Json state_msg_to_json(const StateMsg& msg);
StateMsg state_msg_from_json(const util::Json& j);

// ---- termination detection -----------------------------------------------

/// Coordinator-side Mattern/Safra-style quiescence detector over a star
/// topology (every batch is relayed through the coordinator, so one
/// process observes every send and can count consistently).
class DistTermination {
 public:
  explicit DistTermination(std::uint32_t workers)
      : sent_(workers, 0), received_(workers, 0), idle_(workers, false) {}

  /// A batch frame was enqueued for worker `to`. MUST be called before
  /// the frame can possibly reach the worker (i.e. before the socket
  /// write is queued) — that ordering is the whole soundness argument.
  void on_enqueue(std::uint32_t to) {
    ++sent_[to];
    dirty_ = true;
  }

  /// Worker `from` reported a status: idle flag plus the total number of
  /// batch frames it has processed. Statuses arrive FIFO per worker
  /// (one stream socket each), so `received` is monotone per worker; a
  /// worker's statuses may interleave arbitrarily with other workers'.
  /// Returns true when the status changed the detector's state — the
  /// only case in which quiescent() can change its answer.
  bool on_status(std::uint32_t from, bool idle, std::uint64_t received) {
    const bool changed =
        idle_[from] != idle || received_[from] != received;
    idle_[from] = idle;
    received_[from] = received;
    if (changed) dirty_ = true;
    return changed;
  }

  /// Evaluate the quiescence condition: every worker's latest status is
  /// idle and has acknowledged every batch ever enqueued for it.
  ///
  /// The full scan only runs — and the rounds counter only ticks — when
  /// an event since the last evaluation could have changed the answer;
  /// callers that spin this in a poll loop get the cached verdict for
  /// free, so rounds() is O(state-changing status frames), not O(poll
  /// iterations). That cache is sound because the condition is a pure
  /// function of (sent_, received_, idle_), all of which set dirty_.
  bool quiescent() {
    if (!dirty_) return cached_;
    dirty_ = false;
    ++rounds_;
    cached_ = evaluate();
    return cached_;
  }

  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t sent_to(std::uint32_t k) const { return sent_[k]; }

 private:
  bool evaluate() const {
    for (std::size_t k = 0; k < sent_.size(); ++k)
      if (!idle_[k] || received_[k] != sent_[k]) return false;
    return true;
  }

  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> received_;
  std::vector<bool> idle_;
  std::uint64_t rounds_ = 0;
  bool dirty_ = true;  ///< evaluate once even before any event
  bool cached_ = false;
};

}  // namespace optsched::par
