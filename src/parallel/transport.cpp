#include "parallel/transport.hpp"

#include "core/problem.hpp"
#include "parallel/parallel_astar.hpp"
#include "parallel/ring_transport.hpp"
#include "parallel/ws_transport.hpp"

namespace optsched::par {

const char* to_string(TransportMode mode) {
  switch (mode) {
    case TransportMode::kRing: return "ring";
    case TransportMode::kWorkStealing: return "ws";
    case TransportMode::kDistributed: return "dist";
  }
  return "?";
}

std::unique_ptr<Transport> make_transport(const ParallelConfig& config,
                                          const core::SearchProblem& problem,
                                          std::atomic<bool>& done) {
  OPTSCHED_ASSERT(config.mode != TransportMode::kDistributed);
  if (config.mode == TransportMode::kWorkStealing)
    return std::make_unique<WsTransport>(config.num_ppes, config.steal_batch,
                                         config.shards, done);
  return std::make_unique<RingTransport>(
      config.num_ppes, config.topology, config.min_period,
      static_cast<std::uint32_t>(problem.num_nodes()), done);
}

}  // namespace optsched::par
