// CPU placement for PPE worker threads.
//
// PPEs own their arena, OPEN list, and transport endpoint; when the OS
// migrates a worker across cores those structures' cache/NUMA locality is
// lost. A pin policy fixes each PPE to one CPU from the process's allowed
// set (so taskset/cgroup restrictions are respected):
//
//   none     leave scheduling to the OS (default)
//   compact  PPE i -> allowed_cpu[i % n]: fill cores densely, neighbours
//            share caches — best for the ring's neighbour traffic
//   spread   PPE i -> allowed_cpu[(i * stride) % n] with stride ~ n/ppes:
//            space PPEs out across the allowed set — best when each PPE is
//            bandwidth-bound on its own arena
//
// Pinning pairs with first-touch initialization in Ppe::run(): the arena
// and frontier reserve their pages from the worker's own thread *after*
// the pin, so on NUMA machines the pages land on the pinned CPU's node.
// Linux-only (sched_setaffinity); on other platforms pinning reports
// failure and the run proceeds unpinned.
#pragma once

#include <cstdint>

namespace optsched::par {

enum class PinPolicy : std::uint8_t { kNone, kCompact, kSpread };

const char* to_string(PinPolicy p);

/// Pin the calling thread per `policy`. Returns true when an affinity mask
/// was actually applied (always false for kNone and on non-Linux hosts).
bool pin_current_thread(PinPolicy policy, std::uint32_t ppe_id,
                        std::uint32_t num_ppes);

}  // namespace optsched::par
