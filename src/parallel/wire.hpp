// Binary wire format (v2) for the distributed HDA* transport.
//
// BENCH_pr9 showed mode=dist is serialization-bound: every shipped state
// crossed the wire as newline-JSON, parsed and re-dumped at the
// coordinator, in ~3-state frames. Wire v2 keeps JSON for the rare,
// debuggable frames (hello/init/goal/limit/err/bye/stop) and moves the
// hot frames (batch/status/bound) to a compact binary framing that can
// coexist with JSON lines on the same stream (DESIGN.md §11):
//
//   binary frame  := 0xB2  type:u8  payload_len:varint  payload
//   JSON frame    := one JSON object + '\n'   (first byte '{', never 0xB2)
//
// so the first byte of every frame selects the framing. Varints are
// LEB128 (7 bits per byte, little-endian groups); doubles travel as
// their IEEE-754 bit pattern in little-endian byte order.
//
// Batch payload — the layout is chosen so the coordinator can relay a
// batch without decoding the states (it reads `to` and forwards the
// frame bytes verbatim; the count is available for accounting):
//
//   batch  := to:varint  count:varint  state*
//   state  := prefix:varint  suffix_len:varint  (node:varint proc:varint)*
//             f:f64le
//
// Each state's assignment sequence is delta-encoded against the previous
// state in the batch: `prefix` is the length of the shared leading run,
// the suffix is the divergent tail. Sibling exports dominate outboxes
// and share all but their last assignment, so a typical state costs a
// few bytes instead of a few hundred JSON characters.
//
//   status := flags:u8  rcvd:varint  exp:varint  open:varint  [minf:f64le]
//             (flags bit0 = idle, bit1 = minf present)
//   bound  := len:f64le
//
// Decoding is strict and bounds-checked: a truncated or corrupted frame
// is a typed util::Error, never UB — the same contract as the JSON
// protocol layer, and the fuzz tests in tests/parallel/test_wire.cpp
// hold it to that.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/transport.hpp"
#include "util/flat_set.hpp"

namespace optsched::util {
class UnixStream;
}

namespace optsched::par::wire {

inline constexpr unsigned char kMagic = 0xB2;  ///< never starts a JSON line

enum class FrameType : std::uint8_t {
  kJson = 0,    ///< not a binary frame: Frame.raw holds one JSON line
  kBatch = 1,   ///< state batch (worker->coord->worker, relayed verbatim)
  kStatus = 2,  ///< worker liveness + Mattern counters
  kBound = 3,   ///< incumbent broadcast (coordinator->worker)
};

/// One frame as read off a stream: either a JSON line (type == kJson,
/// raw = the line without its newline) or a binary frame (raw = the
/// complete frame bytes including header, payload() = the payload view).
/// Binary frames relay by writing `raw` unchanged.
struct Frame {
  FrameType type = FrameType::kJson;
  std::string raw;
  std::size_t payload_off = 0;
  std::string_view payload() const {
    return std::string_view(raw).substr(payload_off);
  }
};

// ---- primitives ----------------------------------------------------------

void put_varint(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);

/// Bounds-checked sequential reader over a payload. All getters throw
/// util::Error on truncation or overlong varints.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  std::uint64_t varint();
  double f64();
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- hot-frame codecs ----------------------------------------------------

/// Incremental batch encoder for one destination: states are delta-
/// encoded as they are appended (no second pass at flush time), then
/// take_frame() wraps the payload in a framed byte string and resets.
class BatchEncoder {
 public:
  void reset(std::uint32_t to);
  void append(const std::vector<std::pair<dag::NodeId, machine::ProcId>>&
                  assignments,
              double f);
  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Complete framed bytes (header + to + count + states); resets the
  /// encoder for the same destination.
  std::string take_frame();

 private:
  std::uint32_t to_ = 0;
  std::uint64_t count_ = 0;
  std::string states_;  ///< encoded state records
  std::vector<std::pair<dag::NodeId, machine::ProcId>> prev_;
};

struct DecodedBatch {
  std::uint32_t to = 0;
  std::vector<StateMsg> states;
};

/// Destination rank of a batch payload, without decoding the states —
/// the coordinator's relay path reads only this.
std::uint32_t batch_dest(std::string_view payload);
/// State count of a batch payload (second varint), for accounting.
std::uint64_t batch_count(std::string_view payload);
DecodedBatch decode_batch(std::string_view payload);

struct StatusMsg {
  bool idle = false;
  std::uint64_t rcvd = 0;
  std::uint64_t exp = 0;
  std::uint64_t open = 0;
  double min_f = std::numeric_limits<double>::infinity();
};

std::string encode_status(const StatusMsg& s);  ///< framed bytes
StatusMsg decode_status(std::string_view payload);

std::string encode_bound(double len);  ///< framed bytes
double decode_bound(std::string_view payload);

// ---- stream framing ------------------------------------------------------

/// Read the next frame (binary or JSON line) from `s`. Returns false on
/// clean EOF at a frame boundary; throws util::Error on a socket error,
/// EOF mid-frame, or a frame exceeding `max_bytes`.
bool read_frame(util::UnixStream& s, Frame& out, std::size_t max_bytes);

/// A complete frame is already buffered: the next read_frame() returns
/// without touching the socket. The binary analogue of
/// UnixStream::has_buffered_line(), aware of both framings.
bool has_buffered_frame(const util::UnixStream& s);

// ---- send-side duplicate filter ------------------------------------------

/// Bounded remembered-set of signatures recently shipped to one
/// destination. fresh() answers "have I sent this signature before?"
/// and records it; at capacity the set resets wholesale (generational
/// forgetting) so memory stays bounded. Both error directions are safe:
/// a suppressed resend is correct because the owner's SEEN check is
/// authoritative (it drops duplicates regardless), and a post-reset
/// re-send is merely redundant traffic. See DESIGN.md §11.3.
class SendFilter {
 public:
  explicit SendFilter(std::size_t capacity = 1u << 14)
      : capacity_(capacity < 16 ? 16 : capacity) {}

  /// True when `sig` has not been recorded since the last reset (and is
  /// now recorded).
  bool fresh(const util::Key128& sig) {
    if (set_.size() >= capacity_) set_.clear();
    return set_.insert(sig);
  }

  std::size_t size() const noexcept { return set_.size(); }
  std::size_t memory_bytes() const noexcept { return set_.memory_bytes(); }

 private:
  std::size_t capacity_;
  util::FlatSet128 set_;
};

}  // namespace optsched::par::wire
