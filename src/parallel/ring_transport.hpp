// Ring-mailbox transport: the paper's §3.3 communication scheme.
//
// PPEs are wired into a fixed topology (ring by default; mesh and clique
// for the paper's comparison runs) of mutex-protected mailboxes. Work is
// seeded by the paper's interleaved hand-out, then redistributed by
// periodic communication rounds with exponentially shrinking periods
// T = v/2, v/4, ..., down to `min_period` expansions:
//
//  * neighbourhood election — the PPE holding the locally best f expands
//    that state and scatters the children round-robin over the
//    neighbourhood;
//  * load sharing — OPEN sizes are rebalanced toward the neighbourhood
//    average, donating entries biased away from the donor's best.
//
// Duplicate detection is PPE-local only (the paper rejects a distributed
// CLOSED list as unscalable on the Paragon's interconnect), so the same
// state reached on two PPEs is expanded on both — the re-expansion cost
// the work-stealing transport's sharded table eliminates (DESIGN.md §4).
//
// Quiescence: a PPE that runs dry advertises idle and blocks briefly on
// its mailbox; the search is done when every PPE is idle and no message
// is in flight. A receiver marks itself busy *before* acknowledging a
// message, and the detector re-reads the idle flags after the in-flight
// counter, so the "all idle, nothing in flight" observation is stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "parallel/mailbox.hpp"
#include "parallel/transport.hpp"

namespace optsched::par {

class RingTransport final : public Transport {
 public:
  RingTransport(std::uint32_t num_ppes, MailboxNetwork::Topology topology,
                std::uint32_t min_period, std::uint32_t num_nodes,
                std::atomic<bool>& done);

  TransportMode mode() const override { return TransportMode::kRing; }
  std::unique_ptr<PpeLink> connect(std::uint32_t ppe) override;
  const PartitionStrategy& partition() const override { return partition_; }
  void collect(ParallelStats& out) const override;

 private:
  friend class RingLink;

  MailboxNetwork net_;
  std::uint32_t min_period_;
  std::uint32_t num_nodes_;  ///< v, for the shrinking period schedule
  InterleavePartition partition_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> states_transferred_{0};
  std::atomic<std::uint64_t> comm_rounds_{0};
};

}  // namespace optsched::par
