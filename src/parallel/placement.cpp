#include "parallel/placement.hpp"

#if defined(__linux__)
#include <sched.h>

#include <vector>
#endif

namespace optsched::par {

const char* to_string(PinPolicy p) {
  switch (p) {
    case PinPolicy::kNone:
      return "none";
    case PinPolicy::kCompact:
      return "compact";
    case PinPolicy::kSpread:
      return "spread";
  }
  return "?";
}

bool pin_current_thread(PinPolicy policy, std::uint32_t ppe_id,
                        std::uint32_t num_ppes) {
  if (policy == PinPolicy::kNone || num_ppes == 0) return false;
#if defined(__linux__)
  // Enumerate the CPUs this process may use (respects taskset/cgroups).
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c)
    if (CPU_ISSET(c, &allowed)) cpus.push_back(c);
  if (cpus.empty()) return false;

  const auto n = static_cast<std::uint32_t>(cpus.size());
  std::uint32_t slot;
  if (policy == PinPolicy::kCompact) {
    slot = ppe_id % n;
  } else {
    // Spread: space PPEs evenly over the allowed set. stride >= 1; when
    // there are at least as many CPUs as PPEs this lands each PPE
    // floor(n / num_ppes) CPUs apart.
    const std::uint32_t stride =
        num_ppes < n ? n / num_ppes : 1;
    slot = (ppe_id * stride) % n;
  }

  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpus[slot], &one);
  return sched_setaffinity(0, sizeof(one), &one) == 0;
#else
  (void)ppe_id;
  return false;
#endif
}

}  // namespace optsched::par
