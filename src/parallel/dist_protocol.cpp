#include "parallel/dist_protocol.hpp"

#include <cmath>

namespace optsched::par {

using util::Json;

namespace {

std::uint32_t as_u32(const Json& j, const char* what) {
  const double v = j.as_number();
  OPTSCHED_REQUIRE(v >= 0 && v == std::floor(v) && v <= 0xffffffffu,
                   std::string(what) + " must be a non-negative integer");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

Json graph_to_json(const dag::TaskGraph& graph) {
  Json weights{Json::Array{}};
  for (dag::NodeId n = 0; n < graph.num_nodes(); ++n)
    weights.push_back(graph.weight(n));
  Json edges{Json::Array{}};
  for (dag::NodeId n = 0; n < graph.num_nodes(); ++n)
    for (const auto& [child, cost] : graph.children(n))
      edges.push_back(Json(Json::Array{Json(n), Json(child), Json(cost)}));
  Json out;
  out["w"] = std::move(weights);
  out["e"] = std::move(edges);
  return out;
}

dag::TaskGraph graph_from_json(const Json& j) {
  dag::TaskGraph graph;
  for (const auto& w : j.at("w").as_array()) graph.add_node(w.as_number());
  for (const auto& e : j.at("e").as_array()) {
    const auto& triple = e.as_array();
    OPTSCHED_REQUIRE(triple.size() == 3, "edge must be [src, dst, cost]");
    graph.add_edge(as_u32(triple[0], "edge src"), as_u32(triple[1], "edge dst"),
                   triple[2].as_number());
  }
  graph.finalize();
  return graph;
}

Json machine_to_json(const machine::Machine& machine) {
  Json adjacency{Json::Array{}};
  Json speeds{Json::Array{}};
  for (machine::ProcId p = 0; p < machine.num_procs(); ++p) {
    Json row{Json::Array{}};
    for (const machine::ProcId q : machine.neighbors(p)) row.push_back(q);
    adjacency.push_back(std::move(row));
    speeds.push_back(machine.speed(p));
  }
  Json out;
  out["adj"] = std::move(adjacency);
  out["speed"] = std::move(speeds);
  out["name"] = machine.topology_name();
  return out;
}

machine::Machine machine_from_json(const Json& j) {
  std::vector<std::vector<machine::ProcId>> adjacency;
  for (const auto& row : j.at("adj").as_array()) {
    std::vector<machine::ProcId> neighbors;
    for (const auto& q : row.as_array())
      neighbors.push_back(static_cast<machine::ProcId>(as_u32(q, "neighbor")));
    adjacency.push_back(std::move(neighbors));
  }
  std::vector<double> speeds;
  for (const auto& s : j.at("speed").as_array())
    speeds.push_back(s.as_number());
  return machine::Machine(std::move(adjacency), std::move(speeds),
                          j.at("name").as_string());
}

Json search_config_to_json(const core::SearchConfig& config) {
  Json prune;
  prune["iso"] = config.prune.processor_isomorphism;
  prune["equiv"] = config.prune.node_equivalence;
  prune["ub"] = config.prune.upper_bound;
  prune["dup"] = config.prune.duplicate_detection;
  prune["strict"] = config.prune.strict_upper_bound;
  Json out;
  out["prune"] = std::move(prune);
  out["h"] = static_cast<int>(config.h);
  out["queue"] = static_cast<int>(config.queue);
  out["hw"] = config.h_weight;
  out["eps"] = config.epsilon;
  return out;
}

core::SearchConfig search_config_from_json(const Json& j) {
  core::SearchConfig config;
  const Json& prune = j.at("prune");
  config.prune.processor_isomorphism = prune.at("iso").as_bool();
  config.prune.node_equivalence = prune.at("equiv").as_bool();
  config.prune.upper_bound = prune.at("ub").as_bool();
  config.prune.duplicate_detection = prune.at("dup").as_bool();
  config.prune.strict_upper_bound = prune.at("strict").as_bool();
  const std::uint32_t h = as_u32(j.at("h"), "h function");
  OPTSCHED_REQUIRE(h <= static_cast<std::uint32_t>(core::HFunction::kComposite),
                   "unknown h function code");
  config.h = static_cast<core::HFunction>(h);
  const std::uint32_t queue = as_u32(j.at("queue"), "queue select");
  OPTSCHED_REQUIRE(queue <= static_cast<std::uint32_t>(core::QueueSelect::kHeap),
                   "unknown queue select code");
  config.queue = static_cast<core::QueueSelect>(queue);
  config.h_weight = j.at("hw").as_number();
  config.epsilon = j.at("eps").as_number();
  return config;
}

Json assignments_to_json(
    const std::vector<std::pair<dag::NodeId, machine::ProcId>>& seq) {
  Json out{Json::Array{}};
  for (const auto& [node, proc] : seq)
    out.push_back(Json(Json::Array{Json(node), Json(proc)}));
  return out;
}

std::vector<std::pair<dag::NodeId, machine::ProcId>> assignments_from_json(
    const Json& j) {
  std::vector<std::pair<dag::NodeId, machine::ProcId>> seq;
  for (const auto& pair : j.as_array()) {
    const auto& np = pair.as_array();
    OPTSCHED_REQUIRE(np.size() == 2, "assignment must be [node, proc]");
    seq.emplace_back(as_u32(np[0], "node"),
                     static_cast<machine::ProcId>(as_u32(np[1], "proc")));
  }
  return seq;
}

Json state_msg_to_json(const StateMsg& msg) {
  Json out;
  out["a"] = assignments_to_json(msg.assignments);
  out["f"] = msg.f;
  return out;
}

StateMsg state_msg_from_json(const Json& j) {
  StateMsg msg;
  msg.assignments = assignments_from_json(j.at("a"));
  msg.f = j.at("f").as_number();
  return msg;
}

}  // namespace optsched::par
