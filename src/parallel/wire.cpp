#include "parallel/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/assert.hpp"
#include "util/socket.hpp"

namespace optsched::par::wire {

namespace {

// Shared prefix length of two assignment sequences.
std::size_t shared_prefix(
    const std::vector<std::pair<dag::NodeId, machine::ProcId>>& a,
    const std::vector<std::pair<dag::NodeId, machine::ProcId>>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::uint32_t checked_u32(std::uint64_t v, const char* what) {
  OPTSCHED_REQUIRE(v <= 0xffffffffULL,
                   std::string("wire: ") + what + " out of range");
  return static_cast<std::uint32_t>(v);
}

// Frame header in front of an already-encoded payload.
std::string frame_bytes(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 12);
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(type));
  put_varint(out, payload.size());
  out.append(payload);
  return out;
}

}  // namespace

// ---- primitives ----------------------------------------------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  out.append(b, 8);
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    OPTSCHED_REQUIRE(pos_ < data_.size(), "wire: truncated varint");
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    OPTSCHED_REQUIRE(shift < 64 && (shift != 63 || (byte & 0x7e) == 0),
                     "wire: overlong varint");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

double Reader::f64() {
  OPTSCHED_REQUIRE(pos_ + 8 <= data_.size(), "wire: truncated f64");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

// ---- batch codec ---------------------------------------------------------

void BatchEncoder::reset(std::uint32_t to) {
  to_ = to;
  count_ = 0;
  states_.clear();
  prev_.clear();
}

void BatchEncoder::append(
    const std::vector<std::pair<dag::NodeId, machine::ProcId>>& assignments,
    double f) {
  OPTSCHED_REQUIRE(std::isfinite(f), "wire: non-finite f in batch state");
  const std::size_t prefix = shared_prefix(prev_, assignments);
  put_varint(states_, prefix);
  put_varint(states_, assignments.size() - prefix);
  for (std::size_t i = prefix; i < assignments.size(); ++i) {
    put_varint(states_, assignments[i].first);
    put_varint(states_, assignments[i].second);
  }
  put_f64(states_, f);
  prev_ = assignments;
  ++count_;
}

std::string BatchEncoder::take_frame() {
  std::string payload;
  payload.reserve(states_.size() + 12);
  put_varint(payload, to_);
  put_varint(payload, count_);
  payload.append(states_);
  count_ = 0;
  states_.clear();
  prev_.clear();
  return frame_bytes(FrameType::kBatch, payload);
}

std::uint32_t batch_dest(std::string_view payload) {
  Reader r(payload);
  return checked_u32(r.varint(), "batch dest");
}

std::uint64_t batch_count(std::string_view payload) {
  Reader r(payload);
  r.varint();  // to
  return r.varint();
}

DecodedBatch decode_batch(std::string_view payload) {
  Reader r(payload);
  DecodedBatch out;
  out.to = checked_u32(r.varint(), "batch dest");
  const std::uint64_t count = r.varint();
  // Every state record costs at least 10 bytes (two varints + f64), so a
  // count claiming more than the payload can hold is malformed — reject
  // before reserving.
  OPTSCHED_REQUIRE(count <= payload.size() / 10 + 1,
                   "wire: batch count exceeds payload");
  out.states.reserve(static_cast<std::size_t>(count));
  std::vector<std::pair<dag::NodeId, machine::ProcId>> prev;
  for (std::uint64_t s = 0; s < count; ++s) {
    const std::uint64_t prefix = r.varint();
    OPTSCHED_REQUIRE(prefix <= prev.size(),
                     "wire: batch delta prefix exceeds previous state");
    const std::uint64_t suffix = r.varint();
    // Each suffix pair costs at least 2 bytes on the wire.
    OPTSCHED_REQUIRE(suffix <= r.remaining() / 2 + 1,
                     "wire: batch suffix exceeds payload");
    StateMsg msg;
    msg.assignments.assign(prev.begin(),
                           prev.begin() + static_cast<std::ptrdiff_t>(prefix));
    msg.assignments.reserve(static_cast<std::size_t>(prefix + suffix));
    for (std::uint64_t i = 0; i < suffix; ++i) {
      const auto node = checked_u32(r.varint(), "node id");
      const auto proc = checked_u32(r.varint(), "proc id");
      msg.assignments.emplace_back(node, proc);
    }
    msg.f = r.f64();
    OPTSCHED_REQUIRE(std::isfinite(msg.f),
                     "wire: non-finite f in batch state");
    prev = msg.assignments;
    out.states.push_back(std::move(msg));
  }
  OPTSCHED_REQUIRE(r.done(), "wire: trailing bytes after batch states");
  return out;
}

// ---- status / bound ------------------------------------------------------

std::string encode_status(const StatusMsg& s) {
  const bool has_minf = std::isfinite(s.min_f);
  std::string payload;
  payload.reserve(40);
  payload.push_back(static_cast<char>((s.idle ? 1 : 0) | (has_minf ? 2 : 0)));
  put_varint(payload, s.rcvd);
  put_varint(payload, s.exp);
  put_varint(payload, s.open);
  if (has_minf) put_f64(payload, s.min_f);
  return frame_bytes(FrameType::kStatus, payload);
}

StatusMsg decode_status(std::string_view payload) {
  OPTSCHED_REQUIRE(!payload.empty(), "wire: empty status payload");
  const auto flags = static_cast<unsigned char>(payload[0]);
  OPTSCHED_REQUIRE((flags & ~0x03u) == 0, "wire: unknown status flags");
  Reader r(payload.substr(1));
  StatusMsg s;
  s.idle = (flags & 1) != 0;
  s.rcvd = r.varint();
  s.exp = r.varint();
  s.open = r.varint();
  if ((flags & 2) != 0) {
    s.min_f = r.f64();
    OPTSCHED_REQUIRE(std::isfinite(s.min_f), "wire: non-finite status minf");
  }
  OPTSCHED_REQUIRE(r.done(), "wire: trailing bytes after status");
  return s;
}

std::string encode_bound(double len) {
  OPTSCHED_REQUIRE(std::isfinite(len), "wire: non-finite bound");
  std::string payload;
  put_f64(payload, len);
  return frame_bytes(FrameType::kBound, payload);
}

double decode_bound(std::string_view payload) {
  Reader r(payload);
  const double len = r.f64();
  OPTSCHED_REQUIRE(r.done() && std::isfinite(len), "wire: malformed bound");
  return len;
}

// ---- stream framing ------------------------------------------------------

namespace {

// Parse a buffered binary-frame header. Returns true when the complete
// frame is buffered, filling header/payload sizes; false when more bytes
// are needed. Throws on a malformed header or an oversized frame.
bool binary_frame_extent(std::string_view buf, std::size_t max_bytes,
                         std::size_t& header_len, std::size_t& payload_len) {
  std::uint64_t len = 0;
  int shift = 0;
  std::size_t pos = 2;  // magic + type
  while (true) {
    if (pos >= buf.size()) return false;
    const auto byte = static_cast<unsigned char>(buf[pos++]);
    OPTSCHED_REQUIRE(shift < 64, "wire: overlong frame length");
    len |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  OPTSCHED_REQUIRE(len <= max_bytes,
                   "frame exceeds " + std::to_string(max_bytes) + " bytes");
  header_len = pos;
  payload_len = static_cast<std::size_t>(len);
  return buf.size() >= header_len + payload_len;
}

}  // namespace

bool read_frame(util::UnixStream& s, Frame& out, std::size_t max_bytes) {
  while (true) {
    const std::string_view buf = s.buffered();
    if (!buf.empty()) {
      if (static_cast<unsigned char>(buf[0]) == kMagic) {
        if (buf.size() >= 2) {
          const auto t = static_cast<unsigned char>(buf[1]);
          OPTSCHED_REQUIRE(t >= 1 && t <= 3, "wire: unknown frame type");
          std::size_t header = 0, payload = 0;
          if (binary_frame_extent(buf, max_bytes, header, payload)) {
            out.type = static_cast<FrameType>(t);
            out.raw.assign(buf.data(), header + payload);
            out.payload_off = header;
            s.consume(header + payload);
            return true;
          }
        }
        // Guard buffered growth while waiting for the rest of the frame
        // (header is at most 12 bytes).
        OPTSCHED_REQUIRE(buf.size() <= max_bytes + 12,
                         "frame exceeds " + std::to_string(max_bytes) +
                             " bytes");
      } else {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string_view::npos) {
          OPTSCHED_REQUIRE(nl <= max_bytes,
                           "frame exceeds " + std::to_string(max_bytes) +
                               " bytes");
          out.type = FrameType::kJson;
          out.raw.assign(buf.data(), nl);
          out.payload_off = 0;
          s.consume(nl + 1);
          return true;
        }
        OPTSCHED_REQUIRE(buf.size() <= max_bytes,
                         "frame exceeds " + std::to_string(max_bytes) +
                             " bytes");
      }
    }
    if (!s.fill_some()) {
      OPTSCHED_REQUIRE(s.buffered().empty(), "connection closed mid-frame");
      return false;  // clean EOF at a frame boundary
    }
  }
}

bool has_buffered_frame(const util::UnixStream& s) {
  const std::string_view buf = s.buffered();
  if (buf.empty()) return false;
  if (static_cast<unsigned char>(buf[0]) != kMagic)
    return buf.find('\n') != std::string_view::npos;
  if (buf.size() < 2) return false;
  std::size_t header = 0, payload = 0;
  // Malformed headers surface as errors in read_frame, not here: report
  // "complete" so the caller proceeds to read and gets the typed error.
  try {
    return binary_frame_extent(buf, std::numeric_limits<std::size_t>::max(),
                               header, payload);
  } catch (...) {
    return true;
  }
}

}  // namespace optsched::par::wire
