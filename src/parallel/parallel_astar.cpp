#include "parallel/parallel_astar.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <set>
#include <thread>

#include "core/open_list.hpp"
#include "core/search_kernel.hpp"
#include "core/signature.hpp"
#include "util/timer.hpp"

namespace optsched::par {

using core::Expander;
using core::kNoParent;
using core::KernelGuard;
using core::OpenEntry;
using core::OpenList;
using core::SearchProblem;
using core::State;
using core::StateArena;
using core::StateIndex;
using core::StepAction;
using dag::NodeId;
using machine::ProcId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-PPE OPEN list: a 4-ary heap for exact A*, an ordered set with the
/// FOCAL selection rule for Aε* (mirroring the serial implementations so
/// measured speedups compare like with like).
class PpeOpen {
 public:
  explicit PpeOpen(double epsilon) : eps_(epsilon) {}

  bool empty() const {
    return eps_ > 0 ? set_.empty() : heap_.empty();
  }

  std::size_t size() const {
    return eps_ > 0 ? set_.size() : heap_.size();
  }

  double min_f() const {
    if (empty()) return kInf;
    return eps_ > 0 ? set_.begin()->f : heap_.top().f;
  }

  void push(double f, double g, double h, StateIndex idx) {
    if (eps_ > 0)
      set_.insert({f, g, h, idx});
    else
      heap_.push({f, g, idx});
  }

  /// Remove and return the next state to expand (A*: min (f, -g);
  /// Aε*: min h within the f <= (1+eps)*fmin prefix, scan capped — any
  /// FOCAL member preserves the guarantee; see core/astar.cpp).
  StateIndex pop_best() {
    OPTSCHED_ASSERT(!empty());
    if (eps_ == 0) return heap_.pop().index;
    constexpr int kFocalScanCap = 64;
    const double bound = (1.0 + eps_) * set_.begin()->f + 1e-12;
    auto chosen = set_.begin();
    int scanned = 0;
    for (auto it = set_.begin();
         it != set_.end() && it->f <= bound && scanned < kFocalScanCap;
         ++it, ++scanned) {
      const bool better =
          it->h < chosen->h || (it->h == chosen->h && it->g > chosen->g);
      if (better) chosen = it;
    }
    const StateIndex idx = chosen->index;
    set_.erase(chosen);
    return idx;
  }

  /// Remove up to `count` entries biased away from the best (load sharing).
  std::vector<StateIndex> extract_surplus(std::size_t count) {
    std::vector<StateIndex> out;
    if (eps_ == 0) {
      for (const auto& e : heap_.extract_surplus(count))
        out.push_back(e.index);
      return out;
    }
    while (out.size() < count && set_.size() > 1) {
      auto last = std::prev(set_.end());
      out.push_back(last->index);
      set_.erase(last);
    }
    return out;
  }

  void clear() {
    heap_.clear();
    set_.clear();
  }

  /// Entry storage (heap capacity, or node estimate for the FOCAL set —
  /// same factor as the serial Aε*'s accounting in core/astar.cpp).
  std::size_t memory_bytes() const {
    return heap_.memory_bytes() + set_.size() * sizeof(Entry) * 3;
  }

 private:
  struct Entry {
    double f, g, h;
    StateIndex index;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.f != b.f) return a.f < b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.index < b.index;
    }
  };

  double eps_;
  OpenList heap_;
  std::set<Entry> set_;
};

struct alignas(64) PpeStatus {
  std::atomic<double> min_f{kInf};
  std::atomic<std::uint64_t> open_size{0};
  std::atomic<bool> idle{false};
};

struct Shared {
  Shared(const SearchProblem& p, const ParallelConfig& c)
      : problem(p),
        config(c),
        net(c.num_ppes, c.topology),
        status(std::make_unique<PpeStatus[]>(c.num_ppes)) {
    incumbent_len.store(p.upper_bound());
    incumbent_exact = p.upper_bound();
  }

  const SearchProblem& problem;
  const ParallelConfig& config;
  MailboxNetwork net;
  std::unique_ptr<PpeStatus[]> status;

  std::atomic<double> incumbent_len;  ///< hot-path read for pruning
  std::mutex incumbent_mu;
  double incumbent_exact;             ///< guarded by incumbent_mu
  std::vector<std::pair<NodeId, ProcId>> incumbent_seq;  ///< ditto

  std::atomic<bool> done{false};
  /// 0 none, 1 expansions, 2 time, 3 cancelled, 4 memory.
  std::atomic<int> abort_reason{0};
  std::atomic<std::uint64_t> total_expanded{0};
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> states_transferred{0};
  std::atomic<std::uint64_t> comm_rounds{0};
  util::Timer timer;

  /// Register a complete schedule; keeps the best across all PPEs.
  void offer_incumbent(double len,
                       std::vector<std::pair<NodeId, ProcId>> seq) {
    const std::lock_guard<std::mutex> lock(incumbent_mu);
    if (len < incumbent_exact - 1e-12) {
      incumbent_exact = len;
      incumbent_seq = std::move(seq);
      incumbent_len.store(len, std::memory_order_release);
      if (config.naive_termination) done.store(true);
    }
  }

  double incumbent() const {
    return incumbent_len.load(std::memory_order_acquire);
  }

  /// Progress callbacks are serialized here so PPEs can report from their
  /// own threads without requiring a thread-safe user callback.
  std::mutex progress_mu;
  core::ProgressGate progress_gate{config.search.controls};  ///< ditto

  void maybe_progress() {
    const auto& controls = config.search.controls;
    if (!controls.progress) return;  // cheap pre-check before locking
    const std::uint64_t expanded =
        total_expanded.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(progress_mu);
    if (!progress_gate.open(expanded)) return;
    double lower_bound = kInf;
    for (std::uint32_t i = 0; i < config.num_ppes; ++i)
      lower_bound = std::min(
          lower_bound, status[i].min_f.load(std::memory_order_acquire));
    controls.progress({expanded, lower_bound == kInf ? 0.0 : lower_bound,
                       incumbent(), timer.seconds()});
  }
};

/// One search worker. The main loop is the shared kernel
/// (core/search_kernel.hpp) instantiated over this PPE's thread-local
/// frontier/arena; Ppe itself is the kernel policy.
class Ppe {
 public:
  Ppe(Shared& shared, std::uint32_t id)
      : shared_(shared),
        id_(id),
        expander_(shared.problem, shared.config.search),
        import_ctx_(shared.problem),
        import_scratch_(shared.problem.num_nodes(), 0.0),
        import_finish_(shared.problem.num_nodes(), 0.0),
        import_proc_of_(shared.problem.num_nodes(), machine::kInvalidProc),
        import_proc_ready_(shared.problem.num_procs(), 0.0),
        seen_(1 << 10),
        open_(shared.config.search.epsilon),
        progress_gate_(shared.config.search.controls) {}

  void run();

  const core::ExpandStats& stats() const { return expander_.stats(); }

  /// This PPE's search-state memory (arena + CLOSED set + OPEN list).
  /// Arena and CLOSED only grow, and OPEN is small next to them, so the
  /// end-of-run value is within one OPEN list of the true peak.
  std::size_t memory_bytes() const {
    return arena_.memory_bytes() + seen_.memory_bytes() +
           open_.memory_bytes();
  }
  std::size_t arena_hot_bytes() const { return arena_.hot_memory_bytes(); }
  std::size_t arena_cold_bytes() const { return arena_.cold_memory_bytes(); }

  // ---- kernel policy interface -------------------------------------------

  bool keep_searching() const {
    return !shared_.done.load(std::memory_order_acquire);
  }

  bool pop(StateIndex& out) {
    // Fast-drop a fully dominated frontier (everything >= incumbent).
    if (!open_.empty() && dominated()) open_.clear();
    if (open_.empty()) return false;
    shared_.status[id_].idle.store(false, std::memory_order_release);
    out = open_.pop_best();
    return true;
  }

  /// Empty frontier: idle/steal dance. Always continues the loop — either
  /// the mailbox refills OPEN, or global quiescence flips the done flag
  /// that keep_searching() observes.
  bool on_empty() {
    shared_.status[id_].idle.store(true, std::memory_order_release);
    publish();
    drain_mailbox(std::chrono::microseconds(200));
    if (!open_.empty()) {
      shared_.status[id_].idle.store(false, std::memory_order_release);
      return true;
    }
    // Sound termination: all PPEs idle and nothing in flight.
    bool all_idle = true;
    for (std::uint32_t i = 0; i < shared_.config.num_ppes; ++i)
      if (!shared_.status[i].idle.load(std::memory_order_acquire)) {
        all_idle = false;
        break;
      }
    if (all_idle && !shared_.net.anything_in_flight())
      shared_.done.store(true, std::memory_order_release);
    return true;
  }

  StepAction classify(StateIndex idx) {
    const core::HotState& s = arena_.hot(idx);
    if (s.depth() == shared_.problem.num_nodes()) return StepAction::kGoal;
    if (exact() && s.f >= shared_.incumbent() - 1e-9)
      return StepAction::kSkip;  // stale
    return StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    shared_.offer_incumbent(arena_.hot(idx).g, assignment_sequence(idx));
  }

  void expand(StateIndex idx) {
    expander_.expand(arena_, seen_, idx, prune_bound(),
                     [&](StateIndex child_idx, const State& child) {
                       accept_child(child_idx, child);
                     });
    shared_.total_expanded.fetch_add(1, std::memory_order_relaxed);
  }

  void after_expand() {
    if (++period_counter_ >= period_) {
      period_counter_ = 0;
      communicate();
      ++round_;
      period_ = period_for_round(round_);
    }
  }

  std::uint64_t expanded_count() const {
    return shared_.total_expanded.load(std::memory_order_relaxed);
  }

  std::size_t memory_now() const { return memory_bytes(); }

  /// Progress goes through the shared serialized reporter; the local gate
  /// only bounds how often this PPE takes the shared lock.
  void maybe_progress(KernelGuard&) {
    if (progress_gate_.open(expanded_count())) shared_.maybe_progress();
  }

 private:
  bool exact() const { return shared_.config.search.epsilon == 0.0; }

  /// Is this PPE's frontier unable to improve on the incumbent?
  bool dominated() const {
    const double inc = shared_.incumbent();
    const double fmin = open_.min_f();
    if (exact()) return fmin >= inc - 1e-9;
    return inc <= (1.0 + shared_.config.search.epsilon) * fmin + 1e-9;
  }

  double prune_bound() const {
    if (shared_.config.search.prune.strict_upper_bound)
      return shared_.problem.upper_bound();
    return shared_.incumbent();
  }

  void publish() {
    shared_.status[id_].min_f.store(open_.min_f(), std::memory_order_release);
    shared_.status[id_].open_size.store(open_.size(),
                                        std::memory_order_release);
  }

  std::uint32_t period_for_round(std::uint32_t round) const {
    const std::uint32_t v = shared_.problem.num_nodes();
    const std::uint32_t shifted = round + 1 >= 31 ? 0u : (v >> (round + 1));
    return std::max(shifted, shared_.config.min_period);
  }

  std::vector<std::pair<NodeId, ProcId>> assignment_sequence(StateIndex idx) {
    std::vector<std::pair<NodeId, ProcId>> seq;
    for (StateIndex i = idx; i != kNoParent; i = arena_.hot(i).parent) {
      if (arena_.hot(i).is_root()) break;
      seq.emplace_back(arena_.hot(i).node(), arena_.hot(i).proc());
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  }

  /// Push one freshly generated state, routing goals to the incumbent.
  void accept_child(StateIndex idx, const State& child) {
    if (child.depth == shared_.problem.num_nodes()) {
      shared_.offer_incumbent(child.g, assignment_sequence(idx));
      return;
    }
    open_.push(child.f(), child.g, child.h, idx);
  }

  /// Rebuild a transferred state in the local arena; always enqueued
  /// (dropping a received state could orphan it — see header comment).
  void import_state(const StateMsg& msg);

  void drain_mailbox(std::chrono::microseconds wait);
  void communicate();
  void initial_distribution();

  Shared& shared_;
  std::uint32_t id_;
  Expander expander_;
  core::ExpansionContext import_ctx_;   ///< reused across imports
  std::vector<double> import_scratch_;  ///< h-evaluation scratch
  std::vector<double> import_finish_;   ///< replay scratch, ditto
  std::vector<ProcId> import_proc_of_;
  std::vector<double> import_proc_ready_;
  StateArena arena_;
  util::FlatSet128 seen_;
  PpeOpen open_;
  core::ProgressGate progress_gate_;
  std::uint32_t round_ = 0;
  std::uint64_t period_counter_ = 0;
  std::uint64_t period_ = 0;
  std::uint32_t rr_cursor_ = 0;  ///< round-robin pointer for load sharing
};

void Ppe::import_state(const StateMsg& msg) {
  const auto& problem = shared_.problem;
  const auto& graph = problem.graph();
  const auto& machine = problem.machine();

  // Replay the assignment sequence, creating the chain of states locally.
  auto& finish = import_finish_;
  auto& proc_of = import_proc_of_;
  auto& proc_ready = import_proc_ready_;
  std::fill(finish.begin(), finish.end(), 0.0);
  std::fill(proc_of.begin(), proc_of.end(), machine::kInvalidProc);
  std::fill(proc_ready.begin(), proc_ready.end(), 0.0);

  StateIndex parent = kNoParent;
  util::Key128 sig = core::root_signature();
  double g = 0.0;
  std::uint32_t depth = 0;

  // The chain needs a local root to anchor replay for future expansions.
  State root;
  root.sig = sig;
  root.parent = kNoParent;
  parent = arena_.add(root);

  for (const auto& [node, proc] : msg.assignments) {
    double dat = 0.0;
    for (const auto& [par, cost] : graph.parents(node))
      dat = std::max(dat, finish[par] + machine.comm_delay(
                                            cost, proc_of[par], proc,
                                            problem.comm()));
    const double st = std::max(proc_ready[proc], dat);
    const double ft = st + machine.exec_time(graph.weight(node), proc);
    finish[node] = ft;
    proc_of[node] = proc;
    proc_ready[proc] = ft;
    g = std::max(g, ft);
    sig = core::extend_signature(sig, node, proc, ft);
    ++depth;

    State s;
    s.sig = sig;
    s.finish = ft;
    s.g = g;
    s.h = 0.0;  // interior-chain h is never read; the final h is below
    s.parent = parent;
    s.node = node;
    s.proc = proc;
    s.depth = depth;
    parent = arena_.add(s);
  }
  OPTSCHED_ASSERT(depth == msg.assignments.size());

  if (depth == shared_.problem.num_nodes()) {
    shared_.offer_incumbent(g, msg.assignments);
    return;
  }

  // Recompute h for the transferred frontier state. msg.f lower-bounds the
  // recomputed f only up to the sender's h function, which is identical —
  // so the values must agree.
  import_ctx_.move_to(arena_, parent);
  const double h =
      core::evaluate_h(shared_.config.search.h, problem, import_ctx_.view(),
                       import_scratch_.data()) *
      shared_.config.search.h_weight;
  arena_.patch_h(parent, h);  // so re-sharing this state sends the right f
  OPTSCHED_ASSERT(std::abs((g + h) - msg.f) < 1e-6);

  seen_.insert(sig);  // best effort; duplicates tolerated by design
  open_.push(g + h, g, h, parent);
}

void Ppe::drain_mailbox(std::chrono::microseconds wait) {
  auto& box = shared_.net.mailbox(id_);
  bool first = true;
  while (true) {
    std::optional<Message> msg =
        first && wait.count() > 0 ? box.take_for(wait) : box.try_take();
    if (!msg) break;
    first = false;
    // Mark busy *before* acknowledging so the termination detector never
    // sees "all idle, nothing in flight" while a message is half-processed.
    shared_.status[id_].idle.store(false, std::memory_order_release);
    for (const auto& s : msg->states) import_state(s);
    shared_.net.acknowledge_receipt();
  }
}

void Ppe::communicate() {
  publish();
  shared_.comm_rounds.fetch_add(1, std::memory_order_relaxed);

  const auto& neighbors = shared_.net.neighbors(id_);
  if (neighbors.empty() || open_.empty()) {
    drain_mailbox(std::chrono::microseconds(0));
    return;
  }

  // Neighbourhood election (paper: "vote and elect the best cost state,
  // which is then expanded by all the participating PPEs; the resulting
  // new states then go to each neighbouring PPE in a RR fashion"). The
  // owner of the locally best state expands it and scatters the children
  // round-robin over the neighbourhood, which realizes the same data flow
  // without duplicating the expansion on every participant.
  const double my_fmin = open_.min_f();
  bool i_am_best = true;
  for (const auto nb : neighbors)
    if (shared_.status[nb].min_f.load(std::memory_order_acquire) <
        my_fmin - 1e-12)
      i_am_best = false;

  if (i_am_best && !dominated()) {
    const StateIndex best = open_.pop_best();
    std::vector<StateIndex> children;
    expander_.expand(arena_, seen_, best, prune_bound(),
                     [&](StateIndex idx, const State& child) {
                       if (child.depth == shared_.problem.num_nodes()) {
                         shared_.offer_incumbent(child.g,
                                                 assignment_sequence(idx));
                         return;
                       }
                       children.push_back(idx);
                     });
    shared_.total_expanded.fetch_add(1, std::memory_order_relaxed);
    // Scatter children: self first, then neighbours round-robin.
    std::uint32_t cursor = 0;
    std::vector<std::vector<StateMsg>> outbound(neighbors.size());
    for (const StateIndex idx : children) {
      const core::HotState& c = arena_.hot(idx);
      if (cursor == 0) {
        open_.push(c.f, c.g, c.h(), idx);
      } else {
        outbound[cursor - 1].push_back({assignment_sequence(idx), c.f});
      }
      cursor = (cursor + 1) % (static_cast<std::uint32_t>(neighbors.size()) + 1);
    }
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (outbound[k].empty()) continue;
      shared_.states_transferred.fetch_add(outbound[k].size(),
                                           std::memory_order_relaxed);
      shared_.messages_sent.fetch_add(1, std::memory_order_relaxed);
      shared_.net.send(neighbors[k], {std::move(outbound[k]), id_});
    }
  }

  // Round-robin load sharing toward the neighbourhood average (§3.3).
  std::uint64_t total = open_.size();
  std::vector<std::uint64_t> nb_sizes(neighbors.size());
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    nb_sizes[k] =
        shared_.status[neighbors[k]].open_size.load(std::memory_order_acquire);
    total += nb_sizes[k];
  }
  const std::uint64_t average = total / (neighbors.size() + 1);
  if (open_.size() > average + 1) {
    std::size_t surplus = open_.size() - average;
    std::vector<std::uint32_t> deficit;
    for (std::size_t k = 0; k < neighbors.size(); ++k)
      if (nb_sizes[k] < average) deficit.push_back(neighbors[k]);
    if (!deficit.empty()) {
      const auto extracted =
          open_.extract_surplus(std::min<std::size_t>(surplus, 256));
      std::vector<std::vector<StateMsg>> outbound(deficit.size());
      for (const StateIndex idx : extracted) {
        outbound[rr_cursor_ % deficit.size()].push_back(
            {assignment_sequence(idx), arena_.hot(idx).f});
        ++rr_cursor_;
      }
      for (std::size_t k = 0; k < deficit.size(); ++k) {
        if (outbound[k].empty()) continue;
        shared_.states_transferred.fetch_add(outbound[k].size(),
                                             std::memory_order_relaxed);
        shared_.messages_sent.fetch_add(1, std::memory_order_relaxed);
        shared_.net.send(deficit[k], {std::move(outbound[k]), id_});
      }
    }
  }

  drain_mailbox(std::chrono::microseconds(0));
  publish();
}

void Ppe::initial_distribution() {
  // Every PPE deterministically expands from the initial state until at
  // least q candidate states exist (or the space is exhausted), then takes
  // its share by the paper's interleaving — identical computation on every
  // PPE, so no startup messages are needed.
  const std::uint32_t q = shared_.config.num_ppes;

  State root;
  root.sig = core::root_signature();
  root.parent = kNoParent;
  const StateIndex root_idx = arena_.add(root);
  seen_.insert(root.sig);

  OpenList frontier;
  frontier.push({arena_.hot(root_idx).f, 0.0, root_idx});
  while (!frontier.empty() && frontier.size() < q) {
    const OpenEntry e = frontier.pop();
    if (arena_.hot(e.index).depth() == shared_.problem.num_nodes()) {
      shared_.offer_incumbent(arena_.hot(e.index).g,
                              assignment_sequence(e.index));
      continue;
    }
    expander_.expand(arena_, seen_, e.index, prune_bound(),
                     [&](StateIndex idx, const State& child) {
                       if (child.depth == shared_.problem.num_nodes()) {
                         shared_.offer_incumbent(child.g,
                                                 assignment_sequence(idx));
                         return;
                       }
                       frontier.push({child.f(), child.g, idx});
                     });
  }

  // Deterministic total order: (f, -g, arena index).
  std::vector<OpenEntry> entries;
  while (!frontier.empty()) entries.push_back(frontier.pop());

  // Interleaved hand-out: 1st -> PPE 0, 2nd -> PPE q-1, 3rd -> PPE 1,
  // 4th -> PPE q-2, ...; extras round-robin (paper §3.3 case analysis).
  for (std::size_t j = 0; j < entries.size(); ++j) {
    std::uint32_t owner;
    if (j < q) {
      owner = (j % 2 == 0) ? static_cast<std::uint32_t>(j / 2)
                           : q - 1 - static_cast<std::uint32_t>(j / 2);
    } else {
      owner = static_cast<std::uint32_t>(j - q) % q;
    }
    if (owner == id_) {
      const core::HotState& s = arena_.hot(entries[j].index);
      open_.push(s.f, s.g, s.h(), entries[j].index);
    }
  }
  publish();
}

void Ppe::run() {
  initial_distribution();

  period_counter_ = 0;
  period_ = period_for_round(round_);

  // The shared kernel owns limits/cancellation (polled every 64 pops, as
  // the hand-rolled loop did) against the shared run timer; the memory cap
  // is a per-PPE share: each PPE only sees its own arena, and arenas are
  // append-only so the shares sum to the cap.
  const auto& cfg = shared_.config.search;
  KernelGuard::Limits limits{cfg.max_expansions, cfg.time_budget_ms, 0};
  if (cfg.max_memory_bytes)
    limits.max_memory_bytes = std::max<std::size_t>(
        1, cfg.max_memory_bytes / shared_.config.num_ppes);
  KernelGuard guard(cfg.controls, limits, shared_.timer, /*poll_period=*/64);

  if (const auto hit = core::run_search_loop(guard, *this)) {
    int code = 0;
    switch (*hit) {
      case core::Termination::kExpansionLimit: code = 1; break;
      case core::Termination::kTimeLimit: code = 2; break;
      case core::Termination::kCancelled: code = 3; break;
      case core::Termination::kMemoryLimit: code = 4; break;
      default: break;
    }
    shared_.abort_reason.store(code);
    shared_.done.store(true);
  }
  shared_.status[id_].idle.store(true, std::memory_order_release);
}

}  // namespace

ParallelResult parallel_astar_schedule(const SearchProblem& problem,
                                       const ParallelConfig& config) {
  OPTSCHED_REQUIRE(config.num_ppes >= 1, "need at least one PPE");
  OPTSCHED_REQUIRE(config.search.h_weight >= 1.0, "h_weight must be >= 1");
  OPTSCHED_REQUIRE(config.search.epsilon >= 0.0, "epsilon must be >= 0");
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());

  Shared shared(problem, config);
  std::vector<std::unique_ptr<Ppe>> ppes;
  ppes.reserve(config.num_ppes);
  for (std::uint32_t i = 0; i < config.num_ppes; ++i)
    ppes.push_back(std::make_unique<Ppe>(shared, i));

  {
    std::vector<std::thread> threads;
    threads.reserve(config.num_ppes);
    for (auto& ppe : ppes)
      threads.emplace_back([&ppe] { ppe->run(); });
    for (auto& t : threads) t.join();
  }

  // Assemble the result from the shared incumbent.
  ParallelResult out{
      core::SearchResult{sched::Schedule(problem.graph(), problem.machine(),
                                         problem.comm()),
                         0.0, false, 1.0, core::Termination::kOptimal, {}},
      {}};
  {
    const std::lock_guard<std::mutex> lock(shared.incumbent_mu);
    if (shared.incumbent_seq.empty()) {
      out.result.schedule = problem.upper_bound_schedule();
    } else {
      for (const auto& [n, p] : shared.incumbent_seq)
        out.result.schedule.append(n, p);
    }
  }
  sched::validate(out.result.schedule);
  out.result.makespan = out.result.schedule.makespan();

  const int abort_reason = shared.abort_reason.load();
  const double eps = config.search.epsilon;
  if (abort_reason == 1) {
    out.result.reason = core::Termination::kExpansionLimit;
  } else if (abort_reason == 2) {
    out.result.reason = core::Termination::kTimeLimit;
  } else if (abort_reason == 3) {
    out.result.reason = core::Termination::kCancelled;
  } else if (abort_reason == 4) {
    out.result.reason = core::Termination::kMemoryLimit;
  } else if (config.naive_termination) {
    // First-goal termination has no quality guarantee (kept for fidelity).
    out.result.reason = core::Termination::kBoundedOptimal;
    out.result.proved_optimal = false;
    out.result.bound_factor = kInf;
  } else {
    const bool exact = eps == 0.0 && config.search.h_weight == 1.0;
    out.result.proved_optimal = true;
    out.result.bound_factor =
        exact ? 1.0 : (1.0 + eps) * std::max(1.0, config.search.h_weight);
    out.result.reason = exact ? core::Termination::kOptimal
                              : core::Termination::kBoundedOptimal;
  }

  for (const auto& ppe : ppes) {
    out.result.stats.absorb(ppe->stats());
    out.result.stats.peak_memory_bytes += ppe->memory_bytes();
    out.result.stats.arena_hot_bytes += ppe->arena_hot_bytes();
    out.result.stats.arena_cold_bytes += ppe->arena_cold_bytes();
    out.par_stats.expanded_per_ppe.push_back(ppe->stats().expanded);
  }
  out.result.stats.elapsed_seconds = shared.timer.seconds();
  out.par_stats.messages_sent = shared.messages_sent.load();
  out.par_stats.states_transferred = shared.states_transferred.load();
  out.par_stats.comm_rounds = shared.comm_rounds.load();
  return out;
}

ParallelResult parallel_astar_schedule(const dag::TaskGraph& graph,
                                       const machine::Machine& machine,
                                       const ParallelConfig& config) {
  const SearchProblem problem(graph, machine);
  return parallel_astar_schedule(problem, config);
}

}  // namespace optsched::par
