#include "parallel/parallel_astar.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "core/bucket_queue.hpp"
#include "core/open_list.hpp"
#include "core/search_kernel.hpp"
#include "core/signature.hpp"
#include "parallel/dist_transport.hpp"
#include "util/timer.hpp"

namespace optsched::par {

using core::Expander;
using core::kNoParent;
using core::KernelGuard;
using core::OpenEntry;
using core::OpenList;
using core::SearchProblem;
using core::State;
using core::StateArena;
using core::StateIndex;
using core::StepAction;
using dag::NodeId;
using machine::ProcId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-PPE OPEN list: a 4-ary heap or bucket queue for exact A* (the
/// instance-wide QueueChoice decides, same rules as the serial engine so
/// measured speedups compare like with like), an ordered set with the
/// FOCAL selection rule for Aε*.
class PpeOpen {
 public:
  /// One frontier entry for batched pushes.
  struct Item {
    double f, g, h;
    StateIndex index;
  };

  PpeOpen(double epsilon, const core::KeyScale& ks,
          const core::QueueChoice& choice)
      : eps_(epsilon), ks_(&ks), choice_(&choice) {}

  /// Allocate the bucket calendar (when selected) from the calling
  /// thread: Ppe::run() calls this after pinning, so the array is
  /// first-touched where the PPE executes. Must precede any push.
  void prepare() {
    if (eps_ == 0 && choice_->use_bucket && !bucket_)
      bucket_.emplace(*ks_, choice_->max_f);
  }

  bool empty() const {
    if (bucket_) return bucket_->empty();
    return eps_ > 0 ? set_.empty() : heap_.empty();
  }

  std::size_t size() const {
    if (bucket_) return bucket_->size();
    return eps_ > 0 ? set_.size() : heap_.size();
  }

  double min_f() const {
    if (empty()) return kInf;
    if (bucket_) return bucket_->top().f;
    return eps_ > 0 ? set_.begin()->f : heap_.top().f;
  }

  void push(double f, double g, double h, StateIndex idx) {
    if (bucket_)
      bucket_->push({f, g, idx});
    else if (eps_ > 0)
      set_.insert({f, g, h, idx});
    else
      heap_.push({f, g, idx});
  }

  /// Batched insert: one O(n) heapify for the heap case
  /// (OpenList::push_batch) — used for transferred/stolen state batches.
  void push_batch(const std::vector<Item>& items) {
    if (eps_ > 0 && !bucket_) {
      for (const Item& it : items) set_.insert({it.f, it.g, it.h, it.index});
      return;
    }
    std::vector<OpenEntry> entries;
    entries.reserve(items.size());
    for (const Item& it : items) entries.push_back({it.f, it.g, it.index});
    if (bucket_)
      bucket_->push_batch(entries);
    else
      heap_.push_batch(entries);
  }

  /// Remove and return the next state to expand (A*: min (f, -g, index);
  /// Aε*: min h within the f <= (1+eps)*fmin prefix, scan capped — any
  /// FOCAL member preserves the guarantee; see core/astar.cpp).
  StateIndex pop_best() {
    OPTSCHED_ASSERT(!empty());
    if (bucket_) return bucket_->pop().index;
    if (eps_ == 0) return heap_.pop().index;
    constexpr int kFocalScanCap = 64;
    const double bound = (1.0 + eps_) * set_.begin()->f + 1e-12;
    auto chosen = set_.begin();
    int scanned = 0;
    for (auto it = set_.begin();
         it != set_.end() && it->f <= bound && scanned < kFocalScanCap;
         ++it, ++scanned) {
      const bool better =
          it->h < chosen->h || (it->h == chosen->h && it->g > chosen->g);
      if (better) chosen = it;
    }
    const StateIndex idx = chosen->index;
    set_.erase(chosen);
    return idx;
  }

  /// Remove up to `count` entries biased away from the best (load
  /// sharing). `live_bound` is the incumbent bound *at extraction time*:
  /// the underlying queues re-apply it so a donation band computed before
  /// the incumbent tightened cannot ship dead states (f >= bound).
  std::vector<StateIndex> extract_surplus(std::size_t count,
                                          double live_bound) {
    std::vector<StateIndex> out;
    if (bucket_) {
      for (const auto& e : bucket_->extract_surplus(count, live_bound))
        out.push_back(e.index);
      return out;
    }
    if (eps_ == 0) {
      for (const auto& e : heap_.extract_surplus(count, live_bound))
        out.push_back(e.index);
      return out;
    }
    while (out.size() < count && set_.size() > 1) {
      auto last = std::prev(set_.end());
      out.push_back(last->index);
      set_.erase(last);
    }
    return out;
  }

  /// Remove the up-to-`count` best entries (work-stealing donations).
  std::vector<StateIndex> extract_best(std::size_t count) {
    std::vector<StateIndex> out;
    while (out.size() < count && !empty()) out.push_back(pop_best());
    return out;
  }

  void clear() {
    if (bucket_) bucket_->clear();
    heap_.clear();
    set_.clear();
  }

  /// Entry storage (heap capacity, or node estimate for the FOCAL set —
  /// same factor as the serial Aε*'s accounting in core/astar.cpp).
  std::size_t memory_bytes() const {
    return (bucket_ ? bucket_->memory_bytes() : 0) + heap_.memory_bytes() +
           set_.size() * sizeof(Entry) * 3;
  }

  /// Widest live [lo, hi] bucket-key span observed (0 in heap/FOCAL mode).
  std::uint64_t peak_span() const {
    return bucket_ ? bucket_->peak_span() : 0;
  }

 private:
  struct Entry {
    double f, g, h;
    StateIndex index;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.f != b.f) return a.f < b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.index < b.index;
    }
  };

  double eps_;
  const core::KeyScale* ks_;
  const core::QueueChoice* choice_;
  std::optional<core::BucketQueue> bucket_;  ///< engaged by prepare()
  OpenList heap_;
  std::set<Entry> set_;
};

struct Shared {
  Shared(const SearchProblem& p, const ParallelConfig& c)
      : problem(p),
        config(c),
        queue_choice(core::choose_queue(p, c.search)),
        incumbent(std::min(p.upper_bound(), c.seed_upper_bound)),
        transport(make_transport(c, p, done)) {}

  const SearchProblem& problem;
  const ParallelConfig& config;
  /// Instance-wide OPEN-structure decision, identical for every PPE (same
  /// eligibility rules as the serial engine — core::choose_queue).
  core::QueueChoice queue_choice;
  std::atomic<bool> done{false};  ///< before transport: it keeps a pointer
  core::SharedIncumbent<std::vector<std::pair<NodeId, ProcId>>> incumbent;
  std::unique_ptr<Transport> transport;
  std::atomic<std::uint32_t> pins_applied{0};

  /// 0 none, 1 expansions, 2 time, 3 cancelled, 4 memory.
  std::atomic<int> abort_reason{0};
  std::atomic<std::uint64_t> total_expanded{0};
  util::Timer timer;

  /// Register a complete schedule; keeps the best across all PPEs.
  void offer_incumbent(double len,
                       std::vector<std::pair<NodeId, ProcId>> seq) {
    if (incumbent.offer(len, std::move(seq)) && config.naive_termination)
      done.store(true);
  }

  double incumbent_bound() const { return incumbent.bound(); }

  /// Progress callbacks are serialized here so PPEs can report from their
  /// own threads without requiring a thread-safe user callback.
  std::mutex progress_mu;
  core::ProgressGate progress_gate{config.search.controls};  ///< ditto

  void maybe_progress() {
    const auto& controls = config.search.controls;
    if (!controls.progress) return;  // cheap pre-check before locking
    const std::uint64_t expanded =
        total_expanded.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(progress_mu);
    if (!progress_gate.open(expanded)) return;
    const double lower_bound = transport->global_lower_bound();
    controls.progress({expanded, lower_bound == kInf ? 0.0 : lower_bound,
                       incumbent_bound(), timer.seconds()});
  }
};

/// One search worker. The main loop is the shared kernel
/// (core/search_kernel.hpp) instantiated over this PPE's thread-local
/// frontier/arena; Ppe itself is the kernel policy, and doubles as the
/// PpeHost the transport endpoint manipulates.
class Ppe final : public PpeHost {
 public:
  Ppe(Shared& shared, std::uint32_t id)
      : shared_(shared),
        id_(id),
        expander_(shared.problem, shared.config.search),
        import_ctx_(shared.problem),
        import_scratch_(2 * std::size_t{shared.problem.num_nodes()}, 0.0),
        import_finish_(shared.problem.num_nodes(), 0.0),
        import_proc_of_(shared.problem.num_nodes(), machine::kInvalidProc),
        import_proc_ready_(shared.problem.num_procs(), 0.0),
        open_(shared.config.search.epsilon, shared.problem.key_scale(),
              shared.queue_choice),
        link_(shared.transport->connect(id)),
        progress_gate_(shared.config.search.controls) {}

  void run();

  const core::ExpandStats& stats() const { return expander_.stats(); }

  /// This PPE's search-state memory (arena + OPEN list + its share of the
  /// transport's structures — the local SEEN set or the sharded table).
  /// Arena and dedup structures only grow, and OPEN is small next to
  /// them, so the end-of-run value is within one OPEN list of the peak.
  std::size_t memory_bytes() const {
    return arena_.memory_bytes() + open_.memory_bytes() +
           link_->memory_bytes();
  }
  std::size_t arena_hot_bytes() const { return arena_.hot_memory_bytes(); }
  std::size_t arena_cold_bytes() const { return arena_.cold_memory_bytes(); }
  std::uint64_t bucket_peak() const { return open_.peak_span(); }

  // ---- kernel policy interface -------------------------------------------

  bool keep_searching() const {
    return !shared_.done.load(std::memory_order_acquire);
  }

  bool pop(StateIndex& out) {
    // Fast-drop a fully dominated frontier (everything >= incumbent).
    if (!open_.empty() && dominated()) open_.clear();
    if (open_.empty()) return false;
    link_->mark_busy();
    out = open_.pop_best();
    return true;
  }

  /// Empty frontier: the transport's refill/steal/quiescence dance.
  /// Always continues the loop — either the transport refills OPEN, or
  /// global quiescence flips the done flag keep_searching() observes.
  bool on_empty() {
    link_->on_empty(*this);
    return true;
  }

  StepAction classify(StateIndex idx) {
    const core::HotState& s = arena_.hot(idx);
    if (s.depth() == shared_.problem.num_nodes()) return StepAction::kGoal;
    if (exact() && s.f >= shared_.incumbent_bound() - 1e-9)
      return StepAction::kSkip;  // stale
    return StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    shared_.offer_incumbent(arena_.hot(idx).g, assignment_sequence(idx));
  }

  void expand(StateIndex idx) {
    LinkSeen seen{link_.get()};
    expander_.expand(arena_, seen, idx, prune_bound(),
                     [&](StateIndex child_idx, const State& child) {
                       accept_child(child_idx, child);
                     });
    shared_.total_expanded.fetch_add(1, std::memory_order_relaxed);
  }

  void after_expand() { link_->after_expand(*this); }

  std::uint64_t expanded_count() const {
    return shared_.total_expanded.load(std::memory_order_relaxed);
  }

  std::size_t memory_now() const { return memory_bytes(); }

  /// Progress goes through the shared serialized reporter; the local gate
  /// only bounds how often this PPE takes the shared lock.
  void maybe_progress(KernelGuard&) {
    if (progress_gate_.open(expanded_count())) shared_.maybe_progress();
  }

  // ---- PpeHost interface (called by the transport) -----------------------

  std::uint32_t id() const override { return id_; }
  std::size_t frontier_size() const override { return open_.size(); }
  double frontier_min_f() const override { return open_.min_f(); }

  /// Is this PPE's frontier unable to improve on the incumbent?
  bool dominated() const override {
    const double inc = shared_.incumbent_bound();
    const double fmin = open_.min_f();
    if (exact()) return fmin >= inc - 1e-9;
    return inc <= (1.0 + shared_.config.search.epsilon) * fmin + 1e-9;
  }

  StateIndex pop_best() override { return open_.pop_best(); }

  void push_index(StateIndex idx) override {
    const core::HotState& s = arena_.hot(idx);
    open_.push(s.f, s.g, s.h(), idx);
  }

  void push_batch(const std::vector<StateIndex>& indices) override {
    std::vector<PpeOpen::Item> items;
    items.reserve(indices.size());
    for (const StateIndex idx : indices) {
      const core::HotState& s = arena_.hot(idx);
      items.push_back({s.f, s.g, s.h(), idx});
    }
    open_.push_batch(items);
  }

  std::vector<StateIndex> extract_surplus(std::size_t n) override {
    // Re-read the shared incumbent at extraction time: the donation band a
    // transport computed from an earlier frontier snapshot may predate a
    // bound tightened by another PPE's goal, and exact search must never
    // donate states that bound has already killed.
    return open_.extract_surplus(n, exact() ? shared_.incumbent_bound()
                                            : kInf);
  }

  std::vector<StateIndex> extract_best(std::size_t n) override {
    return open_.extract_best(n);
  }

  StateMsg serialize(StateIndex idx) const override {
    return {assignment_sequence(idx), arena_.hot(idx).f};
  }

  void import_batch(const std::vector<StateMsg>& msgs) override {
    std::vector<PpeOpen::Item> items;
    items.reserve(msgs.size());
    for (const StateMsg& msg : msgs)
      if (const auto item = import_one(msg)) items.push_back(*item);
    open_.push_batch(items);
  }

  std::vector<StateIndex> expand_collect(StateIndex idx) override {
    std::vector<StateIndex> children;
    LinkSeen seen{link_.get()};
    expander_.expand(arena_, seen, idx, prune_bound(),
                     [&](StateIndex child_idx, const State& child) {
                       if (child.depth == shared_.problem.num_nodes()) {
                         shared_.offer_incumbent(
                             child.g, assignment_sequence(child_idx));
                         return;
                       }
                       children.push_back(child_idx);
                     });
    shared_.total_expanded.fetch_add(1, std::memory_order_relaxed);
    return children;
  }

 private:
  /// The pluggable duplicate-detection probe handed to the Expander: the
  /// transport decides whether it is a PPE-local set or the global
  /// sharded table.
  struct LinkSeen {
    PpeLink* link;
    bool insert(const util::Key128& k) { return link->dedup_insert(k); }
  };

  /// Seed-time probe: the pre-distribution expansion must be identical on
  /// every PPE, so the probe result comes from a throwaway local set; the
  /// mode's real structure just records the signature.
  struct SeedSeen {
    util::FlatSet128* local;
    PpeLink* link;
    bool insert(const util::Key128& k) {
      const bool fresh = local->insert(k);
      if (fresh) link->record_signature(k);
      return fresh;
    }
  };

  bool exact() const { return shared_.config.search.epsilon == 0.0; }

  double prune_bound() const {
    if (shared_.config.search.prune.strict_upper_bound)
      return shared_.problem.upper_bound();
    return shared_.incumbent_bound();
  }

  std::vector<std::pair<NodeId, ProcId>> assignment_sequence(
      StateIndex idx) const {
    std::vector<std::pair<NodeId, ProcId>> seq;
    for (StateIndex i = idx; i != kNoParent; i = arena_.hot(i).parent) {
      if (arena_.hot(i).is_root()) break;
      seq.emplace_back(arena_.hot(i).node(), arena_.hot(i).proc());
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  }

  /// Push one freshly generated state, routing goals to the incumbent.
  void accept_child(StateIndex idx, const State& child) {
    if (child.depth == shared_.problem.num_nodes()) {
      shared_.offer_incumbent(child.g, assignment_sequence(idx));
      return;
    }
    open_.push(child.f(), child.g, child.h, idx);
  }

  /// Rebuild a transferred state in the local arena; returns the frontier
  /// entry to enqueue (nullopt for complete schedules, which go to the
  /// incumbent). Received states are always enqueued — dropping one could
  /// orphan it (see header comment).
  std::optional<PpeOpen::Item> import_one(const StateMsg& msg);

  void initial_distribution();

  Shared& shared_;
  std::uint32_t id_;
  Expander expander_;
  core::ExpansionContext import_ctx_;   ///< reused across imports
  std::vector<double> import_scratch_;  ///< h-evaluation scratch
  std::vector<double> import_finish_;   ///< replay scratch, ditto
  std::vector<ProcId> import_proc_of_;
  std::vector<double> import_proc_ready_;
  StateArena arena_;
  PpeOpen open_;
  std::unique_ptr<PpeLink> link_;
  core::ProgressGate progress_gate_;
};

std::optional<PpeOpen::Item> Ppe::import_one(const StateMsg& msg) {
  const auto& problem = shared_.problem;
  const auto& graph = problem.graph();
  const auto& machine = problem.machine();

  // Replay the assignment sequence, creating the chain of states locally.
  auto& finish = import_finish_;
  auto& proc_of = import_proc_of_;
  auto& proc_ready = import_proc_ready_;
  std::fill(finish.begin(), finish.end(), 0.0);
  std::fill(proc_of.begin(), proc_of.end(), machine::kInvalidProc);
  std::fill(proc_ready.begin(), proc_ready.end(), 0.0);

  StateIndex parent = kNoParent;
  util::Key128 sig = core::root_signature();
  double g = 0.0;
  std::uint32_t depth = 0;

  // The chain needs a local root to anchor replay for future expansions.
  State root;
  root.sig = sig;
  root.parent = kNoParent;
  parent = arena_.add(root);

  for (const auto& [node, proc] : msg.assignments) {
    double dat = 0.0;
    for (const auto& [par, cost] : graph.parents(node))
      dat = std::max(dat, finish[par] + machine.comm_delay(
                                            cost, proc_of[par], proc,
                                            problem.comm()));
    const double st = std::max(proc_ready[proc], dat);
    const double ft = st + machine.exec_time(graph.weight(node), proc);
    finish[node] = ft;
    proc_of[node] = proc;
    proc_ready[proc] = ft;
    g = std::max(g, ft);
    sig = core::extend_signature(sig, node, proc, ft);
    ++depth;

    State s;
    s.sig = sig;
    s.finish = ft;
    s.g = g;
    s.h = 0.0;  // interior-chain h is never read; the final h is below
    s.parent = parent;
    s.node = node;
    s.proc = proc;
    s.depth = depth;
    parent = arena_.add(s);
  }
  OPTSCHED_ASSERT(depth == msg.assignments.size());

  if (depth == shared_.problem.num_nodes()) {
    shared_.offer_incumbent(g, msg.assignments);
    return std::nullopt;
  }

  // Recompute h for the transferred frontier state. msg.f lower-bounds the
  // recomputed f only up to the sender's h function, which is identical —
  // so the values must agree.
  import_ctx_.move_to(arena_, parent);
  const double h =
      core::evaluate_h(shared_.config.search.h, problem, import_ctx_.view(),
                       import_scratch_.data()) *
      shared_.config.search.h_weight;
  arena_.patch_h(parent, h);  // so re-sharing this state sends the right f
  OPTSCHED_ASSERT(std::abs((g + h) - msg.f) < 1e-6);

  link_->record_signature(sig);  // best effort; duplicates tolerated
  return PpeOpen::Item{g + h, g, h, parent};
}

void Ppe::initial_distribution() {
  // Every PPE deterministically expands from the initial state until at
  // least q candidate states exist (or the space is exhausted), then takes
  // its share by the transport's partition strategy — identical
  // computation on every PPE, so no startup messages are needed.
  const std::uint32_t q = shared_.config.num_ppes;
  const PartitionStrategy& partition = shared_.transport->partition();

  // Seed pruning uses the *static* upper bound (tightened by a warm-start
  // seed, which is also fixed before the run), never the live incumbent:
  // a goal found by a fast-seeding PPE would otherwise shrink a slow
  // seeder's bound mid-seed, its frontier ranks would shift, and the
  // rank-based interleave hand-out could orphan a state no PPE owns
  // (breaking the optimality proof). The kept-but-dominated extras are
  // filtered by the normal incumbent checks right after seeding.
  const double seed_bound = std::min(shared_.problem.upper_bound(),
                                     shared_.config.seed_upper_bound);

  util::FlatSet128 seed_local(1 << 8);
  SeedSeen seed_seen{&seed_local, link_.get()};

  State root;
  root.sig = core::root_signature();
  root.parent = kNoParent;
  const StateIndex root_idx = arena_.add(root);
  seed_seen.insert(root.sig);

  OpenList frontier;
  frontier.push({arena_.hot(root_idx).f, 0.0, root_idx});
  while (!frontier.empty() && frontier.size() < q) {
    const OpenEntry e = frontier.pop();
    if (arena_.hot(e.index).depth() == shared_.problem.num_nodes()) {
      shared_.offer_incumbent(arena_.hot(e.index).g,
                              assignment_sequence(e.index));
      continue;
    }
    expander_.expand(arena_, seed_seen, e.index, seed_bound,
                     [&](StateIndex idx, const State& child) {
                       if (child.depth == shared_.problem.num_nodes()) {
                         shared_.offer_incumbent(child.g,
                                                 assignment_sequence(idx));
                         return;
                       }
                       frontier.push({child.f(), child.g, idx});
                     });
  }

  // Deterministic total order: (f, -g, arena index).
  std::vector<OpenEntry> entries;
  while (!frontier.empty()) entries.push_back(frontier.pop());

  for (std::size_t j = 0; j < entries.size(); ++j) {
    if (partition.owner_of(j, arena_.sig(entries[j].index), q) != id_)
      continue;
    const core::HotState& s = arena_.hot(entries[j].index);
    open_.push(s.f, s.g, s.h(), entries[j].index);
  }
  link_->publish(open_.min_f(), open_.size());
}

void Ppe::run() {
  // Placement first, allocation second: pinning before the frontier/arena
  // pages are first-touched places them on the memory local to the CPU
  // this PPE will run on (see parallel/placement.hpp).
  if (pin_current_thread(shared_.config.pin, id_, shared_.config.num_ppes))
    shared_.pins_applied.fetch_add(1, std::memory_order_relaxed);
  open_.prepare();  // bucket calendar, when selected
  arena_.reserve(std::size_t{1} << 12);
  link_->on_thread_start();

  initial_distribution();

  // The shared kernel owns limits/cancellation (polled every 64 pops, as
  // the hand-rolled loop did) against the shared run timer; the memory cap
  // is a per-PPE share: each PPE only sees its own arena plus its share of
  // the transport's structures, and both only grow, so the shares sum to
  // the cap.
  const auto& cfg = shared_.config.search;
  KernelGuard::Limits limits{cfg.max_expansions, cfg.time_budget_ms, 0};
  if (cfg.max_memory_bytes)
    limits.max_memory_bytes = std::max<std::size_t>(
        1, cfg.max_memory_bytes / shared_.config.num_ppes);
  KernelGuard guard(cfg.controls, limits, shared_.timer, /*poll_period=*/64);

  if (const auto hit = core::run_search_loop(guard, *this)) {
    int code = 0;
    switch (*hit) {
      case core::Termination::kExpansionLimit: code = 1; break;
      case core::Termination::kTimeLimit: code = 2; break;
      case core::Termination::kCancelled: code = 3; break;
      case core::Termination::kMemoryLimit: code = 4; break;
      default: break;
    }
    shared_.abort_reason.store(code);
    shared_.done.store(true);
  }
  link_->publish(open_.min_f(), open_.size());
  // Final idle mark so a quiescence check by a straggler sees this PPE
  // parked.
  link_->mark_idle();
}

/// Satellite fix (ws-mode PPE collapse on tiny instances): dry-run the
/// deterministic seed expansion to measure how large the initial frontier
/// gets, and cap the PPE count at what that frontier can feed — one steal
/// batch per PPE. Without this, 8 PPEs fight over a frontier of a dozen
/// states and most spend the whole run stealing each other's leftovers
/// (BENCH_pr5 ws expanded_per_ppe on v=12: [389, 212, 46, 18, 16, 12, 3,
/// 3]). The measurement is a pure function of (problem, config), so the
/// clamped run stays deterministic; its expansions are thrown away and
/// bounded by 4 * num_ppes * steal_batch pops.
std::uint32_t measure_effective_ppes(const SearchProblem& problem,
                                     const ParallelConfig& config) {
  if (config.mode != TransportMode::kWorkStealing || config.num_ppes <= 1)
    return config.num_ppes;

  struct LocalSeen {
    util::FlatSet128* set;
    bool insert(const util::Key128& k) { return set->insert(k); }
  };

  const std::size_t target =
      static_cast<std::size_t>(config.num_ppes) * config.steal_batch;
  const std::size_t max_pops = 4 * target;
  const double bound =
      std::min(problem.upper_bound(), config.seed_upper_bound);

  Expander expander(problem, config.search);
  StateArena arena;
  util::FlatSet128 local(1 << 8);
  LocalSeen seen{&local};

  State root;
  root.sig = core::root_signature();
  root.parent = kNoParent;
  const StateIndex root_idx = arena.add(root);
  seen.insert(root.sig);

  OpenList frontier;
  frontier.push({arena.hot(root_idx).f, 0.0, root_idx});
  std::size_t pops = 0;
  while (!frontier.empty() && frontier.size() < target &&
         pops < max_pops) {
    const OpenEntry e = frontier.pop();
    ++pops;
    if (arena.hot(e.index).depth() == problem.num_nodes()) continue;
    expander.expand(arena, seen, e.index, bound,
                    [&](StateIndex idx, const State& child) {
                      if (child.depth == problem.num_nodes()) return;
                      frontier.push({child.f(), child.g, idx});
                    });
  }

  if (frontier.size() >= target) return config.num_ppes;
  const auto feedable = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, frontier.size() / config.steal_batch));
  return std::min(config.num_ppes, feedable);
}

}  // namespace

ParallelResult parallel_astar_schedule(const SearchProblem& problem,
                                       const ParallelConfig& config) {
  OPTSCHED_REQUIRE(config.num_ppes >= 1, "need at least one PPE");
  OPTSCHED_REQUIRE(config.search.h_weight >= 1.0, "h_weight must be >= 1");
  OPTSCHED_REQUIRE(config.search.epsilon >= 0.0, "epsilon must be >= 0");
  OPTSCHED_REQUIRE(config.steal_batch >= 1, "steal_batch must be >= 1");
  // The shard table is allocated eagerly, before any memory budget can
  // bite — refuse counts that could not possibly help.
  OPTSCHED_REQUIRE(config.shards <= (1u << 16),
                   "shards must be <= 65536 (0 = auto)");
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());

  // The distributed mode runs on its own multi-process harness, not the
  // in-process Transport substrate below.
  if (config.mode == TransportMode::kDistributed)
    return dist_astar_schedule(problem, config);

  // Run with the effective PPE count (see measure_effective_ppes); the
  // adjusted config must outlive the run — Shared keeps a reference.
  ParallelConfig run_config = config;
  run_config.num_ppes = measure_effective_ppes(problem, config);

  Shared shared(problem, run_config);
  std::vector<std::unique_ptr<Ppe>> ppes;
  ppes.reserve(run_config.num_ppes);
  for (std::uint32_t i = 0; i < run_config.num_ppes; ++i)
    ppes.push_back(std::make_unique<Ppe>(shared, i));

  {
    std::vector<std::thread> threads;
    threads.reserve(run_config.num_ppes);
    for (auto& ppe : ppes)
      threads.emplace_back([&ppe] { ppe->run(); });
    for (auto& t : threads) t.join();
  }

  // Assemble the result from the shared incumbent.
  ParallelResult out{
      core::SearchResult{sched::Schedule(problem.graph(), problem.machine(),
                                         problem.comm()),
                         0.0, false, 1.0, core::Termination::kOptimal, {}},
      {}};
  {
    const auto [len, seq] = shared.incumbent.snapshot();
    (void)len;  // the schedule recomputes its makespan exactly
    if (seq.empty()) {
      // No goal beat the initial incumbent; that bound came from the
      // static upper-bound schedule or the warm-start seed, whichever
      // was tighter.
      if (config.seed_schedule &&
          config.seed_schedule->makespan() <= problem.upper_bound())
        out.result.schedule = *config.seed_schedule;
      else
        out.result.schedule = problem.upper_bound_schedule();
    } else {
      for (const auto& [n, p] : seq) out.result.schedule.append(n, p);
    }
  }
  sched::validate(out.result.schedule);
  out.result.makespan = out.result.schedule.makespan();

  const int abort_reason = shared.abort_reason.load();
  const double eps = config.search.epsilon;
  if (abort_reason == 1) {
    out.result.reason = core::Termination::kExpansionLimit;
  } else if (abort_reason == 2) {
    out.result.reason = core::Termination::kTimeLimit;
  } else if (abort_reason == 3) {
    out.result.reason = core::Termination::kCancelled;
  } else if (abort_reason == 4) {
    out.result.reason = core::Termination::kMemoryLimit;
  } else if (config.naive_termination) {
    // First-goal termination has no quality guarantee (kept for fidelity).
    out.result.reason = core::Termination::kBoundedOptimal;
    out.result.proved_optimal = false;
    out.result.bound_factor = kInf;
  } else {
    const bool exact = eps == 0.0 && config.search.h_weight == 1.0;
    out.result.proved_optimal = true;
    out.result.bound_factor =
        exact ? 1.0 : (1.0 + eps) * std::max(1.0, config.search.h_weight);
    out.result.reason = exact ? core::Termination::kOptimal
                              : core::Termination::kBoundedOptimal;
  }

  for (const auto& ppe : ppes) {
    out.result.stats.absorb(ppe->stats());
    out.result.stats.peak_memory_bytes += ppe->memory_bytes();
    out.result.stats.arena_hot_bytes += ppe->arena_hot_bytes();
    out.result.stats.arena_cold_bytes += ppe->arena_cold_bytes();
    out.result.stats.bucket_peak =
        std::max(out.result.stats.bucket_peak, ppe->bucket_peak());
    out.par_stats.expanded_per_ppe.push_back(ppe->stats().expanded);
  }
  if (eps > 0.0) {
    out.result.stats.queue_kind = "focal";
    out.result.stats.queue_fallback =
        config.search.queue != core::QueueSelect::kHeap ? "focal" : "";
  } else {
    out.result.stats.queue_kind =
        shared.queue_choice.use_bucket ? "bucket" : "heap";
    out.result.stats.queue_fallback = shared.queue_choice.fallback;
  }
  out.result.stats.elapsed_seconds = shared.timer.seconds();
  out.par_stats.pins_applied =
      shared.pins_applied.load(std::memory_order_relaxed);
  shared.transport->collect(out.par_stats);
  out.par_stats.requested_ppes = config.num_ppes;
  out.par_stats.effective_ppes = run_config.num_ppes;
  return out;
}

ParallelResult parallel_astar_schedule(const dag::TaskGraph& graph,
                                       const machine::Machine& machine,
                                       const ParallelConfig& config) {
  const SearchProblem problem(graph, machine);
  return parallel_astar_schedule(problem, config);
}

}  // namespace optsched::par
