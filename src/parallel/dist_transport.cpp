// Coordinator and worker of the distributed HDA* harness — see
// dist_transport.hpp for the architecture and dist_protocol.hpp for the
// wire format.
//
// Concurrency layout, coordinator side: one reader thread and one writer
// thread per worker plus the main event loop. Readers block in
// read_line() and convert every frame (or EOF, or a socket error) into a
// typed event on one queue; writers drain a per-worker outgoing deque so
// the event loop never blocks on a full socket buffer while relaying a
// batch (two workers flooding each other through a single-threaded relay
// would deadlock). The event loop owns all search logic — incumbent,
// budgets, termination — so none of it needs locks.
//
// Worker side is single-threaded: drain frames (non-blocking), expand
// the best local state, ship remote-owned children in batches, repeat;
// park in poll() when the frontier is empty or dominated.
//
// Wire path (PR 10): under the negotiated wire v2 the hot frames travel
// in the binary framing of parallel/wire.hpp — delta-encoded batches the
// coordinator relays verbatim (it reads only the destination varint),
// binary status/bound, a per-destination send-side duplicate filter, an
// adaptive size/age outbox flush, gathered writev-style socket writes,
// and exponential idle-status backoff. wire=v1 keeps the PR 9 JSON path
// bit-for-bit as the differential baseline. See DESIGN.md §11.
#include "parallel/dist_transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/expansion.hpp"
#include "core/heuristics.hpp"
#include "core/open_list.hpp"
#include "core/signature.hpp"
#include "parallel/dist_protocol.hpp"
#include "parallel/wire.hpp"
#include "util/assert.hpp"
#include "util/flat_set.hpp"
#include "util/jsonl.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

extern char** environ;

namespace optsched::par {

namespace {

using core::Expander;
using core::kNoParent;
using core::OpenEntry;
using core::OpenList;
using core::SearchProblem;
using core::State;
using core::StateArena;
using core::StateIndex;
using dag::NodeId;
using machine::ProcId;
using util::Json;
using util::UnixStream;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Worker/fd handshake variable; see spawn_worker() and the constructor
/// hook at the bottom.
constexpr const char* kWorkerEnv = "OPTSCHED_DIST_WORKER";

/// Frame cap for dist sockets. Init frames carry the whole instance and
/// batch frames carry steal_batch assignment sequences — far below this,
/// but well above the 1 MiB daemon default.
constexpr std::size_t kFrameCap = std::size_t{1} << 26;

/// Expansions between unsolicited status frames (liveness + budget
/// feedback; the Mattern counters ride along).
constexpr std::uint32_t kStatusPeriod = 128;

/// Idle-status exponential backoff (wire v2): first repeat idle status
/// waits this long, doubling up to the cap. The cap stays far below the
/// worker's 100 ms park timeout so the final status of a search is
/// never delayed meaningfully, while a worker being flooded with
/// duplicate imports collapses thousands of rcvd-only statuses into a
/// handful.
constexpr std::uint64_t kIdleBackoffStartUs = 500;
constexpr std::uint64_t kIdleBackoffCapUs = 8000;

/// Auto outbox flush threshold under wire v2 (states per destination).
constexpr std::uint32_t kAutoFlushStatesV2 = 256;

/// Same signature-hash ownership the ws mode uses for seed partitioning:
/// a pure function of the signature, so every process agrees on who owns
/// a state without communicating.
std::uint32_t owner_of_sig(const util::Key128& sig, std::uint32_t q) {
  return HashPartition{}.owner_of(0, sig, q);
}

std::uint64_t get_u64(const Json& j, const char* key) {
  j.at(key);  // required field: throw on absence rather than defaulting
  return j.get_u64(key, 0);
}

// ---- worker --------------------------------------------------------------

/// One worker process: owns its signature shard, expands from a plain
/// 4-ary heap (the bucket calendar's key-span accounting is not worth
/// re-plumbing per process; dist reports queue_kind = "heap").
class DistWorker {
 public:
  DistWorker(int fd, std::uint32_t rank) : stream_(fd), rank_(rank) {}

  int run() {
    try {
      Json hello;
      hello["t"] = "hello";
      hello["v"] = kWireVersion;
      hello["rank"] = rank_;
      send_json(hello);

      std::string line;
      if (!stream_.read_line(line, kFrameCap)) return 1;  // coordinator gone
      handle_init(Json::parse(line));

      // Fault-injection hook for the dist fault-matrix tests: a worker
      // whose rank matches dies without a word, exactly like a crash.
      if (const char* die = std::getenv("OPTSCHED_DIST_TEST_DIE"))
        if (static_cast<std::uint32_t>(std::atoi(die)) == rank_)
          ::raise(SIGKILL);

      main_loop();
      send_bye();
      return 0;
    } catch (const std::exception& e) {
      try {
        Json err;
        err["t"] = "err";
        err["msg"] = std::string(e.what());
        stream_.write_line(err.dump());
      } catch (...) {
      }
      return 1;
    }
  }

 private:
  /// Duplicate-detection probe handed to the Expander: remote-owned
  /// children always count as fresh (their owner dedups at import);
  /// locally-owned children go through the worker's own SEEN set.
  struct ShardSeen {
    DistWorker* w;
    bool insert(const util::Key128& k) {
      if (owner_of_sig(k, w->procs_) != w->rank_) return true;
      return w->seen_.insert(k);
    }
  };

  void handle_init(const Json& j) {
    OPTSCHED_REQUIRE(j.at("t").as_string() == "init", "expected init frame");
    OPTSCHED_REQUIRE(j.at("v").as_number() == kWireVersion,
                     "wire version mismatch between coordinator and worker");
    graph_ = graph_from_json(j.at("graph"));
    machine_.emplace(machine_from_json(j.at("machine")));
    const auto comm = static_cast<std::uint32_t>(j.at("comm").as_number());
    OPTSCHED_REQUIRE(comm <= 1, "unknown comm mode code");
    config_ = search_config_from_json(j.at("cfg"));
    procs_ = static_cast<std::uint32_t>(j.at("procs").as_number());
    OPTSCHED_REQUIRE(rank_ < procs_, "worker rank out of range");
    wire_ver_ = static_cast<std::uint32_t>(j.at("wire").as_number());
    OPTSCHED_REQUIRE(wire_ver_ == 1 || wire_ver_ == 2,
                     "unknown wire codec version");
    batch_size_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(j.at("batch").as_number()));
    flush_us_ = static_cast<std::uint64_t>(get_u64(j, "flush_us"));
    mem_cap_ = static_cast<std::size_t>(get_u64(j, "mem_bytes"));

    problem_.emplace(graph_, *machine_,
                     static_cast<machine::CommMode>(comm));
    expander_.emplace(*problem_, config_);
    import_ctx_.emplace(*problem_);
    import_scratch_.assign(2 * std::size_t{problem_->num_nodes()}, 0.0);
    import_finish_.assign(problem_->num_nodes(), 0.0);
    import_proc_of_.assign(problem_->num_nodes(), machine::kInvalidProc);
    import_proc_ready_.assign(problem_->num_procs(), 0.0);

    incumbent_ = problem_->upper_bound();
    if (!j.at("seed_bound").is_null())
      incumbent_ = std::min(incumbent_, j.at("seed_bound").as_number());

    outbox_.assign(procs_, {});
    enc_.assign(procs_, {});
    for (std::uint32_t k = 0; k < procs_; ++k) enc_[k].reset(k);
    send_filter_.assign(procs_, wire::SendFilter(std::size_t{1} << 14));
    arena_.reserve(std::size_t{1} << 12);
    seen_ = util::FlatSet128(std::size_t{1} << 10);

    // Only the root's owner seeds it; everyone else starts idle and gets
    // fed through imports. (With the hash partition the root lands on an
    // arbitrary rank — there is no coordinator-side seed expansion.)
    const util::Key128 root_sig = core::root_signature();
    if (owner_of_sig(root_sig, procs_) == rank_) {
      State root;
      root.sig = root_sig;
      root.parent = kNoParent;
      const StateIndex idx = arena_.add(root);
      seen_.insert(root_sig);
      open_.push({arena_.hot(idx).f, 0.0, idx});
    }
  }

  void main_loop() {
    std::uint32_t since_status = 0;
    while (!stop_) {
      drain_frames();
      if (stop_) break;
      if (halted_) {  // memory cap tripped: only answer frames
        wait_for_frame(100);
        continue;
      }
      // Age-based flush (wire v2): pending exports never sit longer than
      // flush_us_, so a neighbour starved for work is fed promptly even
      // when no outbox reaches the size threshold.
      if (wire_ver_ >= 2 && pending_states_ > 0 &&
          clock_.micros() - pending_since_ >=
              static_cast<std::int64_t>(flush_us_)) {
        flush_all();  // one synchronized cut: cheaper than per-owner
        pump_writes();  // staggering, which costs a gather write each
      }
      // Fast-drop a fully dominated frontier (heap top is min f).
      if (!open_.empty() && open_.top().f >= incumbent_ - 1e-9) open_.clear();
      if (open_.empty()) {
        flush_all();  // everything ships before the idle report — a
                      // quiescent stop must never strand outbox states
        int park_ms = 100;
        const bool owed =
            last_status_idle_ != 1 || last_status_rcvd_ != rcvd_batches_;
        if (owed) {
          // Exponential backoff on repeat idle statuses (v2): the first
          // report after going idle is immediate; a flood of duplicate
          // imports only bumps rcvd, and those reports coalesce under a
          // growing delay. v1 keeps the PR 9 behaviour (report every
          // change immediately).
          const auto waited =
              static_cast<std::uint64_t>(idle_backoff_.micros());
          if (wire_ver_ < 2 || waited >= idle_backoff_us_) {
            send_status(/*idle=*/true);
            idle_backoff_us_ =
                idle_backoff_us_ == 0
                    ? kIdleBackoffStartUs
                    : std::min(idle_backoff_us_ * 2, kIdleBackoffCapUs);
            idle_backoff_.reset();
          } else {
            // Wake in time to send the delayed report even if no frame
            // arrives — termination must not wait out the full park.
            park_ms = static_cast<int>((idle_backoff_us_ - waited) / 1000 + 1);
          }
        }
        pump_writes();
        wait_for_frame(park_ms);
        continue;
      }
      const OpenEntry e = open_.pop();
      if (e.f >= incumbent_ - 1e-9) continue;  // stale
      idle_backoff_us_ = 0;  // real work: next idle report is immediate
      expand(e.index);
      pump_writes();
      if (++since_status >= kStatusPeriod) {
        if (wire_ver_ < 2) flush_all();  // PR 9 cadence for the baseline
        send_status(/*idle=*/false);
        since_status = 0;
        check_memory();
        pump_writes();
      }
    }
  }

  void expand(StateIndex idx) {
    ShardSeen seen{this};
    const double bound = config_.prune.strict_upper_bound
                             ? problem_->upper_bound()
                             : incumbent_;
    expander_->expand(arena_, seen, idx, bound,
                      [&](StateIndex child_idx, const State& child) {
                        accept_child(child_idx, child);
                      });
  }

  void accept_child(StateIndex idx, const State& child) {
    if (child.depth == problem_->num_nodes()) {
      offer_goal(child.g, assignment_sequence(idx));
      return;
    }
    const std::uint32_t owner = owner_of_sig(child.sig, procs_);
    if (owner == rank_) {
      open_.push({child.f(), child.g, idx});
      return;
    }
    // Send-side duplicate filter (v2): a signature already shipped to
    // this owner is not re-serialized — the owner's SEEN check would
    // drop it anyway, so suppressing the resend only saves wire traffic
    // (DESIGN.md §11.3). v1 ships everything, as PR 9 did.
    if (wire_ver_ >= 2 && !send_filter_[owner].fresh(child.sig)) {
      ++deduped_;
      return;
    }
    // Remote-owned: serialize and batch. The local arena copy stays
    // behind as an unreferenced chain — cheaper than compacting, and it
    // is charged against this worker's memory share.
    if (wire_ver_ >= 2) {
      if (pending_states_ == 0) pending_since_ = clock_.micros();
      enc_[owner].append(assignment_sequence(idx), child.f());
      ++pending_states_;
      ++serialized_;
      if (enc_[owner].count() >= batch_size_) flush(owner);
    } else {
      outbox_[owner].push_back(
          state_msg_to_json({assignment_sequence(idx), child.f()}));
      ++serialized_;
      if (outbox_[owner].size() >= batch_size_) flush(owner);
    }
  }

  void offer_goal(double len,
                  std::vector<std::pair<NodeId, ProcId>> seq) {
    if (len >= incumbent_ - 1e-9) return;
    incumbent_ = len;  // a complete schedule is always a sound bound
    Json goal;
    goal["t"] = "goal";
    goal["len"] = len;
    goal["a"] = assignments_to_json(seq);
    send_json(goal);
  }

  std::vector<std::pair<NodeId, ProcId>> assignment_sequence(
      StateIndex idx) const {
    std::vector<std::pair<NodeId, ProcId>> seq;
    for (StateIndex i = idx; i != kNoParent; i = arena_.hot(i).parent) {
      if (arena_.hot(i).is_root()) break;
      seq.emplace_back(arena_.hot(i).node(), arena_.hot(i).proc());
    }
    std::reverse(seq.begin(), seq.end());
    return seq;
  }

  /// Append framed bytes to the outgoing gather queue (shipped by the
  /// next pump_writes()).
  void queue_frame(std::string bytes) {
    bytes_out_ += bytes.size();
    pending_writes_.push_back(std::move(bytes));
  }

  /// One JSON frame, shipped immediately (after anything already queued,
  /// preserving FIFO order on the stream).
  void send_json(const Json& j) {
    std::string line = j.dump();
    line += '\n';
    queue_frame(std::move(line));
    pump_writes();
  }

  /// Gathered write of every queued frame — many frames, one syscall.
  void pump_writes() {
    if (pending_writes_.empty()) return;
    stream_.write_gather(pending_writes_);
    pending_writes_.clear();
    ++flushes_;
  }

  void flush(std::uint32_t owner) {
    if (wire_ver_ >= 2) {
      auto& enc = enc_[owner];
      if (enc.empty()) return;
      pending_states_ -= enc.count();
      queue_frame(enc.take_frame());
    } else {
      if (outbox_[owner].empty()) return;
      Json states{Json::Array{}};
      for (auto& s : outbox_[owner]) states.push_back(std::move(s));
      outbox_[owner].clear();
      Json frame;
      frame["t"] = "batch";
      frame["to"] = owner;
      frame["states"] = std::move(states);
      std::string line = frame.dump();
      line += '\n';
      queue_frame(std::move(line));
    }
    ++batches_out_;
  }

  void flush_all() {
    for (std::uint32_t k = 0; k < procs_; ++k) flush(k);
  }


  void send_status(bool idle) {
    // Idle statuses are only worth a frame when something changed since
    // the last one — otherwise an idle worker would flood the
    // coordinator from its poll loop.
    if (idle && last_status_idle_ == 1 && last_status_rcvd_ == rcvd_batches_)
      return;
    max_open_ = std::max(max_open_, open_.size());
    if (wire_ver_ >= 2) {
      wire::StatusMsg s;
      s.idle = idle;
      s.rcvd = rcvd_batches_;
      s.exp = expander_->stats().expanded;
      s.open = open_.size();
      s.min_f = open_.empty() ? kInf : open_.top().f;
      queue_frame(wire::encode_status(s));
    } else {
      Json st;
      st["t"] = "status";
      st["idle"] = idle;
      st["rcvd"] = rcvd_batches_;
      st["exp"] = expander_->stats().expanded;
      st["open"] = static_cast<std::uint64_t>(open_.size());
      st["minf"] = open_.empty() ? Json() : Json(open_.top().f);
      std::string line = st.dump();
      line += '\n';
      queue_frame(std::move(line));
    }
    last_status_idle_ = idle ? 1 : 0;
    last_status_rcvd_ = rcvd_batches_;
  }

  void send_bye() {
    const auto& s = expander_->stats();
    Json bye;
    bye["t"] = "bye";
    bye["exp"] = s.expanded;
    bye["gen"] = s.generated;
    bye["dup"] = s.duplicates_dropped;
    bye["pruned"] = s.pruned_upper_bound;
    bye["skip_eq"] = s.skipped_equivalence;
    bye["skip_iso"] = s.skipped_isomorphism;
    bye["lf"] = s.loads_full;
    bye["li"] = s.loads_incremental;
    bye["ar"] = s.assignments_replayed;
    bye["ser"] = serialized_;
    bye["batches"] = batches_out_;
    bye["rcvd"] = rcvd_batches_;
    bye["dedup"] = deduped_;
    bye["flush"] = flushes_;
    bye["bytes"] = bytes_out_;
    bye["max_open"] = static_cast<std::uint64_t>(
        std::max(max_open_, open_.size()));
    bye["mem"] = static_cast<std::uint64_t>(memory_now());
    bye["hot"] = static_cast<std::uint64_t>(arena_.hot_memory_bytes());
    bye["cold"] = static_cast<std::uint64_t>(arena_.cold_memory_bytes());
    send_json(bye);
  }

  std::size_t memory_now() const {
    std::size_t filters = 0;
    for (const auto& f : send_filter_) filters += f.memory_bytes();
    return arena_.memory_bytes() + open_.memory_bytes() +
           seen_.memory_bytes() + filters;
  }

  void check_memory() {
    if (halted_ || mem_cap_ == 0 || memory_now() <= mem_cap_) return;
    flush_all();  // ship pending work before going dark
    Json limit;
    limit["t"] = "limit";
    limit["reason"] = 4;  // memory
    send_json(limit);
    halted_ = true;
  }

  /// Process every frame already buffered or readable without blocking.
  void drain_frames() {
    for (;;) {
      if (!wire::has_buffered_frame(stream_)) {
        pollfd pfd{stream_.fd(), POLLIN, 0};
        int rc;
        while ((rc = ::poll(&pfd, 1, 0)) < 0 && errno == EINTR) {
        }
        if (rc <= 0 || (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0)
          return;
      }
      wire::Frame fr;
      OPTSCHED_REQUIRE(wire::read_frame(stream_, fr, kFrameCap),
                       "coordinator closed the socket");
      handle_frame(fr);
      if (stop_) return;
    }
  }

  /// Park until the socket becomes readable (or `timeout_ms` elapses,
  /// so a lost wakeup can never wedge the worker).
  void wait_for_frame(int timeout_ms) {
    if (wire::has_buffered_frame(stream_)) return;
    pollfd pfd{stream_.fd(), POLLIN, 0};
    int rc;
    while ((rc = ::poll(&pfd, 1, timeout_ms)) < 0 && errno == EINTR) {
    }
  }

  void handle_frame(const wire::Frame& fr) {
    if (fr.type == wire::FrameType::kBatch) {
      auto batch = wire::decode_batch(fr.payload());
      OPTSCHED_REQUIRE(batch.to == rank_, "batch relayed to the wrong worker");
      for (const auto& m : batch.states) import_msg(m);
      ++rcvd_batches_;
      return;
    }
    if (fr.type == wire::FrameType::kBound) {
      incumbent_ = std::min(incumbent_, wire::decode_bound(fr.payload()));
      return;
    }
    OPTSCHED_REQUIRE(fr.type == wire::FrameType::kJson,
                     "unexpected binary frame type for a worker");
    const Json j = Json::parse(fr.raw);
    const std::string& t = j.at("t").as_string();
    if (t == "batch") {
      for (const auto& s : j.at("states").as_array())
        import_msg(state_msg_from_json(s));
      ++rcvd_batches_;
    } else if (t == "bound") {
      incumbent_ = std::min(incumbent_, j.at("len").as_number());
    } else if (t == "stop") {
      stop_ = true;
    } else {
      OPTSCHED_REQUIRE(false, "unexpected frame type for a worker: " + t);
    }
  }

  /// Rebuild a transferred state in the local arena — the same replay as
  /// the in-process import (parallel_astar.cpp), plus owner-side
  /// duplicate detection: a state already seen rolls the arena back to
  /// its pre-import size, so rejected imports cost no memory.
  void import_msg(const StateMsg& msg) {
    const auto& graph = problem_->graph();
    const auto& machine = *machine_;

    // Phase 1: replay the machine simulation into flat scratch arrays
    // only — signature and g fall out of it. The arena is not touched
    // until the state is known to be fresh, so a duplicate (or a stray
    // goal) costs the simulation and a hash probe, never arena growth,
    // rollback, or context invalidation. On the bench corpus a large
    // share of imports are duplicates; this keeps them off the arena
    // entirely.
    auto& finish = import_finish_;
    auto& proc_of = import_proc_of_;
    auto& proc_ready = import_proc_ready_;
    std::fill(finish.begin(), finish.end(), 0.0);
    std::fill(proc_of.begin(), proc_of.end(), machine::kInvalidProc);
    std::fill(proc_ready.begin(), proc_ready.end(), 0.0);

    util::Key128 sig = core::root_signature();
    double g = 0.0;
    for (const auto& [node, proc] : msg.assignments) {
      double dat = 0.0;
      for (const auto& [par, cost] : graph.parents(node))
        dat = std::max(dat, finish[par] + machine.comm_delay(
                                              cost, proc_of[par], proc,
                                              problem_->comm()));
      const double st = std::max(proc_ready[proc], dat);
      const double ft = st + machine.exec_time(graph.weight(node), proc);
      finish[node] = ft;
      proc_of[node] = proc;
      proc_ready[proc] = ft;
      g = std::max(g, ft);
      sig = core::extend_signature(sig, node, proc, ft);
    }

    if (msg.assignments.size() == problem_->num_nodes()) {
      offer_goal(g, msg.assignments);  // goals ride goal frames, but
      return;                          // tolerate one in a batch
    }
    OPTSCHED_ASSERT(owner_of_sig(sig, procs_) == rank_);
    if (!seen_.insert(sig)) return;

    // Phase 2 (fresh states only): materialize the parent chain in the
    // arena from the already-computed finish times.
    State root;
    root.sig = core::root_signature();
    root.parent = kNoParent;
    StateIndex parent = arena_.add(root);
    util::Key128 chain_sig = core::root_signature();
    double chain_g = 0.0;
    std::uint32_t depth = 0;
    for (const auto& [node, proc] : msg.assignments) {
      const double ft = finish[node];
      chain_g = std::max(chain_g, ft);
      chain_sig = core::extend_signature(chain_sig, node, proc, ft);
      ++depth;

      State s;
      s.sig = chain_sig;
      s.finish = ft;
      s.g = chain_g;
      s.h = 0.0;  // interior-chain h is never read; the final h is below
      s.parent = parent;
      s.node = node;
      s.proc = proc;
      s.depth = depth;
      parent = arena_.add(s);
    }

    import_ctx_->move_to(arena_, parent);
    const double h = core::evaluate_h(config_.h, *problem_,
                                      import_ctx_->view(),
                                      import_scratch_.data()) *
                     config_.h_weight;
    arena_.patch_h(parent, h);
    OPTSCHED_ASSERT(std::abs((g + h) - msg.f) < 1e-6);
    open_.push({g + h, g, parent});
  }

  UnixStream stream_;
  std::uint32_t rank_ = 0;
  std::uint32_t procs_ = 1;
  std::uint32_t wire_ver_ = kWireVersion;
  std::uint32_t batch_size_ = 16;
  std::uint64_t flush_us_ = 500;
  std::size_t mem_cap_ = 0;  ///< 0 = unlimited

  dag::TaskGraph graph_;
  std::optional<machine::Machine> machine_;
  std::optional<SearchProblem> problem_;
  core::SearchConfig config_;
  std::optional<Expander> expander_;
  std::optional<core::ExpansionContext> import_ctx_;
  std::vector<double> import_scratch_;
  std::vector<double> import_finish_;
  std::vector<ProcId> import_proc_of_;
  std::vector<double> import_proc_ready_;

  StateArena arena_;
  OpenList open_;
  util::FlatSet128 seen_{16};
  std::vector<std::vector<Json>> outbox_;   ///< per-owner pending (wire v1)
  std::vector<wire::BatchEncoder> enc_;     ///< per-owner pending (wire v2)
  std::vector<wire::SendFilter> send_filter_;  ///< per-owner shipped sigs
  std::vector<std::string> pending_writes_;    ///< frames awaiting one writev
  std::uint64_t pending_states_ = 0;  ///< states across all v2 outboxes
  util::Timer clock_;                 ///< worker-lifetime monotonic clock
  std::int64_t pending_since_ = 0;    ///< stamp when pending went 0 -> 1

  double incumbent_ = kInf;
  bool stop_ = false;
  bool halted_ = false;  ///< memory cap tripped; awaiting stop

  std::uint64_t rcvd_batches_ = 0;
  std::uint64_t serialized_ = 0;
  std::uint64_t batches_out_ = 0;
  std::uint64_t deduped_ = 0;
  std::uint64_t flushes_ = 0;   ///< gathered write syscalls (pump_writes)
  std::uint64_t bytes_out_ = 0;
  std::uint64_t idle_backoff_us_ = 0;  ///< 0 = report immediately
  util::Timer idle_backoff_;
  std::size_t max_open_ = 0;
  int last_status_idle_ = -1;
  std::uint64_t last_status_rcvd_ = 0;
};

// ---- coordinator ---------------------------------------------------------

struct Event {
  enum Kind { kFrame, kEof, kFail };
  Kind kind;
  std::uint32_t rank;
  wire::Frame frame;  ///< kFrame: binary frame, or JSON (parsed in `json`)
  Json json;          ///< kFrame with frame.type == kJson
  std::string error;  ///< kFail
};

struct WorkerHandle {
  pid_t pid = -1;
  UnixStream stream;
  std::thread reader;
  std::thread writer;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> outq;  ///< pre-framed bytes (binary or line+'\n')
  bool closing = false;

  /// Bytes shipped by the writer thread; written only there, read after
  /// the join in cleanup().
  std::uint64_t bytes_written = 0;

  std::uint64_t expanded = 0;  ///< latest status
  double min_f = kInf;         ///< latest status (kInf when idle/empty)
  bool got_bye = false;
  Json bye;
};

class DistCoordinator {
 public:
  DistCoordinator(const SearchProblem& problem, const ParallelConfig& config)
      : problem_(problem),
        config_(config),
        procs_(config.num_ppes),
        term_(config.num_ppes) {}

  ~DistCoordinator() { cleanup(); }

  ParallelResult run() {
    incumbent_len_ = std::min(problem_.upper_bound(),
                              config_.seed_upper_bound);
    spawn_all();
    for (std::uint32_t k = 0; k < procs_; ++k) enqueue(k, init_frame(k));

    const int stop_code = event_loop();
    Json stop;
    stop["t"] = "stop";
    stop["reason"] = stop_code;
    broadcast(json_line(stop));
    collect_byes();
    cleanup();
    return assemble(stop_code);
  }

 private:
  bool wire_v2() const { return config_.wire_version >= 2; }

  static std::string json_line(const Json& j) {
    std::string line = j.dump();
    line += '\n';
    return line;
  }
  // ---- process + thread management ---------------------------------------

  void spawn_all() {
    for (std::uint32_t k = 0; k < procs_; ++k) {
      int sv[2];
      OPTSCHED_REQUIRE(
          ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
          std::string("socketpair failed: ") + std::strerror(errno));
      // Parent end must not leak into later children; child end must
      // survive the exec.
      ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);

      // Everything the child touches before exec is built here: the
      // spawn may run while other threads (suite jobs) hold the
      // allocator lock, so the child must stay async-signal-safe.
      // posix_spawn (vfork semantics on glibc) over a hand-rolled
      // fork+exec: the coordinator's address space — large after a long
      // suite run — is never duplicated, which on a single-core host is
      // a measurable slice of the per-worker startup serialization.
      const std::string var = std::string(kWorkerEnv) + "=" +
                              std::to_string(sv[1]) + "," +
                              std::to_string(k);
      std::vector<char*> envp;
      for (char** e = environ; *e != nullptr; ++e)
        if (std::strncmp(*e, kWorkerEnv, std::strlen(kWorkerEnv)) != 0)
          envp.push_back(*e);
      envp.push_back(const_cast<char*>(var.c_str()));
      envp.push_back(nullptr);
      char* argv[] = {const_cast<char*>("optsched-dist-worker"), nullptr};

      pid_t pid = -1;
      const int rc = ::posix_spawn(&pid, "/proc/self/exe", nullptr, nullptr,
                                   argv, envp.data());
      ::close(sv[1]);
      if (rc != 0) {
        ::close(sv[0]);
        OPTSCHED_REQUIRE(false,
                         std::string("posix_spawn failed: ") +
                             std::strerror(rc));
      }
      auto w = std::make_unique<WorkerHandle>();
      w->pid = pid;
      w->stream = UnixStream(sv[0]);
      workers_.push_back(std::move(w));
    }
    for (std::uint32_t k = 0; k < procs_; ++k) {
      workers_[k]->reader = std::thread([this, k] { reader_main(k); });
      workers_[k]->writer = std::thread([this, k] { writer_main(k); });
    }
  }

  void reader_main(std::uint32_t rank) {
    try {
      wire::Frame fr;
      while (wire::read_frame(workers_[rank]->stream, fr, kFrameCap)) {
        Event ev{Event::kFrame, rank, {}, {}, {}};
        if (fr.type == wire::FrameType::kJson) ev.json = Json::parse(fr.raw);
        ev.frame = std::move(fr);
        push_event(std::move(ev));
      }
      push_event({Event::kEof, rank, {}, {}, {}});
    } catch (const std::exception& e) {
      push_event({Event::kFail, rank, {}, {}, e.what()});
    }
  }

  void writer_main(std::uint32_t rank) {
    WorkerHandle& w = *workers_[rank];
    std::vector<std::string> frames;
    try {
      for (;;) {
        frames.clear();
        {
          std::unique_lock<std::mutex> lock(w.mu);
          w.cv.wait(lock, [&] { return w.closing || !w.outq.empty(); });
          if (w.outq.empty()) return;  // closing, fully drained
          // Drain the whole queue: everything pending goes out in one
          // gathered write instead of one syscall per frame.
          while (!w.outq.empty()) {
            frames.push_back(std::move(w.outq.front()));
            w.outq.pop_front();
          }
        }
        w.stream.write_gather(frames);
        for (const auto& f : frames) w.bytes_written += f.size();
      }
    } catch (const std::exception& e) {
      // The reader's EOF/Fail event carries the failure; a send error
      // here is only reported if the reader somehow stays healthy.
      push_event({Event::kFail, rank, {}, {}, e.what()});
    }
  }

  /// Queue pre-framed bytes (a binary frame, or a JSON line with its
  /// '\n') for worker `rank`.
  void enqueue(std::uint32_t rank, std::string frame) {
    WorkerHandle& w = *workers_[rank];
    {
      const std::lock_guard<std::mutex> lock(w.mu);
      w.outq.push_back(std::move(frame));
    }
    w.cv.notify_one();
    ++messages_sent_;
  }

  void broadcast(const std::string& frame) {
    for (std::uint32_t k = 0; k < procs_; ++k) enqueue(k, frame);
  }

  void push_event(Event ev) {
    {
      const std::lock_guard<std::mutex> lock(ev_mu_);
      events_.push_back(std::move(ev));
    }
    ev_cv_.notify_one();
  }

  std::optional<Event> wait_event(int timeout_ms) {
    std::unique_lock<std::mutex> lock(ev_mu_);
    if (!ev_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [&] { return !events_.empty(); }))
      return std::nullopt;
    Event ev = std::move(events_.front());
    events_.pop_front();
    return ev;
  }

  /// Idempotent teardown: close writer queues, kill and reap every
  /// worker, join the per-worker threads. SIGKILL is safe in every path —
  /// a well-terminated worker already _exit()ed and the signal lands on
  /// a zombie; a wedged or flooding worker is exactly what the kill is
  /// for (it also unblocks a writer stuck on a full socket buffer).
  void cleanup() {
    if (cleaned_) return;
    cleaned_ = true;
    for (auto& w : workers_) {
      {
        const std::lock_guard<std::mutex> lock(w->mu);
        w->closing = true;
      }
      w->cv.notify_all();
      if (w->pid > 0) ::kill(w->pid, SIGKILL);
    }
    for (auto& w : workers_) {
      if (w->stream.valid()) w->stream.shutdown_io();
      if (w->writer.joinable()) w->writer.join();
      if (w->reader.joinable()) w->reader.join();
      if (w->pid > 0) {
        int status = 0;
        ::waitpid(w->pid, &status, 0);
        w->pid = -1;
      }
    }
  }

  // ---- protocol ----------------------------------------------------------

  std::string init_frame(std::uint32_t rank) const {
    Json init;
    init["t"] = "init";
    init["v"] = kWireVersion;
    init["wire"] = config_.wire_version;
    init["graph"] = graph_to_json(problem_.graph());
    init["machine"] = machine_to_json(problem_.machine());
    init["comm"] = static_cast<int>(problem_.comm());
    init["cfg"] = search_config_to_json(config_.search);
    init["procs"] = procs_;
    init["rank"] = rank;
    init["seed_bound"] = config_.seed_upper_bound < kInf
                             ? Json(config_.seed_upper_bound)
                             : Json();
    const std::size_t cap = config_.search.max_memory_bytes;
    init["mem_bytes"] = static_cast<std::uint64_t>(
        cap ? std::max<std::size_t>(1, cap / procs_) : 0);
    // Outbox flush threshold: explicit batch= option, else 256 under the
    // binary codec and the PR 9 steal_batch default under v1 (so the v1
    // baseline's flush cadence stays bit-for-bit comparable).
    init["batch"] = config_.flush_states
                        ? config_.flush_states
                        : (wire_v2() ? kAutoFlushStatesV2
                                     : config_.steal_batch);
    init["flush_us"] = config_.flush_us;
    return json_line(init);
  }

  [[noreturn]] void fail(std::uint32_t rank, const std::string& why) {
    cleanup();
    OPTSCHED_REQUIRE(false, "dist worker " + std::to_string(rank) +
                                " failed mid-search: " + why);
    std::abort();  // unreachable (OPTSCHED_REQUIRE throws)
  }

  /// Returns the stop reason: 0 quiescent (proof complete), 1 expansion
  /// budget, 2 time budget, 3 cancelled, 4 memory cap.
  int event_loop() {
    const auto& search = config_.search;
    for (;;) {
      if (search.time_budget_ms &&
          timer_.seconds() * 1000.0 >=
              static_cast<double>(search.time_budget_ms))
        return 2;
      if (search.controls.cancel.cancelled()) return 3;

      const auto ev = wait_event(25);
      if (!ev) continue;
      if (ev->kind == Event::kEof) fail(ev->rank, "socket closed");
      if (ev->kind == Event::kFail) fail(ev->rank, ev->error);

      // Binary hot frames (wire v2). A batch is relayed *verbatim* — the
      // coordinator reads only the destination and count varints at the
      // head of the payload, never the states.
      if (ev->frame.type == wire::FrameType::kBatch) {
        const auto payload = ev->frame.payload();
        const std::uint32_t to = wire::batch_dest(payload);
        OPTSCHED_REQUIRE(to < procs_, "batch routed to unknown worker");
        states_relayed_ += wire::batch_count(payload);
        ++batches_relayed_;
        // Enqueue-count *before* the frame can reach the worker: the
        // soundness order DistTermination documents.
        term_.on_enqueue(to);
        enqueue(to, std::move(ev->frame.raw));
        continue;
      }
      if (ev->frame.type == wire::FrameType::kStatus) {
        const wire::StatusMsg s = wire::decode_status(ev->frame.payload());
        WorkerHandle& w = *workers_[ev->rank];
        w.expanded = s.exp;
        w.min_f = s.min_f;
        const bool changed = term_.on_status(ev->rank, s.idle, s.rcvd);
        maybe_progress();
        if (search.max_expansions && total_expanded() >= search.max_expansions)
          return 1;
        // Quiescence is re-evaluated only when the detector's state
        // changed (satellite of the status-backoff work): an unchanged
        // status cannot change the verdict, and quiescent() itself
        // caches on a dirty flag as a second guard.
        if (changed && s.idle && term_.quiescent()) return 0;
        continue;
      }
      OPTSCHED_REQUIRE(ev->frame.type == wire::FrameType::kJson,
                       "unexpected binary frame type for the coordinator");
      const Json& j = ev->json;
      const std::string& t = j.at("t").as_string();
      if (t == "hello") {
        OPTSCHED_REQUIRE(j.at("v").as_number() == kWireVersion,
                         "wire version mismatch");
        OPTSCHED_REQUIRE(
            static_cast<std::uint32_t>(j.at("rank").as_number()) == ev->rank,
            "worker rank mismatch");
      } else if (t == "batch") {
        const auto to = static_cast<std::uint32_t>(j.at("to").as_number());
        OPTSCHED_REQUIRE(to < procs_, "batch routed to unknown worker");
        states_relayed_ += j.at("states").as_array().size();
        ++batches_relayed_;
        // Enqueue-count *before* the frame can reach the worker: the
        // soundness order DistTermination documents.
        term_.on_enqueue(to);
        Json relay;
        relay["t"] = "batch";
        relay["states"] = j.at("states");
        enqueue(to, json_line(relay));
      } else if (t == "goal") {
        const double len = j.at("len").as_number();
        if (len < incumbent_len_ - 1e-9) {
          incumbent_len_ = len;
          incumbent_seq_ = assignments_from_json(j.at("a"));
          broadcast(wire_v2() ? wire::encode_bound(len)
                              : json_line([&] {
                                  Json bound;
                                  bound["t"] = "bound";
                                  bound["len"] = len;
                                  return bound;
                                }()));
        }
      } else if (t == "status") {
        WorkerHandle& w = *workers_[ev->rank];
        w.expanded = get_u64(j, "exp");
        w.min_f = j.at("minf").is_null() ? kInf : j.at("minf").as_number();
        const bool idle = j.at("idle").as_bool();
        const bool changed = term_.on_status(ev->rank, idle, get_u64(j, "rcvd"));
        maybe_progress();
        if (search.max_expansions && total_expanded() >= search.max_expansions)
          return 1;
        if (changed && idle && term_.quiescent()) return 0;
      } else if (t == "limit") {
        return static_cast<int>(j.at("reason").as_number());
      } else if (t == "err") {
        fail(ev->rank, j.at("msg").as_string());
      } else {
        fail(ev->rank, "unexpected frame type: " + t);
      }
    }
  }

  /// After the stop broadcast every worker answers with one bye frame and
  /// exits. Late goals still tighten the incumbent (a goal frame may race
  /// the stop); late batches are dropped — sound, because a quiescent
  /// stop guarantees none are in flight and aborted stops carry no proof.
  void collect_byes() {
    std::uint32_t byes = 0;
    util::Timer grace;
    while (byes < procs_) {
      OPTSCHED_REQUIRE(grace.seconds() < 30.0,
                       "dist worker ignored stop for 30s");
      const auto ev = wait_event(50);
      if (!ev) continue;
      if (ev->kind == Event::kEof || ev->kind == Event::kFail) {
        if (!workers_[ev->rank]->got_bye)
          fail(ev->rank, ev->kind == Event::kEof ? "died before bye"
                                                 : ev->error);
        continue;  // EOF after bye: normal worker exit
      }
      // Binary batches/statuses racing the stop: dropped (sound — a
      // quiescent stop guarantees none are in flight, and aborted stops
      // carry no proof).
      if (ev->frame.type != wire::FrameType::kJson) continue;
      const Json& j = ev->json;
      const std::string& t = j.at("t").as_string();
      if (t == "bye") {
        workers_[ev->rank]->bye = j;
        workers_[ev->rank]->got_bye = true;
        ++byes;
      } else if (t == "goal") {
        const double len = j.at("len").as_number();
        if (len < incumbent_len_ - 1e-9) {
          incumbent_len_ = len;
          incumbent_seq_ = assignments_from_json(j.at("a"));
        }
      } else if (t == "err") {
        fail(ev->rank, j.at("msg").as_string());
      }  // batches/statuses racing the stop: dropped
    }
  }

  std::uint64_t total_expanded() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) total += w->expanded;
    return total;
  }

  void maybe_progress() {
    const auto& controls = config_.search.controls;
    if (!controls.progress) return;
    const std::uint64_t expanded = total_expanded();
    if (!progress_gate_.open(expanded)) return;
    double lb = kInf;
    for (const auto& w : workers_) lb = std::min(lb, w->min_f);
    controls.progress({expanded, lb == kInf ? 0.0 : lb,
                       incumbent_len_, timer_.seconds()});
  }

  // ---- result assembly ---------------------------------------------------

  ParallelResult assemble(int stop_code) {
    ParallelResult out{
        core::SearchResult{sched::Schedule(problem_.graph(),
                                           problem_.machine(),
                                           problem_.comm()),
                           0.0, false, 1.0, core::Termination::kOptimal, {}},
        {}};
    if (incumbent_seq_.empty()) {
      // No goal beat the seeded bound; return its backing schedule.
      if (config_.seed_schedule &&
          config_.seed_schedule->makespan() <= problem_.upper_bound())
        out.result.schedule = *config_.seed_schedule;
      else
        out.result.schedule = problem_.upper_bound_schedule();
    } else {
      for (const auto& [n, p] : incumbent_seq_) out.result.schedule.append(n, p);
    }
    sched::validate(out.result.schedule);
    out.result.makespan = out.result.schedule.makespan();

    switch (stop_code) {
      case 1: out.result.reason = core::Termination::kExpansionLimit; break;
      case 2: out.result.reason = core::Termination::kTimeLimit; break;
      case 3: out.result.reason = core::Termination::kCancelled; break;
      case 4: out.result.reason = core::Termination::kMemoryLimit; break;
      default:
        // Quiescent under the sound rule; dist is exact-only, so the
        // incumbent is optimal.
        out.result.proved_optimal = true;
        out.result.bound_factor = 1.0;
        out.result.reason = core::Termination::kOptimal;
        break;
    }

    core::SearchStats& st = out.result.stats;
    for (const auto& w : workers_) {
      const Json& b = w->bye;
      if (!w->got_bye) continue;  // unreachable: collect_byes throws first
      st.expanded += get_u64(b, "exp");
      st.generated += get_u64(b, "gen");
      st.duplicates_dropped += get_u64(b, "dup");
      st.pruned_upper_bound += get_u64(b, "pruned");
      st.skipped_equivalence += get_u64(b, "skip_eq");
      st.skipped_isomorphism += get_u64(b, "skip_iso");
      st.loads_full += get_u64(b, "lf");
      st.loads_incremental += get_u64(b, "li");
      st.assignments_replayed += get_u64(b, "ar");
      st.peak_memory_bytes += static_cast<std::size_t>(get_u64(b, "mem"));
      st.arena_hot_bytes += static_cast<std::size_t>(get_u64(b, "hot"));
      st.arena_cold_bytes += static_cast<std::size_t>(get_u64(b, "cold"));
      st.max_open_size = std::max(
          st.max_open_size, static_cast<std::size_t>(get_u64(b, "max_open")));
      out.par_stats.states_serialized += get_u64(b, "ser");
      out.par_stats.states_deduped_at_send += get_u64(b, "dedup");
      out.par_stats.flushes += get_u64(b, "flush");
      out.par_stats.bytes_sent += get_u64(b, "bytes");
      out.par_stats.expanded_per_ppe.push_back(get_u64(b, "exp"));
    }
    // Coordinator-side relay bytes (writer threads are joined by now).
    for (const auto& w : workers_) out.par_stats.bytes_sent += w->bytes_written;
    st.queue_kind = "heap";
    st.queue_fallback =
        config_.search.queue == core::QueueSelect::kHeap ? "" : "dist";
    st.elapsed_seconds = timer_.seconds();

    out.par_stats.mode = TransportMode::kDistributed;
    out.par_stats.messages_sent = messages_sent_;
    out.par_stats.states_transferred = states_relayed_;
    out.par_stats.batches_sent = batches_relayed_;
    out.par_stats.termination_rounds = term_.rounds();
    out.par_stats.requested_ppes = procs_;
    out.par_stats.effective_ppes = procs_;
    return out;
  }

  const SearchProblem& problem_;
  const ParallelConfig& config_;
  std::uint32_t procs_;
  DistTermination term_;
  util::Timer timer_;
  core::ProgressGate progress_gate_{config_.search.controls};

  std::vector<std::unique_ptr<WorkerHandle>> workers_;
  std::mutex ev_mu_;
  std::condition_variable ev_cv_;
  std::deque<Event> events_;
  bool cleaned_ = false;

  double incumbent_len_ = kInf;
  std::vector<std::pair<NodeId, ProcId>> incumbent_seq_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t states_relayed_ = 0;
  std::uint64_t batches_relayed_ = 0;
};

/// Worker-process entry: the coordinator execs the current binary with
/// OPTSCHED_DIST_WORKER=<fd>,<rank> in the environment, and this hook —
/// which runs in *every* process linking the parallel layer, before
/// main() — diverts such a process into the worker loop and exits. The
/// variable is unset first so nothing a worker spawns re-enters.
__attribute__((constructor)) void dist_worker_entry() {
  const char* spec = std::getenv(kWorkerEnv);
  if (spec == nullptr) return;
  int fd = -1;
  unsigned rank = 0;
  if (std::sscanf(spec, "%d,%u", &fd, &rank) != 2 || fd < 0) std::_Exit(125);
  ::unsetenv(kWorkerEnv);
  int code = 1;
  try {
    DistWorker worker(fd, rank);
    code = worker.run();
  } catch (...) {
  }
  std::_Exit(code);
}

}  // namespace

ParallelResult dist_astar_schedule(const SearchProblem& problem,
                                   const ParallelConfig& config) {
  OPTSCHED_REQUIRE(config.search.epsilon == 0.0 &&
                       config.search.h_weight == 1.0,
                   "mode=dist supports exact search only "
                   "(epsilon = 0, h_weight = 1)");
  OPTSCHED_REQUIRE(!config.naive_termination,
                   "mode=dist always uses sound termination");
  DistCoordinator coordinator(problem, config);
  return coordinator.run();
}

}  // namespace optsched::par
