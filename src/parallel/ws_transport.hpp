// Work-stealing transport with hash-sharded duplicate detection.
//
// The modern alternative to the paper's ring scheme (HDA*-flavoured,
// adapted to shared memory):
//
//  * Global duplicate detection. Every generated state probes one shared
//    transposition table of 128-bit signatures, hash-sharded into striped
//    open-addressed sets: the signature routes the state to its owning
//    shard, so the probe takes one per-shard mutex and contention scales
//    with the shard count, not the PPE count. A state reached on two PPEs
//    is expanded once — the cross-PPE re-expansions the ring's PPE-local
//    SEEN sets cannot prevent are filtered here. (shard_hits counts every
//    duplicate the table sees, same-PPE ones included: there is no
//    separate local set in this mode.)
//
//  * Work-stealing frontier. Each PPE keeps its OPEN private and
//    publishes a window of its best states into its own donation deque —
//    serialized, self-contained messages ordered worst-to-best so the
//    best-f block is the deque's suffix. A starving PPE first reclaims
//    its own deque (by arena index — no replay), then sweeps victims
//    round-robin and steals the best-f suffix as one batch, replaying it
//    into its local arena with a single batched frontier push. Owners
//    only top the deque up when it has been drained below one batch and
//    their private frontier is comfortably larger, so in steady state no
//    serialization happens at all.
//
// Quiescence: the search is done when every PPE is idle and every
// donation deque is empty. A thief marks itself busy *before* removing a
// batch, and the detector re-reads the idle flags after the deque sizes
// (same double-read discipline as the ring's in-flight counter), so the
// observation is stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "parallel/transport.hpp"
#include "util/assert.hpp"

namespace optsched::par {

/// The global transposition table: 128-bit signatures hash-sharded into
/// striped open-addressed sets. Thread-safe; one mutex per shard.
class ShardedSignatureTable {
 public:
  /// `shards` is rounded up to a power of two (>= 1).
  explicit ShardedSignatureTable(std::uint32_t shards,
                                 std::size_t expected_per_shard = 1 << 8) {
    std::uint32_t cap = 1;
    while (cap < shards) cap <<= 1;
    shards_ = std::vector<Shard>(cap);
    mask_ = cap - 1;
    for (auto& s : shards_) {
      s.set = util::FlatSet128(expected_per_shard);
      s.bytes.store(s.set.memory_bytes(), std::memory_order_relaxed);
    }
  }

  std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Footprint of a table with `shards` shards *before* any insertion: the
  /// fixed allocation the constructor performs eagerly. The per-PPE memory
  /// budget is polled during the search, after this table already exists —
  /// so a caller enforcing a budget must check this value up front and
  /// refuse configurations whose fixed allocation alone exceeds it,
  /// instead of clamping the shard count to an arbitrary cap.
  static std::size_t estimate_bytes(std::uint32_t shards,
                                    std::size_t expected_per_shard = 1 << 8) {
    std::uint32_t cap = 1;
    while (cap < shards) cap <<= 1;
    return static_cast<std::size_t>(cap) *
           (sizeof(Shard) +
            util::FlatSet128(expected_per_shard).memory_bytes());
  }

  /// Owning shard of a signature — a pure function of the signature, so
  /// every PPE routes the same state to the same shard. The mix differs
  /// from both FlatSet128's probe hash and HashPartition's PPE hash, so
  /// shard choice, intra-shard probing, and seed ownership stay
  /// decorrelated.
  std::uint32_t shard_of(const util::Key128& sig) const noexcept {
    return static_cast<std::uint32_t>(
        util::splitmix64(sig.lo ^ (sig.hi * 0xff51afd7ed558ccdULL)) & mask_);
  }

  /// Insert; returns true if newly inserted (the state is globally new).
  bool insert(const util::Key128& sig) {
    Shard& s = shards_[shard_of(sig)];
    const std::lock_guard<std::mutex> lock(s.mu);
    const bool fresh = s.set.insert(sig);
    if (fresh) s.bytes.store(s.set.memory_bytes(), std::memory_order_relaxed);
    return fresh;
  }

  bool contains(const util::Key128& sig) const {
    const Shard& s = shards_[shard_of(sig)];
    const std::lock_guard<std::mutex> lock(s.mu);
    return s.set.contains(sig);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      const std::lock_guard<std::mutex> lock(s.mu);
      n += s.set.size();
    }
    return n;
  }

  /// Lock-free approximate footprint (for the memory-cap poll).
  std::size_t memory_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards_)
      n += s.bytes.load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    util::FlatSet128 set;
    std::atomic<std::size_t> bytes{0};  ///< mirrors set.memory_bytes()
  };

  std::vector<Shard> shards_;
  std::uint64_t mask_ = 0;
};

/// One serialized state parked for stealing. The owner keeps its arena
/// index so reclaiming its own deque needs no replay.
struct Donation {
  StateMsg msg;
  double f = 0.0;
  core::StateIndex local_index = core::kNoParent;
};

/// One PPE's public work window. `items` is kept sorted by f descending,
/// so the best-f block is the suffix: thieves and the reclaiming owner
/// both take from the back.
struct alignas(64) DonationDeque {
  std::mutex mu;
  std::vector<Donation> items;       ///< guarded by mu
  std::atomic<std::size_t> size{0};  ///< mirrors items.size() (quiescence)
  std::atomic<std::size_t> bytes{0};  ///< approximate footprint
};

class WsTransport final : public Transport {
 public:
  /// `shards` 0 = auto: 4x PPEs rounded up to a power of two.
  WsTransport(std::uint32_t num_ppes, std::uint32_t steal_batch,
              std::uint32_t shards, std::atomic<bool>& done);

  TransportMode mode() const override { return TransportMode::kWorkStealing; }
  std::unique_ptr<PpeLink> connect(std::uint32_t ppe) override;
  const PartitionStrategy& partition() const override { return partition_; }
  void collect(ParallelStats& out) const override;

 private:
  friend class WsLink;

  bool all_deques_empty() const {
    for (const auto& dq : deques_)
      if (dq.size.load(std::memory_order_acquire) != 0) return false;
    return true;
  }

  ShardedSignatureTable table_;
  std::vector<DonationDeque> deques_;
  std::uint32_t steal_batch_;
  HashPartition partition_;

  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> states_stolen_{0};
  std::atomic<std::uint64_t> donations_{0};
  std::atomic<std::uint64_t> shard_hits_{0};
};

}  // namespace optsched::par
