// Distributed HDA* over worker processes (mode=dist).
//
// The in-process transports (ring, ws) share one address space: PPEs pass
// arena indices and atomics. This harness runs the same HDA* idea across
// *processes* on one host: a coordinator forks N workers, each owning the
// signature-hash shard of the state space HashPartition assigns it, and
// every generated state is either kept locally (owner == self) or
// serialized as its assignment sequence and shipped to its owner through
// the coordinator over AF_UNIX socketpairs (dist_protocol.hpp describes
// the versioned newline-JSON frames).
//
// Topology is a star on purpose: with every batch relayed through the
// coordinator, one process observes every send and Mattern-style
// termination detection degenerates to bookkeeping (DistTermination) —
// no rings of control waves, no resends. The cost is one extra hop per
// batch, which the single-host AF_UNIX latency makes irrelevant next to
// expansion work.
//
// Worker processes are re-executions of the *current binary*
// (/proc/self/exe): the coordinator passes the socket fd and rank in the
// OPTSCHED_DIST_WORKER environment variable, and a constructor hook in
// dist_transport.cpp intercepts startup before main() runs — so the CLI,
// the test binaries and the bench drivers can all act as workers without
// any per-binary wiring.
//
// Only exact search is supported (epsilon == 0, h_weight == 1): the
// FOCAL selection rule is frontier-global and does not survive
// hash-partitioning the frontier. parallel_astar_schedule enforces this
// before dispatching here. See DESIGN.md §10.
#pragma once

#include "parallel/parallel_astar.hpp"

namespace optsched::par {

/// Run the distributed search: spawn config.num_ppes worker processes,
/// coordinate until quiescence (or a budget/cancellation/memory stop),
/// and assemble the same ParallelResult shape the in-process engine
/// returns. Throws util::Error when a worker dies mid-search (killed,
/// crashed, or speaking a different wire version) — never hangs on a
/// vanished worker.
ParallelResult dist_astar_schedule(const core::SearchProblem& problem,
                                   const ParallelConfig& config);

}  // namespace optsched::par
