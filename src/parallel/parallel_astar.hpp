// Parallel A* / Aε* scheduling (paper §3.3).
//
// PPEs (physical processing elements — here, worker threads) each run a
// local best-first search over a private OPEN list and SEEN set, following
// the paper's scheme:
//
//  * Initial static distribution: every PPE deterministically expands from
//    the initial state until at least q states exist, sorts them by cost,
//    and takes its share by the paper's interleaving (1st -> PPE 0,
//    2nd -> PPE q-1, 3rd -> PPE 1, ...; extras round-robin) — covering the
//    paper's three k vs q cases without any startup communication.
//  * Periodic neighbour communication with exponentially shrinking periods
//    T = v/2, v/4, ..., down to `min_period` expansions: PPEs publish
//    their best f, ship their best state to neighbours that are worse off
//    (the paper's neighbourhood election), and rebalance OPEN sizes toward
//    the neighbourhood average round-robin.
//  * Local duplicate detection only (the paper rejects a distributed
//    CLOSED list as unscalable); transferred states are always enqueued by
//    the receiver, which preserves completeness under any transfer pattern.
//
// Termination: the paper stops as soon as any PPE finds a goal. With
// per-PPE OPEN lists that first goal need not be optimal, so by default we
// use the sound rule — a goal becomes the shared incumbent, PPEs prune
// against it, and the search stops when every PPE is dominated
// (min local f >= incumbent, or >= incumbent/(1+eps) for Aε*) and no
// message is in flight. `naive_termination = true` reproduces the paper's
// behaviour for fidelity experiments.
#pragma once

#include "core/astar.hpp"
#include "parallel/mailbox.hpp"

namespace optsched::par {

struct ParallelConfig {
  std::uint32_t num_ppes = 4;
  MailboxNetwork::Topology topology = MailboxNetwork::Topology::kRing;
  core::SearchConfig search{};

  /// Minimum communication period (expansions between rounds); the paper
  /// decreases T = v/2, v/4, ... down to 2.
  std::uint32_t min_period = 2;

  /// Stop at the first goal found anywhere (the paper's §3.3 rule; may
  /// return a suboptimal schedule — kept for fidelity experiments).
  bool naive_termination = false;
};

struct ParallelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t states_transferred = 0;
  std::uint64_t comm_rounds = 0;
  std::vector<std::uint64_t> expanded_per_ppe;
};

struct ParallelResult {
  core::SearchResult result;
  ParallelStats par_stats;
};

ParallelResult parallel_astar_schedule(const core::SearchProblem& problem,
                                       const ParallelConfig& config = {});

ParallelResult parallel_astar_schedule(const dag::TaskGraph& graph,
                                       const machine::Machine& machine,
                                       const ParallelConfig& config = {});

}  // namespace optsched::par
