// Parallel A* / Aε* scheduling over pluggable transports.
//
// PPEs (physical processing elements — here, worker threads) each run a
// local best-first search over a private OPEN list and arena; how work is
// seeded, redistributed, and deduplicated is the selected transport's
// business (parallel/transport.hpp):
//
//  * mode = ring (the paper's §3.3 scheme, the default): static
//    interleaved seed partition over a fixed topology, periodic
//    neighbour communication with exponentially shrinking periods
//    (election + OPEN-size rebalancing), and PPE-local duplicate
//    detection only — the paper rejects a distributed CLOSED list as
//    unscalable, so cross-PPE duplicates are re-expanded.
//  * mode = ws (work stealing + hash-sharded duplicate detection):
//    signature-hash seed partition, per-PPE donation deques with batched
//    steal of the victim's best-f suffix, and one global transposition
//    table sharded by signature so duplicate detection is exact across
//    PPEs while lock contention stays per-shard.
//
// Termination: the paper stops as soon as any PPE finds a goal. With
// per-PPE OPEN lists that first goal need not be optimal, so by default we
// use the sound rule — a goal becomes the shared incumbent, PPEs prune
// against it, and the search stops when every PPE is dominated
// (min local f >= incumbent, or >= incumbent/(1+eps) for Aε*) and the
// transport is quiescent (no message in flight / no parked donation).
// `naive_termination = true` reproduces the paper's behaviour for
// fidelity experiments.
#pragma once

#include "core/astar.hpp"
#include "parallel/mailbox.hpp"
#include "parallel/placement.hpp"
#include "parallel/transport.hpp"

namespace optsched::par {

struct ParallelConfig {
  std::uint32_t num_ppes = 4;
  TransportMode mode = TransportMode::kRing;
  MailboxNetwork::Topology topology = MailboxNetwork::Topology::kRing;
  core::SearchConfig search{};

  /// Ring: minimum communication period (expansions between rounds); the
  /// paper decreases T = v/2, v/4, ... down to 2.
  std::uint32_t min_period = 2;

  /// Work stealing: batch size for donations and steals (>= 1).
  std::uint32_t steal_batch = 8;

  /// Work stealing: shard count of the global duplicate-detection table;
  /// 0 = auto (4x PPEs, rounded up to a power of two).
  std::uint32_t shards = 0;

  /// Stop at the first goal found anywhere (the paper's §3.3 rule; may
  /// return a suboptimal schedule — kept for fidelity experiments).
  bool naive_termination = false;

  /// Distributed (mode=dist) wire codec: 2 = binary framing with
  /// delta-encoded batches (parallel/wire.hpp), 1 = the newline-JSON
  /// codec kept as the differential baseline. Semantics are identical;
  /// only encoding and flush cadence differ (DESIGN.md §11).
  std::uint32_t wire_version = 2;

  /// Distributed: states per destination outbox before a flush
  /// ("batch=" engine option). 0 = auto (256 under wire v2, steal_batch
  /// under wire v1 — the v1 default preserves the PR 9 baseline).
  std::uint32_t flush_states = 0;

  /// Distributed, wire v2: maximum age in µs of a pending outbox state
  /// before every nonempty outbox is flushed ("flush-us=" option).
  std::uint32_t flush_us = 2000;

  /// CPU placement per PPE (parallel/placement.hpp): pin worker threads
  /// and first-touch their arena/frontier pages from the pinned thread.
  PinPolicy pin = PinPolicy::kNone;

  /// Warm-start seed (SolveSession re-solve): the shared incumbent starts
  /// from min(static upper bound, seed_upper_bound). The parallel engine
  /// reuses no arena states — per-PPE arenas from a previous run cannot be
  /// re-partitioned soundly — but a tight seeded bound prunes generation
  /// on every PPE from the first expansion. `seed_schedule` backs the
  /// bound: when no PPE finds a goal below it, that schedule (borrowed;
  /// must outlive the call, built against *this* instance) is returned.
  double seed_upper_bound = std::numeric_limits<double>::infinity();
  const sched::Schedule* seed_schedule = nullptr;
};

struct ParallelResult {
  core::SearchResult result;
  ParallelStats par_stats;  ///< transport counters (parallel/transport.hpp)
};

ParallelResult parallel_astar_schedule(const core::SearchProblem& problem,
                                       const ParallelConfig& config = {});

ParallelResult parallel_astar_schedule(const dag::TaskGraph& graph,
                                       const machine::Machine& machine,
                                       const ParallelConfig& config = {});

}  // namespace optsched::par
