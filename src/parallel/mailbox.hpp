// Mailboxes: the message-passing substrate for the parallel A*.
//
// The paper runs on the Intel Paragon, where PPEs exchange small messages
// (partial node assignments and costs) over a mesh. We reproduce the
// communication structure with one mutex-protected mailbox per PPE thread:
// a PPE only ever posts to the mailboxes of its topological neighbours,
// exactly like the Paragon implementation, and the global in-flight counter
// supports sound distributed-termination detection (a PPE wakes *before*
// the counter drops, so "all idle and nothing in flight" is stable).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/transport.hpp"

namespace optsched::par {

struct Message {
  std::vector<StateMsg> states;
  std::uint32_t from = 0;
};

class Mailbox {
 public:
  void post(Message msg) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_one();
  }

  std::optional<Message> try_take() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Blocking take with a timeout (used by idle PPEs so termination checks
  /// keep running).
  std::optional<Message> take_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// The PPE interconnect: one mailbox per PPE plus the neighbour lists of
/// the chosen PPE topology.
class MailboxNetwork {
 public:
  enum class Topology { kRing, kMesh, kFullyConnected };

  MailboxNetwork(std::uint32_t num_ppes, Topology topology);

  std::uint32_t size() const noexcept { return num_ppes_; }

  const std::vector<std::uint32_t>& neighbors(std::uint32_t ppe) const {
    return neighbors_[ppe];
  }

  /// Post a message; the global in-flight counter is incremented before
  /// the post and must be decremented by the receiver *after* it has
  /// marked itself busy (see termination discussion above).
  void send(std::uint32_t to, Message msg) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    mailboxes_[to].post(std::move(msg));
  }

  Mailbox& mailbox(std::uint32_t ppe) { return mailboxes_[ppe]; }

  void acknowledge_receipt() {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  bool anything_in_flight() const {
    return in_flight_.load(std::memory_order_acquire) != 0;
  }

 private:
  std::uint32_t num_ppes_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::vector<std::uint32_t>> neighbors_;
  std::atomic<std::int64_t> in_flight_{0};
};

}  // namespace optsched::par
