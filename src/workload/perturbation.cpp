#include "workload/perturbation.hpp"

#include <cmath>
#include <map>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace optsched::workload {

namespace {

using core::DeltaKind;

struct KindDef {
  DeltaKind kind;
  std::vector<std::string> required;
  std::vector<std::string> optional;
};

const std::map<std::string, KindDef>& kinds() {
  static const std::map<std::string, KindDef> defs = {
      {"taskcost", {DeltaKind::kTaskCost, {"node", "cost"}, {}}},
      {"edgeadd", {DeltaKind::kEdgeAdd, {"src", "dst", "cost"}, {}}},
      {"edgedel", {DeltaKind::kEdgeRemove, {"src", "dst"}, {}}},
      {"commcost", {DeltaKind::kCommCost, {"src", "dst", "cost"}, {}}},
      {"procdrop", {DeltaKind::kProcDrop, {"proc"}, {}}},
      {"procadd", {DeltaKind::kProcAdd, {}, {"speed"}}},
  };
  return defs;
}

bool declares(const KindDef& def, const std::string& key) {
  for (const auto& k : def.required)
    if (k == key) return true;
  for (const auto& k : def.optional)
    if (k == key) return true;
  return false;
}

double parse_number(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    OPTSCHED_REQUIRE(used == value.size() && std::isfinite(v) && v >= 0,
                     "malformed number '" + value + "' for '" + key + "'");
    return v;
  } catch (const util::Error&) {
    throw;
  } catch (const std::exception&) {
    throw util::Error("malformed number '" + value + "' for '" + key + "'");
  }
}

std::uint32_t parse_id(const std::string& key, const std::string& value) {
  const double v = parse_number(key, value);
  OPTSCHED_REQUIRE(v == static_cast<std::uint32_t>(v),
                   "'" + key + "' must be a non-negative integer, got '" +
                       value + "'");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

PerturbationSpec PerturbationSpec::parse(const std::string& line) {
  const auto tokens = util::split_ws(line);
  OPTSCHED_REQUIRE(!tokens.empty(), "empty perturbation spec");
  OPTSCHED_REQUIRE(tokens[0].rfind("delta=", 0) == 0,
                   "perturbation spec must start with 'delta=<kind>', got '" +
                       tokens[0] + "'");
  const std::string kind_name = tokens[0].substr(6);
  const auto def = kinds().find(kind_name);
  OPTSCHED_REQUIRE(def != kinds().end(),
                   "unknown delta kind '" + kind_name + "'");

  PerturbationSpec spec;
  spec.delta.kind = def->second.kind;

  std::map<std::string, std::string> seen;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    OPTSCHED_REQUIRE(eq != std::string::npos && eq > 0,
                     "malformed token '" + tokens[i] +
                         "' (expected key=value)");
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    OPTSCHED_REQUIRE(declares(def->second, key),
                     "delta kind '" + kind_name +
                         "' does not declare parameter '" + key + "'");
    OPTSCHED_REQUIRE(!seen.count(key), "duplicate parameter '" + key + "'");
    seen[key] = value;
  }
  for (const auto& required : def->second.required)
    OPTSCHED_REQUIRE(seen.count(required),
                     "delta kind '" + kind_name + "' requires parameter '" +
                         required + "'");

  for (const auto& [key, value] : seen) {
    if (key == "node") spec.delta.node = parse_id(key, value);
    else if (key == "src") spec.delta.src = parse_id(key, value);
    else if (key == "dst") spec.delta.dst = parse_id(key, value);
    else if (key == "proc")
      spec.delta.proc =
          static_cast<machine::ProcId>(parse_id(key, value));
    else  // cost / speed
      spec.delta.value = parse_number(key, value);
  }
  return spec;
}

std::string PerturbationSpec::to_string() const {
  std::string out;
  switch (delta.kind) {
    case DeltaKind::kTaskCost:
      out = "delta=taskcost node=" + std::to_string(delta.node) +
            " cost=" + util::format_number(delta.value);
      break;
    case DeltaKind::kEdgeAdd:
      out = "delta=edgeadd src=" + std::to_string(delta.src) +
            " dst=" + std::to_string(delta.dst) +
            " cost=" + util::format_number(delta.value);
      break;
    case DeltaKind::kEdgeRemove:
      out = "delta=edgedel src=" + std::to_string(delta.src) +
            " dst=" + std::to_string(delta.dst);
      break;
    case DeltaKind::kCommCost:
      out = "delta=commcost src=" + std::to_string(delta.src) +
            " dst=" + std::to_string(delta.dst) +
            " cost=" + util::format_number(delta.value);
      break;
    case DeltaKind::kProcDrop:
      out = "delta=procdrop proc=" + std::to_string(delta.proc);
      break;
    case DeltaKind::kProcAdd:
      out = "delta=procadd";
      if (delta.value != 0.0)
        out += " speed=" + util::format_number(delta.value);
      break;
  }
  return out;
}

}  // namespace optsched::workload
