#include "workload/churn.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "api/session.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "workload/corpus.hpp"

namespace optsched::workload {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Proved *exactly* optimal (a bounded proof has bound_factor > 1).
bool exact_proof(const api::SolveResult& r) {
  return r.proved_optimal && r.bound_factor == 1.0;
}

/// The warm-vs-cold soundness oracle (see the header comment): exact
/// proofs must agree; against one exact proof the other result must lie
/// inside its own proved bound; two boundless results cannot disagree.
bool oracle_check(const api::SolveResult& warm, const api::SolveResult& cold,
                  double tol, std::string& why) {
  const bool we = exact_proof(warm), ce = exact_proof(cold);
  if (we && ce) {
    if (std::abs(warm.makespan - cold.makespan) <= tol) return true;
    why = "both proved optimal but makespans differ: warm " +
          util::format_number(warm.makespan) + " vs cold " +
          util::format_number(cold.makespan);
    return false;
  }
  if (ce) {
    if (warm.makespan < cold.makespan - tol) {
      why = "warm makespan " + util::format_number(warm.makespan) +
            " below the proved optimum " +
            util::format_number(cold.makespan);
      return false;
    }
    if (warm.proved_optimal && warm.bound_factor < kInf &&
        warm.makespan > warm.bound_factor * cold.makespan + tol) {
      why = "warm makespan " + util::format_number(warm.makespan) +
            " outside its proved factor " +
            util::format_number(warm.bound_factor) + " of the optimum " +
            util::format_number(cold.makespan);
      return false;
    }
    return true;
  }
  if (we) {
    if (cold.makespan < warm.makespan - tol) {
      why = "cold makespan " + util::format_number(cold.makespan) +
            " below the proved optimum " +
            util::format_number(warm.makespan);
      return false;
    }
    if (cold.proved_optimal && cold.bound_factor < kInf &&
        cold.makespan > cold.bound_factor * warm.makespan + tol) {
      why = "cold makespan " + util::format_number(cold.makespan) +
            " outside its proved factor " +
            util::format_number(cold.bound_factor) + " of the optimum " +
            util::format_number(warm.makespan);
      return false;
    }
    return true;
  }
  return true;  // neither proof is exact: nothing to cross-check
}

double skip_pct(std::uint64_t warm_expanded, std::uint64_t cold_expanded) {
  if (cold_expanded == 0) return warm_expanded == 0 ? 100.0 : 0.0;
  return 100.0 * (1.0 - static_cast<double>(warm_expanded) /
                            static_cast<double>(cold_expanded));
}

}  // namespace

std::string ChurnCase::to_string() const {
  std::string out = base.to_string();
  for (const auto& pert : chain) out += " | " + pert.to_string();
  return out;
}

std::vector<ChurnCase> parse_churn_corpus(std::istream& in) {
  std::vector<ChurnCase> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = util::trim(line);
    if (line.empty()) continue;
    try {
      // Split on '|': scenario segment first, then the perturbation chain.
      std::vector<std::string> segments;
      std::size_t start = 0;
      while (true) {
        const auto bar = line.find('|', start);
        segments.push_back(util::trim(
            line.substr(start, bar == std::string::npos ? bar : bar - start)));
        if (bar == std::string::npos) break;
        start = bar + 1;
      }
      OPTSCHED_REQUIRE(!segments[0].empty(),
                       "churn line needs a scenario before the first '|'");
      // The scenario segment goes through the corpus reader so a
      // `seeds=A..B` token expands to one case per seed (same chain).
      std::istringstream seg(segments[0]);
      const std::vector<ScenarioSpec> specs = parse_corpus(seg);
      std::vector<PerturbationSpec> chain;
      for (std::size_t i = 1; i < segments.size(); ++i) {
        OPTSCHED_REQUIRE(!segments[i].empty(), "empty perturbation segment");
        chain.push_back(PerturbationSpec::parse(segments[i]));
      }
      for (const auto& spec : specs) out.push_back({spec, chain});
    } catch (const util::Error& e) {
      throw util::Error("churn corpus line " + std::to_string(line_no) +
                        ": " + e.what());
    }
  }
  return out;
}

std::vector<ChurnCase> load_churn_corpus_file(const std::string& path) {
  std::ifstream in(path);
  OPTSCHED_REQUIRE(in.good(), "cannot open churn corpus file '" + path + "'");
  return parse_churn_corpus(in);
}

ChurnReport run_churn(const std::vector<ChurnCase>& corpus,
                      const ChurnConfig& config) {
  const auto [engine_name, engine_options] =
      api::parse_engine_spec(config.engine);
  // Fail fast on an unknown engine, before any instance is built.
  (void)api::SolverRegistry::instance().info(engine_name);

  ChurnReport report;
  report.engine = config.engine;
  report.cases = corpus.size();
  util::Timer wall;

  for (std::size_t case_index = 0; case_index < corpus.size(); ++case_index) {
    if (config.cancel.cancelled()) break;
    const ChurnCase& churn_case = corpus[case_index];
    try {
      const Instance instance = churn_case.base.materialize();
      api::SolveSession session(engine_name, engine_options);

      ChurnRecord first;
      first.case_index = case_index;
      first.step = 0;
      first.spec = instance.name;
      {
        api::SolveRequest request(instance.graph, instance.machine,
                                  instance.comm);
        request.limits = config.limits;
        request.cancel = config.cancel;
        util::Timer timer;
        const api::SolveResult cold = session.solve(request);
        first.warm_time_ms = first.cold_time_ms = timer.millis();
        first.warm_makespan = first.cold_makespan = cold.makespan;
        first.warm_proved = first.cold_proved = cold.proved_optimal;
        first.warm_expanded = first.cold_expanded =
            cold.stats.search.expanded;
      }
      report.records.push_back(first);
      if (config.on_record) config.on_record(report.records.back());

      for (std::size_t k = 0; k < churn_case.chain.size(); ++k) {
        if (config.cancel.cancelled()) break;
        const PerturbationSpec& pert = churn_case.chain[k];
        ChurnRecord rec;
        rec.case_index = case_index;
        rec.step = k + 1;
        rec.spec = pert.to_string();

        util::Timer warm_timer;
        const api::SolveResult warm = session.resolve(pert.delta);
        rec.warm_time_ms = warm_timer.millis();

        // Independent cold solve of the same perturbed instance (the
        // session's graph/machine now reflect the applied delta).
        api::SolveRequest cold_request(session.graph(), session.machine(),
                                       instance.comm);
        cold_request.limits = config.limits;
        cold_request.cancel = config.cancel;
        cold_request.options = engine_options;
        util::Timer cold_timer;
        const api::SolveResult cold =
            api::solve(engine_name, cold_request);
        rec.cold_time_ms = cold_timer.millis();

        rec.warm_makespan = warm.makespan;
        rec.cold_makespan = cold.makespan;
        rec.warm_proved = warm.proved_optimal;
        rec.cold_proved = cold.proved_optimal;
        rec.warm_expanded = warm.stats.search.expanded;
        rec.cold_expanded = cold.stats.search.expanded;
        rec.warm_start_used = warm.stats.warm_start_used;
        rec.states_retained = warm.stats.states_retained;
        rec.search_skipped_pct =
            skip_pct(rec.warm_expanded, rec.cold_expanded);

        std::string why;
        rec.oracle_ok =
            oracle_check(warm, cold, config.oracle_tolerance, why);
        if (!rec.oracle_ok)
          report.mismatches.push_back(
              "case " + std::to_string(case_index) + " step " +
              std::to_string(rec.step) + " (" + rec.spec + "): " + why);

        report.records.push_back(std::move(rec));
        if (config.on_record) config.on_record(report.records.back());
      }
    } catch (const std::exception& e) {
      report.errors.push_back("case " + std::to_string(case_index) + " (" +
                              churn_case.to_string() + "): " + e.what());
    }
  }

  // Per-step aggregates (step >= 1). Steps are dense from 1 up to the
  // longest chain; cases with shorter chains simply stop contributing.
  std::size_t max_step = 0;
  for (const auto& r : report.records) max_step = std::max(max_step, r.step);
  for (std::size_t s = 1; s <= max_step; ++s) {
    ChurnStepAggregate agg;
    agg.step = s;
    for (const auto& r : report.records) {
      if (r.step != s) continue;
      ++agg.cases;
      agg.warm_expanded_mean += static_cast<double>(r.warm_expanded);
      agg.cold_expanded_mean += static_cast<double>(r.cold_expanded);
      agg.skip_mean_pct += r.search_skipped_pct;
      agg.warm_time_ms_mean += r.warm_time_ms;
      agg.cold_time_ms_mean += r.cold_time_ms;
    }
    if (agg.cases > 0) {
      const auto n = static_cast<double>(agg.cases);
      agg.warm_expanded_mean /= n;
      agg.cold_expanded_mean /= n;
      agg.skip_mean_pct /= n;
      agg.warm_time_ms_mean /= n;
      agg.cold_time_ms_mean /= n;
      report.by_step.push_back(agg);
    }
  }
  if (!report.by_step.empty() && report.by_step.front().step == 1)
    report.single_delta_skip_mean_pct = report.by_step.front().skip_mean_pct;

  report.cancelled = config.cancel.cancelled();
  report.wall_ms = wall.millis();
  return report;
}

std::string ChurnReport::summary() const {
  std::ostringstream out;
  out << "churn: " << cases << " cases, " << records.size()
      << " step records, engine " << engine << (ok() ? "" : " [FAILED]")
      << (cancelled ? " (CANCELLED)" : "") << "\n";
  if (!by_step.empty()) {
    out << "  step  cases  warm-exp(mean)  cold-exp(mean)  skipped%\n";
    for (const auto& s : by_step) {
      out << "  " << s.step << "  " << s.cases << "  "
          << util::format_number(s.warm_expanded_mean) << "  "
          << util::format_number(s.cold_expanded_mean) << "  "
          << util::format_number(s.skip_mean_pct) << "\n";
    }
    out << "  single-delta mean skipped: "
        << util::format_number(single_delta_skip_mean_pct) << "%\n";
  }
  for (const auto& m : mismatches) out << "  ORACLE MISMATCH: " << m << "\n";
  for (const auto& e : errors) out << "  ERROR: " << e << "\n";
  return out.str();
}

void write_churn_csv(const ChurnReport& report, std::ostream& out) {
  out << "case,step,warm_makespan,cold_makespan,warm_proved,cold_proved,"
         "warm_expanded,cold_expanded,warm_start_used,states_retained,"
         "search_skipped_pct,oracle_ok,error,spec,warm_time_ms,cold_time_ms"
         "\n";
  for (const auto& r : report.records) {
    out << r.case_index << ',' << r.step << ','
        << util::format_number(r.warm_makespan) << ','
        << util::format_number(r.cold_makespan) << ','
        << (r.warm_proved ? 1 : 0) << ',' << (r.cold_proved ? 1 : 0) << ','
        << r.warm_expanded << ',' << r.cold_expanded << ','
        << (r.warm_start_used ? 1 : 0) << ',' << r.states_retained << ','
        << util::format_number(r.search_skipped_pct) << ','
        << (r.oracle_ok ? 1 : 0) << ',' << csv_escape(r.error) << ','
        << csv_escape(r.spec) << ',' << r.warm_time_ms << ','
        << r.cold_time_ms << "\n";
  }
}

void write_churn_json(const ChurnReport& report, std::ostream& out) {
  const auto list = [](const std::vector<std::string>& items) {
    std::string s;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) s += ", ";
      s += '"' + json_escape(items[i]) + '"';
    }
    return s;
  };
  out << "{\n  \"cases\": " << report.cases << ", \"engine\": \""
      << json_escape(report.engine) << "\", \"ok\": "
      << (report.ok() ? "true" : "false") << ", \"cancelled\": "
      << (report.cancelled ? "true" : "false")
      << ",\n  \"single_delta_skip_mean_pct\": "
      << util::format_number(report.single_delta_skip_mean_pct)
      << ",\n  \"by_step\": [";
  for (std::size_t i = 0; i < report.by_step.size(); ++i) {
    const auto& s = report.by_step[i];
    out << (i ? ",\n" : "\n") << "    {\"step\": " << s.step
        << ", \"cases\": " << s.cases << ", \"warm_expanded_mean\": "
        << util::format_number(s.warm_expanded_mean)
        << ", \"cold_expanded_mean\": "
        << util::format_number(s.cold_expanded_mean)
        << ", \"skip_mean_pct\": " << util::format_number(s.skip_mean_pct)
        << ", \"warm_time_ms_mean\": "
        << util::format_number(s.warm_time_ms_mean)
        << ", \"cold_time_ms_mean\": "
        << util::format_number(s.cold_time_ms_mean) << "}";
  }
  out << "\n  ],\n  \"mismatches\": [" << list(report.mismatches)
      << "],\n  \"errors\": [" << list(report.errors)
      << "],\n  \"records\": [";
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& r = report.records[i];
    out << (i ? ",\n" : "\n") << "    {\"case\": " << r.case_index
        << ", \"step\": " << r.step << ", \"spec\": \""
        << json_escape(r.spec) << "\", \"warm_makespan\": "
        << util::format_number(r.warm_makespan) << ", \"cold_makespan\": "
        << util::format_number(r.cold_makespan) << ", \"warm_proved\": "
        << (r.warm_proved ? "true" : "false") << ", \"cold_proved\": "
        << (r.cold_proved ? "true" : "false") << ", \"warm_expanded\": "
        << r.warm_expanded << ", \"cold_expanded\": " << r.cold_expanded
        << ", \"warm_start_used\": " << (r.warm_start_used ? "true" : "false")
        << ", \"states_retained\": " << r.states_retained
        << ", \"search_skipped_pct\": "
        << util::format_number(r.search_skipped_pct) << ", \"oracle_ok\": "
        << (r.oracle_ok ? "true" : "false") << ", \"error\": \""
        << json_escape(r.error) << "\", \"warm_time_ms\": " << r.warm_time_ms
        << ", \"cold_time_ms\": " << r.cold_time_ms << "}";
  }
  out << "\n  ],\n  \"wall_ms\": " << report.wall_ms << "\n}\n";
}

}  // namespace optsched::workload
