// Corpus files: one ScenarioSpec per line, '#' comments, blank lines
// ignored. A line may carry `seeds=A..B` instead of `seed=N`, expanding to
// one spec per seed in [A, B] — so a 10-line committed file can describe a
// few hundred deterministic instances:
//
//   # smoke corpus: tiny instances every optimal engine can finish
//   family=random nodes=6 ccr=1 machine=clique:2 seeds=100..119
//   family=forkjoin width=4 jitter=1 machine=ring:3 comm=hop seeds=1..10
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace optsched::workload {

/// Parse a corpus stream; errors are reported as util::Error prefixed with
/// the 1-based line number.
std::vector<ScenarioSpec> parse_corpus(std::istream& in);

std::vector<ScenarioSpec> load_corpus_file(const std::string& path);

/// One canonical spec line per entry (comments and seeds= ranges are not
/// preserved; the output is the fully expanded corpus).
std::string format_corpus(const std::vector<ScenarioSpec>& corpus);

}  // namespace optsched::workload
