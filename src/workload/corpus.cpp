#include "workload/corpus.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "util/strings.hpp"

namespace optsched::workload {

namespace {

/// Expand one corpus line into specs: either a plain spec line, or a line
/// with a `seeds=A..B` token producing one spec per seed.
void expand_line(const std::string& line, std::vector<ScenarioSpec>& out) {
  std::string spec_text;
  std::uint64_t lo = 0, hi = 0;
  bool have_range = false;
  bool have_seed = false;
  for (const auto& token : util::split_ws(line)) {
    if (token.rfind("seeds=", 0) == 0) {
      OPTSCHED_REQUIRE(!have_range, "duplicate 'seeds=' token");
      const std::string range = token.substr(6);
      const auto dots = range.find("..");
      OPTSCHED_REQUIRE(dots != std::string::npos,
                       "seeds= expects A..B, got '" + range + "'");
      lo = util::parse_u64(range.substr(0, dots), "seeds range bound");
      hi = util::parse_u64(range.substr(dots + 2), "seeds range bound");
      OPTSCHED_REQUIRE(lo <= hi && hi - lo < 100000,
                       "seeds range '" + range + "' is empty or too large");
      have_range = true;
      continue;
    }
    if (token.rfind("seed=", 0) == 0) have_seed = true;
    spec_text += token;
    spec_text += ' ';
  }
  OPTSCHED_REQUIRE(!(have_seed && have_range),
                   "a line cannot carry both seed= and seeds=");
  if (!have_range) {
    out.push_back(ScenarioSpec::parse(spec_text));
    return;
  }
  ScenarioSpec spec = ScenarioSpec::parse(spec_text);
  // Bound-inclusive without overflow: `seed <= hi` would loop forever when
  // hi == UINT64_MAX.
  for (std::uint64_t seed = lo;; ++seed) {
    spec.seed = seed;
    out.push_back(spec);
    if (seed == hi) break;
  }
}

}  // namespace

std::vector<ScenarioSpec> parse_corpus(std::istream& in) {
  std::vector<ScenarioSpec> corpus;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = util::trim(line);
    if (line.empty()) continue;
    try {
      expand_line(line, corpus);
    } catch (const util::Error& e) {
      throw util::Error("corpus line " + std::to_string(line_no) + ": " +
                        e.what());
    }
  }
  return corpus;
}

std::vector<ScenarioSpec> load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  OPTSCHED_REQUIRE(in.good(), "cannot open corpus file '" + path + "'");
  return parse_corpus(in);
}

std::string format_corpus(const std::vector<ScenarioSpec>& corpus) {
  std::string out;
  for (const auto& spec : corpus) {
    out += spec.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace optsched::workload
