#include "workload/suite.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "api/registry.hpp"
#include "sched/validator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace optsched::workload {

namespace {

/// A failure line tagged with its instance index so the collected lists
/// can be sorted into corpus order after the (unordered) parallel run.
struct Tagged {
  std::size_t instance;
  std::string line;
};

void sort_into(std::vector<Tagged>& tagged, std::vector<std::string>& out) {
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.instance < b.instance;
                   });
  out.reserve(tagged.size());
  for (auto& t : tagged) out.push_back(std::move(t.line));
}

/// Differential oracle over one instance's records (see suite.hpp).
void check_oracle(const std::vector<ScenarioSpec>& corpus, std::size_t i,
                  const SuiteRecord* recs, std::size_t count, double tol,
                  std::vector<Tagged>& mismatches) {
  double optimal = 0.0;
  const SuiteRecord* reference = nullptr;
  for (std::size_t e = 0; e < count; ++e) {
    const SuiteRecord& r = recs[e];
    if (!r.error.empty() || !r.proved_optimal || r.bound_factor != 1.0)
      continue;
    if (!reference) {
      reference = &r;
      optimal = r.makespan;
    } else if (std::abs(r.makespan - optimal) > tol) {
      mismatches.push_back(
          {i, "instance " + std::to_string(i) + " [" + corpus[i].to_string() +
                  "]: " + r.engine + " proved " + std::to_string(r.makespan) +
                  " but " + reference->engine + " proved " +
                  std::to_string(optimal)});
    }
  }
  if (!reference) return;
  for (std::size_t e = 0; e < count; ++e) {
    const SuiteRecord& r = recs[e];
    if (!r.error.empty() || &r == reference) continue;
    if (r.proved_optimal && r.bound_factor == 1.0) continue;  // checked above
    const char* why = nullptr;
    if (r.makespan < optimal - tol) {
      why = "is below the proved optimum";
    } else if (r.proved_optimal && r.bound_factor > 1.0 &&
               r.makespan > r.bound_factor * optimal + tol) {
      why = "exceeds its proved suboptimality bound";
    }
    if (why)
      mismatches.push_back(
          {i, "instance " + std::to_string(i) + " [" + corpus[i].to_string() +
                  "]: " + r.engine + " makespan " + std::to_string(r.makespan) +
                  " " + why + " (" + std::to_string(optimal) + " by " +
                  reference->engine + ")"});
  }
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// JSON has no Infinity/NaN literals: non-finite doubles (the
/// bound_factor of a result that proved nothing) serialize as null.
std::string json_number(double v) {
  return std::isfinite(v) ? util::format_number(v) : "null";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

SuiteReport run_suite(const std::vector<ScenarioSpec>& corpus,
                      const SuiteConfig& config) {
  OPTSCHED_REQUIRE(!config.engines.empty(),
                   "suite needs at least one engine");
  auto& registry = api::SolverRegistry::instance();
  // Engine specs carry options ("parallel:mode=ws:ppes=4"); resolve them
  // up front so an unknown engine or malformed spec throws before any
  // work starts (undeclared option keys are caught by registry.solve).
  std::vector<std::string> engine_names(config.engines.size());
  std::vector<api::Options> engine_options(config.engines.size());
  for (std::size_t e = 0; e < config.engines.size(); ++e) {
    auto [name, options] = api::parse_engine_spec(config.engines[e]);
    registry.info(name);  // throws InvalidRequest on an unknown engine
    engine_names[e] = std::move(name);
    engine_options[e] = std::move(options);
  }

  const std::size_t num_instances = corpus.size();
  const std::size_t num_engines = config.engines.size();

  SuiteReport report;
  report.engines = config.engines;
  report.instances = num_instances;
  report.records.resize(num_instances * num_engines);
  for (std::size_t i = 0; i < num_instances; ++i)
    for (std::size_t e = 0; e < num_engines; ++e) {
      SuiteRecord& rec = report.records[i * num_engines + e];
      rec.instance = i;
      rec.spec = corpus[i].to_string();
      rec.family = corpus[i].family;
      rec.engine = config.engines[e];
    }
  if (num_instances == 0) {
    report.jobs = 0;
    return report;
  }

  const unsigned jobs = static_cast<unsigned>(std::clamp<std::size_t>(
      config.jobs ? config.jobs : 1, 1, num_instances));
  report.jobs = jobs;

  util::Timer wall;
  std::atomic<std::size_t> next{0};
  std::mutex mu;  // guards the tagged lists and on_record
  std::vector<Tagged> mismatches, failures, errors;

  auto worker = [&] {
    const sched::ScheduleValidator validator;
    while (true) {
      if (config.cancel.cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_instances) return;
      SuiteRecord* recs = report.records.data() + i * num_engines;

      std::optional<Instance> instance;
      try {
        instance.emplace(corpus[i].materialize());
      } catch (const std::exception& ex) {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::size_t e = 0; e < num_engines; ++e)
          recs[e].error = ex.what();
        errors.push_back({i, "instance " + std::to_string(i) + " [" +
                                 corpus[i].to_string() +
                                 "]: materialize failed: " + ex.what()});
        continue;
      }

      for (std::size_t e = 0; e < num_engines; ++e) {
        SuiteRecord& rec = recs[e];
        rec.nodes = instance->graph.num_nodes();
        rec.edges = instance->graph.num_edges();
        rec.procs = instance->machine.num_procs();

        api::SolveRequest request(instance->graph, instance->machine,
                                  instance->comm);
        request.limits = config.limits;
        request.cancel = config.cancel;
        request.options = engine_options[e];

        const util::Timer timer;
        try {
          // --via-socket mode: ship the run to the daemon instead of
          // solving in-process. The hook returns a rebuilt result whose
          // schedule borrows *instance, so validation and the oracle
          // below see it exactly like a local result.
          const api::SolveResult result =
              config.remote_solve
                  ? config.remote_solve(*instance, config.engines[e],
                                        config.limits)
                  : api::solve(engine_names[e], request);
          rec.makespan = result.makespan;
          rec.proved_optimal = result.proved_optimal;
          rec.bound_factor = result.bound_factor;
          rec.termination = core::to_string(result.reason);
          rec.queue_kind = result.stats.search.queue_kind;
          rec.fallback_reason = result.stats.search.queue_fallback;
          rec.bucket_peak = result.stats.search.bucket_peak;
          rec.pins_applied = result.stats.pins_applied;
          rec.expanded = result.stats.search.expanded;
          rec.generated = result.stats.search.generated;
          rec.loads_full = result.stats.search.loads_full;
          rec.loads_incremental = result.stats.search.loads_incremental;
          rec.peak_memory_bytes = result.stats.search.peak_memory_bytes;
          rec.arena_hot_bytes = result.stats.search.arena_hot_bytes;
          rec.arena_cold_bytes = result.stats.search.arena_cold_bytes;
          rec.parallel_mode = result.stats.parallel_mode;
          rec.states_transferred = result.stats.states_transferred;
          rec.steals = result.stats.steals;
          rec.shard_hits = result.stats.shard_hits;
          rec.expanded_per_ppe = result.stats.expanded_per_ppe;  // sorted
          rec.effective_ppes = result.stats.effective_ppes;
          rec.warm_start_used = result.stats.warm_start_used;
          rec.states_retained = result.stats.states_retained;
          rec.search_skipped_pct = result.stats.search_skipped_pct;
          rec.cache_hit = result.stats.cache_hit;
          rec.cache_lookups = result.stats.cache_lookups;
          rec.cache_bytes = result.stats.cache_bytes;
          rec.queue_wait_ms = result.stats.queue_wait_ms;
          rec.states_serialized = result.stats.states_serialized;
          rec.batches_sent = result.stats.batches_sent;
          rec.termination_rounds = result.stats.termination_rounds;
          rec.states_deduped_at_send = result.stats.states_deduped_at_send;
          rec.flushes = result.stats.flushes;
          rec.bytes_sent = result.stats.bytes_sent;
          rec.valid = true;
          if (config.validate_schedules) {
            const auto violations = validator.check(result.schedule);
            if (!violations.empty()) {
              rec.valid = false;
              const std::lock_guard<std::mutex> lock(mu);
              for (const auto& v : violations)
                failures.push_back(
                    {i, "instance " + std::to_string(i) + " [" + rec.spec +
                            "] " + rec.engine + ": [" +
                            sched::to_string(v.kind) + "] " + v.message});
            }
          }
        } catch (const std::exception& ex) {
          rec.error = ex.what();
          const std::lock_guard<std::mutex> lock(mu);
          errors.push_back({i, "instance " + std::to_string(i) + " [" +
                                   rec.spec + "] " + rec.engine + ": " +
                                   ex.what()});
        }
        rec.time_ms = timer.millis();
        if (config.on_record) {
          const std::lock_guard<std::mutex> lock(mu);
          config.on_record(rec);
        }
      }

      if (config.differential_oracle) {
        std::vector<Tagged> local;
        check_oracle(corpus, i, recs, num_engines, config.oracle_tolerance,
                     local);
        if (!local.empty()) {
          const std::lock_guard<std::mutex> lock(mu);
          for (auto& t : local) mismatches.push_back(std::move(t));
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  // Read the token itself, not a worker-observed flag: a cancellation that
  // lands after the last index is claimed must still mark the report (its
  // in-flight solves returned truncated incumbents).
  report.cancelled = config.cancel.cancelled();
  if (report.cancelled)
    for (auto& rec : report.records)
      if (rec.termination.empty() && rec.error.empty()) rec.error = "not-run";

  sort_into(mismatches, report.oracle_mismatches);
  sort_into(failures, report.validator_failures);
  sort_into(errors, report.errors);
  report.wall_ms = wall.millis();
  return report;
}

std::string SuiteReport::summary() const {
  std::ostringstream out;
  out << "suite: " << instances << " instances x " << engines.size()
      << " engines, " << jobs << " jobs, " << util::format_seconds(wall_ms / 1e3)
      << (cancelled ? " (CANCELLED)" : "") << "\n";

  util::Table table({"engine", "runs", "optimal", "mean makespan",
                     "mean expanded", "delta loads", "total time"});
  for (const auto& engine : engines) {
    util::Accumulator makespan, expanded, time_ms;
    std::uint64_t runs = 0, proved = 0, delta = 0;
    for (const auto& rec : records) {
      if (rec.engine != engine || !rec.error.empty()) continue;
      ++runs;
      if (rec.proved_optimal) ++proved;
      makespan.add(rec.makespan);
      expanded.add(static_cast<double>(rec.expanded));
      delta += rec.loads_incremental;
      time_ms.add(rec.time_ms);
    }
    table.row()
        .cell(engine)
        .cell(runs)
        .cell(proved)
        .cell(makespan.mean())
        .cell(expanded.mean(), 1)
        .cell(delta)
        .cell(util::format_seconds(time_ms.sum() / 1e3));
  }
  table.print(out);

  auto dump = [&out](const char* title, const std::vector<std::string>& list) {
    if (list.empty()) return;
    out << title << " (" << list.size() << "):\n";
    for (const auto& line : list) out << "  " << line << "\n";
  };
  // Serving-layer line only when runs actually went through a daemon
  // (in-process suites report zero lookups).
  std::uint64_t lookups = 0, hits = 0;
  for (const auto& rec : records) {
    lookups += rec.cache_lookups ? 1 : 0;
    hits += rec.cache_hit ? 1 : 0;
  }
  if (lookups)
    out << "cache: " << hits << "/" << lookups << " runs served from cache\n";

  dump("ORACLE MISMATCHES", oracle_mismatches);
  dump("VALIDATOR FAILURES", validator_failures);
  dump("ERRORS", errors);
  if (ok()) out << "oracle: all engines agree; all schedules valid\n";
  return out.str();
}

void write_csv(const SuiteReport& report, std::ostream& out) {
  out << "instance,family,engine,nodes,edges,procs,makespan,proved_optimal,"
         "bound_factor,termination,queue_kind,fallback_reason,expanded,"
         "generated,loads_full,"
         "loads_incremental,peak_memory_bytes,arena_hot_bytes,"
         "arena_cold_bytes,parallel_mode,states_transferred,steals,"
         "shard_hits,effective_ppes,warm_start_used,states_retained,"
         "search_skipped_pct,valid,error,spec,cache_hit,cache_lookups,"
         "cache_bytes,queue_wait_ms,bucket_peak,pins_applied,"
         "states_serialized,batches_sent,termination_rounds,"
         "states_deduped_at_send,flushes,bytes_sent,time_ms\n";
  for (const auto& r : report.records) {
    out << r.instance << ',' << r.family << ',' << csv_escape(r.engine) << ','
        << r.nodes << ',' << r.edges << ',' << r.procs << ','
        << util::format_number(r.makespan)
        << ',' << (r.proved_optimal ? 1 : 0) << ','
        << util::format_number_lenient(r.bound_factor) << ',' << r.termination
        << ','
        << r.queue_kind << ',' << r.fallback_reason << ','
        << r.expanded << ',' << r.generated << ',' << r.loads_full << ','
        << r.loads_incremental << ',' << r.peak_memory_bytes << ','
        << r.arena_hot_bytes << ',' << r.arena_cold_bytes << ','
        << r.parallel_mode << ',' << r.states_transferred << ',' << r.steals
        << ',' << r.shard_hits << ',' << r.effective_ppes << ','
        << (r.warm_start_used ? 1 : 0) << ',' << r.states_retained << ','
        << util::format_number(r.search_skipped_pct) << ','
        << (r.valid ? 1 : 0) << ','
        << csv_escape(r.error) << ',' << csv_escape(r.spec) << ','
        << (r.cache_hit ? 1 : 0) << ',' << r.cache_lookups << ','
        << r.cache_bytes << ',' << util::format_number(r.queue_wait_ms) << ','
        << r.bucket_peak << ',' << r.pins_applied << ','
        << r.states_serialized << ',' << r.batches_sent << ','
        << r.termination_rounds << ','
        << r.states_deduped_at_send << ',' << r.flushes << ','
        << r.bytes_sent << ','
        << util::format_number(r.time_ms) << '\n';
  }
}

void write_json(const SuiteReport& report, std::ostream& out) {
  auto string_list = [&](const std::vector<std::string>& list) {
    std::string s = "[";
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i) s += ", ";
      s += '"' + json_escape(list[i]) + '"';
    }
    return s + "]";
  };

  out << "{\n  \"suite\": {\"instances\": " << report.instances
      << ", \"jobs\": " << report.jobs << ", \"ok\": "
      << (report.ok() ? "true" : "false") << ", \"cancelled\": "
      << (report.cancelled ? "true" : "false")
      << ", \"engines\": " << string_list(report.engines)
      << ", \"wall_ms\": " << json_number(report.wall_ms) << "},\n";

  out << "  \"aggregates\": {";
  bool first_engine = true;
  for (const auto& engine : report.engines) {
    util::Accumulator makespan, time_ms;
    std::uint64_t runs = 0, proved = 0, expanded = 0, delta = 0, full = 0;
    std::uint64_t transferred = 0, shard_hits = 0, cache_hits = 0;
    std::uint64_t serialized = 0, batches = 0, term_rounds = 0;
    std::uint64_t send_dedup = 0, flushes = 0, wire_bytes = 0;
    std::size_t peak = 0;
    for (const auto& r : report.records) {
      if (r.engine != engine || !r.error.empty()) continue;
      ++runs;
      if (r.proved_optimal) ++proved;
      if (r.cache_hit) ++cache_hits;
      makespan.add(r.makespan);
      expanded += r.expanded;
      delta += r.loads_incremental;
      full += r.loads_full;
      transferred += r.states_transferred;
      shard_hits += r.shard_hits;
      serialized += r.states_serialized;
      batches += r.batches_sent;
      term_rounds += r.termination_rounds;
      send_dedup += r.states_deduped_at_send;
      flushes += r.flushes;
      wire_bytes += r.bytes_sent;
      peak = std::max(peak, r.peak_memory_bytes);
      time_ms.add(r.time_ms);
    }
    out << (first_engine ? "\n" : ",\n") << "    \"" << json_escape(engine)
        << "\": {\"runs\": " << runs << ", \"proved_optimal\": " << proved
        << ", \"mean_makespan\": " << json_number(makespan.mean())
        << ", \"total_expanded\": " << expanded
        << ", \"total_loads_full\": " << full
        << ", \"total_loads_incremental\": " << delta
        << ", \"total_states_transferred\": " << transferred
        << ", \"total_shard_hits\": " << shard_hits
        << ", \"total_states_serialized\": " << serialized
        << ", \"total_batches_sent\": " << batches
        << ", \"total_termination_rounds\": " << term_rounds
        << ", \"total_states_deduped_at_send\": " << send_dedup
        << ", \"total_flushes\": " << flushes
        << ", \"total_bytes_sent\": " << wire_bytes
        << ", \"cache_hits\": " << cache_hits
        << ", \"max_peak_memory_bytes\": " << peak
        << ", \"total_time_ms\": " << json_number(time_ms.sum()) << "}";
    first_engine = false;
  }
  out << "\n  },\n";

  out << "  \"oracle_mismatches\": " << string_list(report.oracle_mismatches)
      << ",\n  \"validator_failures\": "
      << string_list(report.validator_failures)
      << ",\n  \"errors\": " << string_list(report.errors) << ",\n";

  out << "  \"records\": [\n";
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& r = report.records[i];
    out << "    {\"instance\": " << r.instance << ", \"family\": \""
        << json_escape(r.family) << "\", \"engine\": \""
        << json_escape(r.engine) << "\", \"nodes\": " << r.nodes
        << ", \"edges\": " << r.edges << ", \"procs\": " << r.procs
        << ", \"makespan\": " << json_number(r.makespan)
        << ", \"proved_optimal\": " << (r.proved_optimal ? "true" : "false")
        << ", \"bound_factor\": " << json_number(r.bound_factor)
        << ", \"termination\": \"" << json_escape(r.termination)
        << "\", \"queue_kind\": \"" << json_escape(r.queue_kind)
        << "\", \"fallback_reason\": \"" << json_escape(r.fallback_reason)
        << "\", \"expanded\": " << r.expanded
        << ", \"generated\": " << r.generated
        << ", \"loads_full\": " << r.loads_full
        << ", \"loads_incremental\": " << r.loads_incremental
        << ", \"peak_memory_bytes\": " << r.peak_memory_bytes
        << ", \"arena_hot_bytes\": " << r.arena_hot_bytes
        << ", \"arena_cold_bytes\": " << r.arena_cold_bytes;
    if (!r.parallel_mode.empty()) {
      // Sorted descending (not PPE-id order) so reruns diff on the load
      // distribution alone; min/max aggregates for quick scans.
      out << ", \"parallel_mode\": \"" << json_escape(r.parallel_mode)
          << "\", \"states_transferred\": " << r.states_transferred
          << ", \"steals\": " << r.steals
          << ", \"shard_hits\": " << r.shard_hits << ", \"expanded_per_ppe\": [";
      for (std::size_t p = 0; p < r.expanded_per_ppe.size(); ++p)
        out << (p ? ", " : "") << r.expanded_per_ppe[p];
      out << "], \"ppe_expanded_min\": "
          << (r.expanded_per_ppe.empty() ? 0 : r.expanded_per_ppe.back())
          << ", \"ppe_expanded_max\": "
          << (r.expanded_per_ppe.empty() ? 0 : r.expanded_per_ppe.front())
          << ", \"effective_ppes\": " << r.effective_ppes
          << ", \"states_serialized\": " << r.states_serialized
          << ", \"batches_sent\": " << r.batches_sent
          << ", \"termination_rounds\": " << r.termination_rounds
          << ", \"states_deduped_at_send\": " << r.states_deduped_at_send
          << ", \"flushes\": " << r.flushes
          << ", \"bytes_sent\": " << r.bytes_sent;
    }
    out << ", \"warm_start_used\": " << (r.warm_start_used ? "true" : "false")
        << ", \"states_retained\": " << r.states_retained
        << ", \"search_skipped_pct\": "
        << util::format_number(r.search_skipped_pct);
    out << ", \"valid\": " << (r.valid ? "true" : "false") << ", \"error\": \""
        << json_escape(r.error) << "\", \"spec\": \"" << json_escape(r.spec)
        << "\", \"cache_hit\": " << (r.cache_hit ? "true" : "false")
        << ", \"cache_lookups\": " << r.cache_lookups
        << ", \"cache_bytes\": " << r.cache_bytes
        << ", \"queue_wait_ms\": " << json_number(r.queue_wait_ms)
        << ", \"bucket_peak\": " << r.bucket_peak
        << ", \"pins_applied\": " << r.pins_applied
        << ", \"time_ms\": " << json_number(r.time_ms) << "}"
        << (i + 1 < report.records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace optsched::workload
