// Churn runner: warm-start re-solve chains with a warm-vs-cold oracle.
//
// A churn case is one scenario plus a chain of perturbations:
//
//   family=layered n=12 ... seed=3 | delta=taskcost node=4 cost=9 | ...
//
// The runner materializes the scenario, solves it cold through a
// SolveSession, then applies the chain one delta at a time: each step is
// re-solved *warm* through the session (arena prefix reuse + repaired
// incumbent seed) and — independently — *cold* on the same perturbed
// instance. The pair feeds two outputs:
//
//   Soundness oracle. For exact configurations warm must bit-agree with
//   cold: same makespan (within tolerance) and same proved_optimal. For
//   bounded engines (Aε*, weighted A*) the two may legitimately differ;
//   then each result must lie within the other's proved bound. Any
//   violation is recorded as a mismatch and fails ok().
//
//   Savings measurement. search_skipped_pct here is the *exact*
//   100 * (1 - warm_expanded / cold_expanded) — both runs actually
//   happened — unlike the session's own estimate against the previous
//   solve. The by-step aggregates (and single_delta_skip_mean_pct) are
//   what bench/run_resolve.sh commits to BENCH_pr6.json.
//
// Runs are serial: a chain is inherently sequential, and the cold
// reference runs interleave with the warm ones on the same thread so the
// per-step timing columns are comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "workload/perturbation.hpp"
#include "workload/scenario.hpp"

namespace optsched::workload {

/// One scenario plus its perturbation chain.
struct ChurnCase {
  ScenarioSpec base;
  std::vector<PerturbationSpec> chain;

  /// Canonical "scenario | delta | delta" line (round-trips).
  std::string to_string() const;
};

/// Parse "scenario | pert | pert" lines; '#' starts a comment, blank lines
/// are skipped, and a `seeds=A..B` token in the scenario segment expands
/// to one case per seed (same chain). Throws util::Error with the line
/// number on malformed lines.
std::vector<ChurnCase> parse_churn_corpus(std::istream& in);
std::vector<ChurnCase> load_churn_corpus_file(const std::string& path);

struct ChurnConfig {
  /// Engine spec "name[:k=v...]" (api::parse_engine_spec); one engine per
  /// run — warm and cold use the identical configuration.
  std::string engine = "astar";
  api::SolveLimits limits{};
  double oracle_tolerance = 1e-6;
  core::CancellationToken cancel{};
  /// Called once per finished step record (progress reporting).
  std::function<void(const struct ChurnRecord&)> on_record;
};

/// One step of one case. step 0 is the initial cold solve (warm == cold
/// by construction); step k >= 1 is the k-th delta of the chain.
struct ChurnRecord {
  std::size_t case_index = 0;
  std::size_t step = 0;
  std::string spec;  ///< scenario line (step 0) or perturbation line
  double warm_makespan = 0.0;
  double cold_makespan = 0.0;
  bool warm_proved = false;
  bool cold_proved = false;
  std::uint64_t warm_expanded = 0;
  std::uint64_t cold_expanded = 0;
  bool warm_start_used = false;
  std::uint64_t states_retained = 0;
  /// Exact skip: 100 * (1 - warm_expanded / cold_expanded). Negative when
  /// warm expanded more (never clamped — this is the honest figure).
  double search_skipped_pct = 0.0;
  bool oracle_ok = true;
  std::string error;  ///< exception text; empty on success
  double warm_time_ms = 0.0;
  double cold_time_ms = 0.0;
};

/// Aggregates over all records with the same step index (step >= 1).
struct ChurnStepAggregate {
  std::size_t step = 0;
  std::size_t cases = 0;
  double warm_expanded_mean = 0.0;
  double cold_expanded_mean = 0.0;
  double skip_mean_pct = 0.0;
  double warm_time_ms_mean = 0.0;
  double cold_time_ms_mean = 0.0;
};

struct ChurnReport {
  std::vector<ChurnRecord> records;  ///< case-major, step order
  std::vector<std::string> mismatches;
  std::vector<std::string> errors;
  std::string engine;
  std::size_t cases = 0;
  bool cancelled = false;
  double wall_ms = 0.0;

  /// Mean exact skip over every first-delta step (the acceptance figure).
  double single_delta_skip_mean_pct = 0.0;
  std::vector<ChurnStepAggregate> by_step;

  bool ok() const {
    return mismatches.empty() && errors.empty() && !cancelled;
  }

  std::string summary() const;
};

ChurnReport run_churn(const std::vector<ChurnCase>& corpus,
                      const ChurnConfig& config);

/// One row per record; the two time columns are last (the only
/// nondeterministic ones for serial engines).
void write_churn_csv(const ChurnReport& report, std::ostream& out);

/// Full report as JSON: metadata, by-step aggregates, failure lists, and
/// all records (time fields last).
void write_churn_json(const ChurnReport& report, std::ostream& out);

}  // namespace optsched::workload
