// Parameterized scenario families — the reusable instance corpus.
//
// A ScenarioSpec is a compact, fully deterministic description of one
// scheduling instance: a generator family, its shape parameters, a machine
// topology spec, a communication mode, and a seed. A spec materializes a
// complete Instance (task graph + machine + comm mode) and serializes
// to/from one line of text, so a corpus file fully describes a suite run:
//
//   family=random nodes=8 ccr=1 machine=ring:3 comm=unit seed=42
//   family=forkjoin width=5 jitter=1 machine=clique:3@1,2,4 comm=hop seed=7
//   family=outtree branch=2 depth=3 machine=hypercube:2 seed=3
//
// Families (shape parameters; (r) = required):
//   random       nodes(r), ccr, meancomp, meanchild   — the paper's §4.1
//                recipe; the seed drives all cost and wiring draws.
//   layered      layers(r), width(r)   — fully connected consecutive ranks
//   forkjoin     width(r)              — entry -> width tasks -> exit
//   outtree      branch(r), depth(r)   — complete out-tree
//   intree       branch(r), depth(r)   — complete reduction tree
//   diamond      half(r)               — split/merge widths 1..half..1
//   chain        length(r)             — sequential program
//   independent  count(r)              — embarrassingly parallel
//   gauss        dim(r)                — Gaussian-elimination column sweep
//   fft          points(r)             — radix-2 butterfly (power of two)
//   stg          path(r), ccr          — Standard Task Graph file import;
//                the seed drives synthesized comm costs when ccr > 0.
//
// The structured families also accept meancomp/meancomm (mean node and
// edge costs, default 40; named as in the random family — `comm` is the
// communication-mode key) and jitter: with jitter=1 the uniform template
// costs are replaced by per-node/per-edge integer draws from
// U{1, 2*mean-1} seeded by the spec seed, turning each deterministic
// skeleton into a seeded family of instances — the same uniform-with-mean
// recipe as the random family.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "machine/machine.hpp"

namespace optsched::workload {

/// A materialized scenario: everything a SolveRequest borrows.
struct Instance {
  std::string name;  ///< the canonical spec line that produced it
  dag::TaskGraph graph;
  machine::Machine machine;
  machine::CommMode comm = machine::CommMode::kUnitDistance;
};

class ScenarioSpec {
 public:
  /// Parse one spec line of whitespace-separated key=value tokens (see the
  /// header comment for the grammar). Unknown families, undeclared or
  /// missing shape parameters, malformed numbers, and bad machine specs
  /// all throw util::Error naming the offending token.
  static ScenarioSpec parse(const std::string& text);

  /// Canonical one-line form; parse(to_string()) reconstructs an equal
  /// spec, and equal specs materialize bit-identical instances.
  std::string to_string() const;

  /// Deterministically build the instance (same spec -> identical graph,
  /// machine, and comm mode, bit for bit).
  Instance materialize() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  std::string family;
  std::map<std::string, double> params;  ///< family shape parameters
  std::string path;                      ///< stg family: graph file path
  std::string machine_spec = "clique:2";
  machine::CommMode comm = machine::CommMode::kUnitDistance;
  std::uint64_t seed = 1;
};

/// All registered family names, sorted (for --help and error messages).
std::vector<std::string> family_names();

}  // namespace optsched::workload
