// SuiteRunner: fan a scenario corpus out across a thread pool of
// SolveRequests and aggregate one report.
//
// Sharding is per instance: workers claim corpus indices from an atomic
// counter, materialize the instance once, run every configured engine on
// it sequentially (so the per-instance differential oracle sees all
// results together), validate every returned schedule with
// ScheduleValidator, and write records into preallocated (instance,
// engine) slots — the report is therefore deterministic regardless of the
// thread count or completion order; only the timing column varies.
//
// The differential oracle per instance:
//  * all proved-optimal results (bound_factor == 1) must agree on the
//    makespan;
//  * a proved bounded result (Aε*) must lie in
//    [optimal, bound_factor * optimal];
//  * every other result (heuristics, budget-limited incumbents) must be
//    >= the proved optimum.
// Any disagreement is recorded as an oracle mismatch and fails ok().
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "workload/scenario.hpp"

namespace optsched::workload {

struct SuiteConfig {
  /// Engine specs, "name[:k=v[:k=v...]]" — a registry name plus engine
  /// options (api::parse_engine_spec), so one suite can cross-check
  /// configurations of the same engine (e.g. "parallel:mode=ring:ppes=4"
  /// vs "parallel:mode=ws:ppes=4"). Must be non-empty; reports key
  /// records off the full spec string.
  std::vector<std::string> engines;
  unsigned jobs = 1;                 ///< worker threads (clamped to corpus)
  api::SolveLimits limits{};         ///< per-instance budgets (0 = none)
  bool validate_schedules = true;    ///< run ScheduleValidator on every run
  bool differential_oracle = true;   ///< cross-check engines per instance
  double oracle_tolerance = 1e-6;    ///< absolute makespan slack
  core::CancellationToken cancel{};  ///< aborts the whole suite
  /// Called once per finished run, serialized under an internal mutex
  /// (suitable for progress lines from any worker).
  std::function<void(const struct SuiteRecord&)> on_record;
  /// Remote execution hook: when set, every (instance, engine) run is
  /// delegated here instead of calling api::solve in-process — the
  /// CLI's `suite --via-socket` mode routes runs through a
  /// server::Client, reusing this corpus fan-out as the daemon's
  /// concurrent-load driver. The hook receives the locally
  /// materialized instance (its `name` is the canonical spec line) and
  /// must return a result whose schedule borrows that instance, so the
  /// ScheduleValidator and the differential oracle apply to remote
  /// results exactly as to local ones. Called concurrently from
  /// `jobs` worker threads; open one connection per thread.
  std::function<api::SolveResult(
      const Instance& instance, const std::string& engine_spec,
      const api::SolveLimits& limits)>
      remote_solve;
};

/// One (instance, engine) run. For serial engines every field except
/// time_ms is a pure function of the spec and engine, so reports diff
/// cleanly across runs; multithreaded engines (`parallel`, `portfolio`)
/// report timing-dependent search stats, which is why the CLI's default
/// engine set is serial-only. Per-PPE expansion counts are stored sorted
/// (descending) and emitted with min/max aggregates — per-thread
/// attribution is timing-dependent, so reports never depend on PPE
/// numbering, only on the (still timing-dependent) distribution.
struct SuiteRecord {
  std::size_t instance = 0;  ///< corpus index
  std::string spec;          ///< canonical scenario line
  std::string family;
  std::string engine;        ///< full engine spec ("parallel:mode=ws")
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint32_t procs = 0;
  double makespan = 0.0;
  bool proved_optimal = false;
  double bound_factor = 0.0;
  std::string termination;
  /// OPEN structure the solve ran on ("heap"/"bucket"/"focal"; empty for
  /// non-search engines) and why queue=auto fell back to the heap (empty
  /// when it did not). Pure functions of spec and engine.
  std::string queue_kind;
  std::string fallback_reason;
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  std::uint64_t loads_full = 0;
  std::uint64_t loads_incremental = 0;
  std::size_t peak_memory_bytes = 0;
  std::size_t arena_hot_bytes = 0;
  std::size_t arena_cold_bytes = 0;
  std::string parallel_mode;  ///< "ring"/"ws"; empty for serial engines
  std::uint64_t states_transferred = 0;  ///< parallel: shipped or stolen
  std::uint64_t steals = 0;              ///< parallel ws mode
  std::uint64_t shard_hits = 0;  ///< duplicates filtered by the shared table
  std::vector<std::uint64_t> expanded_per_ppe;  ///< sorted descending
  /// PPEs actually run after the feedability clamp (parallel ws mode; 0
  /// for serial engines).
  std::uint32_t effective_ppes = 0;
  /// Warm-start columns (SolveStats): always present so suite and churn
  /// reports share a schema; one-shot suite runs leave them false/0.
  bool warm_start_used = false;
  std::uint64_t states_retained = 0;
  double search_skipped_pct = 0.0;
  /// Serving-layer columns (SolveStats): false/0 for in-process runs;
  /// filled by the --via-socket remote hook. cache_lookups/cache_bytes
  /// snapshot daemon-lifetime state and queue_wait_ms is wall-clock, so
  /// like time_ms they are excluded from determinism diffs.
  bool cache_hit = false;
  std::uint64_t cache_lookups = 0;
  std::size_t cache_bytes = 0;
  double queue_wait_ms = 0.0;
  /// Bucket-queue peak key span and pinned-thread count. Run-dependent:
  /// the parallel engine's peak depends on thread timing and pinning on
  /// the host's affinity support, so both live in the trailing CSV zone
  /// determinism diffs strip.
  std::uint64_t bucket_peak = 0;
  std::uint32_t pins_applied = 0;
  /// Distributed-mode counters (parallel engine, mode=dist; 0 elsewhere).
  /// Run-dependent — bound-arrival timing changes which states cross
  /// process boundaries — so they live in the trailing CSV zone too.
  std::uint64_t states_serialized = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t termination_rounds = 0;
  std::uint64_t states_deduped_at_send = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_sent = 0;
  bool valid = false;  ///< ScheduleValidator verdict (true when disabled)
  std::string error;   ///< exception text; empty on success
  double time_ms = 0.0;
};

struct SuiteReport {
  /// (instance, engine) row-major: records[i * engines + e].
  std::vector<SuiteRecord> records;
  std::vector<std::string> engines;
  std::vector<std::string> oracle_mismatches;
  std::vector<std::string> validator_failures;
  std::vector<std::string> errors;  ///< materialize/solve exceptions
  std::size_t instances = 0;
  unsigned jobs = 0;
  bool cancelled = false;
  double wall_ms = 0.0;

  /// No mismatches, no validator failures, no errors, not cancelled.
  bool ok() const {
    return oracle_mismatches.empty() && validator_failures.empty() &&
           errors.empty() && !cancelled;
  }

  /// Human-readable per-engine aggregate table plus the failure lists.
  std::string summary() const;
};

/// Run the whole corpus. Throws util::Error on an empty engine list or an
/// engine name the registry does not know (before any work starts).
SuiteReport run_suite(const std::vector<ScenarioSpec>& corpus,
                      const SuiteConfig& config);

/// One header row plus one row per record. The trailing thirteen columns
/// (cache_hit, cache_lookups, cache_bytes, queue_wait_ms, bucket_peak,
/// pins_applied, states_serialized, batches_sent, termination_rounds,
/// states_deduped_at_send, flushes, bytes_sent, time_ms) are run-dependent — serving-layer state, thread-timing and
/// host-affinity counters, dist-mode communication, and wall-clock — so
/// determinism diffs strip them by *name* (scripts/strip_csv_columns.awk;
/// never by position, which silently breaks when columns move); every
/// earlier column is a pure function of spec and engine for serial
/// engines.
void write_csv(const SuiteReport& report, std::ostream& out);

/// Full report as JSON: suite metadata, per-engine aggregates, failure
/// lists, and all records (time fields last).
void write_json(const SuiteReport& report, std::ostream& out);

}  // namespace optsched::workload
