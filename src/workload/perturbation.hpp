// One-line perturbation grammar: the textual form of core::InstanceDelta
// used by churn corpora, the CLI `resolve` subcommand, and the warm-vs-cold
// oracle tests. One line = one delta:
//
//   delta=taskcost node=3 cost=25     execution cost of node 3 becomes 25
//   delta=edgeadd  src=1 dst=4 cost=7 new precedence edge 1 -> 4
//   delta=edgedel  src=1 dst=4        remove edge 1 -> 4
//   delta=commcost src=1 dst=4 cost=9 communication cost of 1 -> 4
//   delta=procdrop proc=2             processor 2 fails (others renumber)
//   delta=procadd  speed=1.5          clique-attach a new processor
//
// The grammar follows the scenario-spec conventions (workload/scenario.hpp):
// whitespace-separated key=value tokens, order-insensitive after the
// leading delta= token, unknown/duplicate/missing keys rejected, and
// to_string() emits the canonical line that parses back to an equal spec.
#pragma once

#include <string>

#include "core/delta.hpp"

namespace optsched::workload {

struct PerturbationSpec {
  core::InstanceDelta delta{};

  /// Canonical one-line form (round-trips through parse()).
  std::string to_string() const;

  /// Throws util::Error on malformed lines: unknown kind, a key the kind
  /// does not declare, duplicate or missing keys, malformed numbers.
  /// Instance-dependent validity (node range, edge existence) is checked
  /// later, by core::apply_delta.
  static PerturbationSpec parse(const std::string& line);

  friend bool operator==(const PerturbationSpec&,
                         const PerturbationSpec&) = default;
};

}  // namespace optsched::workload
