#include "workload/scenario.hpp"

#include <cmath>

#include "dag/generators.hpp"
#include "dag/stg.hpp"
#include "machine/spec.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace optsched::workload {

namespace {

/// Declared shape parameters per family; anything else in a spec line is a
/// typo and is rejected at parse time.
struct FamilyDef {
  std::vector<std::string> required;
  std::vector<std::string> optional;
};

const std::map<std::string, FamilyDef>& families() {
  static const std::map<std::string, FamilyDef> defs = {
      {"random", {{"nodes"}, {"ccr", "meancomp", "meanchild"}}},
      {"layered", {{"layers", "width"}, {"meancomp", "meancomm", "jitter"}}},
      {"forkjoin", {{"width"}, {"meancomp", "meancomm", "jitter"}}},
      {"outtree", {{"branch", "depth"}, {"meancomp", "meancomm", "jitter"}}},
      {"intree", {{"branch", "depth"}, {"meancomp", "meancomm", "jitter"}}},
      {"diamond", {{"half"}, {"meancomp", "meancomm", "jitter"}}},
      {"chain", {{"length"}, {"meancomp", "meancomm", "jitter"}}},
      {"independent", {{"count"}, {"meancomp", "jitter"}}},
      {"gauss", {{"dim"}, {"meancomp", "meancomm", "jitter"}}},
      {"fft", {{"points"}, {"meancomp", "meancomm", "jitter"}}},
      {"stg", {{}, {"ccr"}}},  // plus the required string param `path`
  };
  return defs;
}

bool declares(const FamilyDef& def, const std::string& key) {
  for (const auto& k : def.required)
    if (k == key) return true;
  for (const auto& k : def.optional)
    if (k == key) return true;
  return false;
}

double parse_number(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    OPTSCHED_REQUIRE(used == value.size() && std::isfinite(v),
                     "malformed number '" + value + "' for '" + key + "'");
    // Every shape parameter is a count, mean cost, ratio, or flag: negative
    // or astronomically large values are typos, and bounding them here keeps
    // downstream float-to-int casts (jitter draws) in range.
    OPTSCHED_REQUIRE(v >= 0 && v <= 1e9,
                     "parameter '" + key + "' out of range [0, 1e9]");
    return v;
  } catch (const util::Error&) {
    throw;
  } catch (const std::exception&) {
    throw util::Error("malformed number '" + value + "' for '" + key + "'");
  }
}

double get(const std::map<std::string, double>& params, const std::string& key,
           double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::uint32_t get_u32(const std::map<std::string, double>& params,
                      const std::string& key) {
  const auto it = params.find(key);
  // parse() checks required keys, but specs can also be built field by
  // field in code — a missing key must throw, not abort.
  OPTSCHED_REQUIRE(it != params.end(),
                   "missing required parameter '" + key + "'");
  const double v = it->second;
  OPTSCHED_REQUIRE(v == std::floor(v) && v >= 0 && v <= 1e9,
                   "'" + key + "' must be a non-negative integer");
  return static_cast<std::uint32_t>(v);
}

/// Integer draw from U{1, 2*mean - 1} (mean exactly `mean` for mean >= 1)
/// — the same recipe as the paper's §4.1 random costs.
double uniform_with_mean(util::Rng& rng, double mean) {
  // parse_number bounds parsed params, but specs can be built in code; the
  // cast below is UB for means outside the int64 range.
  OPTSCHED_REQUIRE(mean >= 0 && mean <= 1e9,
                   "cost mean out of range [0, 1e9]");
  const auto hi =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(2 * mean) - 1);
  return static_cast<double>(rng.uniform_i64(1, hi));
}

/// Rebuild `g` with seeded per-node/per-edge costs (same structure and
/// names). Node weights are drawn first in id order, then edge costs in
/// CSR (node, child) order, so the result is a pure function of (g, seed).
dag::TaskGraph jittered(const dag::TaskGraph& g, std::uint64_t seed,
                        double mean_comp, double mean_comm) {
  util::Rng rng(seed);
  dag::TaskGraph out;
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n)
    out.add_node(uniform_with_mean(rng, mean_comp), g.name(n));
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      out.add_edge(n, child, uniform_with_mean(rng, mean_comm));
  out.finalize();
  return out;
}

dag::TaskGraph build_graph(const ScenarioSpec& s) {
  const auto& p = s.params;
  if (s.family == "random") {
    dag::RandomDagParams rp;
    rp.num_nodes = get_u32(p, "nodes");
    rp.ccr = get(p, "ccr", 1.0);
    rp.mean_comp = get(p, "meancomp", 40.0);
    rp.mean_children = get(p, "meanchild", -1.0);
    rp.seed = s.seed;
    return dag::random_dag(rp);
  }
  if (s.family == "stg") {
    dag::StgOptions opt;
    opt.ccr = get(p, "ccr", 0.0);
    opt.seed = s.seed;
    return dag::read_stg_file(s.path, opt);
  }

  const double comp = get(p, "meancomp", 40.0);
  const double comm = get(p, "meancomm", 40.0);
  dag::TaskGraph g = [&] {
    if (s.family == "layered")
      return dag::layered(get_u32(p, "layers"), get_u32(p, "width"), comp,
                          comm);
    if (s.family == "forkjoin")
      return dag::fork_join(get_u32(p, "width"), comp, comm);
    if (s.family == "outtree")
      return dag::out_tree(get_u32(p, "branch"), get_u32(p, "depth"), comp,
                           comm);
    if (s.family == "intree")
      return dag::in_tree(get_u32(p, "branch"), get_u32(p, "depth"), comp,
                          comm);
    if (s.family == "diamond")
      return dag::diamond(get_u32(p, "half"), comp, comm);
    if (s.family == "chain")
      return dag::chain(get_u32(p, "length"), comp, comm);
    if (s.family == "independent")
      return dag::independent_tasks(get_u32(p, "count"), comp);
    if (s.family == "gauss")
      return dag::gaussian_elimination(get_u32(p, "dim"), comp, comm);
    if (s.family == "fft") return dag::fft(get_u32(p, "points"), comp, comm);
    throw util::Error("unknown scenario family '" + s.family + "'");
  }();
  if (get(p, "jitter", 0.0) != 0.0) g = jittered(g, s.seed, comp, comm);
  return g;
}

}  // namespace

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  const auto tokens = util::split_ws(text);
  OPTSCHED_REQUIRE(!tokens.empty(), "empty scenario spec");

  ScenarioSpec spec;
  // Pass 1: find the family so shape parameters can be checked against its
  // declared set regardless of token order.
  for (const auto& token : tokens) {
    if (token.rfind("family=", 0) == 0) {
      OPTSCHED_REQUIRE(spec.family.empty(),
                       "duplicate 'family=' in scenario spec");
      spec.family = token.substr(7);
    }
  }
  OPTSCHED_REQUIRE(!spec.family.empty(),
                   "scenario spec needs a 'family=' token (one of " +
                       util::join(family_names(), ", ") + ")");
  const auto fam = families().find(spec.family);
  OPTSCHED_REQUIRE(fam != families().end(),
                   "unknown scenario family '" + spec.family + "' (one of " +
                       util::join(family_names(), ", ") + ")");

  bool have_machine = false, have_comm = false, have_seed = false;
  for (const auto& token : tokens) {
    const auto eq = token.find('=');
    OPTSCHED_REQUIRE(eq != std::string::npos && eq > 0,
                     "scenario token '" + token + "' is not key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    OPTSCHED_REQUIRE(!value.empty(),
                     "scenario token '" + token + "' has an empty value");
    if (key == "family") continue;
    if (key == "machine") {
      OPTSCHED_REQUIRE(!have_machine, "duplicate 'machine=' in scenario spec");
      machine::machine_from_spec(value);  // fail at parse, not materialize
      spec.machine_spec = value;
      have_machine = true;
    } else if (key == "comm") {
      OPTSCHED_REQUIRE(!have_comm, "duplicate 'comm=' in scenario spec");
      have_comm = true;
      if (value == "unit") {
        spec.comm = machine::CommMode::kUnitDistance;
      } else if (value == "hop") {
        spec.comm = machine::CommMode::kHopScaled;
      } else {
        throw util::Error("comm must be 'unit' or 'hop', got '" + value + "'");
      }
    } else if (key == "seed") {
      OPTSCHED_REQUIRE(!have_seed, "duplicate 'seed=' in scenario spec");
      have_seed = true;
      spec.seed = util::parse_u64(value, "seed");
    } else if (key == "path") {
      OPTSCHED_REQUIRE(spec.family == "stg",
                       "'path' is only valid for the stg family");
      OPTSCHED_REQUIRE(spec.path.empty(), "duplicate 'path=' in scenario spec");
      OPTSCHED_REQUIRE(value.find('#') == std::string::npos,
                       "stg path must not contain '#' (corpus comment "
                       "delimiter)");
      spec.path = value;
    } else {
      OPTSCHED_REQUIRE(declares(fam->second, key),
                       "family '" + spec.family +
                           "' does not declare parameter '" + key + "'");
      OPTSCHED_REQUIRE(!spec.params.count(key),
                       "duplicate parameter '" + key + "'");
      spec.params[key] = parse_number(key, value);
    }
  }

  for (const auto& required : fam->second.required)
    OPTSCHED_REQUIRE(spec.params.count(required),
                     "family '" + spec.family + "' requires parameter '" +
                         required + "'");
  if (spec.family == "stg")
    OPTSCHED_REQUIRE(!spec.path.empty(), "family 'stg' requires path=<file>");
  return spec;
}

std::string ScenarioSpec::to_string() const {
  std::string out = "family=" + family;
  for (const auto& [key, value] : params)
    out += " " + key + "=" + util::format_number(value);
  if (family == "stg") {
    // The canonical line must parse back: the tokenizer splits on
    // whitespace and the corpus reader strips '#' comments, so a path
    // containing either cannot be represented.
    OPTSCHED_REQUIRE(
        path.find_first_of(" \t#") == std::string::npos,
        "stg path '" + path + "' contains whitespace or '#' and cannot be "
        "serialized to a corpus line");
    out += " path=" + path;
  }
  out += " machine=" + machine_spec;
  out += std::string(" comm=") +
         (comm == machine::CommMode::kUnitDistance ? "unit" : "hop");
  out += " seed=" + std::to_string(seed);
  return out;
}

Instance ScenarioSpec::materialize() const {
  OPTSCHED_REQUIRE(families().count(family),
                   "unknown scenario family '" + family + "'");
  return Instance{to_string(), build_graph(*this),
                  machine::machine_from_spec(machine_spec), comm};
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const auto& [name, def] : families()) names.push_back(name);
  return names;
}

}  // namespace optsched::workload
