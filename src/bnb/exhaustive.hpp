// Exhaustive optimal scheduler — the test oracle.
//
// Depth-first enumeration of every (ready node, processor) interleaving
// with only the sound trivial bound g >= best (g is monotone along a
// branch). Deliberately independent of the core/ search machinery — no
// heuristics, no equivalence or isomorphism reasoning — so it can serve as
// an oracle for the A*/Aε*/IDA*/parallel implementations on small
// instances. Exponential: intended for v <= ~9, p <= 3.
#pragma once

#include "sched/schedule.hpp"

namespace optsched::bnb {

struct ExhaustiveResult {
  sched::Schedule schedule;
  double makespan = 0.0;
  std::uint64_t nodes_visited = 0;
};

ExhaustiveResult exhaustive_schedule(
    const dag::TaskGraph& graph, const machine::Machine& machine,
    machine::CommMode comm = machine::CommMode::kUnitDistance);

}  // namespace optsched::bnb
