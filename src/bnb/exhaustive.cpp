#include "bnb/exhaustive.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace optsched::bnb {

namespace {

using dag::NodeId;
using machine::ProcId;

struct Enumerator {
  const dag::TaskGraph& graph;
  const machine::Machine& machine;
  machine::CommMode comm;

  std::vector<double> finish;
  std::vector<ProcId> proc_of;
  std::vector<double> proc_ready;
  std::vector<std::uint32_t> pending;
  std::vector<std::pair<NodeId, ProcId>> assignments;
  std::vector<std::pair<NodeId, ProcId>> best_assignments;
  double g = 0.0;
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t visited = 0;

  Enumerator(const dag::TaskGraph& gr, const machine::Machine& m,
             machine::CommMode c)
      : graph(gr), machine(m), comm(c) {
    finish.assign(gr.num_nodes(), 0.0);
    proc_of.assign(gr.num_nodes(), machine::kInvalidProc);
    proc_ready.assign(m.num_procs(), 0.0);
    pending.assign(gr.num_nodes(), 0);
    for (NodeId n = 0; n < gr.num_nodes(); ++n)
      pending[n] = static_cast<std::uint32_t>(gr.num_parents(n));
  }

  void recurse() {
    ++visited;
    if (assignments.size() == graph.num_nodes()) {
      if (g < best) {
        best = g;
        best_assignments = assignments;
      }
      return;
    }
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (proc_of[n] != machine::kInvalidProc || pending[n] != 0) continue;
      for (ProcId p = 0; p < machine.num_procs(); ++p) {
        // Compute start/finish.
        double dat = 0.0;
        for (const auto& [parent, cost] : graph.parents(n))
          dat = std::max(dat, finish[parent] + machine.comm_delay(
                                                   cost, proc_of[parent], p,
                                                   comm));
        const double st = std::max(proc_ready[p], dat);
        const double ft = st + machine.exec_time(graph.weight(n), p);
        const double new_g = std::max(g, ft);
        if (new_g >= best) continue;  // bound: g is monotone

        // Apply.
        const double saved_ready = proc_ready[p];
        const double saved_g = g;
        finish[n] = ft;
        proc_of[n] = p;
        proc_ready[p] = ft;
        g = new_g;
        for (const auto& [child, cost] : graph.children(n)) {
          (void)cost;
          --pending[child];
        }
        assignments.emplace_back(n, p);

        recurse();

        // Undo.
        assignments.pop_back();
        for (const auto& [child, cost] : graph.children(n)) {
          (void)cost;
          ++pending[child];
        }
        finish[n] = 0.0;
        proc_of[n] = machine::kInvalidProc;
        proc_ready[p] = saved_ready;
        g = saved_g;
      }
    }
  }
};

}  // namespace

ExhaustiveResult exhaustive_schedule(const dag::TaskGraph& graph,
                                     const machine::Machine& machine,
                                     machine::CommMode comm) {
  OPTSCHED_REQUIRE(graph.finalized(), "exhaustive_schedule needs finalize()");
  Enumerator e(graph, machine, comm);
  e.recurse();
  OPTSCHED_ASSERT(!e.best_assignments.empty() || graph.num_nodes() == 0);

  sched::Schedule schedule(graph, machine, comm);
  for (const auto& [n, p] : e.best_assignments) schedule.append(n, p);
  sched::validate(schedule);
  return {std::move(schedule), e.best, e.visited};
}

}  // namespace optsched::bnb
