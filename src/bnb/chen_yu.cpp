#include "bnb/chen_yu.hpp"

#include <algorithm>
#include <limits>

#include "core/open_list.hpp"
#include "core/search_kernel.hpp"
#include "core/signature.hpp"
#include "util/timer.hpp"

namespace optsched::bnb {

using core::kNoParent;
using core::OpenEntry;
using core::OpenList;
using core::SearchProblem;
using core::State;
using core::StateArena;
using core::StateIndex;
using core::StepAction;
using dag::NodeId;
using machine::ProcId;

namespace {

/// DP over (path position, processor): minimal finish time of the last
/// path node, given path[0] = the just-scheduled node fixed on `proc`
/// finishing at `finish`. Communication between consecutive path nodes is
/// charged per the machine's comm model ("matching the execution path
/// against the processor graph").
double match_path(const SearchProblem& problem,
                  const std::vector<NodeId>& path, ProcId proc,
                  double finish) {
  const auto& graph = problem.graph();
  const auto& machine = problem.machine();
  const std::uint32_t p = machine.num_procs();

  if (path.size() == 1) return finish;

  std::vector<double> cur(p), next(p);
  // Position 0 is fixed on `proc`.
  const double first_edge_cost = [&] {
    for (const auto& [child, cost] : graph.children(path[0]))
      if (child == path[1]) return cost;
    OPTSCHED_ASSERT(false);
    return 0.0;
  }();
  for (ProcId q = 0; q < p; ++q) {
    const double arrive =
        finish + machine.comm_delay(first_edge_cost, proc, q, problem.comm());
    cur[q] = arrive + machine.exec_time(graph.weight(path[1]), q);
  }
  for (std::size_t i = 2; i < path.size(); ++i) {
    double edge_cost = 0.0;
    for (const auto& [child, cost] : graph.children(path[i - 1]))
      if (child == path[i]) {
        edge_cost = cost;
        break;
      }
    for (ProcId q = 0; q < p; ++q) {
      double best = std::numeric_limits<double>::infinity();
      for (ProcId r = 0; r < p; ++r) {
        const double arrive =
            cur[r] + machine.comm_delay(edge_cost, r, q, problem.comm());
        best = std::min(best, arrive);
      }
      next[q] = best + machine.exec_time(graph.weight(path[i]), q);
    }
    std::swap(cur, next);
  }
  return *std::min_element(cur.begin(), cur.end());
}

/// Kernel policy for the Chen & Yu best-first branch-and-bound: the shared
/// pop/goal/limit loop with the expensive path-matching underestimate as
/// the expansion step. No stale filter and no incumbent pruning — the
/// baseline expands every ready node on every processor (the §3.2
/// isomorphism/equivalence reasoning is Kwok & Ahmad's addition).
struct ChenYuPolicy {
  ChenYuPolicy(const SearchProblem& p, const ChenYuConfig& c,
               ChenYuResult& r)
      : problem(p), config(c), result(r), ctx(p), seen(1 << 12) {
    ctx.set_stats(&replay_stats);
    State root;
    root.sig = core::root_signature();
    root.parent = kNoParent;
    const StateIndex root_idx = arena.add(root);
    seen.insert(core::root_signature());
    open.push({0.0, 0.0, root_idx});
  }

  const SearchProblem& problem;
  const ChenYuConfig& config;
  ChenYuResult& result;
  StateArena arena;
  core::ExpansionContext ctx;
  core::ExpandStats replay_stats;  ///< move_to full/incremental counters
  util::FlatSet128 seen;
  OpenList open;
  OpenEntry current{};
  std::optional<StateIndex> goal;

  bool keep_searching() const { return !goal.has_value(); }

  bool pop(StateIndex& out) {
    if (open.empty()) return false;
    current = open.pop();
    out = current.index;
    return true;
  }

  bool on_empty() { return false; }

  StepAction classify(StateIndex idx) {
    return arena.hot(idx).depth() == problem.num_nodes() ? StepAction::kGoal
                                                         : StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    // Best-first on an admissible bound: the first complete schedule
    // popped is optimal.
    goal = idx;
    result.proved_optimal = true;
  }

  void expand(StateIndex idx) {
    ctx.move_to(arena, idx);
    ++result.expanded;
    const util::Key128 parent_sig = arena.sig(idx);
    const std::uint32_t parent_depth = arena.hot(idx).depth();

    for (const NodeId n : ctx.ready()) {
      for (ProcId p = 0; p < problem.num_procs(); ++p) {
        const double st = ctx.start_time(n, p);
        const double ft =
            st + problem.machine().exec_time(problem.graph().weight(n), p);
        const double g = std::max(ctx.g(), ft);

        const double lb = std::max(
            g, chen_yu_underestimate(problem, n, p, ft,
                                     config.max_paths_per_eval,
                                     &result.paths_evaluated));

        const util::Key128 sig = core::extend_signature(parent_sig, n, p, ft);
        if (!seen.insert(sig)) continue;

        State child;
        child.sig = sig;
        child.finish = ft;
        child.g = g;
        child.h = lb - g;  // store so f == lb
        child.parent = idx;
        child.node = n;
        child.proc = p;
        child.depth = parent_depth + 1;
        const StateIndex child_idx = arena.add(child);
        ++result.generated;
        open.push({lb, g, child_idx});
      }
    }
  }

  void after_expand() {}

  std::uint64_t expanded_count() const { return result.expanded; }

  std::size_t memory_now() const {
    return arena.memory_bytes() + seen.memory_bytes() + open.memory_bytes();
  }

  void maybe_progress(core::KernelGuard& guard) {
    guard.maybe_progress(result.expanded, current.f, problem.upper_bound());
  }
};

}  // namespace

double chen_yu_underestimate(const SearchProblem& problem, NodeId node,
                             ProcId proc, double finish,
                             std::size_t max_paths,
                             std::uint64_t* paths_counter) {
  const auto& graph = problem.graph();

  // Enumerate all root-to-exit paths starting at `node` by explicit DFS.
  double bound = finish;
  std::vector<NodeId> path{node};
  std::vector<std::size_t> child_cursor{0};
  std::size_t paths = 0;
  bool capped = false;

  while (!path.empty()) {
    const NodeId top = path.back();
    const auto children = graph.children(top);
    std::size_t& cursor = child_cursor.back();
    if (children.empty()) {
      // Complete path: match against the processor graph.
      if (++paths > max_paths) {
        capped = true;
        break;
      }
      bound = std::max(bound, match_path(problem, path, proc, finish));
      path.pop_back();
      child_cursor.pop_back();
      continue;
    }
    if (cursor == children.size()) {
      path.pop_back();
      child_cursor.pop_back();
      continue;
    }
    path.push_back(children[cursor++].node);
    child_cursor.push_back(0);
  }
  if (paths_counter) *paths_counter += paths;
  if (capped) return finish;  // admissible fallback (g-only information)
  return bound;
}

ChenYuResult chen_yu_schedule(const SearchProblem& problem,
                              const ChenYuConfig& config) {
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());
  util::Timer timer;
  ChenYuResult result{sched::Schedule(problem.upper_bound_schedule()), 0.0,
                      false, core::Termination::kOptimal, 0, 0, 0,
                      0, 0, 0, 0, 0.0};
  ChenYuPolicy policy(problem, config, result);
  core::KernelGuard guard(
      config.controls,
      {config.max_expansions, config.time_budget_ms, config.max_memory_bytes},
      timer);

  if (const auto hit = core::run_search_loop(guard, policy))
    result.reason = *hit;

  if (policy.goal) {
    result.schedule =
        core::reconstruct_schedule(problem, policy.arena, *policy.goal);
  }
  result.makespan = result.schedule.makespan();
  result.loads_full = policy.replay_stats.loads_full;
  result.loads_incremental = policy.replay_stats.loads_incremental;
  result.assignments_replayed = policy.replay_stats.assignments_replayed;
  result.peak_memory_bytes = policy.memory_now();
  result.elapsed_seconds = timer.seconds();
  sched::validate(result.schedule);
  return result;
}

}  // namespace optsched::bnb
