// Reimplementation of the Chen & Yu branch-and-bound comparator [3]
// (G.-H. Chen and J.-S. Yu, "A Branch-And-Bound-With-Underestimates
// Algorithm for the Task Assignment Problem with Precedence Constraint",
// ICDCS 1990) as described in the paper's §2 — the baseline of Table 1.
//
// The algorithm is a best-first branch-and-bound over the same state space
// as the A* search, but its underestimate is deliberately expensive to
// evaluate: for a newly scheduled node n,
//
//   1. enumerate all complete execution paths from n to an exit node;
//   2. for each path, exhaustively match it against the processor graph —
//      a DP over (path position x processor) that finds the assignment of
//      the path's nodes minimizing communication-aware completion time;
//   3. the underestimate is the latest such minimal exit finish time.
//
// Kwok & Ahmad's point, which Table 1 quantifies, is that this per-state
// cost dominates the runtime even though the bound itself is reasonable;
// our reimplementation preserves exactly that property. Path enumeration
// is capped (`max_paths_per_eval`); beyond the cap the evaluation falls
// back to the g-only bound, which keeps the bound admissible.
#pragma once

#include "core/astar.hpp"
#include "core/problem.hpp"

namespace optsched::bnb {

struct ChenYuConfig {
  std::uint64_t max_expansions = 0;   ///< 0 = unlimited
  double time_budget_ms = 0.0;        ///< 0 = unlimited
  std::size_t max_memory_bytes = 0;   ///< 0 = unlimited
  std::size_t max_paths_per_eval = 4096;
  core::SearchControls controls{};    ///< cancellation + progress
};

struct ChenYuResult {
  sched::Schedule schedule;
  double makespan = 0.0;
  bool proved_optimal = false;
  core::Termination reason = core::Termination::kOptimal;
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  std::uint64_t paths_evaluated = 0;
  std::uint64_t loads_full = 0;         ///< context rebuilds from the root
  std::uint64_t loads_incremental = 0;  ///< delta replays (move_to)
  std::uint64_t assignments_replayed = 0;
  std::size_t peak_memory_bytes = 0;  ///< arena + CLOSED + OPEN at the end
  double elapsed_seconds = 0.0;
};

ChenYuResult chen_yu_schedule(const core::SearchProblem& problem,
                              const ChenYuConfig& config = {});

/// Evaluate the Chen & Yu underestimate for a node finishing at `finish` on
/// `proc` (exposed for admissibility tests). Returns a lower bound on the
/// finish time of the last exit node reachable from `node`.
double chen_yu_underestimate(const core::SearchProblem& problem,
                             dag::NodeId node, machine::ProcId proc,
                             double finish, std::size_t max_paths,
                             std::uint64_t* paths_counter = nullptr);

}  // namespace optsched::bnb
