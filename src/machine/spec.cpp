#include "machine/spec.hpp"

#include <sstream>

namespace optsched::machine {

namespace {

std::uint32_t parse_count(const std::string& text, const std::string& spec) {
  try {
    const unsigned long value = std::stoul(text);
    OPTSCHED_REQUIRE(value >= 1 && value <= 1024,
                     "machine size out of range in spec '" + spec + "'");
    return static_cast<std::uint32_t>(value);
  } catch (const util::Error&) {
    throw;
  } catch (const std::exception&) {
    throw util::Error("malformed machine size in spec '" + spec + "'");
  }
}

std::vector<double> parse_speeds(const std::string& text,
                                 const std::string& spec) {
  std::vector<double> speeds;
  std::stringstream ss(text);
  for (std::string tok; std::getline(ss, tok, ',');) {
    try {
      speeds.push_back(std::stod(tok));
    } catch (const std::exception&) {
      throw util::Error("malformed speed list in spec '" + spec + "'");
    }
  }
  OPTSCHED_REQUIRE(!speeds.empty(),
                   "empty speed list in spec '" + spec + "'");
  return speeds;
}

}  // namespace

Machine machine_from_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  OPTSCHED_REQUIRE(colon != std::string::npos,
                   "machine spec '" + spec +
                       "' must be kind:size (e.g. clique:4, ring:8, "
                       "mesh:2x3, hypercube:3, star:5, chain:4)");
  const std::string kind = spec.substr(0, colon);
  std::string rest = spec.substr(colon + 1);

  std::vector<double> speeds;
  const auto at = rest.find('@');
  if (at != std::string::npos) {
    speeds = parse_speeds(rest.substr(at + 1), spec);
    rest = rest.substr(0, at);
  }

  Machine machine = [&]() -> Machine {
    if (kind == "clique")
      return Machine::fully_connected(parse_count(rest, spec), speeds);
    OPTSCHED_REQUIRE(speeds.empty(),
                     "speed lists are only supported for clique machines");
    if (kind == "ring") return Machine::ring(parse_count(rest, spec));
    if (kind == "chain") return Machine::chain(parse_count(rest, spec));
    if (kind == "star") return Machine::star(parse_count(rest, spec));
    if (kind == "hypercube")
      return Machine::hypercube(parse_count(rest, spec));
    if (kind == "mesh") {
      const auto x = rest.find('x');
      OPTSCHED_REQUIRE(x != std::string::npos,
                       "mesh spec expects RxC, e.g. mesh:2x3");
      return Machine::mesh(parse_count(rest.substr(0, x), spec),
                           parse_count(rest.substr(x + 1), spec));
    }
    throw util::Error("unknown machine kind '" + kind + "' in spec '" + spec +
                      "'");
  }();

  if (kind == "clique" && !speeds.empty())
    OPTSCHED_REQUIRE(speeds.size() == machine.num_procs(),
                     "speed list length must equal processor count in '" +
                         spec + "'");
  return machine;
}

}  // namespace optsched::machine
