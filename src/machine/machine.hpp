// Target multiprocessor model (paper §2).
//
// Processors (TPEs) may be heterogeneous in speed; they are connected by an
// interconnection topology with homogeneous links (every message travels at
// the same speed on every link). Communication between tasks on the same
// processor is free. The default communication model charges an edge's cost
// c(n_i, n_j) whenever the endpoints are on different processors, exactly as
// in the paper's examples; an optional hop-scaled model multiplies by the
// topology distance for sparse networks (the model Chen & Yu's underestimate
// matches paths against).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace optsched::machine {

using ProcId = std::uint32_t;
inline constexpr ProcId kInvalidProc = static_cast<ProcId>(-1);

enum class CommMode {
  kUnitDistance,  ///< cross-processor cost = c(edge)          (paper default)
  kHopScaled,     ///< cross-processor cost = c(edge) * hops   (extension)
};

class Machine {
 public:
  /// Build a machine from an explicit undirected adjacency. `speeds` may be
  /// empty (homogeneous unit speed) or one entry per processor.
  Machine(std::vector<std::vector<ProcId>> adjacency,
          std::vector<double> speeds = {}, std::string topology_name = "custom");

  // -- Standard topologies ------------------------------------------------
  static Machine fully_connected(std::uint32_t p, std::vector<double> speeds = {});
  static Machine ring(std::uint32_t p);
  static Machine chain(std::uint32_t p);
  static Machine mesh(std::uint32_t rows, std::uint32_t cols);
  static Machine hypercube(std::uint32_t dimension);
  static Machine star(std::uint32_t p);  ///< processor 0 is the hub

  /// The 3-processor ring of the paper's Figure 1(b).
  static Machine paper_ring3() { return ring(3); }

  std::uint32_t num_procs() const noexcept { return static_cast<std::uint32_t>(adj_.size()); }

  double speed(ProcId p) const {
    OPTSCHED_ASSERT(p < num_procs());
    return speeds_[p];
  }

  bool homogeneous() const noexcept { return homogeneous_; }
  double max_speed() const noexcept { return max_speed_; }

  /// Execution time of a task with computation cost `weight` on `p`.
  double exec_time(double weight, ProcId p) const { return weight / speed(p); }

  /// Fastest possible execution time of `weight` on any processor
  /// (used by admissible lower bounds).
  double min_exec_time(double weight) const { return weight / max_speed_; }

  std::span<const ProcId> neighbors(ProcId p) const {
    OPTSCHED_ASSERT(p < num_procs());
    return adj_[p];
  }

  bool adjacent(ProcId a, ProcId b) const;

  /// Hop count of the shortest path between two processors (0 for a == b).
  std::uint32_t hop_distance(ProcId a, ProcId b) const {
    OPTSCHED_ASSERT(a < num_procs() && b < num_procs());
    return hops_[a * num_procs() + b];
  }

  /// Whether the topology is a complete graph (enables the cheap
  /// all-idle-processors-equivalent isomorphism rule).
  bool fully_connected_topology() const noexcept { return complete_; }

  const std::string& topology_name() const noexcept { return name_; }

  /// Communication delay for an edge of cost `c` from a task on `from` to a
  /// task on `to` under the given model.
  double comm_delay(double c, ProcId from, ProcId to, CommMode mode) const {
    if (from == to) return 0.0;
    if (mode == CommMode::kUnitDistance) return c;
    return c * static_cast<double>(hop_distance(from, to));
  }

  /// Bit-exact equality: same adjacency lists, speeds, and topology name.
  /// The workload round-trip oracle — a serialized machine spec must
  /// rebuild an identical twin.
  friend bool identical_machines(const Machine& a, const Machine& b);

 private:
  void compute_hops();

  std::vector<std::vector<ProcId>> adj_;
  std::vector<double> speeds_;
  std::vector<std::uint32_t> hops_;  // row-major num_procs x num_procs
  bool homogeneous_ = true;
  bool complete_ = false;
  double max_speed_ = 1.0;
  std::string name_;
};

bool identical_machines(const Machine& a, const Machine& b);

}  // namespace optsched::machine
