#include "machine/machine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace optsched::machine {

Machine::Machine(std::vector<std::vector<ProcId>> adjacency,
                 std::vector<double> speeds, std::string topology_name)
    : adj_(std::move(adjacency)), speeds_(std::move(speeds)),
      name_(std::move(topology_name)) {
  const std::size_t p = adj_.size();
  OPTSCHED_REQUIRE(p >= 1, "machine needs at least one processor");
  if (speeds_.empty()) speeds_.assign(p, 1.0);
  OPTSCHED_REQUIRE(speeds_.size() == p,
                   "speeds must be empty or one per processor");
  for (const double s : speeds_)
    OPTSCHED_REQUIRE(std::isfinite(s) && s > 0.0,
                     "processor speeds must be finite and positive");

  // Canonicalize adjacency: sorted, deduplicated, symmetric, no self-loops.
  for (std::size_t i = 0; i < p; ++i) {
    for (const ProcId j : adj_[i]) {
      OPTSCHED_REQUIRE(j < p, "adjacency index out of range");
      OPTSCHED_REQUIRE(j != i, "self-loop in processor graph");
    }
    std::sort(adj_[i].begin(), adj_[i].end());
    adj_[i].erase(std::unique(adj_[i].begin(), adj_[i].end()), adj_[i].end());
  }
  for (ProcId i = 0; i < p; ++i)
    for (const ProcId j : adj_[i])
      OPTSCHED_REQUIRE(std::binary_search(adj_[j].begin(), adj_[j].end(), i),
                       "processor graph adjacency must be symmetric");

  homogeneous_ = std::all_of(speeds_.begin(), speeds_.end(),
                             [&](double s) { return s == speeds_[0]; });
  max_speed_ = *std::max_element(speeds_.begin(), speeds_.end());
  complete_ = true;
  for (std::size_t i = 0; i < p && complete_; ++i)
    complete_ = adj_[i].size() == p - 1;

  compute_hops();
}

bool Machine::adjacent(ProcId a, ProcId b) const {
  OPTSCHED_ASSERT(a < num_procs() && b < num_procs());
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

void Machine::compute_hops() {
  const std::uint32_t p = num_procs();
  constexpr auto kUnreachable = static_cast<std::uint32_t>(-1);
  hops_.assign(static_cast<std::size_t>(p) * p, kUnreachable);
  for (ProcId s = 0; s < p; ++s) {
    auto* row = &hops_[static_cast<std::size_t>(s) * p];
    row[s] = 0;
    std::deque<ProcId> queue{s};
    while (!queue.empty()) {
      const ProcId u = queue.front();
      queue.pop_front();
      for (const ProcId w : adj_[u])
        if (row[w] == kUnreachable) {
          row[w] = row[u] + 1;
          queue.push_back(w);
        }
    }
    for (ProcId t = 0; t < p; ++t)
      OPTSCHED_REQUIRE(row[t] != kUnreachable,
                       "processor graph must be connected");
  }
}

Machine Machine::fully_connected(std::uint32_t p, std::vector<double> speeds) {
  OPTSCHED_REQUIRE(p >= 1, "need p >= 1");
  std::vector<std::vector<ProcId>> adj(p);
  for (ProcId i = 0; i < p; ++i)
    for (ProcId j = 0; j < p; ++j)
      if (i != j) adj[i].push_back(j);
  return Machine(std::move(adj), std::move(speeds), "clique" + std::to_string(p));
}

Machine Machine::ring(std::uint32_t p) {
  OPTSCHED_REQUIRE(p >= 1, "need p >= 1");
  if (p <= 3) return fully_connected(p, {});  // ring of <= 3 is complete
  std::vector<std::vector<ProcId>> adj(p);
  for (ProcId i = 0; i < p; ++i) {
    adj[i].push_back((i + 1) % p);
    adj[i].push_back((i + p - 1) % p);
  }
  return Machine(std::move(adj), {}, "ring" + std::to_string(p));
}

Machine Machine::chain(std::uint32_t p) {
  OPTSCHED_REQUIRE(p >= 1, "need p >= 1");
  std::vector<std::vector<ProcId>> adj(p);
  for (ProcId i = 0; i + 1 < p; ++i) {
    adj[i].push_back(i + 1);
    adj[i + 1].push_back(i);
  }
  return Machine(std::move(adj), {}, "chain" + std::to_string(p));
}

Machine Machine::mesh(std::uint32_t rows, std::uint32_t cols) {
  OPTSCHED_REQUIRE(rows >= 1 && cols >= 1, "need rows, cols >= 1");
  const std::uint32_t p = rows * cols;
  std::vector<std::vector<ProcId>> adj(p);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        adj[id(r, c)].push_back(id(r + 1, c));
        adj[id(r + 1, c)].push_back(id(r, c));
      }
      if (c + 1 < cols) {
        adj[id(r, c)].push_back(id(r, c + 1));
        adj[id(r, c + 1)].push_back(id(r, c));
      }
    }
  return Machine(std::move(adj), {},
                 "mesh" + std::to_string(rows) + "x" + std::to_string(cols));
}

Machine Machine::hypercube(std::uint32_t dimension) {
  OPTSCHED_REQUIRE(dimension >= 1 && dimension <= 16, "need 1 <= dim <= 16");
  const std::uint32_t p = 1u << dimension;
  std::vector<std::vector<ProcId>> adj(p);
  for (ProcId i = 0; i < p; ++i)
    for (std::uint32_t d = 0; d < dimension; ++d) adj[i].push_back(i ^ (1u << d));
  return Machine(std::move(adj), {}, "hypercube" + std::to_string(dimension));
}

Machine Machine::star(std::uint32_t p) {
  OPTSCHED_REQUIRE(p >= 2, "star needs p >= 2");
  std::vector<std::vector<ProcId>> adj(p);
  for (ProcId i = 1; i < p; ++i) {
    adj[0].push_back(i);
    adj[i].push_back(0);
  }
  return Machine(std::move(adj), {}, "star" + std::to_string(p));
}

bool identical_machines(const Machine& a, const Machine& b) {
  return a.adj_ == b.adj_ && a.speeds_ == b.speeds_ && a.name_ == b.name_;
}

}  // namespace optsched::machine
