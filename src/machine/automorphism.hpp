// Processor-graph automorphisms for exact processor-isomorphism pruning
// (paper §3.2, Definition 2, strengthened).
//
// The paper merges search states that assign a ready node to "isomorphic"
// processors: two *empty* processors that play identical roles in the
// topology. Its Definition 2 uses a sufficient condition (equal neighbour
// sets). We compute the full automorphism group of the processor graph
// (speeds included as vertex colours) once, which gives the exact rule:
//
//   empty processors i and j are interchangeable in state s iff some
//   automorphism fixes every *busy* processor pointwise and maps i to j.
//
// Complete homogeneous graphs have p! automorphisms, so they short-circuit
// to "all empty processors are equivalent" without enumeration; all other
// practical topologies (rings, meshes, hypercubes, stars, chains) have tiny
// groups (<= 2^d * d! for a d-cube) that we enumerate by backtracking. If a
// pathological graph exceeds `max_perms`, we fall back to the paper's weak
// rule (identical neighbour sets), which is always sound.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"

namespace optsched::machine {

class AutomorphismGroup {
 public:
  /// Enumerate the automorphism group of `machine`'s processor graph.
  /// `max_perms` caps enumeration (fallback to the weak rule beyond it).
  explicit AutomorphismGroup(const Machine& machine,
                             std::size_t max_perms = 100000);

  /// True when the machine is a homogeneous complete graph: every pair of
  /// empty processors is equivalent, no permutation table needed.
  bool fully_symmetric() const noexcept { return fully_symmetric_; }

  /// Enumerated automorphisms (identity included). Empty when
  /// fully_symmetric() or when enumeration hit the cap.
  const std::vector<std::vector<ProcId>>& permutations() const noexcept {
    return perms_;
  }

  bool enumeration_capped() const noexcept { return capped_; }

  /// Partition processors into equivalence classes for a search state.
  /// `busy[p]` marks processors holding at least one task. On return,
  /// `representative[p]` is the smallest processor equivalent to p given
  /// that all busy processors must stay fixed; a processor should be tried
  /// by the expansion iff representative[p] == p.
  ///
  /// Busy processors are always their own representative (their contents
  /// distinguish them). For empty processors the orbit is computed under
  /// the subgroup stabilizing the busy set pointwise.
  void state_classes(const std::vector<bool>& busy,
                     std::vector<ProcId>& representative) const;

  /// Orbits of the full group (used by tests and the machine report).
  std::vector<std::vector<ProcId>> orbits() const;

 private:
  void enumerate(const Machine& machine, std::size_t max_perms);

  std::uint32_t num_procs_ = 0;
  bool fully_symmetric_ = false;
  bool capped_ = false;
  std::vector<std::vector<ProcId>> perms_;
  // Weak-rule fallback data: canonical id of each processor's
  // (speed, sorted neighbour set) signature.
  std::vector<std::uint32_t> weak_class_;
};

}  // namespace optsched::machine
