// Machine construction from compact spec strings — "clique:4", "ring:8",
// "mesh:2x3", "hypercube:3", "star:5", "chain:4" — optionally with
// per-processor speeds appended: "clique:3@1,2,4". Used by the CLI and the
// bench harnesses; kept in the library so it is testable.
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace optsched::machine {

/// Parse a machine spec. Throws util::Error with a helpful message on any
/// malformed input.
Machine machine_from_spec(const std::string& spec);

}  // namespace optsched::machine
