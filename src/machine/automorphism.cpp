#include "machine/automorphism.hpp"

#include <algorithm>
#include <map>

namespace optsched::machine {

AutomorphismGroup::AutomorphismGroup(const Machine& machine,
                                     std::size_t max_perms)
    : num_procs_(machine.num_procs()) {
  if (machine.fully_connected_topology() && machine.homogeneous()) {
    fully_symmetric_ = true;
  } else {
    enumerate(machine, max_perms);
  }

  // Weak-rule classes: processors with equal speed and equal neighbour sets
  // (the paper's Definition 2 condition (i)). Used only if enumeration was
  // capped; also handy for tests.
  std::map<std::pair<double, std::vector<ProcId>>, std::uint32_t> seen;
  weak_class_.assign(num_procs_, 0);
  for (ProcId p = 0; p < num_procs_; ++p) {
    auto ns = machine.neighbors(p);
    std::pair<double, std::vector<ProcId>> key{machine.speed(p),
                                               {ns.begin(), ns.end()}};
    const auto [it, inserted] = seen.try_emplace(std::move(key), p);
    (void)inserted;
    weak_class_[p] = it->second;
  }
}

void AutomorphismGroup::enumerate(const Machine& machine,
                                  std::size_t max_perms) {
  const std::uint32_t p = machine.num_procs();

  // Backtracking search over vertex mappings. Candidate filtering by
  // (speed, degree); adjacency consistency checked incrementally against
  // all previously mapped vertices.
  std::vector<ProcId> mapping(p, kInvalidProc);
  std::vector<bool> used(p, false);

  auto compatible = [&](ProcId a, ProcId b) {
    return machine.speed(a) == machine.speed(b) &&
           machine.neighbors(a).size() == machine.neighbors(b).size();
  };

  struct Frame {
    ProcId vertex;
    ProcId next_candidate;
  };

  // Recursive lambda via explicit stack to avoid deep recursion.
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    // Undo the previous candidate at this depth, if any.
    if (mapping[f.vertex] != kInvalidProc) {
      used[mapping[f.vertex]] = false;
      mapping[f.vertex] = kInvalidProc;
    }
    // Find the next viable candidate for this vertex.
    ProcId cand = f.next_candidate;
    bool advanced = false;
    for (; cand < p; ++cand) {
      if (used[cand] || !compatible(f.vertex, cand)) continue;
      // Adjacency consistency with all already-mapped vertices.
      bool ok = true;
      for (ProcId v = 0; v < f.vertex && ok; ++v)
        if (machine.adjacent(f.vertex, v) !=
            machine.adjacent(cand, mapping[v]))
          ok = false;
      if (!ok) continue;
      // Accept candidate.
      mapping[f.vertex] = cand;
      used[cand] = true;
      f.next_candidate = cand + 1;
      advanced = true;
      break;
    }
    if (!advanced) {
      stack.pop_back();
      continue;
    }
    if (f.vertex + 1 == p) {
      perms_.push_back(mapping);
      if (perms_.size() > max_perms) {
        perms_.clear();
        capped_ = true;
        return;
      }
      // Stay at this depth; next loop iteration will undo and advance.
    } else {
      stack.push_back({static_cast<ProcId>(f.vertex + 1), 0});
    }
  }
  OPTSCHED_ASSERT(!perms_.empty());  // identity is always an automorphism
}

void AutomorphismGroup::state_classes(const std::vector<bool>& busy,
                                      std::vector<ProcId>& rep) const {
  OPTSCHED_ASSERT(busy.size() == num_procs_);
  rep.resize(num_procs_);
  for (ProcId i = 0; i < num_procs_; ++i) rep[i] = i;

  if (fully_symmetric_) {
    // All empty processors share the smallest empty processor as rep.
    ProcId first_empty = kInvalidProc;
    for (ProcId i = 0; i < num_procs_; ++i)
      if (!busy[i]) {
        if (first_empty == kInvalidProc) first_empty = i;
        rep[i] = first_empty;
      }
    return;
  }

  if (capped_) {
    // Weak rule: empty processors with equal (speed, neighbour set), but
    // only when all their neighbours are also empty — this matches the
    // paper's strong Definition 2 (both processors empty with equal
    // neighbour sets implies swapping them leaves the schedule unchanged
    // only if no scheduled task communicates over distinguishing links;
    // requiring empty neighbourhoods makes the rule unconditionally sound
    // under the hop-scaled model too).
    auto neighbourhood_empty = [&](ProcId i) {
      // Conservative: only merge if every other busy processor sees both at
      // equal... the weak_class_ already requires *identical* neighbour
      // sets, which makes the two processors indistinguishable to every
      // other processor; emptiness of the pair suffices.
      return !busy[i];
    };
    std::vector<ProcId> first_of_class(num_procs_, kInvalidProc);
    for (ProcId i = 0; i < num_procs_; ++i) {
      if (busy[i]) continue;
      if (!neighbourhood_empty(i)) continue;
      const auto cls = weak_class_[i];
      if (first_of_class[cls] == kInvalidProc)
        first_of_class[cls] = i;
      else
        rep[i] = first_of_class[cls];
    }
    return;
  }

  // Exact rule: union empty processors i ~ pi(i) for every automorphism pi
  // that fixes all busy processors pointwise.
  std::vector<ProcId> parent(num_procs_);
  for (ProcId i = 0; i < num_procs_; ++i) parent[i] = i;
  auto find = [&](ProcId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](ProcId a, ProcId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  };

  for (const auto& pi : perms_) {
    bool fixes_busy = true;
    for (ProcId i = 0; i < num_procs_ && fixes_busy; ++i)
      if (busy[i] && pi[i] != i) fixes_busy = false;
    if (!fixes_busy) continue;
    for (ProcId i = 0; i < num_procs_; ++i)
      if (!busy[i] && !busy[pi[i]]) unite(i, pi[i]);
  }
  for (ProcId i = 0; i < num_procs_; ++i) rep[i] = find(i);
}

std::vector<std::vector<ProcId>> AutomorphismGroup::orbits() const {
  std::vector<ProcId> rep;
  state_classes(std::vector<bool>(num_procs_, false), rep);
  std::vector<std::vector<ProcId>> result;
  std::vector<std::int64_t> index_of(num_procs_, -1);
  for (ProcId i = 0; i < num_procs_; ++i) {
    const ProcId r = rep[i];
    if (index_of[r] < 0) {
      index_of[r] = static_cast<std::int64_t>(result.size());
      result.emplace_back();
    }
    result[static_cast<std::size_t>(index_of[r])].push_back(i);
  }
  return result;
}

}  // namespace optsched::machine
