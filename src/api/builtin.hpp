// Internal: registration hooks the registry constructor calls. Explicit
// function calls (not static initializers) so nothing depends on the
// linker keeping registration objects alive in a static library.
#pragma once

namespace optsched::api {

class SolverRegistry;

namespace detail {

void register_builtin_engines(SolverRegistry& registry);  // engines.cpp
void register_portfolio(SolverRegistry& registry);        // portfolio.cpp

}  // namespace detail
}  // namespace optsched::api
