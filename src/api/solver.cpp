#include "api/solver.hpp"

#include <charconv>
#include <cmath>

#include "util/strings.hpp"

namespace optsched::api {

Options parse_options(const std::string& spec) {
  Options out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const std::size_t eq = entry.find('=');
    OPTSCHED_REQUIRE(eq != std::string::npos,
                     "option '" + entry + "' is not of the form key=value");
    OPTSCHED_REQUIRE(eq > 0, "option '" + entry + "' has an empty key");
    out[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  return out;
}

// Every ':' after the name is an option separator, so option *values*
// cannot contain ':' or ',' — fine for all declared engine options
// (portfolio's engines list is '+'-separated for exactly this reason).
std::pair<std::string, Options> parse_engine_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, {}};
  std::string opts = spec.substr(colon + 1);
  for (char& c : opts)
    if (c == ':') c = ',';
  return {spec.substr(0, colon), parse_options(opts)};
}

std::string canonical_engine_spec(const std::string& spec) {
  const auto [name, options] = parse_engine_spec(spec);
  std::string out = name;
  // Options is a std::map, so iteration is already key-sorted. Values
  // that parse fully as numbers are reprinted in their shortest exact
  // form (util::format_number round-trips the double), collapsing
  // leading zeros, trailing fractional zeros, and exponent spellings of
  // the same value; anything else is treated as an opaque token.
  for (const auto& [key, value] : options) {
    double number = 0.0;
    const char* end = value.data() + value.size();
    const auto [ptr, ec] = std::from_chars(value.data(), end, number);
    // from_chars accepts "inf"/"nan" spellings; format_number (rightly)
    // refuses them, so non-finite tokens stay opaque like mode names.
    const bool numeric = !value.empty() && ec == std::errc() &&
                         ptr == end && std::isfinite(number);
    out += ':' + key + '=' + (numeric ? util::format_number(number) : value);
  }
  return out;
}

}  // namespace optsched::api
