#include "api/solver.hpp"

namespace optsched::api {

Options parse_options(const std::string& spec) {
  Options out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const std::size_t eq = entry.find('=');
    OPTSCHED_REQUIRE(eq != std::string::npos,
                     "option '" + entry + "' is not of the form key=value");
    OPTSCHED_REQUIRE(eq > 0, "option '" + entry + "' has an empty key");
    out[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  return out;
}

// Every ':' after the name is an option separator, so option *values*
// cannot contain ':' or ',' — fine for all declared engine options
// (portfolio's engines list is '+'-separated for exactly this reason).
std::pair<std::string, Options> parse_engine_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, {}};
  std::string opts = spec.substr(colon + 1);
  for (char& c : opts)
    if (c == ':') c = ',';
  return {spec.substr(0, colon), parse_options(opts)};
}

}  // namespace optsched::api
