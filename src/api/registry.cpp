#include "api/registry.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "api/builtin.hpp"

namespace optsched::api {

namespace {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

void check_options(const EngineInfo& engine, const SolveRequest& request) {
  for (const auto& [key, value] : request.options) {
    const bool declared =
        std::any_of(engine.options.begin(), engine.options.end(),
                    [&](const OptionSpec& o) { return o.key == key; });
    if (!declared) {
      std::vector<std::string> keys;
      for (const auto& o : engine.options) keys.push_back(o.key);
      throw InvalidRequest(
          "engine '" + engine.name + "' does not accept option '" + key +
          "'" +
          (keys.empty() ? " (it takes no options)"
                        : " (valid options: " + join(keys, ", ") + ")"));
    }
  }
}

}  // namespace

SolverRegistry::SolverRegistry() {
  detail::register_builtin_engines(*this);
  detail::register_portfolio(*this);
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

void SolverRegistry::add(EngineInfo info) {
  OPTSCHED_REQUIRE(!info.name.empty(), "engine name must be non-empty");
  OPTSCHED_REQUIRE(info.factory != nullptr,
                   "engine '" + info.name + "' needs a factory");
  const std::unique_lock<std::shared_mutex> lock(mu_);
  OPTSCHED_REQUIRE(engines_.find(info.name) == engines_.end(),
                   "engine '" + info.name + "' is already registered");
  engines_.emplace(info.name, std::move(info));
}

bool SolverRegistry::contains(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  return engines_.find(name) != engines_.end();
}

std::vector<std::string> SolverRegistry::names() const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& [name, info] : engines_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::vector<std::string> SolverRegistry::names_matching(
    const std::function<bool(const EngineCaps&)>& pred) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, info] : engines_)
    if (pred(info.caps)) out.push_back(name);
  return out;
}

EngineInfo SolverRegistry::info(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = engines_.find(name);
  if (it == engines_.end()) {
    std::vector<std::string> known;
    for (const auto& [n, i] : engines_) known.push_back(n);
    throw InvalidRequest("unknown engine '" + name + "' (registered: " +
                         join(known, ", ") + ")");
  }
  return it->second;
}

void SolverRegistry::validate(const std::string& name,
                              const SolveRequest& request) const {
  check_options(info(name), request);
}

SolveResult SolverRegistry::solve(const std::string& name,
                                  const SolveRequest& request) const {
  const EngineInfo engine = info(name);  // one locked lookup per solve
  check_options(engine, request);
  SolveResult result = engine.factory()->solve(request);
  if (result.engine.empty()) result.engine = name;
  return result;
}

SolveResult solve(const std::string& engine, const SolveRequest& request) {
  return SolverRegistry::instance().solve(engine, request);
}

std::string format_engine_table(bool markdown) {
  const auto& registry = SolverRegistry::instance();
  std::ostringstream out;
  if (markdown) out << "| engine | capabilities | options | description |\n"
                    << "| --- | --- | --- | --- |\n";
  for (const auto& name : registry.names()) {
    const EngineInfo engine = registry.info(name);
    std::vector<std::string> caps;
    if (engine.caps.optimal) caps.push_back("optimal");
    if (engine.caps.anytime) caps.push_back("anytime");
    if (engine.caps.parallel) caps.push_back("parallel");
    if (engine.caps.bounded) caps.push_back("bounded");
    if (engine.caps.is_heuristic()) caps.push_back("heuristic");
    std::vector<std::string> keys;
    for (const auto& o : engine.options) keys.push_back(o.key);
    const std::string cap_str = join(caps, markdown ? ", " : ",");
    const std::string key_str = keys.empty() ? "-" : join(keys, ",");
    if (markdown) {
      out << "| `" << name << "` | " << cap_str << " | " << key_str << " | "
          << engine.description << " |\n";
    } else {
      char line[256];
      std::snprintf(line, sizeof(line), "  %-11s %-32s %s\n", name.c_str(),
                    ("[" + cap_str + "]").c_str(),
                    engine.description.c_str());
      out << line;
      for (const auto& o : engine.options)
        out << "                --opts " << o.key << "=...  " << o.help
            << "\n";
    }
  }
  return out.str();
}

}  // namespace optsched::api
