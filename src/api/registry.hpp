// String-keyed engine registry — the library's dispatch point.
//
// All built-in engines self-register on first access (astar, aeps, ida,
// parallel, chenyu, exhaustive, blevel, hlfet, mcp, etf, portfolio);
// external code can add() its own engines and they become reachable from
// the CLI, the conformance tests, and the portfolio exactly like the
// built-ins. Lookup failures and undeclared options raise InvalidRequest
// before any search work starts.
#pragma once

#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/solver.hpp"

namespace optsched::api {

/// One declared option key ("epsilon") with its help text.
struct OptionSpec {
  std::string key;
  std::string help;
};

struct EngineInfo {
  std::string name;
  std::string description;   ///< one line, shown by --list-engines
  EngineCaps caps;
  std::vector<OptionSpec> options;
  std::function<std::unique_ptr<Solver>()> factory;
};

class SolverRegistry {
 public:
  /// The process-wide registry, with built-ins already registered.
  static SolverRegistry& instance();

  /// Register an engine. Throws util::Error on a duplicate or empty name
  /// or a missing factory.
  void add(EngineInfo info);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted

  /// Sorted names of every engine whose capabilities satisfy `pred` —
  /// e.g. the suite runner's default engine set is
  /// `names_matching([](const EngineCaps& c) { return c.optimal; })`.
  std::vector<std::string> names_matching(
      const std::function<bool(const EngineCaps&)>& pred) const;

  /// Metadata for one engine; throws InvalidRequest (listing the
  /// registered names) when unknown.
  EngineInfo info(const std::string& name) const;

  /// Check request.options against the engine's declared option spec.
  /// Throws InvalidRequest on an undeclared key.
  void validate(const std::string& name, const SolveRequest& request) const;

  /// Validate, instantiate, and run the named engine. The returned
  /// result's `engine` field is always filled in.
  SolveResult solve(const std::string& name,
                    const SolveRequest& request) const;

 private:
  SolverRegistry();

  /// Reader-writer lock: the server's worker pool hits the read-only
  /// accessors (info/validate/solve) from N threads per request, so
  /// readers take shared locks and only add() writes. instance()'s
  /// built-in registration happens once inside the static-local
  /// constructor, which the language serializes.
  mutable std::shared_mutex mu_;
  std::map<std::string, EngineInfo> engines_;
};

/// Convenience for the common case:
/// `api::solve("astar", request)` == instance().solve(...).
SolveResult solve(const std::string& engine, const SolveRequest& request);

/// Render the registry as a table — plain text for --list-engines,
/// markdown for the README's engine table. One row per engine: name,
/// capability flags, options, description.
std::string format_engine_table(bool markdown = false);

}  // namespace optsched::api
