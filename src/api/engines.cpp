// Adapters that expose every built-in engine through the unified API.
//
// Each adapter translates the SolveRequest's unified limits and controls
// into the engine's native config, parses the engine's declared options,
// and normalizes the native result into a SolveResult. Option values that
// fail to parse raise InvalidRequest before the engine runs.
#include <algorithm>
#include <functional>
#include <limits>
#include <optional>

#include "api/builtin.hpp"
#include "api/registry.hpp"
#include "bnb/chen_yu.hpp"
#include "bnb/exhaustive.hpp"
#include "core/ida_star.hpp"
#include "parallel/parallel_astar.hpp"
#include "parallel/ws_transport.hpp"
#include "sched/list_scheduler.hpp"

namespace optsched::api {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void bad_option(const std::string& engine,
                             const std::string& key,
                             const std::string& value,
                             const std::string& expected) {
  throw InvalidRequest("engine '" + engine + "': option " + key + "=" +
                       value + " is invalid (expected " + expected + ")");
}

double opt_double(const Options& options, const std::string& engine,
                  const std::string& key, double fallback) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    bad_option(engine, key, it->second, "a number");
  }
}

/// Range-checked before any narrowing cast — a negative value must become
/// InvalidRequest, not wrap to a huge unsigned count.
std::int64_t opt_int(const Options& options, const std::string& engine,
                     const std::string& key, std::int64_t fallback,
                     std::int64_t min_value) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  std::int64_t v = 0;
  try {
    std::size_t used = 0;
    v = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
  } catch (const std::exception&) {
    bad_option(engine, key, it->second, "an integer");
  }
  if (v < min_value)
    bad_option(engine, key, it->second,
               ">= " + std::to_string(min_value));
  return v;
}

bool opt_bool(const Options& options, const std::string& engine,
              const std::string& key, bool fallback) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  if (it->second == "1" || it->second == "true") return true;
  if (it->second == "0" || it->second == "false") return false;
  bad_option(engine, key, it->second, "0|1|true|false");
}

core::PruneConfig opt_prune(const Options& options,
                            const std::string& engine) {
  const auto it = options.find("prune");
  if (it == options.end()) return core::PruneConfig::all();
  if (it->second == "all") return core::PruneConfig::all();
  if (it->second == "none") return core::PruneConfig::none();
  if (it->second == "paper") return core::PruneConfig::paper();
  bad_option(engine, "prune", it->second, "all|none|paper");
}

core::QueueSelect opt_queue(const Options& options,
                            const std::string& engine) {
  const auto it = options.find("queue");
  if (it == options.end()) return core::QueueSelect::kAuto;
  if (it->second == "auto") return core::QueueSelect::kAuto;
  if (it->second == "bucket") return core::QueueSelect::kBucket;
  if (it->second == "heap") return core::QueueSelect::kHeap;
  bad_option(engine, "queue", it->second, "auto|bucket|heap");
}

core::HFunction opt_h(const Options& options, const std::string& engine) {
  const auto it = options.find("h");
  if (it == options.end()) return core::HFunction::kPaper;
  if (it->second == "zero") return core::HFunction::kZero;
  if (it->second == "paper") return core::HFunction::kPaper;
  if (it->second == "path") return core::HFunction::kPath;
  if (it->second == "composite") return core::HFunction::kComposite;
  bad_option(engine, "h", it->second, "zero|paper|path|composite");
}

/// Unified limits + controls -> the search engines' native config.
core::SearchConfig base_search_config(const SolveRequest& request) {
  core::SearchConfig config;
  config.max_expansions = request.limits.max_expansions;
  config.time_budget_ms = request.limits.time_budget_ms;
  config.max_memory_bytes = request.limits.max_memory_bytes;
  config.controls.cancel = request.cancel;
  config.controls.progress = request.progress;
  config.controls.progress_every = request.progress_every;
  return config;
}

SolveResult from_search(core::SearchResult&& r) {
  SolveResult out{std::move(r.schedule)};
  out.makespan = r.makespan;
  out.proved_optimal = r.proved_optimal;
  out.bound_factor = r.proved_optimal ? r.bound_factor : kInf;
  out.reason = r.reason;
  out.stats.search = r.stats;
  return out;
}

/// The request's pre-built problem when present (SolveSession re-solve),
/// else a locally built one parked in `storage`.
const core::SearchProblem& request_problem(
    const SolveRequest& request,
    std::optional<core::SearchProblem>& storage) {
  if (request.problem) return *request.problem;
  storage.emplace(*request.graph, *request.machine, request.comm);
  return *storage;
}

// ---- A* / Aε* ------------------------------------------------------------

/// `epsilon_default` distinguishes the two registered names: `astar` does
/// not declare the epsilon option at all; `aeps` defaults it to 0.2.
class AStarSolver : public Solver {
 public:
  AStarSolver(std::string name, double epsilon_default)
      : name_(std::move(name)), epsilon_default_(epsilon_default) {}

  SolveResult solve(const SolveRequest& request) const override {
    core::SearchConfig config = base_search_config(request);
    config.prune = opt_prune(request.options, name_);
    config.h = opt_h(request.options, name_);
    config.h_weight =
        opt_double(request.options, name_, "h-weight", 1.0);
    config.queue = opt_queue(request.options, name_);
    config.epsilon =
        opt_double(request.options, name_, "epsilon", epsilon_default_);
    config.incumbent_updates =
        opt_bool(request.options, name_, "incumbent", true);
    if (config.epsilon < 0)
      throw InvalidRequest("engine '" + name_ + "': epsilon must be >= 0");
    if (config.h_weight < 1)
      throw InvalidRequest("engine '" + name_ + "': h-weight must be >= 1");
    std::optional<core::SearchProblem> storage;
    const core::SearchProblem& problem = request_problem(request, storage);
    SolveResult out =
        from_search(core::astar_schedule(problem, config, request.warm));
    if (request.warm) {
      out.stats.warm_start_used = request.warm->warm_used;
      out.stats.states_retained = request.warm->states_retained;
    }
    return out;
  }

 private:
  std::string name_;
  double epsilon_default_;
};

// ---- IDA* ----------------------------------------------------------------

class IdaSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    core::SearchConfig config = base_search_config(request);
    config.prune = opt_prune(request.options, "ida");
    config.h = opt_h(request.options, "ida");
    const core::SearchProblem problem(*request.graph, *request.machine,
                                      request.comm);
    return from_search(core::ida_star_schedule(problem, config));
  }
};

// ---- parallel A* / Aε* ---------------------------------------------------

class ParallelSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    par::ParallelConfig config;
    config.search = base_search_config(request);
    config.search.epsilon =
        opt_double(request.options, "parallel", "epsilon", 0.0);
    config.search.h = opt_h(request.options, "parallel");
    config.search.queue = opt_queue(request.options, "parallel");
    const auto pin = request.options.find("pin");
    if (pin != request.options.end()) {
      if (pin->second == "none")
        config.pin = par::PinPolicy::kNone;
      else if (pin->second == "compact")
        config.pin = par::PinPolicy::kCompact;
      else if (pin->second == "spread")
        config.pin = par::PinPolicy::kSpread;
      else
        bad_option("parallel", "pin", pin->second, "none|compact|spread");
    }
    config.num_ppes = static_cast<std::uint32_t>(
        opt_int(request.options, "parallel", "ppes", 4, /*min_value=*/1));
    config.min_period = static_cast<std::uint32_t>(opt_int(
        request.options, "parallel", "min-period", 2, /*min_value=*/1));
    config.steal_batch = static_cast<std::uint32_t>(opt_int(
        request.options, "parallel", "steal-batch", 8, /*min_value=*/1));
    const std::int64_t shards = opt_int(
        request.options, "parallel", "shards", 0, /*min_value=*/0);
    if (shards > (1 << 16))
      bad_option("parallel", "shards", std::to_string(shards), "<= 65536");
    config.shards = static_cast<std::uint32_t>(shards);
    config.naive_termination =
        opt_bool(request.options, "parallel", "naive-term", false);
    const auto mode = request.options.find("mode");
    if (mode != request.options.end()) {
      if (mode->second == "ring")
        config.mode = par::TransportMode::kRing;
      else if (mode->second == "ws")
        config.mode = par::TransportMode::kWorkStealing;
      else if (mode->second == "dist")
        config.mode = par::TransportMode::kDistributed;
      else
        bad_option("parallel", "mode", mode->second, "ring|ws|dist");
    }
    // Distributed mode: `procs` (worker *processes*) is its spelling of
    // the worker count; it is exact-only and always sound-terminating.
    if (request.options.count("procs")) {
      if (config.mode != par::TransportMode::kDistributed)
        throw InvalidRequest(
            "engine 'parallel': option 'procs' requires mode=dist "
            "(use 'ppes' for the in-process modes)");
      config.num_ppes = static_cast<std::uint32_t>(
          opt_int(request.options, "parallel", "procs", 4, /*min_value=*/1));
    }
    if (config.mode == par::TransportMode::kDistributed) {
      if (config.search.epsilon != 0.0)
        throw InvalidRequest(
            "engine 'parallel': mode=dist supports exact search only "
            "(epsilon must be 0)");
      if (config.search.h_weight != 1.0)
        throw InvalidRequest(
            "engine 'parallel': mode=dist supports exact search only "
            "(weight must be 1)");
      if (config.naive_termination)
        throw InvalidRequest(
            "engine 'parallel': mode=dist always uses sound termination "
            "(drop naive-term)");
    }
    // Distributed wire tuning: codec version, outbox flush size/age.
    for (const char* key : {"wire", "batch", "flush-us"}) {
      if (request.options.count(key) &&
          config.mode != par::TransportMode::kDistributed)
        throw InvalidRequest(std::string("engine 'parallel': option '") +
                             key + "' requires mode=dist");
    }
    const auto wire = request.options.find("wire");
    if (wire != request.options.end()) {
      if (wire->second == "v1" || wire->second == "1")
        config.wire_version = 1;
      else if (wire->second == "v2" || wire->second == "2")
        config.wire_version = 2;
      else
        bad_option("parallel", "wire", wire->second, "v1|v2");
    }
    config.flush_states = static_cast<std::uint32_t>(
        opt_int(request.options, "parallel", "batch", 0, /*min_value=*/0));
    config.flush_us = static_cast<std::uint32_t>(opt_int(
        request.options, "parallel", "flush-us", 2000, /*min_value=*/0));
    const auto it = request.options.find("topology");
    if (it != request.options.end()) {
      if (it->second == "ring")
        config.topology = par::MailboxNetwork::Topology::kRing;
      else if (it->second == "mesh")
        config.topology = par::MailboxNetwork::Topology::kMesh;
      else if (it->second == "clique")
        config.topology = par::MailboxNetwork::Topology::kFullyConnected;
      else
        bad_option("parallel", "topology", it->second, "ring|mesh|clique");
    }
    if (config.search.epsilon < 0)
      throw InvalidRequest("engine 'parallel': epsilon must be >= 0");
    // The sharded dedup table is allocated eagerly, before the search's
    // per-PPE memory budget is ever polled — so when the caller set a
    // budget, account for that fixed allocation up front and refuse
    // configurations it alone would bust, instead of letting the poll
    // abort a search that never had a chance.
    if (config.mode == par::TransportMode::kWorkStealing &&
        request.limits.max_memory_bytes > 0) {
      const std::uint32_t effective_shards =
          config.shards > 0 ? config.shards
                            : std::min(4 * config.num_ppes, 4096u);
      const std::size_t fixed =
          par::ShardedSignatureTable::estimate_bytes(effective_shards);
      if (fixed > request.limits.max_memory_bytes)
        throw InvalidRequest(
            "engine 'parallel': the dedup table's fixed allocation (" +
            std::to_string(fixed) + " bytes for " +
            std::to_string(effective_shards) +
            " shards) exceeds max_memory_bytes (" +
            std::to_string(request.limits.max_memory_bytes) +
            "); lower shards or raise the budget");
    }
    // Warm-start (SolveSession re-solve): the parallel engine reuses no
    // arena states, but a seeded incumbent prunes from expansion one.
    if (request.warm) {
      config.seed_upper_bound = request.warm->seed_upper_bound;
      config.seed_schedule = request.warm->seed_schedule;
    }
    std::optional<core::SearchProblem> storage;
    const core::SearchProblem& problem = request_problem(request, storage);
    par::ParallelResult r = par::parallel_astar_schedule(problem, config);
    SolveResult out = from_search(std::move(r.result));
    out.stats.parallel_mode = par::to_string(r.par_stats.mode);
    out.stats.messages_sent = r.par_stats.messages_sent;
    out.stats.states_transferred = r.par_stats.states_transferred;
    out.stats.comm_rounds = r.par_stats.comm_rounds;
    out.stats.steal_attempts = r.par_stats.steal_attempts;
    out.stats.steals = r.par_stats.steals;
    out.stats.donations = r.par_stats.donations;
    out.stats.shards = r.par_stats.shards;
    out.stats.shard_hits = r.par_stats.shard_hits;
    // Per-thread attribution is timing-dependent: report the sorted
    // distribution so identical runs diff cleanly modulo load balance.
    out.stats.expanded_per_ppe = std::move(r.par_stats.expanded_per_ppe);
    std::sort(out.stats.expanded_per_ppe.begin(),
              out.stats.expanded_per_ppe.end(),
              std::greater<std::uint64_t>());
    out.stats.effective_ppes = r.par_stats.effective_ppes;
    out.stats.pins_applied = r.par_stats.pins_applied;
    out.stats.states_serialized = r.par_stats.states_serialized;
    out.stats.batches_sent = r.par_stats.batches_sent;
    out.stats.termination_rounds = r.par_stats.termination_rounds;
    out.stats.states_deduped_at_send = r.par_stats.states_deduped_at_send;
    out.stats.flushes = r.par_stats.flushes;
    out.stats.bytes_sent = r.par_stats.bytes_sent;
    if (request.warm) {
      const bool used = request.warm->seed_schedule != nullptr;
      out.stats.warm_start_used = used;
      request.warm->warm_used = used;
      request.warm->states_retained = 0;
      request.warm->instant_proof = false;
    }
    return out;
  }
};

// ---- Chen & Yu branch-and-bound ------------------------------------------

class ChenYuSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    bnb::ChenYuConfig config;
    config.max_expansions = request.limits.max_expansions;
    config.time_budget_ms = request.limits.time_budget_ms;
    config.max_memory_bytes = request.limits.max_memory_bytes;
    config.controls.cancel = request.cancel;
    config.controls.progress = request.progress;
    config.controls.progress_every = request.progress_every;
    config.max_paths_per_eval = static_cast<std::size_t>(opt_int(
        request.options, "chenyu", "max-paths", 4096, /*min_value=*/0));
    const core::SearchProblem problem(*request.graph, *request.machine,
                                      request.comm);
    bnb::ChenYuResult r = bnb::chen_yu_schedule(problem, config);
    SolveResult out{std::move(r.schedule)};
    out.makespan = r.makespan;
    out.proved_optimal = r.proved_optimal;
    out.bound_factor = r.proved_optimal ? 1.0 : kInf;
    out.reason = r.reason;
    out.stats.search.expanded = r.expanded;
    out.stats.search.generated = r.generated;
    out.stats.search.loads_full = r.loads_full;
    out.stats.search.loads_incremental = r.loads_incremental;
    out.stats.search.assignments_replayed = r.assignments_replayed;
    out.stats.search.peak_memory_bytes = r.peak_memory_bytes;
    out.stats.search.elapsed_seconds = r.elapsed_seconds;
    out.stats.paths_evaluated = r.paths_evaluated;
    return out;
  }
};

// ---- exhaustive oracle ---------------------------------------------------

class ExhaustiveSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    bnb::ExhaustiveResult r = bnb::exhaustive_schedule(
        *request.graph, *request.machine, request.comm);
    SolveResult out{std::move(r.schedule)};
    out.makespan = r.makespan;
    out.proved_optimal = true;
    out.bound_factor = 1.0;
    out.reason = core::Termination::kOptimal;
    out.stats.search.expanded = r.nodes_visited;
    return out;
  }
};

// ---- polynomial list heuristics ------------------------------------------

using HeuristicFn = sched::Schedule (*)(const dag::TaskGraph&,
                                        const machine::Machine&,
                                        machine::CommMode);

class HeuristicSolver : public Solver {
 public:
  explicit HeuristicSolver(HeuristicFn fn) : fn_(fn) {}

  SolveResult solve(const SolveRequest& request) const override {
    SolveResult out{fn_(*request.graph, *request.machine, request.comm)};
    sched::validate(out.schedule);
    out.makespan = out.schedule.makespan();
    out.proved_optimal = false;
    out.bound_factor = kInf;
    out.reason = core::Termination::kHeuristic;
    return out;
  }

 private:
  HeuristicFn fn_;
};

const std::vector<OptionSpec> kAStarOptions = {
    {"h", "heuristic function: zero|paper|path|composite"},
    {"h-weight", "weighted A* factor (>= 1; solution within that factor)"},
    {"prune", "pruning preset: all|none|paper"},
    {"incumbent", "anytime incumbent updates: 0|1 (default 1)"},
    {"queue", "OPEN list: auto|bucket|heap (default auto — bucket when the "
              "instance's f values fit an exact fixed-point grid, else heap)"},
};

std::vector<OptionSpec> with_epsilon(std::vector<OptionSpec> options,
                                     const std::string& help) {
  options.insert(options.begin(), {"epsilon", help});
  return options;
}

}  // namespace

namespace detail {

void register_builtin_engines(SolverRegistry& registry) {
  registry.add(
      {"astar",
       "serial A* (paper Sec. 3.1/3.2) — optimal, all prunings by default",
       {.optimal = true, .anytime = true, .parallel = false, .bounded = true,
        .warm_start = true},
       kAStarOptions,
       [] { return std::make_unique<AStarSolver>("astar", 0.0); }});
  registry.add(
      {"aeps",
       "serial Aeps* FOCAL search (Sec. 3.4) — within (1+epsilon) of optimal",
       {.optimal = false, .anytime = true, .parallel = false, .bounded = true,
        .warm_start = true},
       with_epsilon(kAStarOptions,
                    "approximation factor (default 0.2; 0 = exact A*)"),
       [] { return std::make_unique<AStarSolver>("aeps", 0.2); }});
  registry.add(
      {"ida",
       "iterative-deepening A* — optimal in O(v) memory, exact-only",
       {.optimal = true, .anytime = true, .parallel = false, .bounded = false},
       {{"h", "heuristic function: zero|paper|path|composite"},
        {"prune", "pruning preset: all|none|paper"}},
       [] { return std::make_unique<IdaSolver>(); }});
  registry.add(
      {"parallel",
       "multi-threaded parallel A*/Aeps*: ring (Sec. 3.3), work stealing, "
       "or multi-process HDA* (mode=dist)",
       {.optimal = true, .anytime = true, .parallel = true, .bounded = true,
        .warm_start = true},
       {{"ppes", "worker thread count (default 4)"},
        {"mode", "transport: ring (paper Sec. 3.3) | ws (work stealing + "
                 "sharded dedup) | dist (worker processes over AF_UNIX "
                 "sockets, exact-only); default ring"},
        {"procs", "dist mode: worker process count (default 4)"},
        {"wire", "dist mode: wire codec: v2 (binary, delta-encoded "
                 "batches) | v1 (newline-JSON baseline); default v2"},
        {"batch", "dist mode: states per destination outbox before a "
                  "flush (default 0 = auto: 256 under v2, steal-batch "
                  "under v1)"},
        {"flush-us", "dist mode, wire v2: max age in microseconds of a "
                     "pending outbox state before a forced flush "
                     "(default 2000)"},
        {"epsilon", "approximation factor (default 0 = exact)"},
        {"h", "heuristic function: zero|paper|path|composite"},
        {"topology", "ring mode: PPE interconnect: ring|mesh|clique"},
        {"min-period",
         "ring mode: minimum expansions between comm rounds (default 2)"},
        {"steal-batch", "ws mode: donation/steal batch size (default 8)"},
        {"shards",
         "ws mode: dedup-table shard count, <= 65536 (default 0 = 4x ppes); "
         "the table's fixed allocation is checked against max_memory_bytes "
         "up front"},
        {"queue", "per-PPE OPEN list: auto|bucket|heap (default auto)"},
        {"pin", "CPU placement per PPE: none|compact|spread (default none); "
                "pins worker threads and first-touches their pages in place"},
        {"naive-term", "paper's first-goal termination: 0|1 (default 0)"}},
       [] { return std::make_unique<ParallelSolver>(); }});
  registry.add(
      {"chenyu",
       "Chen & Yu branch-and-bound baseline (Table 1) — optimal but slow",
       {.optimal = true, .anytime = true, .parallel = false, .bounded = false},
       {{"max-paths", "path-enumeration cap per underestimate (default 4096)"}},
       [] { return std::make_unique<ChenYuSolver>(); }});
  registry.add(
      {"exhaustive",
       "brute-force oracle — exact, exponential, ignores limits (v <= ~9)",
       {.optimal = true, .anytime = false, .parallel = false,
        .bounded = false},
       {},
       [] { return std::make_unique<ExhaustiveSolver>(); }});

  registry.add({"blevel",
                "b-level list heuristic (the search's upper bound, FAST)",
                {},
                {},
                [] {
                  return std::make_unique<HeuristicSolver>(
                      &sched::upper_bound_schedule);
                }});
  registry.add({"hlfet",
                "Highest Level First with Estimated Times list heuristic",
                {},
                {},
                [] { return std::make_unique<HeuristicSolver>(&sched::hlfet); }});
  registry.add({"mcp",
                "Modified Critical Path list heuristic (ALAP, insertion)",
                {},
                {},
                [] { return std::make_unique<HeuristicSolver>(&sched::mcp); }});
  registry.add({"etf",
                "Earliest Task First dynamic list heuristic",
                {},
                {},
                [] { return std::make_unique<HeuristicSolver>(&sched::etf); }});
}

}  // namespace detail

}  // namespace optsched::api
