// Unified solver API: one request/result pair for every engine.
//
// Every scheduling engine in the library — the optimal searches (A*, Aε*,
// IDA*, parallel A*, Chen & Yu B&B, the exhaustive oracle), the polynomial
// list heuristics, and the portfolio meta-solver — is callable through the
// same SolveRequest -> SolveResult boundary. Engine-specific knobs travel
// as parsed key=value option strings validated against the engine's
// declared option spec (see registry.hpp), so the CLI, benches, tests, and
// external callers need no per-engine dispatch code.
//
// Cross-cutting controls (expansion/deadline/memory limits, cooperative
// cancellation, progress callbacks) are part of the request and are
// honored by every anytime engine: a cancelled or budget-limited solve
// still returns a valid complete schedule with proved_optimal = false.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/astar.hpp"
#include "core/controls.hpp"
#include "sched/schedule.hpp"

namespace optsched::api {

/// Engine-specific options as parsed key=value pairs ("epsilon" -> "0.2").
using Options = std::map<std::string, std::string>;

/// Parse a comma-separated "k1=v1,k2=v2" spec (empty string -> empty map).
/// Throws util::Error on entries without '=' or with an empty key.
Options parse_options(const std::string& spec);

/// Parse an engine spec "name[:k=v[:k=v...]]" into the registry name plus
/// its options — colon-separated so specs compose inside comma-separated
/// engine lists (e.g. `--engines astar,parallel:mode=ws:ppes=4`). A bare
/// name yields empty options. Option values must not contain ':' or ','
/// (no declared engine option needs them; portfolio's engines list is
/// '+'-separated).
std::pair<std::string, Options> parse_engine_spec(const std::string& spec);

/// Canonical form of an engine spec: round-trips parse_engine_spec and
/// re-serializes as "name[:k=v...]" with options sorted by key and every
/// numeric value normalized to its shortest exact form — so
/// "ws:steal-batch=08" and "ws:steal-batch=8", or "aeps:epsilon=0.20"
/// and "aeps:epsilon=0.2", canonicalize identically. This is the engine
/// half of the server's result-cache key (server/result_cache.hpp): two
/// specs with equal canonical forms configure bit-identical solves.
/// Non-numeric values (mode names, portfolio member lists) pass through
/// verbatim. Purely syntactic — the name is not checked against the
/// registry.
std::string canonical_engine_spec(const std::string& spec);

/// Thrown for a malformed SolveRequest — unknown engine, option key the
/// engine does not declare, unparsable option value, or an engine
/// constraint violation (e.g. epsilon on the exact-only IDA*). Raised by
/// the registry's validation path before any search work starts.
class InvalidRequest : public util::Error {
 public:
  using util::Error::Error;
};

/// Unified resource limits; 0 = unlimited.
struct SolveLimits {
  std::uint64_t max_expansions = 0;
  double time_budget_ms = 0.0;
  /// Search-state memory cap. Exact for serial A*/Aε* and Chen & Yu,
  /// a per-PPE share for the parallel engine, never binding for IDA*
  /// (O(v) working set), ignored by the heuristics and the oracle.
  std::size_t max_memory_bytes = 0;
};

/// Everything an engine needs to solve one instance. The graph and machine
/// are borrowed, not copied — they must outlive the solve() call.
struct SolveRequest {
  SolveRequest(const dag::TaskGraph& g, const machine::Machine& m,
               machine::CommMode c = machine::CommMode::kUnitDistance)
      : graph(&g), machine(&m), comm(c) {}

  const dag::TaskGraph* graph;
  const machine::Machine* machine;
  machine::CommMode comm;

  SolveLimits limits{};
  core::CancellationToken cancel{};   ///< cancel() from any thread
  core::ProgressFn progress{};        ///< observed incumbent / lower bound
  std::uint64_t progress_every = 1024;

  Options options{};  ///< engine-specific, validated by the registry

  /// Warm-start plumbing (set by SolveSession, null for one-shot solves).
  /// `warm` carries the previous solve's arena + the delta's invalidation
  /// summary into engines advertising EngineCaps::warm_start; engines
  /// without the capability ignore it and solve cold. `problem` is an
  /// optional pre-built SearchProblem over the same graph/machine/comm
  /// (borrowed; must outlive the call) so the session's incremental
  /// b-level update is not thrown away by an engine rebuilding from
  /// scratch.
  core::WarmStart* warm = nullptr;
  const core::SearchProblem* problem = nullptr;
};

/// Superset of every engine's counters; fields an engine does not track
/// stay 0 (e.g. peak_memory_bytes for the heuristics, comm counters for
/// the serial engines).
struct SolveStats {
  core::SearchStats search{};          ///< expansions, memory, time, ...
  std::uint64_t paths_evaluated = 0;   ///< Chen & Yu underestimate work
  /// Parallel transport: "ring" or "ws" (empty for serial engines).
  std::string parallel_mode;
  std::uint64_t messages_sent = 0;     ///< parallel engine, ring mode
  std::uint64_t states_transferred = 0;  ///< shipped over mailboxes or stolen
  std::uint64_t comm_rounds = 0;
  std::uint64_t steal_attempts = 0;    ///< parallel engine, ws mode
  std::uint64_t steals = 0;
  std::uint64_t donations = 0;
  std::uint32_t shards = 0;            ///< sharded dedup table (ws mode)
  std::uint64_t shard_hits = 0;  ///< duplicates filtered by the shared table
  /// Per-PPE expansion counts, sorted descending — per-thread attribution
  /// is timing-dependent, so reports emit the distribution (and min/max/
  /// total aggregates), never the PPE-id order.
  std::vector<std::uint64_t> expanded_per_ppe;
  /// PPE counts: requested vs. actually run after the initial-frontier
  /// feedability clamp (ws mode on tiny instances); 0 for serial engines.
  std::uint32_t effective_ppes = 0;
  /// Worker threads successfully pinned to a CPU (parallel engine with
  /// pin=compact|spread); 0 for pin=none and serial engines.
  std::uint32_t pins_applied = 0;
  std::uint32_t engines_raced = 0;     ///< portfolio members launched
  /// Distributed mode (parallel engine, mode=dist): states encoded into
  /// wire batches, batch frames relayed worker->worker, and
  /// quiescence-condition evaluations by the coordinator's termination
  /// detector; all 0 for the in-process modes and serial engines.
  std::uint64_t states_serialized = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t termination_rounds = 0;
  /// Distributed wire-path counters (PR 10): remote children suppressed
  /// by the send-side duplicate filter, gathered socket writes on the
  /// worker side, and total bytes written to dist sockets across all
  /// processes. All 0 for in-process modes and serial engines.
  std::uint64_t states_deduped_at_send = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_sent = 0;
  /// Warm-start re-solve (SolveSession): whether any previous-solve state
  /// was reused, how many arena states survived the delta, and the
  /// session's estimate of search work skipped vs. the previous solve
  /// (100 * (1 - expanded/prev_expanded), clamped to [0, 100]; the churn
  /// runner reports the exact warm-vs-cold figure instead).
  bool warm_start_used = false;
  std::uint64_t states_retained = 0;
  double search_skipped_pct = 0.0;
  /// Serving-layer counters (src/server), filled in by server::Client
  /// when the solve was answered by a resident daemon; always
  /// false/0 for in-process solves. `cache_hit` means the result came
  /// from the daemon's LRU result cache verbatim; `cache_lookups` and
  /// `cache_bytes` snapshot the daemon-lifetime lookup count and
  /// resident cache size at reply time; `queue_wait_ms` is the
  /// admission-to-start wait in the daemon's worker pool (0 for hits,
  /// which bypass the pool).
  bool cache_hit = false;
  std::uint64_t cache_lookups = 0;
  std::size_t cache_bytes = 0;
  double queue_wait_ms = 0.0;
};

/// Unified result: always a valid complete schedule, plus the proof state.
struct SolveResult {
  explicit SolveResult(sched::Schedule s) : schedule(std::move(s)) {}

  sched::Schedule schedule;
  double makespan = 0.0;
  bool proved_optimal = false;
  /// Guaranteed makespan <= bound_factor * optimal; 1.0 when proved
  /// optimal, (1+eps) for Aε*, infinity when no guarantee (heuristics,
  /// budget-limited incumbents).
  double bound_factor = 1.0;
  core::Termination reason = core::Termination::kOptimal;
  /// Engine that produced the schedule; for the portfolio this is the
  /// member that won the race.
  std::string engine;
  SolveStats stats{};
};

/// Abstract engine interface. Implementations are stateless adapters: the
/// registry constructs one per solve() call, and the request carries all
/// per-call state, so a Solver itself is trivially thread-compatible.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Run on a registry-validated request (options are checked against the
  /// engine's declared spec before this is called).
  virtual SolveResult solve(const SolveRequest& request) const = 0;
};

/// Per-engine capability flags, surfaced by --list-engines and used by
/// registry-driven test suites to pick applicable engines.
struct EngineCaps {
  bool optimal = false;   ///< proves optimality when run without limits
  bool anytime = false;   ///< keeps an incumbent; honors limits/cancel
  bool parallel = false;  ///< uses worker threads
  bool bounded = false;   ///< supports a (1+eps)/weight suboptimality bound
  /// Consumes SolveRequest::warm (SolveSession re-solve): arena prefix
  /// reuse for the serial searches, seeded incumbent for the parallel
  /// engine. Engines without it degrade to a cold re-solve.
  bool warm_start = false;

  /// No flags at all = a polynomial list heuristic (instant, no proof,
  /// no budget handling). Keep in sync when adding flags.
  bool is_heuristic() const {
    return !optimal && !anytime && !parallel && !bounded && !warm_start;
  }
};

}  // namespace optsched::api
