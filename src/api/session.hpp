// SolveSession: warm-start re-solve under instance churn (the tentpole of
// the incremental-search subsystem).
//
// A session owns a sequence of instance *generations*. The first solve()
// copies the caller's graph/machine in and runs the configured engine
// cold; each resolve(delta) then
//
//   1. applies a typed core::InstanceDelta to the current generation
//      (core/delta.hpp), producing the perturbed graph/machine plus the
//      delta's invalidation summary (dirty nodes, level-recompute seeds,
//      processor map);
//   2. builds the new SearchProblem *incrementally* — b-levels/t-levels
//      are recomputed only inside the delta's cone (dag::update_levels),
//      and the machine automorphism group is reused when only the graph
//      changed;
//   3. repairs the previous incumbent schedule against the new instance
//      with a list-scheduler patch pass (sched::repair_schedule) — an
//      instant, valid upper bound for the new search;
//   4. hands the previous solve's state arena + the dirty set + the
//      repaired seed to the engine through SolveRequest::warm. Engines
//      advertising EngineCaps::warm_start reuse the arena prefix the
//      delta did not invalidate (serial A*/Aε*) or at least the seeded
//      incumbent bound (parallel); other engines degrade to a cold
//      re-solve of the perturbed instance.
//
// Soundness: a warm resolve bit-agrees (makespan and proved_optimal) with
// a cold solve of the perturbed instance for exact configurations — see
// core::WarmStart and DESIGN.md §5 for the argument, and the churn runner
// (workload/churn.hpp) for the oracle that checks it on every run.
//
// Results returned by a session stay valid for the session's lifetime:
// every generation's graph/machine/problem/seed is kept alive, because
// schedules and search problems borrow rather than copy them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "core/delta.hpp"

namespace optsched::api {

class SolveSession {
 public:
  /// `engine` is a registry name; `options` are its engine options, used
  /// for every solve in the session (a solve request's own options are
  /// merged on top, request entries winning). Throws InvalidRequest for
  /// an unknown engine.
  explicit SolveSession(std::string engine, Options options = {});

  /// Cold solve of a fresh instance: the graph/machine are copied into
  /// the session (the request only borrows them), the request's limits/
  /// controls are remembered for later resolves, and — for warm-capable
  /// engines — the search arena is captured for the first resolve().
  /// Calling solve() again later starts a new generation from scratch.
  SolveResult solve(const SolveRequest& request);

  /// Apply `delta` to the current instance and re-solve warm (steps 1-4
  /// above). Throws InvalidRequest when no solve() preceded, and
  /// util::Error when the delta does not fit the instance (bad node id,
  /// duplicate edge, ...). The result's stats carry warm_start_used /
  /// states_retained / search_skipped_pct.
  SolveResult resolve(const core::InstanceDelta& delta);

  /// Current instance (after all applied deltas). Valid after solve().
  const dag::TaskGraph& graph() const;
  const machine::Machine& machine() const;

  bool has_result() const { return last_.has_value(); }
  const SolveResult& last() const;

  const std::string& engine() const { return engine_; }
  /// Whether the configured engine consumes warm-start state at all.
  bool warm_capable() const { return warm_capable_; }

 private:
  /// One instance generation. shared_ptr keeps every generation alive for
  /// the session's lifetime: schedules/problems/results borrow the graph
  /// and machine, and callers may hold results from older generations.
  struct Generation {
    std::shared_ptr<const dag::TaskGraph> graph;
    std::shared_ptr<const machine::Machine> machine;
    std::shared_ptr<const core::SearchProblem> problem;
    std::shared_ptr<const sched::Schedule> seed;  ///< repaired incumbent
  };

  SolveResult run(const Generation& gen, const Options& options,
                  core::WarmStart* warm);

  std::string engine_;
  Options base_options_;
  bool warm_capable_ = false;

  machine::CommMode comm_ = machine::CommMode::kUnitDistance;
  SolveLimits limits_{};
  core::CancellationToken cancel_{};
  core::ProgressFn progress_{};
  std::uint64_t progress_every_ = 1024;
  Options options_{};  ///< effective options of the latest solve()

  std::vector<Generation> history_;
  core::WarmStart warm_{};
  std::optional<SolveResult> last_;
  std::uint64_t prev_expanded_ = 0;
};

}  // namespace optsched::api
