#include "api/session.hpp"

#include <algorithm>
#include <utility>

#include "sched/list_scheduler.hpp"
#include "util/assert.hpp"

namespace optsched::api {

SolveSession::SolveSession(std::string engine, Options options)
    : engine_(std::move(engine)), base_options_(std::move(options)) {
  // Validates the name up front (throws InvalidRequest when unknown).
  warm_capable_ = SolverRegistry::instance().info(engine_).caps.warm_start;
}

const dag::TaskGraph& SolveSession::graph() const {
  OPTSCHED_REQUIRE(!history_.empty(), "SolveSession: no solve() yet");
  return *history_.back().graph;
}

const machine::Machine& SolveSession::machine() const {
  OPTSCHED_REQUIRE(!history_.empty(), "SolveSession: no solve() yet");
  return *history_.back().machine;
}

const SolveResult& SolveSession::last() const {
  OPTSCHED_REQUIRE(last_.has_value(), "SolveSession: no solve() yet");
  return *last_;
}

SolveResult SolveSession::run(const Generation& gen, const Options& options,
                              core::WarmStart* warm) {
  SolveRequest request(*gen.graph, *gen.machine, comm_);
  request.limits = limits_;
  request.cancel = cancel_;
  request.progress = progress_;
  request.progress_every = progress_every_;
  request.options = options;
  request.problem = gen.problem.get();
  request.warm = warm;
  return SolverRegistry::instance().solve(engine_, request);
}

SolveResult SolveSession::solve(const SolveRequest& request) {
  Generation gen;
  gen.graph = std::make_shared<const dag::TaskGraph>(*request.graph);
  gen.machine = std::make_shared<const machine::Machine>(*request.machine);
  comm_ = request.comm;
  gen.problem = std::make_shared<const core::SearchProblem>(
      *gen.graph, *gen.machine, comm_);

  limits_ = request.limits;
  cancel_ = request.cancel;
  progress_ = request.progress;
  progress_every_ = request.progress_every;
  options_ = base_options_;
  for (const auto& [k, v] : request.options) options_[k] = v;

  // A fresh instance invalidates everything a previous generation left in
  // the warm state; passing it anyway lets a warm-capable engine park its
  // final arena for the first resolve().
  warm_.dirty_nodes.clear();
  warm_.guard_nodes.clear();
  warm_.cost_only = false;
  warm_.cost_nondecrease = false;
  warm_.instance_replaced = true;
  warm_.seed_upper_bound = std::numeric_limits<double>::infinity();
  warm_.seed_schedule = nullptr;
  warm_.states_retained = 0;
  warm_.warm_used = false;
  warm_.instant_proof = false;

  SolveResult result = run(gen, options_, warm_capable_ ? &warm_ : nullptr);
  // A cold solve reuses nothing, whatever the engine reported about the
  // (empty) warm state it was handed.
  result.stats.warm_start_used = false;
  result.stats.states_retained = 0;
  result.stats.search_skipped_pct = 0.0;

  prev_expanded_ = result.stats.search.expanded;
  history_.push_back(std::move(gen));
  last_ = result;
  return result;
}

SolveResult SolveSession::resolve(const core::InstanceDelta& delta) {
  if (history_.empty())
    throw InvalidRequest("SolveSession::resolve before any solve()");
  const Generation& prev = history_.back();

  core::DeltaEffect effect = core::apply_delta(*prev.graph, *prev.machine,
                                               delta);

  Generation gen;
  gen.graph =
      std::make_shared<const dag::TaskGraph>(std::move(effect.graph));
  gen.machine =
      std::make_shared<const machine::Machine>(std::move(effect.machine));
  // Incremental problem build: levels recomputed only inside the delta's
  // cone; the machine automorphism group is reused when only the graph
  // changed.
  gen.problem = std::make_shared<const core::SearchProblem>(
      *gen.graph, *gen.machine, comm_, *prev.problem, effect.level_seeds,
      effect.machine_changed);
  // Repair the previous incumbent into an instant upper bound for the new
  // instance.
  gen.seed = std::make_shared<const sched::Schedule>(sched::repair_schedule(
      *gen.graph, *gen.machine, last_->schedule, effect.proc_map, comm_));

  // Guard set for the closed-state skip: dirty nodes plus the delta's
  // endpoints (level_seeds covers both for every graph-edit kind).
  warm_.guard_nodes = effect.level_seeds;
  for (std::size_t i = 0;
       i < warm_.guard_nodes.size() && i < effect.dirty_nodes.size(); ++i)
    if (effect.dirty_nodes[i]) warm_.guard_nodes[i] = true;
  warm_.cost_only = delta.kind == core::DeltaKind::kTaskCost ||
                    delta.kind == core::DeltaKind::kCommCost;
  warm_.cost_nondecrease = false;
  if (delta.kind == core::DeltaKind::kTaskCost) {
    warm_.cost_nondecrease = delta.value >= prev.graph->weight(delta.node);
  } else if (delta.kind == core::DeltaKind::kCommCost) {
    for (const auto& [child, cost] : prev.graph->children(delta.src))
      if (child == delta.dst) {
        warm_.cost_nondecrease = delta.value >= cost;
        break;
      }
  }
  warm_.dirty_nodes = std::move(effect.dirty_nodes);
  warm_.instance_replaced = effect.machine_changed;
  warm_.seed_upper_bound = gen.seed->makespan();
  warm_.seed_schedule = gen.seed.get();
  warm_.states_retained = 0;
  warm_.warm_used = false;
  warm_.instant_proof = false;

  SolveResult result = run(gen, options_, warm_capable_ ? &warm_ : nullptr);
  warm_.seed_schedule = nullptr;  // gen.seed owns it; re-armed next resolve

  // Session-side estimate of skipped work vs. the previous solve of this
  // session (the churn runner reports the exact warm-vs-cold figure).
  const std::uint64_t expanded = result.stats.search.expanded;
  if (prev_expanded_ > 0) {
    const double pct =
        100.0 * (1.0 - static_cast<double>(expanded) /
                           static_cast<double>(prev_expanded_));
    result.stats.search_skipped_pct = std::clamp(pct, 0.0, 100.0);
  } else {
    result.stats.search_skipped_pct = expanded == 0 ? 100.0 : 0.0;
  }

  prev_expanded_ = expanded;
  history_.push_back(std::move(gen));
  last_ = result;
  return result;
}

}  // namespace optsched::api
