// Portfolio meta-solver: race N registered engines on threads.
//
// Algorithm portfolios exploit the huge per-instance variance of exact
// search: on one instance IDA* flies and A* drowns in duplicates, on the
// next it is the other way round. The portfolio launches every member on
// its own thread with a private cancellation token chained to the parent
// request's token, and:
//
//   * the first member to finish with a *proved optimal* (bound factor 1)
//     result wins — all other members are cancelled immediately;
//   * if no member proves optimality (deadline, cancellation, limits),
//     the best incumbent across members is returned with
//     proved_optimal = false and that member's termination reason.
//
// Members run with their default options; the portfolio's own option is
// `engines`, a '+'-separated member list (default: every registered
// optimal anytime engine).
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "api/builtin.hpp"
#include "api/registry.hpp"

namespace optsched::api {

namespace {

std::vector<std::string> split_plus(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t next = spec.find('+', pos);
    if (next == std::string::npos) next = spec.size();
    if (next > pos) out.push_back(spec.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

class PortfolioSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    const auto& registry = SolverRegistry::instance();
    const std::vector<std::string> members = resolve_members(request);

    // One private token per member so the race can be stopped without
    // cancelling the caller's token.
    std::vector<core::CancellationToken> tokens(members.size());
    auto cancel_all = [&] {
      for (const auto& t : tokens) t.cancel();
    };

    std::mutex mu;
    std::condition_variable cv;
    std::size_t finished = 0;
    bool have_winner = false;
    std::optional<SolveResult> best;  // guarded by mu
    std::exception_ptr failure;       // first member exception

    // Progress events from all members are forwarded serialized; the
    // race makes interleaving inherent, so events carry whatever member
    // reported last.
    core::ProgressFn forward;
    if (request.progress) {
      auto progress_mu = std::make_shared<std::mutex>();
      forward = [progress_mu, fn = request.progress](
                    const core::ProgressEvent& event) {
        const std::lock_guard<std::mutex> lock(*progress_mu);
        fn(event);
      };
    }

    std::vector<std::thread> threads;
    threads.reserve(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      threads.emplace_back([&, i] {
        SolveRequest member_request = request;
        member_request.cancel = tokens[i];
        member_request.progress = forward;
        member_request.options.clear();  // members run with their defaults
        try {
          SolveResult r = registry.solve(members[i], member_request);
          const auto proved = [](const SolveResult& x) {
            return x.proved_optimal && x.bound_factor == 1.0;
          };
          const std::lock_guard<std::mutex> lock(mu);
          const bool winner = proved(r);
          const bool better =
              !best || (winner && !proved(*best)) ||
              (winner == proved(*best) &&
               r.makespan < best->makespan - 1e-12);
          if (better) best = std::move(r);
          if (winner && !have_winner) {
            have_winner = true;
            cancel_all();
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu);
          if (!failure) failure = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> lock(mu);
          ++finished;
        }
        cv.notify_all();
      });
    }

    // Wait for the race, propagating the caller's cancellation into the
    // members (polled — the caller's token has no wait primitive).
    {
      std::unique_lock<std::mutex> lock(mu);
      while (finished < members.size()) {
        cv.wait_for(lock, std::chrono::milliseconds(5));
        if (request.cancel.cancelled()) cancel_all();
      }
    }
    for (auto& t : threads) t.join();

    if (!best) {
      if (failure) std::rethrow_exception(failure);
      throw util::Error("portfolio: no member produced a result");
    }
    best->stats.engines_raced = static_cast<std::uint32_t>(members.size());
    return std::move(*best);
  }

 private:
  std::vector<std::string> resolve_members(
      const SolveRequest& request) const {
    const auto& registry = SolverRegistry::instance();
    std::vector<std::string> members;
    const auto it = request.options.find("engines");
    if (it != request.options.end()) {
      members = split_plus(it->second);
      if (members.empty())
        throw InvalidRequest("engine 'portfolio': engines= needs at least "
                             "one member ('astar+ida+...')");
      for (const auto& m : members) {
        if (m == "portfolio")
          throw InvalidRequest(
              "engine 'portfolio': cannot race itself");
        if (!registry.contains(m))
          throw InvalidRequest("engine 'portfolio': unknown member '" + m +
                               "'");
      }
    } else {
      // Default: every optimal engine that honors budgets/cancellation —
      // an uncancellable member (the exhaustive oracle) would hold the
      // race hostage after another member already proved optimality.
      for (const auto& name : registry.names()) {
        if (name == "portfolio") continue;
        const EngineCaps caps = registry.info(name).caps;
        if (caps.optimal && caps.anytime) members.push_back(name);
      }
      OPTSCHED_ASSERT(!members.empty());
    }
    return members;
  }
};

}  // namespace

namespace detail {

void register_portfolio(SolverRegistry& registry) {
  registry.add(
      {"portfolio",
       "race registered engines on threads; first proved-optimal wins",
       {.optimal = true, .anytime = true, .parallel = true, .bounded = false},
       {{"engines",
         "'+'-separated members (default: all optimal anytime engines)"}},
       [] { return std::make_unique<PortfolioSolver>(); }});
}

}  // namespace detail

}  // namespace optsched::api
