#include "dag/graph.hpp"

#include <algorithm>
#include <cmath>

namespace optsched::dag {

NodeId TaskGraph::add_node(double weight, std::string name) {
  OPTSCHED_REQUIRE(!finalized_, "add_node after finalize()");
  OPTSCHED_REQUIRE(std::isfinite(weight) && weight >= 0.0,
                   "node weight must be finite and non-negative");
  const auto id = static_cast<NodeId>(weights_.size());
  weights_.push_back(weight);
  if (name.empty()) name = "n" + std::to_string(id + 1);
  names_.push_back(std::move(name));
  return id;
}

void TaskGraph::add_edge(NodeId src, NodeId dst, double cost) {
  OPTSCHED_REQUIRE(!finalized_, "add_edge after finalize()");
  OPTSCHED_REQUIRE(src < weights_.size() && dst < weights_.size(),
                   "edge endpoint out of range");
  OPTSCHED_REQUIRE(src != dst, "self-edges are not allowed in a DAG");
  OPTSCHED_REQUIRE(std::isfinite(cost) && cost >= 0.0,
                   "edge cost must be finite and non-negative");
  raw_edges_.push_back({src, dst, cost});
}

void TaskGraph::finalize() {
  OPTSCHED_REQUIRE(!finalized_, "finalize() called twice");
  OPTSCHED_REQUIRE(!weights_.empty(), "graph has no nodes");

  const std::size_t v = weights_.size();

  // Reject duplicate edges (ambiguous communication cost).
  {
    auto sorted = raw_edges_;
    std::sort(sorted.begin(), sorted.end(), [](const RawEdge& a, const RawEdge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    for (std::size_t i = 1; i < sorted.size(); ++i)
      OPTSCHED_REQUIRE(sorted[i].src != sorted[i - 1].src ||
                           sorted[i].dst != sorted[i - 1].dst,
                       "duplicate edge in task graph");
  }

  // Build CSR adjacency (children and parents), sorted by neighbour id so
  // equality of adjacency lists can be tested directly (node equivalence).
  child_off_.assign(v + 1, 0);
  parent_off_.assign(v + 1, 0);
  for (const auto& e : raw_edges_) {
    ++child_off_[e.src + 1];
    ++parent_off_[e.dst + 1];
  }
  for (std::size_t i = 0; i < v; ++i) {
    child_off_[i + 1] += child_off_[i];
    parent_off_[i + 1] += parent_off_[i];
  }
  children_.resize(raw_edges_.size());
  parents_.resize(raw_edges_.size());
  {
    auto cpos = child_off_;
    auto ppos = parent_off_;
    for (const auto& e : raw_edges_) {
      children_[cpos[e.src]++] = {e.dst, e.cost};
      parents_[ppos[e.dst]++] = {e.src, e.cost};
    }
  }
  for (std::size_t n = 0; n < v; ++n) {
    std::sort(children_.begin() + static_cast<std::ptrdiff_t>(child_off_[n]),
              children_.begin() + static_cast<std::ptrdiff_t>(child_off_[n + 1]),
              [](const Adjacent& a, const Adjacent& b) { return a.node < b.node; });
    std::sort(parents_.begin() + static_cast<std::ptrdiff_t>(parent_off_[n]),
              parents_.begin() + static_cast<std::ptrdiff_t>(parent_off_[n + 1]),
              [](const Adjacent& a, const Adjacent& b) { return a.node < b.node; });
  }

  // Kahn's algorithm: topological order + cycle detection. A min-id frontier
  // keeps the order deterministic across platforms.
  std::vector<std::size_t> indegree(v, 0);
  for (const auto& e : raw_edges_) ++indegree[e.dst];
  std::vector<NodeId> frontier;
  for (NodeId n = 0; n < v; ++n)
    if (indegree[n] == 0) frontier.push_back(n);
  topo_.clear();
  topo_.reserve(v);
  while (!frontier.empty()) {
    const auto it = std::min_element(frontier.begin(), frontier.end());
    const NodeId n = *it;
    frontier.erase(it);
    topo_.push_back(n);
    for (std::size_t k = child_off_[n]; k < child_off_[n + 1]; ++k) {
      const NodeId c = children_[k].node;
      if (--indegree[c] == 0) frontier.push_back(c);
    }
  }
  OPTSCHED_REQUIRE(topo_.size() == v, "task graph contains a cycle");

  entries_.clear();
  exits_.clear();
  total_work_ = 0.0;
  total_comm_ = 0.0;
  for (NodeId n = 0; n < v; ++n) {
    if (parent_off_[n + 1] == parent_off_[n]) entries_.push_back(n);
    if (child_off_[n + 1] == child_off_[n]) exits_.push_back(n);
    total_work_ += weights_[n];
  }
  for (const auto& e : raw_edges_) total_comm_ += e.cost;
  edge_count_ = raw_edges_.size();
  raw_edges_.clear();
  raw_edges_.shrink_to_fit();
  finalized_ = true;
}

bool identical_graphs(const TaskGraph& a, const TaskGraph& b) {
  OPTSCHED_REQUIRE(a.finalized() && b.finalized(),
                   "identical_graphs requires finalized graphs");
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    if (a.weight(n) != b.weight(n) || a.name(n) != b.name(n)) return false;
    const auto ca = a.children(n);
    const auto cb = b.children(n);
    if (!std::equal(ca.begin(), ca.end(), cb.begin(), cb.end())) return false;
  }
  return true;
}

TaskGraph paper_figure1() {
  TaskGraph g;
  const NodeId n1 = g.add_node(2, "n1");
  const NodeId n2 = g.add_node(3, "n2");
  const NodeId n3 = g.add_node(3, "n3");
  const NodeId n4 = g.add_node(4, "n4");
  const NodeId n5 = g.add_node(5, "n5");
  const NodeId n6 = g.add_node(2, "n6");
  g.add_edge(n1, n2, 1);
  g.add_edge(n1, n3, 1);
  g.add_edge(n1, n4, 2);
  g.add_edge(n2, n5, 1);
  g.add_edge(n3, n5, 1);
  g.add_edge(n4, n6, 4);
  g.add_edge(n5, n6, 5);
  g.finalize();
  return g;
}

}  // namespace optsched::dag
