// Node- and edge-weighted directed acyclic task graph (paper §2).
//
// A TaskGraph models a parallel program: node weights are computation costs
// w(n_i), edge weights are communication costs c(n_i, n_j). The graph is
// built incrementally (add_node / add_edge) and then finalized, which
// validates it (acyclic, ids in range, finite non-negative costs), computes
// a topological order, and freezes CSR-style parent/child adjacency for
// O(1) traversal during search.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace optsched::dag {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One adjacency entry: the neighbouring node and the communication cost of
/// the connecting edge.
struct Adjacent {
  NodeId node = kInvalidNode;
  double cost = 0.0;

  friend bool operator==(const Adjacent&, const Adjacent&) = default;
};

class TaskGraph {
 public:
  TaskGraph() = default;

  /// Add a task with computation cost `weight`; returns its id (dense,
  /// starting at 0). Optional human-readable name for Gantt/DOT output.
  NodeId add_node(double weight, std::string name = "");

  /// Add a precedence edge src -> dst with communication cost `cost`.
  void add_edge(NodeId src, NodeId dst, double cost);

  /// Validate and freeze the graph. Throws util::Error on cycles,
  /// self-edges, duplicate edges, or non-finite/negative costs.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  std::size_t num_nodes() const noexcept { return weights_.size(); }
  std::size_t num_edges() const noexcept { return edge_count_; }

  double weight(NodeId n) const {
    OPTSCHED_ASSERT(n < num_nodes());
    return weights_[n];
  }

  const std::string& name(NodeId n) const {
    OPTSCHED_ASSERT(n < num_nodes());
    return names_[n];
  }

  std::span<const Adjacent> children(NodeId n) const {
    OPTSCHED_ASSERT(finalized_ && n < num_nodes());
    return {children_.data() + child_off_[n], child_off_[n + 1] - child_off_[n]};
  }

  std::span<const Adjacent> parents(NodeId n) const {
    OPTSCHED_ASSERT(finalized_ && n < num_nodes());
    return {parents_.data() + parent_off_[n], parent_off_[n + 1] - parent_off_[n]};
  }

  std::size_t num_children(NodeId n) const { return children(n).size(); }
  std::size_t num_parents(NodeId n) const { return parents(n).size(); }

  bool is_entry(NodeId n) const { return num_parents(n) == 0; }
  bool is_exit(NodeId n) const { return num_children(n) == 0; }

  /// Nodes in a topological order (stable: ties broken by node id).
  std::span<const NodeId> topo_order() const {
    OPTSCHED_ASSERT(finalized_);
    return topo_;
  }

  std::span<const NodeId> entry_nodes() const {
    OPTSCHED_ASSERT(finalized_);
    return entries_;
  }

  std::span<const NodeId> exit_nodes() const {
    OPTSCHED_ASSERT(finalized_);
    return exits_;
  }

  /// Sum of all computation costs (a trivial 1-processor schedule length).
  double total_work() const {
    OPTSCHED_ASSERT(finalized_);
    return total_work_;
  }

  double mean_computation_cost() const {
    OPTSCHED_ASSERT(finalized_);
    return num_nodes() ? total_work_ / static_cast<double>(num_nodes()) : 0.0;
  }

  double mean_communication_cost() const {
    OPTSCHED_ASSERT(finalized_);
    return num_edges() ? total_comm_ / static_cast<double>(num_edges()) : 0.0;
  }

  /// Communication-to-computation ratio of this graph (paper §2).
  double ccr() const {
    OPTSCHED_ASSERT(finalized_);
    return mean_computation_cost() > 0
               ? mean_communication_cost() / mean_computation_cost()
               : 0.0;
  }

 private:
  struct RawEdge {
    NodeId src;
    NodeId dst;
    double cost;
  };

  bool finalized_ = false;
  std::vector<double> weights_;
  std::vector<std::string> names_;
  std::vector<RawEdge> raw_edges_;
  std::size_t edge_count_ = 0;
  double total_work_ = 0.0;
  double total_comm_ = 0.0;

  // CSR adjacency, valid after finalize().
  std::vector<std::size_t> child_off_, parent_off_;
  std::vector<Adjacent> children_, parents_;
  std::vector<NodeId> topo_, entries_, exits_;
};

/// Bit-exact equality of two finalized graphs: same node count, weights,
/// names, and adjacency (edges with exactly equal costs, in CSR order).
/// This is the workload round-trip oracle — a ScenarioSpec must
/// rematerialize to an identical_graphs() twin after serialize/parse.
bool identical_graphs(const TaskGraph& a, const TaskGraph& b);

/// The 6-node example DAG of the paper's Figure 1(a). Edge costs are
/// reconstructed from the published t-level/b-level/static-level table
/// (Figure 2): (n1,n2)=1, (n1,n3)=1, (n1,n4)=2, (n2,n5)=1, (n3,n5)=1,
/// (n4,n6)=4, (n5,n6)=5. Node ids here are zero-based (paper n1 == node 0).
TaskGraph paper_figure1();

}  // namespace optsched::dag
