#include "dag/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "dag/levels.hpp"

namespace optsched::dag {

GraphStats analyze(const TaskGraph& graph) {
  OPTSCHED_REQUIRE(graph.finalized(), "analyze requires finalize()");
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  s.total_work = graph.total_work();
  s.total_comm =
      graph.mean_communication_cost() * static_cast<double>(graph.num_edges());
  s.ccr = graph.ccr();
  s.avg_degree = s.num_nodes
                     ? static_cast<double>(s.num_edges) /
                           static_cast<double>(s.num_nodes)
                     : 0.0;

  const Levels lv = compute_levels(graph);
  s.cp_length = lv.cp_length;

  // Topological "ASAP level" of each node: longest chain (in hops) from an
  // entry; level widths give the parallelism profile.
  std::vector<std::size_t> level(graph.num_nodes(), 0);
  std::size_t depth = 0;
  for (const NodeId n : graph.topo_order()) {
    for (const auto& [parent, cost] : graph.parents(n)) {
      (void)cost;
      level[n] = std::max(level[n], level[parent] + 1);
    }
    depth = std::max(depth, level[n] + 1);
  }
  s.depth = depth;
  s.level_widths.assign(depth, 0);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) ++s.level_widths[level[n]];
  s.max_width = *std::max_element(s.level_widths.begin(),
                                  s.level_widths.end());

  // CP node-work: max static level over entries (no edge costs).
  s.cp_work = 0.0;
  for (NodeId n = 0; n < graph.num_nodes(); ++n)
    s.cp_work = std::max(s.cp_work, lv.static_level[n]);
  s.max_speedup = s.cp_work > 0 ? s.total_work / s.cp_work : 1.0;
  return s;
}

std::string format_stats(const TaskGraph& graph, const GraphStats& s) {
  std::ostringstream out;
  out << "task graph";
  if (!graph.name(0).empty()) out << " (" << graph.name(0) << "...)";
  out << ": " << s.num_nodes << " tasks, " << s.num_edges << " edges\n"
      << "  total work " << s.total_work << ", CCR " << s.ccr
      << ", critical path " << s.cp_length << " (work-only " << s.cp_work
      << ")\n"
      << "  depth " << s.depth << ", max width " << s.max_width
      << ", avg out-degree " << s.avg_degree << "\n"
      << "  ideal max speedup (work/CP) " << s.max_speedup << "\n"
      << "  parallelism profile:";
  for (const auto w : s.level_widths) out << " " << w;
  out << "\n";
  return out.str();
}

}  // namespace optsched::dag
