#include "dag/transform.hpp"

#include <cmath>

namespace optsched::dag {

TaskGraph reverse(const TaskGraph& g) {
  OPTSCHED_REQUIRE(g.finalized(), "reverse requires finalize()");
  TaskGraph out;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    out.add_node(g.weight(n), g.name(n));
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      out.add_edge(child, n, cost);
  out.finalize();
  return out;
}

TaskGraph scaled(const TaskGraph& g, double comp_scale, double comm_scale) {
  OPTSCHED_REQUIRE(g.finalized(), "scaled requires finalize()");
  OPTSCHED_REQUIRE(std::isfinite(comp_scale) && comp_scale > 0,
                   "comp_scale must be positive and finite");
  OPTSCHED_REQUIRE(std::isfinite(comm_scale) && comm_scale > 0,
                   "comm_scale must be positive and finite");
  TaskGraph out;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    out.add_node(g.weight(n) * comp_scale, g.name(n));
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      out.add_edge(n, child, cost * comm_scale);
  out.finalize();
  return out;
}

}  // namespace optsched::dag
