// Graph transformations.
//
// `reverse` flips every edge (and keeps costs): scheduling the reversed
// DAG is the time-mirror of scheduling the original, so the two have
// identical optimal makespans on any machine with symmetric communication
// — a strong whole-stack invariant exercised by the property tests.
//
// `scaled` multiplies all node and/or edge costs by constants: optimal
// makespans scale linearly with a uniform cost scale, another invariant.
#pragma once

#include "dag/graph.hpp"

namespace optsched::dag {

/// The edge-reversed graph. Node ids and weights are preserved.
TaskGraph reverse(const TaskGraph& graph);

/// Copy with node weights scaled by `comp_scale` and edge costs scaled by
/// `comm_scale` (both must be positive and finite).
TaskGraph scaled(const TaskGraph& graph, double comp_scale,
                 double comm_scale);

}  // namespace optsched::dag
