// Node level attributes (paper §3.2, "Priority Assignment").
//
//  * t-level(n): length of the longest path from an entry node to n,
//    *excluding* w(n) but including the edge costs along the path — a lower
//    bound on n's earliest possible start time.
//  * b-level(n): length of the longest path from n to an exit node,
//    *including* w(n) and edge costs.
//  * static level sl(n): b-level computed without edge costs — the quantity
//    the paper's heuristic function h(s) uses.
//
// All three are computed in O(v + e) by one forward and one backward sweep
// over the topological order. The critical path (CP) is the longest path in
// the graph; its length equals max_n b-level(n) and a node lies on a CP iff
// t-level(n) + b-level(n) == CP length.
#pragma once

#include <vector>

#include "dag/graph.hpp"

namespace optsched::dag {

struct Levels {
  std::vector<double> t_level;
  std::vector<double> b_level;
  std::vector<double> static_level;
  double cp_length = 0.0;

  /// Priority used by the paper's search to order ready nodes: the node
  /// with the *largest* b-level + t-level is considered first.
  double priority(NodeId n) const { return b_level[n] + t_level[n]; }

  bool on_critical_path(NodeId n) const {
    return t_level[n] + b_level[n] == cp_length;
  }
};

/// Compute all level attributes. The graph must be finalized.
Levels compute_levels(const TaskGraph& graph);

/// Recompute levels after a localized graph change, restricted to the
/// affected cones: t-levels are re-swept only over the descendants of the
/// seed nodes, b-/static levels only over their ancestors; everything else
/// keeps its `previous` value. `graph` is the *new* (already edited) graph
/// and `seeds` marks the nodes the edit touched (per core/delta.hpp's
/// level_seeds). Bit-identical to compute_levels(graph) — the cones cover
/// every value the edit can move, and the per-node arithmetic is the same.
Levels update_levels(const TaskGraph& graph, const Levels& previous,
                     const std::vector<bool>& seeds);

/// Extract one critical path (entry -> exit node sequence). Deterministic:
/// smallest-id tie-breaking.
std::vector<NodeId> critical_path(const TaskGraph& graph, const Levels& levels);

}  // namespace optsched::dag
