#include "dag/stg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace optsched::dag {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& msg) {
  throw util::Error("STG parse error at line " + std::to_string(line) + ": " +
                    msg);
}

}  // namespace

TaskGraph read_stg(std::istream& in, const StgOptions& options) {
  OPTSCHED_REQUIRE(options.ccr >= 0.0, "STG ccr must be >= 0");
  std::string line;
  std::size_t lineno = 0;

  // First significant line: the task count.
  std::size_t declared = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    if (line.empty() || line[0] == '#') continue;
    if (!(ls >> declared) || declared == 0)
      parse_error(lineno, "expected a positive task count");
    break;
  }
  OPTSCHED_REQUIRE(declared > 0, "STG file has no task count line");

  struct Row {
    double cost;
    std::vector<std::size_t> preds;
  };
  std::vector<Row> rows;
  rows.reserve(declared);

  while (rows.size() < declared && std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::size_t id, npred;
    double cost;
    if (!(ls >> id >> cost >> npred))
      parse_error(lineno, "expected: id cost #preds pred...");
    if (id != rows.size())
      parse_error(lineno, "task ids must be dense and in order (expected " +
                              std::to_string(rows.size()) + ")");
    if (cost < 0) parse_error(lineno, "negative processing time");
    Row row;
    row.cost = cost;
    for (std::size_t k = 0; k < npred; ++k) {
      std::size_t pred;
      if (!(ls >> pred)) parse_error(lineno, "missing predecessor id");
      if (pred >= id)
        parse_error(lineno, "predecessor must precede the task");
      row.preds.push_back(pred);
    }
    rows.push_back(std::move(row));
  }
  if (rows.size() != declared)
    throw util::Error("STG file declares " + std::to_string(declared) +
                      " tasks but defines " + std::to_string(rows.size()));

  // Mean computation cost drives the synthesized comm-cost mean.
  double total = 0;
  for (const auto& r : rows) total += r.cost;
  const double mean_comp =
      rows.empty() ? 0.0 : total / static_cast<double>(rows.size());
  const double mean_comm = mean_comp * options.ccr;
  util::Rng rng(options.seed);

  TaskGraph g;
  for (std::size_t i = 0; i < rows.size(); ++i)
    g.add_node(rows[i].cost, "t" + std::to_string(i));
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (const std::size_t pred : rows[i].preds) {
      double comm = 0.0;
      if (options.ccr > 0.0 && mean_comm >= 0.5) {
        const auto hi = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(2 * mean_comm) - 1);
        comm = static_cast<double>(rng.uniform_i64(1, hi));
      }
      g.add_edge(static_cast<NodeId>(pred), static_cast<NodeId>(i), comm);
    }
  g.finalize();
  return g;
}

TaskGraph read_stg_file(const std::string& path, const StgOptions& options) {
  std::ifstream in(path);
  OPTSCHED_REQUIRE(in.good(), "cannot open STG file: " + path);
  return read_stg(in, options);
}

}  // namespace optsched::dag
