#include "dag/equivalence.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace optsched::dag {

namespace {

// Canonical key for a node: weight plus its (sorted) parent and child
// adjacency including edge costs. CSR adjacency is already sorted by
// neighbour id, so spans can be compared directly.
struct NodeKey {
  double weight;
  std::vector<Adjacent> parents;
  std::vector<Adjacent> children;

  friend bool operator<(const NodeKey& a, const NodeKey& b) {
    auto lex = [](const std::vector<Adjacent>& x,
                  const std::vector<Adjacent>& y) {
      return std::lexicographical_compare(
          x.begin(), x.end(), y.begin(), y.end(),
          [](const Adjacent& p, const Adjacent& q) {
            return p.node != q.node ? p.node < q.node : p.cost < q.cost;
          });
    };
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.parents != b.parents) return lex(a.parents, b.parents);
    if (a.children != b.children) return lex(a.children, b.children);
    return false;
  }
};

}  // namespace

NodeEquivalence::NodeEquivalence(const TaskGraph& graph) {
  OPTSCHED_REQUIRE(graph.finalized(), "NodeEquivalence requires finalize()");
  const std::size_t v = graph.num_nodes();
  rep_.assign(v, kInvalidNode);
  members_.assign(v, {});

  std::map<NodeKey, NodeId> first_seen;
  for (NodeId n = 0; n < v; ++n) {
    NodeKey key;
    key.weight = graph.weight(n);
    const auto ps = graph.parents(n);
    const auto cs = graph.children(n);
    key.parents.assign(ps.begin(), ps.end());
    key.children.assign(cs.begin(), cs.end());
    const auto [it, inserted] = first_seen.try_emplace(std::move(key), n);
    rep_[n] = it->second;
    if (inserted) ++num_classes_;
    members_[it->second].push_back(n);
  }
}

}  // namespace optsched::dag
