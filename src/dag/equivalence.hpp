// Node equivalence classes (paper §3.2, Definition 3).
//
// Two nodes n_i, n_j are equivalent iff
//   (i)   pred(n_i) == pred(n_j) with identical per-edge costs,
//   (ii)  w(n_i) == w(n_j), and
//   (iii) succ(n_i) == succ(n_j) with identical per-edge costs.
//
// Equivalent nodes are interchangeable in any schedule: swapping them is an
// automorphism of the scheduling problem, so when both are unscheduled and
// ready, expanding only one of them preserves optimality. Classes are a
// static property of the DAG and are computed once before the search.
//
// Note the paper's Definition 3 states the set equalities; identical edge
// costs are required for the "same amount of communication" property its
// discussion relies on, so we check costs too (the stricter, sound reading).
#pragma once

#include <vector>

#include "dag/graph.hpp"

namespace optsched::dag {

class NodeEquivalence {
 public:
  /// Compute equivalence classes for a finalized graph.
  explicit NodeEquivalence(const TaskGraph& graph);

  /// Smallest node id in n's class (class representative).
  NodeId representative(NodeId n) const {
    OPTSCHED_ASSERT(n < rep_.size());
    return rep_[n];
  }

  bool equivalent(NodeId a, NodeId b) const {
    return representative(a) == representative(b);
  }

  /// Number of distinct classes.
  std::size_t num_classes() const { return num_classes_; }

  /// All members of n's class, in increasing id order.
  const std::vector<NodeId>& class_of(NodeId n) const {
    OPTSCHED_ASSERT(n < rep_.size());
    return members_[rep_[n]];
  }

 private:
  std::vector<NodeId> rep_;
  std::vector<std::vector<NodeId>> members_;  // indexed by representative id
  std::size_t num_classes_ = 0;
};

}  // namespace optsched::dag
