#include "dag/levels.hpp"

#include <algorithm>

namespace optsched::dag {

Levels compute_levels(const TaskGraph& graph) {
  OPTSCHED_REQUIRE(graph.finalized(), "compute_levels requires finalize()");
  const std::size_t v = graph.num_nodes();
  Levels lv;
  lv.t_level.assign(v, 0.0);
  lv.b_level.assign(v, 0.0);
  lv.static_level.assign(v, 0.0);

  // Forward sweep for t-levels.
  for (const NodeId n : graph.topo_order()) {
    double t = 0.0;
    for (const auto& [parent, cost] : graph.parents(n))
      t = std::max(t, lv.t_level[parent] + graph.weight(parent) + cost);
    lv.t_level[n] = t;
  }

  // Backward sweep for b-levels and static levels.
  const auto topo = graph.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    double b = 0.0, s = 0.0;
    for (const auto& [child, cost] : graph.children(n)) {
      b = std::max(b, cost + lv.b_level[child]);
      s = std::max(s, lv.static_level[child]);
    }
    lv.b_level[n] = graph.weight(n) + b;
    lv.static_level[n] = graph.weight(n) + s;
  }

  lv.cp_length = 0.0;
  for (const NodeId n : graph.entry_nodes())
    lv.cp_length = std::max(lv.cp_length, lv.b_level[n]);
  return lv;
}

Levels update_levels(const TaskGraph& graph, const Levels& previous,
                     const std::vector<bool>& seeds) {
  OPTSCHED_REQUIRE(graph.finalized(), "update_levels requires finalize()");
  const std::size_t v = graph.num_nodes();
  OPTSCHED_REQUIRE(previous.t_level.size() == v &&
                       previous.b_level.size() == v &&
                       previous.static_level.size() == v &&
                       seeds.size() == v,
                   "update_levels: previous/seeds size mismatch");
  Levels lv = previous;

  // Descendant cone: a node's t-level depends only on its parents' t-levels
  // and weights, so the forward sweep needs to revisit exactly the seeds
  // and everything reachable from them.
  std::vector<bool> down(v, false);
  for (const NodeId n : graph.topo_order()) {
    if (!seeds[n] && !down[n]) continue;
    down[n] = true;
    double t = 0.0;
    for (const auto& [parent, cost] : graph.parents(n))
      t = std::max(t, lv.t_level[parent] + graph.weight(parent) + cost);
    lv.t_level[n] = t;
    for (const auto& [child, cost] : graph.children(n)) {
      (void)cost;
      down[child] = true;
    }
  }

  // Ancestor cone for b-/static levels (reverse sweep, same argument).
  std::vector<bool> up(v, false);
  const auto topo = graph.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    if (!seeds[n] && !up[n]) continue;
    up[n] = true;
    double b = 0.0, s = 0.0;
    for (const auto& [child, cost] : graph.children(n)) {
      b = std::max(b, cost + lv.b_level[child]);
      s = std::max(s, lv.static_level[child]);
    }
    lv.b_level[n] = graph.weight(n) + b;
    lv.static_level[n] = graph.weight(n) + s;
    for (const auto& [parent, cost] : graph.parents(n)) {
      (void)cost;
      up[parent] = true;
    }
  }

  lv.cp_length = 0.0;
  for (const NodeId n : graph.entry_nodes())
    lv.cp_length = std::max(lv.cp_length, lv.b_level[n]);
  return lv;
}

std::vector<NodeId> critical_path(const TaskGraph& graph, const Levels& lv) {
  OPTSCHED_REQUIRE(graph.finalized(), "critical_path requires finalize()");
  // Start from the smallest-id entry node whose b-level equals the CP
  // length, then repeatedly follow the child that continues the path.
  NodeId current = kInvalidNode;
  for (const NodeId n : graph.entry_nodes())
    if (lv.b_level[n] == lv.cp_length) {
      current = n;
      break;
    }
  OPTSCHED_ASSERT(current != kInvalidNode);

  std::vector<NodeId> path{current};
  while (!graph.is_exit(current)) {
    NodeId next = kInvalidNode;
    for (const auto& [child, cost] : graph.children(current)) {
      if (lv.b_level[current] ==
          graph.weight(current) + cost + lv.b_level[child]) {
        next = child;
        break;
      }
    }
    OPTSCHED_ASSERT(next != kInvalidNode);
    path.push_back(next);
    current = next;
  }
  return path;
}

}  // namespace optsched::dag
