#include "dag/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace optsched::dag {

namespace {

/// Integer draw from U{1, 2*mean - 1} (mean exactly `mean` for mean >= 1).
double uniform_with_mean(util::Rng& rng, double mean) {
  const auto hi = std::max<std::int64_t>(1, static_cast<std::int64_t>(2 * mean) - 1);
  return static_cast<double>(rng.uniform_i64(1, hi));
}

}  // namespace

TaskGraph random_dag(const RandomDagParams& p) {
  OPTSCHED_REQUIRE(p.num_nodes >= 1, "random_dag requires num_nodes >= 1");
  OPTSCHED_REQUIRE(p.ccr >= 0.0, "random_dag requires ccr >= 0");
  util::Rng rng(p.seed);
  TaskGraph g;
  const std::uint32_t v = p.num_nodes;
  for (std::uint32_t i = 0; i < v; ++i)
    g.add_node(uniform_with_mean(rng, p.mean_comp));

  const double mean_children =
      p.mean_children > 0 ? p.mean_children
                          : std::max(1.0, static_cast<double>(v) / 10.0);
  const double mean_comm = p.mean_comp * p.ccr;

  // Paper §4.1: beginning from the first node, draw the number of children
  // from a uniform distribution with mean v/10 and wire them to randomly
  // chosen later nodes (preserving acyclicity by construction).
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t i = 0; i + 1 < v; ++i) {
    const auto later = v - i - 1;
    auto want = static_cast<std::uint32_t>(uniform_with_mean(rng, mean_children));
    want = std::min(want, later);
    // Sample `want` distinct successors from {i+1, ..., v-1}.
    candidates.clear();
    for (std::uint32_t j = i + 1; j < v; ++j) candidates.push_back(j);
    for (std::uint32_t k = 0; k < want; ++k) {
      const auto pick =
          k + static_cast<std::uint32_t>(
                  rng.uniform_u64(0, candidates.size() - 1 - k));
      std::swap(candidates[k], candidates[pick]);
      const double comm = p.ccr == 0.0 ? 0.0 : uniform_with_mean(rng, mean_comm);
      g.add_edge(i, candidates[k], comm);
    }
  }
  g.finalize();
  return g;
}

TaskGraph gaussian_elimination(std::uint32_t m, double comp, double comm) {
  OPTSCHED_REQUIRE(m >= 2, "gaussian_elimination requires matrix_dim >= 2");
  TaskGraph g;
  // pivot[k]: pivot task of column k (k = 0..m-2);
  // update[k][j]: update of column j in sweep k (j = k+1..m-1).
  std::vector<NodeId> pivot(m - 1);
  std::vector<std::vector<NodeId>> update(m - 1);
  for (std::uint32_t k = 0; k + 1 < m; ++k) {
    pivot[k] = g.add_node(comp, "piv" + std::to_string(k));
    update[k].resize(m);
    for (std::uint32_t j = k + 1; j < m; ++j)
      update[k][j] = g.add_node(
          comp, "upd" + std::to_string(k) + "_" + std::to_string(j));
  }
  for (std::uint32_t k = 0; k + 1 < m; ++k) {
    for (std::uint32_t j = k + 1; j < m; ++j) {
      g.add_edge(pivot[k], update[k][j], comm);   // pivot row broadcast
      if (k + 1 < m - 1 && j >= k + 1) {
        if (j == k + 1) {
          // The next pivot depends on this column's update.
          g.add_edge(update[k][j], pivot[k + 1], comm);
        } else {
          // The next sweep's update of column j depends on this one.
          g.add_edge(update[k][j], update[k + 1][j], comm);
        }
      }
    }
  }
  g.finalize();
  return g;
}

TaskGraph fft(std::uint32_t points, double comp, double comm) {
  OPTSCHED_REQUIRE(points >= 2 && (points & (points - 1)) == 0,
                   "fft requires a power-of-two point count >= 2");
  const auto ranks = static_cast<std::uint32_t>(std::round(std::log2(points)));
  TaskGraph g;
  std::vector<std::vector<NodeId>> stage(ranks + 1,
                                         std::vector<NodeId>(points));
  for (std::uint32_t r = 0; r <= ranks; ++r)
    for (std::uint32_t i = 0; i < points; ++i)
      stage[r][i] = g.add_node(
          comp, "fft" + std::to_string(r) + "_" + std::to_string(i));
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const std::uint32_t span = points >> (r + 1);
    for (std::uint32_t i = 0; i < points; ++i) {
      const std::uint32_t partner = i ^ span;
      g.add_edge(stage[r][i], stage[r + 1][i], comm);
      g.add_edge(stage[r][i], stage[r + 1][partner], comm);
    }
  }
  g.finalize();
  return g;
}

TaskGraph fork_join(std::uint32_t width, double comp, double comm) {
  OPTSCHED_REQUIRE(width >= 1, "fork_join requires width >= 1");
  TaskGraph g;
  const NodeId fork = g.add_node(comp, "fork");
  const NodeId join = g.add_node(comp, "join");
  for (std::uint32_t i = 0; i < width; ++i) {
    const NodeId mid = g.add_node(comp, "work" + std::to_string(i));
    g.add_edge(fork, mid, comm);
    g.add_edge(mid, join, comm);
  }
  g.finalize();
  return g;
}

TaskGraph out_tree(std::uint32_t branching, std::uint32_t depth, double comp,
                   double comm) {
  OPTSCHED_REQUIRE(branching >= 1 && depth >= 1, "out_tree needs b,d >= 1");
  TaskGraph g;
  std::vector<NodeId> level{g.add_node(comp, "root")};
  for (std::uint32_t d = 1; d < depth; ++d) {
    std::vector<NodeId> next;
    for (const NodeId parent : level)
      for (std::uint32_t b = 0; b < branching; ++b) {
        const NodeId child = g.add_node(comp);
        g.add_edge(parent, child, comm);
        next.push_back(child);
      }
    level = std::move(next);
  }
  g.finalize();
  return g;
}

TaskGraph in_tree(std::uint32_t branching, std::uint32_t depth, double comp,
                  double comm) {
  OPTSCHED_REQUIRE(branching >= 1 && depth >= 1, "in_tree needs b,d >= 1");
  // Build the mirror of out_tree: leaves first, edges child -> parent.
  TaskGraph g;
  std::vector<std::vector<NodeId>> levels(depth);
  std::size_t width = 1;
  for (std::uint32_t d = 0; d < depth; ++d) {
    levels[d].resize(width);
    width *= branching;
  }
  // Allocate nodes bottom level last so ids follow a topological order of
  // the reduction (deepest level = entries).
  for (std::uint32_t d = depth; d-- > 0;)
    for (auto& id : levels[d]) id = g.add_node(comp);
  for (std::uint32_t d = 0; d + 1 < depth; ++d)
    for (std::size_t i = 0; i < levels[d + 1].size(); ++i)
      g.add_edge(levels[d + 1][i], levels[d][i / branching], comm);
  g.finalize();
  return g;
}

TaskGraph layered(std::uint32_t layers, std::uint32_t width, double comp,
                  double comm) {
  OPTSCHED_REQUIRE(layers >= 1 && width >= 1, "layered needs l,w >= 1");
  TaskGraph g;
  std::vector<NodeId> prev, cur;
  for (std::uint32_t l = 0; l < layers; ++l) {
    cur.clear();
    for (std::uint32_t i = 0; i < width; ++i)
      cur.push_back(
          g.add_node(comp, "L" + std::to_string(l) + "_" + std::to_string(i)));
    for (const NodeId a : prev)
      for (const NodeId b : cur) g.add_edge(a, b, comm);
    prev = cur;
  }
  g.finalize();
  return g;
}

TaskGraph diamond(std::uint32_t half_depth, double comp, double comm) {
  OPTSCHED_REQUIRE(half_depth >= 1, "diamond needs half_depth >= 1");
  TaskGraph g;
  // Widths 1, 2, ..., half_depth, ..., 2, 1; consecutive rows wired by
  // the standard diamond stencil (each node feeds its one or two
  // neighbours in the next row).
  std::vector<std::vector<NodeId>> rows;
  const std::uint32_t total_rows = 2 * half_depth - 1;
  for (std::uint32_t r = 0; r < total_rows; ++r) {
    const std::uint32_t w =
        r < half_depth ? r + 1 : total_rows - r;
    rows.emplace_back();
    for (std::uint32_t i = 0; i < w; ++i) rows.back().push_back(g.add_node(comp));
  }
  for (std::uint32_t r = 0; r + 1 < total_rows; ++r) {
    const auto& a = rows[r];
    const auto& b = rows[r + 1];
    if (b.size() > a.size()) {
      // expanding: node i feeds i and i+1
      for (std::size_t i = 0; i < a.size(); ++i) {
        g.add_edge(a[i], b[i], comm);
        g.add_edge(a[i], b[i + 1], comm);
      }
    } else {
      // contracting: node i feeds i-1 and i
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) g.add_edge(a[i], b[i - 1], comm);
        if (i < b.size()) g.add_edge(a[i], b[i], comm);
      }
    }
  }
  g.finalize();
  return g;
}

TaskGraph chain(std::uint32_t length, double comp, double comm) {
  OPTSCHED_REQUIRE(length >= 1, "chain needs length >= 1");
  TaskGraph g;
  NodeId prev = g.add_node(comp);
  for (std::uint32_t i = 1; i < length; ++i) {
    const NodeId cur = g.add_node(comp);
    g.add_edge(prev, cur, comm);
    prev = cur;
  }
  g.finalize();
  return g;
}

TaskGraph independent_tasks(std::uint32_t count, double comp) {
  OPTSCHED_REQUIRE(count >= 1, "independent_tasks needs count >= 1");
  TaskGraph g;
  for (std::uint32_t i = 0; i < count; ++i) g.add_node(comp);
  g.finalize();
  return g;
}

}  // namespace optsched::dag
