// Task-graph serialization.
//
// Text format (one directive per line, '#' comments):
//
//   nodes <v>
//   node <id> <weight> [name]
//   edge <src> <dst> <cost>
//
// plus Graphviz DOT export for visual inspection of generated workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/graph.hpp"

namespace optsched::dag {

/// Parse a graph from the text format. Throws util::Error with a
/// line-numbered message on malformed input.
TaskGraph read_text(std::istream& in);
TaskGraph read_text_file(const std::string& path);

/// Serialize a finalized graph to the text format (round-trips exactly for
/// integer-valued costs).
void write_text(const TaskGraph& graph, std::ostream& out);
void write_text_file(const TaskGraph& graph, const std::string& path);

/// Graphviz DOT with node labels "name (w)" and edge labels "c".
void write_dot(const TaskGraph& graph, std::ostream& out);

}  // namespace optsched::dag
