// Task-graph workload generators.
//
// `random_dag` reproduces the paper's §4.1 recipe exactly; the structured
// generators (Gaussian elimination, FFT, fork-join, trees, layered, diamond,
// stencil) model the application DAGs that motivate the scheduling problem
// and are used by the examples and property tests.
#pragma once

#include <cstdint>

#include "dag/graph.hpp"
#include "util/rng.hpp"

namespace optsched::dag {

/// Parameters of the paper's random-graph recipe (§4.1):
///   * computation cost of each node ~ uniform with mean `mean_comp` (40),
///   * number of children of each node ~ uniform with mean v/10 (the graph
///     connectivity grows with its size),
///   * communication cost of each edge ~ uniform with mean `mean_comp*ccr`.
/// Uniform-with-mean-m draws are integers from U{1, 2m-1} (mean exactly m),
/// keeping all costs positive integers as in the paper's examples.
struct RandomDagParams {
  std::uint32_t num_nodes = 20;
  double ccr = 1.0;
  double mean_comp = 40.0;
  /// Mean out-degree; <= 0 selects the paper's v/10 rule.
  double mean_children = -1.0;
  std::uint64_t seed = 1;
};

TaskGraph random_dag(const RandomDagParams& params);

/// Gaussian elimination on an m x m matrix: the classic column-sweep DAG
/// with one pivot task per column and update tasks below it.
/// v = m(m+1)/2 - 1 nodes.
TaskGraph gaussian_elimination(std::uint32_t matrix_dim, double comp = 40.0,
                               double comm = 40.0);

/// Radix-2 FFT butterfly DAG over `points` inputs (power of two):
/// log2(points)+1 ranks of `points` nodes with the butterfly wiring.
TaskGraph fft(std::uint32_t points, double comp = 40.0, double comm = 40.0);

/// Fork-join: entry -> `width` independent middle tasks -> exit.
TaskGraph fork_join(std::uint32_t width, double comp = 40.0,
                    double comm = 40.0);

/// Complete out-tree (root at top) of the given branching factor and depth.
TaskGraph out_tree(std::uint32_t branching, std::uint32_t depth,
                   double comp = 40.0, double comm = 40.0);

/// Complete in-tree (reduction) of the given branching factor and depth.
TaskGraph in_tree(std::uint32_t branching, std::uint32_t depth,
                  double comp = 40.0, double comm = 40.0);

/// `layers` fully-connected consecutive ranks of `width` nodes each
/// (a pipelined stencil / wavefront skeleton).
TaskGraph layered(std::uint32_t layers, std::uint32_t width,
                  double comp = 40.0, double comm = 40.0);

/// Diamond (split/merge) DAG of the given depth: widths 1,2,...,k,...,2,1.
TaskGraph diamond(std::uint32_t half_depth, double comp = 40.0,
                  double comm = 40.0);

/// A chain of `length` tasks (purely sequential program).
TaskGraph chain(std::uint32_t length, double comp = 40.0, double comm = 40.0);

/// `count` independent tasks (embarrassingly parallel program).
TaskGraph independent_tasks(std::uint32_t count, double comp = 40.0);

}  // namespace optsched::dag
