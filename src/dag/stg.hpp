// Reader for the Standard Task Graph Set (STG) format from Kasahara's
// group — whose branch-and-bound work [9] the paper builds on. STG files
// describe precedence-constrained task sets *without* communication costs:
//
//   <number-of-tasks>
//   <task-id> <processing-time> <#predecessors> <pred-1> ... <pred-k>
//   ...
//
// ('#'-prefixed trailer lines are comments/metadata.) Since the paper's
// model is communication-aware, the reader can synthesize edge costs to a
// requested CCR: costs are drawn from U{1, 2*mean-1} with mean
// mean_comp * ccr, deterministically from `seed` — the same recipe as the
// §4.1 random workloads. ccr = 0 reproduces the original STG semantics.
//
// STG's dummy entry/exit nodes (zero-cost first and last tasks) are kept:
// they are honest zero-weight tasks and do not affect schedule length.
#pragma once

#include <iosfwd>
#include <string>

#include "dag/graph.hpp"

namespace optsched::dag {

struct StgOptions {
  double ccr = 0.0;        ///< synthesized communication-to-computation ratio
  std::uint64_t seed = 1;  ///< seed for synthesized edge costs
};

TaskGraph read_stg(std::istream& in, const StgOptions& options = {});
TaskGraph read_stg_file(const std::string& path,
                        const StgOptions& options = {});

}  // namespace optsched::dag
