#include "dag/io.hpp"

#include <fstream>
#include <sstream>

namespace optsched::dag {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& msg) {
  throw util::Error("task graph parse error at line " + std::to_string(line) +
                    ": " + msg);
}

}  // namespace

TaskGraph read_text(std::istream& in) {
  TaskGraph g;
  std::string line;
  std::size_t lineno = 0;
  std::size_t declared_nodes = 0;
  std::size_t created_nodes = 0;
  bool saw_nodes = false;

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line

    if (directive == "nodes") {
      if (saw_nodes) parse_error(lineno, "duplicate 'nodes' directive");
      if (!(ls >> declared_nodes) || declared_nodes == 0)
        parse_error(lineno, "'nodes' expects a positive count");
      saw_nodes = true;
    } else if (directive == "node") {
      if (!saw_nodes) parse_error(lineno, "'node' before 'nodes'");
      std::size_t id;
      double weight;
      if (!(ls >> id >> weight))
        parse_error(lineno, "'node' expects: node <id> <weight> [name]");
      if (id != created_nodes)
        parse_error(lineno, "node ids must be dense and in order (expected " +
                                std::to_string(created_nodes) + ")");
      if (id >= declared_nodes)
        parse_error(lineno, "node id exceeds declared node count");
      std::string name;
      ls >> name;  // optional
      try {
        g.add_node(weight, name);
      } catch (const util::Error& e) {
        parse_error(lineno, e.what());
      }
      ++created_nodes;
    } else if (directive == "edge") {
      std::size_t src, dst;
      double cost;
      if (!(ls >> src >> dst >> cost))
        parse_error(lineno, "'edge' expects: edge <src> <dst> <cost>");
      if (src >= created_nodes || dst >= created_nodes)
        parse_error(lineno, "edge endpoint not yet declared");
      try {
        g.add_edge(static_cast<NodeId>(src), static_cast<NodeId>(dst), cost);
      } catch (const util::Error& e) {
        parse_error(lineno, e.what());
      }
    } else {
      parse_error(lineno, "unknown directive '" + directive + "'");
    }
  }

  if (!saw_nodes) throw util::Error("task graph file has no 'nodes' directive");
  if (created_nodes != declared_nodes)
    throw util::Error("task graph declares " + std::to_string(declared_nodes) +
                      " nodes but defines " + std::to_string(created_nodes));
  try {
    g.finalize();
  } catch (const util::Error& e) {
    throw util::Error(std::string("task graph invalid: ") + e.what());
  }
  return g;
}

TaskGraph read_text_file(const std::string& path) {
  std::ifstream in(path);
  OPTSCHED_REQUIRE(in.good(), "cannot open task graph file: " + path);
  return read_text(in);
}

void write_text(const TaskGraph& g, std::ostream& out) {
  OPTSCHED_REQUIRE(g.finalized(), "write_text requires a finalized graph");
  out << "# optsched task graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges, CCR " << g.ccr() << "\n";
  out << "nodes " << g.num_nodes() << "\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    out << "node " << n << " " << g.weight(n) << " " << g.name(n) << "\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      out << "edge " << n << " " << child << " " << cost << "\n";
}

void write_text_file(const TaskGraph& g, const std::string& path) {
  std::ofstream out(path);
  OPTSCHED_REQUIRE(out.good(), "cannot open output file: " + path);
  write_text(g, out);
}

void write_dot(const TaskGraph& g, std::ostream& out) {
  OPTSCHED_REQUIRE(g.finalized(), "write_dot requires a finalized graph");
  out << "digraph taskgraph {\n  rankdir=TB;\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    out << "  n" << n << " [label=\"" << g.name(n) << " (" << g.weight(n)
        << ")\"];\n";
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      out << "  n" << n << " -> n" << child << " [label=\"" << cost << "\"];\n";
  out << "}\n";
}

}  // namespace optsched::dag
