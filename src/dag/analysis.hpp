// Workload analysis: structural metrics of a task graph that predict
// scheduling behaviour — depth, width, parallelism profile, speedup
// bounds. Used by the examples to characterize workloads and by benches to
// annotate tables; also a convenient sanity layer over generated graphs.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace optsched::dag {

struct GraphStats {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  double total_work = 0.0;
  double total_comm = 0.0;
  double ccr = 0.0;
  double cp_length = 0.0;          ///< critical path (with edge costs)
  double cp_work = 0.0;            ///< critical path, node weights only
  std::size_t depth = 0;           ///< longest chain (node count)
  std::size_t max_width = 0;       ///< widest topological level
  double avg_degree = 0.0;         ///< mean out-degree
  /// Upper bound on achievable speedup: total work / CP node-work
  /// (communication-free, infinitely many processors).
  double max_speedup = 0.0;
  /// Number of tasks per topological level (the parallelism profile).
  std::vector<std::size_t> level_widths;
};

/// Compute all metrics in O(v + e).
GraphStats analyze(const TaskGraph& graph);

/// Multi-line human-readable report.
std::string format_stats(const TaskGraph& graph, const GraphStats& stats);

}  // namespace optsched::dag
