// Bounded worker pool with admission control and a memory governor.
//
// The daemon multiplexes concurrent solve jobs onto a fixed set of
// worker threads. Admission happens at submit() time and never blocks:
//
//  * queue depth cap — when `queue_cap` jobs are already admitted but
//    not yet started, submit() throws ProtocolError(kOverloaded);
//  * memory governor — every job declares the search-memory cap it will
//    run under (its SolveLimits.max_memory_bytes); the pool reserves
//    that amount against `memory_budget` for the job's whole queued +
//    running lifetime. A job whose cap alone exceeds the budget is
//    rejected kMemory; one that does not fit next to the currently
//    reserved jobs is rejected kOverloaded. Since every engine honors
//    its own max_memory_bytes, the sum of in-flight search memory never
//    exceeds the budget — overload produces typed rejects, not OOM.
//
// Jobs are run FIFO. stop() wakes the workers, abandons jobs that never
// started (their abandon() callback replies kShuttingDown), and joins;
// in-flight jobs are expected to finish promptly because the daemon
// cancels their shared CancellationToken first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "util/timer.hpp"

namespace optsched::server {

struct PoolConfig {
  unsigned workers = 2;
  std::size_t queue_cap = 64;      ///< admitted-but-not-started jobs
  std::size_t memory_budget = 0;   ///< governor over per-job caps; 0 = off
};

/// Pool counters for status frames (a subset of protocol::StatusReply).
struct PoolStatus {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  std::size_t memory_reserved = 0;
};

class WorkerPool {
 public:
  struct Job {
    /// Runs on a worker thread; receives the measured admission-to-start
    /// queue wait and returns the encoded reply frame. Must not throw
    /// (the daemon's job wrapper converts exceptions into error frames).
    std::function<std::string(double queue_wait_ms)> run;
    /// Hands the reply frame to the waiting connection. The pool calls
    /// this strictly *after* releasing the job's memory reservation, so
    /// a closed-loop client that submits its next request the moment a
    /// reply lands can never be rejected against its own completed job.
    std::function<void(std::string reply)> deliver;
    /// Called instead of run() when the pool stops before the job
    /// starts; must reply kShuttingDown to the waiting connection.
    std::function<void()> abandon;
    std::size_t memory_bytes = 0;  ///< reservation held while queued+running
    util::Timer queued;            ///< started at admission
  };

  explicit WorkerPool(const PoolConfig& config);
  ~WorkerPool();  ///< stop() + join

  /// Admit and enqueue a job; throws ProtocolError(kOverloaded/kMemory)
  /// when admission control refuses it (see header comment), and
  /// ProtocolError(kShuttingDown) after stop().
  void submit(Job job);

  /// Stop accepting, abandon queued jobs, join workers. Idempotent.
  /// The caller should cancel in-flight work first (shared token).
  void stop();

  PoolStatus status() const;
  const PoolConfig& config() const { return config_; }

 private:
  void worker_loop();

  const PoolConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;
  std::size_t memory_reserved_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace optsched::server
