// Client for the resident solver daemon.
//
// Wraps one connected Unix-domain stream with the protocol's
// command/reply cycle. `solve_raw` returns the wire-level SolveReply;
// `rebuild_result` lifts a wire outcome back into a full
// api::SolveResult over a locally materialized Instance, replaying the
// daemon's placements through sched::Schedule::place — start times
// cross the wire in shortest-exact form, so the rebuilt schedule is
// bit-identical to the one the daemon's engine produced (rebuild
// verifies the recomputed finish times against the wire's as a
// transport-integrity check). This is what lets the CLI's `submit
// --oracle` and the suite runner's --via-socket mode drive the
// differential oracle and the ScheduleValidator against daemon results
// exactly as against in-process ones.
//
// A Client is single-threaded by design (one in-flight command per
// connection); concurrent drivers open one Client per thread, which is
// also how the daemon's worker pool receives concurrent load.
#pragma once

#include <string>

#include "server/protocol.hpp"
#include "util/socket.hpp"
#include "workload/scenario.hpp"

namespace optsched::server {

class Client {
 public:
  /// Connect to a listening daemon; throws util::Error when nothing
  /// listens at `path`.
  explicit Client(const std::string& socket_path);

  /// One solve round-trip. Throws ProtocolError carrying the daemon's
  /// typed code (kOverloaded, kMemory, kBadSpec, ...) on a reject and
  /// util::Error on transport failure.
  SolveReply solve_raw(const SolveCommand& command);

  StatusReply status();

  /// Ask the daemon to drain and exit; returns once acknowledged.
  void shutdown();

 private:
  std::string round_trip(const std::string& frame);

  util::UnixStream stream_;
};

/// Rebuild a full SolveResult from a wire outcome on `instance` (which
/// must be the materialization of outcome.spec and must outlive the
/// returned result — the schedule borrows its graph and machine).
/// Throws util::Error when the placements do not replay consistently
/// (finish-time mismatch) — a transport-integrity violation.
api::SolveResult rebuild_result(const workload::Instance& instance,
                                const SolveReply& reply);

}  // namespace optsched::server
