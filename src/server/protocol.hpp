// Wire protocol for the resident solver daemon (newline-delimited JSON).
//
// Every frame is one JSON object on one line. Client -> daemon frames
// ("commands") carry a `verb`; daemon -> client frames ("replies") carry
// `ok` plus either the verb's payload or a typed error:
//
//   command  {"verb":"solve","spec":"family=random nodes=8 ... seed=1",
//             "engine":"astar","budget_ms":0,"max_expansions":0,
//             "max_memory_mb":0,"no_cache":false}
//            {"verb":"status"}        {"verb":"shutdown"}
//   reply    {"ok":true,"verb":"solve","cache_hit":true,...,
//             "result":{"spec":...,"engine_spec":...,"makespan":...,
//                       "schedule":[[node,proc,start,finish],...],...}}
//            {"ok":false,"error":"overloaded","message":"..."}
//
// Doubles cross the wire in shortest-exact form (util::Json dumps via
// util::format_number), so a schedule read back from a frame is
// bit-identical to the one the solver produced — the property the
// cache-soundness oracle (a hit must bit-agree with a cold solve)
// depends on. The full grammar is documented in DESIGN.md §7.
//
// Malformed input of any kind — unparsable JSON, a non-object frame, a
// missing or mistyped field, an unknown verb — raises ProtocolError with
// a machine-readable ErrorCode; the daemon turns that into an
// {"ok":false,...} reply and keeps serving (tests/server/test_protocol
// fuzzes this path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "util/jsonl.hpp"

namespace optsched::server {

/// Typed protocol/admission error codes carried in `error` fields.
enum class ErrorCode {
  kBadRequest,    ///< unparsable frame or missing/mistyped field
  kUnknownVerb,   ///< verb string the daemon does not implement
  kBadSpec,       ///< scenario spec line that fails ScenarioSpec::parse
  kUnknownEngine, ///< engine name absent from the registry
  kOverloaded,    ///< admission control: queue depth cap reached
  kMemory,        ///< admission control: memory governor refused the job
  kShuttingDown,  ///< daemon is draining; job was not run
  kSolveFailed,   ///< engine threw while solving (details in message)
  kTransport,     ///< socket-level failure (client side only)
};

const char* to_string(ErrorCode code);
/// Inverse of to_string; throws util::Error on an unknown code string.
ErrorCode error_code_from_string(const std::string& text);

/// Thrown by protocol decoding and by the client when a reply carries
/// ok=false; `code` preserves the typed reason across the wire.
class ProtocolError : public util::Error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : util::Error(what), code(code) {}

  ErrorCode code;
};

enum class Verb { kSolve, kStatus, kShutdown };

/// Payload of a solve command. Limits are per job; 0 keeps the daemon's
/// configured defaults. `no_cache` forces a fresh search (the
/// cache-soundness oracle uses it to obtain cold reference solves from
/// the same daemon).
struct SolveCommand {
  std::string spec;            ///< scenario spec line (workload grammar)
  std::string engine = "astar";///< engine spec "name[:k=v...]"
  api::SolveLimits limits{};
  bool no_cache = false;
};

struct Command {
  Verb verb = Verb::kStatus;
  SolveCommand solve{};  ///< meaningful only when verb == kSolve
};

/// Parse one command frame; throws ProtocolError (kBadRequest or
/// kUnknownVerb).
Command parse_command(const std::string& line);
std::string encode_command(const Command& command);

/// One task placement on the wire. `finish` is redundant with
/// (start, proc, task cost) — it is transmitted anyway so the client can
/// verify the rebuilt schedule against the daemon's placements exactly.
struct WirePlacement {
  std::uint32_t node = 0;
  std::uint32_t proc = 0;
  double start = 0.0;
  double finish = 0.0;

  friend bool operator==(const WirePlacement&, const WirePlacement&) =
      default;
};

/// The cacheable payload of one solve: everything the daemon returns
/// about a result, with no per-request fields — a cache hit replays
/// this verbatim.
struct SolveOutcome {
  std::string spec;         ///< canonical scenario line
  std::string engine_spec;  ///< canonical engine spec (cache-key half)
  std::string engine;       ///< engine that produced the schedule
  double makespan = 0.0;
  bool proved_optimal = false;
  double bound_factor = 1.0;
  std::string termination;  ///< core::to_string(Termination)
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  std::size_t peak_memory_bytes = 0;
  std::vector<WirePlacement> schedule;  ///< sorted by node id

  friend bool operator==(const SolveOutcome&, const SolveOutcome&) = default;
};

/// Result-cache counters reported by status frames and the byte-budget
/// governor (server/result_cache.hpp).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;        ///< resident, always <= byte_budget
  std::size_t byte_budget = 0;
};

/// Reply to a solve command.
struct SolveReply {
  SolveOutcome outcome;
  bool cache_hit = false;
  std::uint64_t cache_lookups = 0;  ///< daemon-lifetime, at reply time
  std::size_t cache_bytes = 0;      ///< resident cache bytes at reply time
  double queue_wait_ms = 0.0;       ///< pool admission-to-start wait
  double solve_ms = 0.0;            ///< engine wall time (0 for hits)
};

/// Reply to a status command.
struct StatusReply {
  std::uint64_t accepted = 0;   ///< solve jobs admitted to the pool
  std::uint64_t completed = 0;  ///< jobs finished (ok or solve-failed)
  std::uint64_t rejected = 0;   ///< typed admission rejections
  std::uint64_t cache_hits_served = 0;
  std::size_t queue_depth = 0;  ///< jobs admitted but not yet started
  std::size_t queue_cap = 0;
  std::size_t in_flight = 0;    ///< jobs currently on a worker
  unsigned workers = 0;
  std::size_t memory_reserved = 0;  ///< sum of admitted per-job caps
  std::size_t memory_budget = 0;
  CacheStats cache{};
};

std::string encode_error(ErrorCode code, const std::string& message);
std::string encode_solve_reply(const SolveReply& reply);
std::string encode_status_reply(const StatusReply& reply);
/// Bare {"ok":true,"verb":...} acknowledgment (shutdown).
std::string encode_ack(Verb verb);

/// Parse any reply frame; throws ProtocolError re-materializing the
/// typed error when the frame carries ok=false, and kBadRequest when the
/// frame itself is malformed. Returns the parsed object for the typed
/// readers below.
util::Json parse_reply(const std::string& line);
SolveReply parse_solve_reply(const std::string& line);
StatusReply parse_status_reply(const std::string& line);

}  // namespace optsched::server
