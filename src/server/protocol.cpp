#include "server/protocol.hpp"

#include <cmath>
#include <limits>

namespace optsched::server {

namespace {

using util::Json;

/// Wrap every util::Error from Json decoding into a typed kBadRequest —
/// the daemon replies with it and keeps the connection alive.
template <typename Fn>
auto decoding(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;  // already typed
  } catch (const util::Error& e) {
    throw ProtocolError(ErrorCode::kBadRequest, e.what());
  }
}

Json limits_to_json(const api::SolveLimits& limits) {
  Json out;
  out["budget_ms"] = limits.time_budget_ms;
  out["max_expansions"] = limits.max_expansions;
  out["max_memory_mb"] =
      static_cast<double>(limits.max_memory_bytes) / (1024.0 * 1024.0);
  return out;
}

api::SolveLimits limits_from_json(const Json& frame) {
  api::SolveLimits limits;
  limits.time_budget_ms = frame.get_number("budget_ms", 0.0);
  limits.max_expansions = frame.get_u64("max_expansions", 0);
  const double mb = frame.get_number("max_memory_mb", 0.0);
  OPTSCHED_REQUIRE(mb >= 0, "max_memory_mb must be >= 0");
  limits.max_memory_bytes =
      static_cast<std::size_t>(mb * 1024.0 * 1024.0);
  return limits;
}

Json outcome_to_json(const SolveOutcome& outcome) {
  Json out;
  out["spec"] = outcome.spec;
  out["engine_spec"] = outcome.engine_spec;
  out["engine"] = outcome.engine;
  out["makespan"] = outcome.makespan;
  out["proved_optimal"] = outcome.proved_optimal;
  // JSON has no inf literal and Json::dump rejects non-finite numbers;
  // "no guarantee" travels as an explicit null (decoded back below).
  if (std::isfinite(outcome.bound_factor))
    out["bound_factor"] = outcome.bound_factor;
  else
    out["bound_factor"] = Json();
  out["termination"] = outcome.termination;
  out["expanded"] = outcome.expanded;
  out["generated"] = outcome.generated;
  out["peak_memory_bytes"] = outcome.peak_memory_bytes;
  Json schedule{Json::Array{}};
  for (const auto& p : outcome.schedule)
    schedule.push_back(Json(Json::Array{Json(p.node), Json(p.proc),
                                        Json(p.start), Json(p.finish)}));
  out["schedule"] = std::move(schedule);
  return out;
}

SolveOutcome outcome_from_json(const Json& frame) {
  SolveOutcome outcome;
  outcome.spec = frame.at("spec").as_string();
  outcome.engine_spec = frame.at("engine_spec").as_string();
  outcome.engine = frame.at("engine").as_string();
  outcome.makespan = frame.at("makespan").as_number();
  outcome.proved_optimal = frame.at("proved_optimal").as_bool();
  // bound_factor is null on the wire when non-finite (JSON has no inf).
  outcome.bound_factor = frame.at("bound_factor").is_null()
                             ? std::numeric_limits<double>::infinity()
                             : frame.at("bound_factor").as_number();
  outcome.termination = frame.at("termination").as_string();
  outcome.expanded = frame.get_u64("expanded", 0);
  outcome.generated = frame.get_u64("generated", 0);
  outcome.peak_memory_bytes = frame.get_u64("peak_memory_bytes", 0);
  for (const auto& entry : frame.at("schedule").as_array()) {
    const auto& quad = entry.as_array();
    OPTSCHED_REQUIRE(quad.size() == 4,
                     "schedule entries must be [node,proc,start,finish]");
    WirePlacement p;
    const double node = quad[0].as_number();
    const double proc = quad[1].as_number();
    OPTSCHED_REQUIRE(node >= 0 && node == std::floor(node) && proc >= 0 &&
                         proc == std::floor(proc),
                     "schedule node/proc must be non-negative integers");
    p.node = static_cast<std::uint32_t>(node);
    p.proc = static_cast<std::uint32_t>(proc);
    p.start = quad[2].as_number();
    p.finish = quad[3].as_number();
    outcome.schedule.push_back(p);
  }
  return outcome;
}

Json cache_stats_to_json(const CacheStats& cache) {
  Json out;
  out["lookups"] = cache.lookups;
  out["hits"] = cache.hits;
  out["insertions"] = cache.insertions;
  out["evictions"] = cache.evictions;
  out["entries"] = cache.entries;
  out["bytes"] = cache.bytes;
  out["byte_budget"] = cache.byte_budget;
  return out;
}

CacheStats cache_stats_from_json(const Json& frame) {
  CacheStats cache;
  cache.lookups = frame.get_u64("lookups", 0);
  cache.hits = frame.get_u64("hits", 0);
  cache.insertions = frame.get_u64("insertions", 0);
  cache.evictions = frame.get_u64("evictions", 0);
  cache.entries = frame.get_u64("entries", 0);
  cache.bytes = frame.get_u64("bytes", 0);
  cache.byte_budget = frame.get_u64("byte_budget", 0);
  return cache;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownVerb: return "unknown-verb";
    case ErrorCode::kBadSpec: return "bad-spec";
    case ErrorCode::kUnknownEngine: return "unknown-engine";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kMemory: return "memory";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kSolveFailed: return "solve-failed";
    case ErrorCode::kTransport: return "transport";
  }
  return "?";
}

ErrorCode error_code_from_string(const std::string& text) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnknownVerb, ErrorCode::kBadSpec,
        ErrorCode::kUnknownEngine, ErrorCode::kOverloaded, ErrorCode::kMemory,
        ErrorCode::kShuttingDown, ErrorCode::kSolveFailed,
        ErrorCode::kTransport})
    if (text == to_string(code)) return code;
  throw util::Error("unknown protocol error code '" + text + "'");
}

Command parse_command(const std::string& line) {
  return decoding([&] {
    const Json frame = Json::parse(line);
    OPTSCHED_REQUIRE(frame.is_object(), "command frame must be an object");
    const std::string verb = frame.at("verb").as_string();
    Command command;
    if (verb == "solve") {
      command.verb = Verb::kSolve;
      command.solve.spec = frame.at("spec").as_string();
      command.solve.engine = frame.get_string("engine", "astar");
      command.solve.limits = limits_from_json(frame);
      command.solve.no_cache = frame.get_bool("no_cache", false);
      OPTSCHED_REQUIRE(!command.solve.spec.empty(), "empty scenario spec");
    } else if (verb == "status") {
      command.verb = Verb::kStatus;
    } else if (verb == "shutdown") {
      command.verb = Verb::kShutdown;
    } else {
      throw ProtocolError(ErrorCode::kUnknownVerb,
                          "unknown verb '" + verb + "'");
    }
    return command;
  });
}

std::string encode_command(const Command& command) {
  Json frame;
  switch (command.verb) {
    case Verb::kSolve: {
      frame["verb"] = "solve";
      frame["spec"] = command.solve.spec;
      frame["engine"] = command.solve.engine;
      Json limits = limits_to_json(command.solve.limits);
      for (const auto& [key, value] : limits.as_object()) frame[key] = value;
      frame["no_cache"] = command.solve.no_cache;
      break;
    }
    case Verb::kStatus: frame["verb"] = "status"; break;
    case Verb::kShutdown: frame["verb"] = "shutdown"; break;
  }
  return frame.dump();
}

std::string encode_error(ErrorCode code, const std::string& message) {
  Json frame;
  frame["ok"] = false;
  frame["error"] = to_string(code);
  frame["message"] = message;
  return frame.dump();
}

std::string encode_solve_reply(const SolveReply& reply) {
  Json frame;
  frame["ok"] = true;
  frame["verb"] = "solve";
  frame["cache_hit"] = reply.cache_hit;
  frame["cache_lookups"] = reply.cache_lookups;
  frame["cache_bytes"] = reply.cache_bytes;
  frame["queue_wait_ms"] = reply.queue_wait_ms;
  frame["solve_ms"] = reply.solve_ms;
  frame["result"] = outcome_to_json(reply.outcome);
  return frame.dump();
}

std::string encode_status_reply(const StatusReply& reply) {
  Json frame;
  frame["ok"] = true;
  frame["verb"] = "status";
  frame["accepted"] = reply.accepted;
  frame["completed"] = reply.completed;
  frame["rejected"] = reply.rejected;
  frame["cache_hits_served"] = reply.cache_hits_served;
  frame["queue_depth"] = reply.queue_depth;
  frame["queue_cap"] = reply.queue_cap;
  frame["in_flight"] = reply.in_flight;
  frame["workers"] = reply.workers;
  frame["memory_reserved"] = reply.memory_reserved;
  frame["memory_budget"] = reply.memory_budget;
  frame["cache"] = cache_stats_to_json(reply.cache);
  return frame.dump();
}

std::string encode_ack(Verb verb) {
  Json frame;
  frame["ok"] = true;
  frame["verb"] = verb == Verb::kShutdown  ? "shutdown"
                  : verb == Verb::kStatus ? "status"
                                          : "solve";
  return frame.dump();
}

util::Json parse_reply(const std::string& line) {
  return decoding([&] {
    const Json frame = Json::parse(line);
    OPTSCHED_REQUIRE(frame.is_object(), "reply frame must be an object");
    if (!frame.at("ok").as_bool()) {
      const std::string code_text = frame.get_string("error", "bad-request");
      throw ProtocolError(error_code_from_string(code_text),
                          "daemon rejected request [" + code_text + "]: " +
                              frame.get_string("message", ""));
    }
    return frame;
  });
}

SolveReply parse_solve_reply(const std::string& line) {
  const Json frame = parse_reply(line);
  return decoding([&] {
    OPTSCHED_REQUIRE(frame.get_string("verb", "") == "solve",
                     "expected a solve reply");
    SolveReply reply;
    reply.cache_hit = frame.get_bool("cache_hit", false);
    reply.cache_lookups = frame.get_u64("cache_lookups", 0);
    reply.cache_bytes = frame.get_u64("cache_bytes", 0);
    reply.queue_wait_ms = frame.get_number("queue_wait_ms", 0.0);
    reply.solve_ms = frame.get_number("solve_ms", 0.0);
    reply.outcome = outcome_from_json(frame.at("result"));
    return reply;
  });
}

StatusReply parse_status_reply(const std::string& line) {
  const Json frame = parse_reply(line);
  return decoding([&] {
    OPTSCHED_REQUIRE(frame.get_string("verb", "") == "status",
                     "expected a status reply");
    StatusReply reply;
    reply.accepted = frame.get_u64("accepted", 0);
    reply.completed = frame.get_u64("completed", 0);
    reply.rejected = frame.get_u64("rejected", 0);
    reply.cache_hits_served = frame.get_u64("cache_hits_served", 0);
    reply.queue_depth = frame.get_u64("queue_depth", 0);
    reply.queue_cap = frame.get_u64("queue_cap", 0);
    reply.in_flight = frame.get_u64("in_flight", 0);
    reply.workers = static_cast<unsigned>(frame.get_u64("workers", 0));
    reply.memory_reserved = frame.get_u64("memory_reserved", 0);
    reply.memory_budget = frame.get_u64("memory_budget", 0);
    if (frame.has("cache")) reply.cache = cache_stats_from_json(frame.at("cache"));
    return reply;
  });
}

}  // namespace optsched::server
