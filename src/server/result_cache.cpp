#include "server/result_cache.hpp"

namespace optsched::server {

std::size_t ResultCache::entry_bytes(const std::string& key,
                                     const SolveOutcome& outcome) {
  return sizeof(Entry) + key.size() + outcome.spec.size() +
         outcome.engine_spec.size() + outcome.engine.size() +
         outcome.termination.size() +
         outcome.schedule.size() * sizeof(WirePlacement) +
         // the index entry stores the key a second time
         key.size() + sizeof(void*);
}

std::optional<SolveOutcome> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU, iterators stay
  return it->second->outcome;
}

void ResultCache::insert(const std::string& key,
                         const SolveOutcome& outcome) {
  const std::size_t bytes = entry_bytes(key, outcome);
  const std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_bytes_) return;  // would never fit; refuse
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key => same deterministic outcome, but a
    // re-insert after no_cache reference solves must not duplicate).
    bytes_ -= it->second->bytes;
    it->second->outcome = outcome;
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_until_fits(0);
    return;
  }
  evict_until_fits(bytes);
  lru_.push_front(Entry{key, outcome, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  ++insertions_;
}

void ResultCache::evict_until_fits(std::size_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > budget_bytes_) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats out;
  out.lookups = lookups_;
  out.hits = hits_;
  out.insertions = insertions_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.byte_budget = budget_bytes_;
  return out;
}

}  // namespace optsched::server
