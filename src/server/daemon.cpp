#include "server/daemon.hpp"

#include <future>

#include "api/registry.hpp"
#include "util/timer.hpp"
#include "workload/scenario.hpp"

namespace optsched::server {

namespace {

SolveOutcome make_outcome(const std::string& canonical_spec,
                          const std::string& canonical_engine,
                          const api::SolveResult& result) {
  SolveOutcome outcome;
  outcome.spec = canonical_spec;
  outcome.engine_spec = canonical_engine;
  outcome.engine = result.engine;
  outcome.makespan = result.makespan;
  outcome.proved_optimal = result.proved_optimal;
  outcome.bound_factor = result.bound_factor;
  outcome.termination = core::to_string(result.reason);
  outcome.expanded = result.stats.search.expanded;
  outcome.generated = result.stats.search.generated;
  outcome.peak_memory_bytes = result.stats.search.peak_memory_bytes;
  const auto& schedule = result.schedule;
  const std::size_t nodes = schedule.graph().num_nodes();
  outcome.schedule.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto& placement = schedule.placement(static_cast<dag::NodeId>(n));
    outcome.schedule.push_back(
        {static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(placement.proc),
         placement.start, placement.finish});
  }
  return outcome;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), cache_(config_.cache_bytes) {
  OPTSCHED_REQUIRE(!config_.socket_path.empty(),
                   "daemon needs a socket path");
  OPTSCHED_REQUIRE(
      config_.memory_budget == 0 ||
          config_.default_job_memory <= config_.memory_budget,
      "default per-job memory cap exceeds the daemon memory budget");
}

Daemon::~Daemon() {
  stop();
  if (started_) wait();
}

void Daemon::start() {
  OPTSCHED_REQUIRE(!started_, "daemon already started");
  listener_ = util::UnixListener::bind(config_.socket_path);
  PoolConfig pool_config;
  pool_config.workers = config_.workers;
  pool_config.queue_cap = config_.queue_cap;
  pool_config.memory_budget = config_.memory_budget;
  pool_ = std::make_unique<WorkerPool>(pool_config);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Daemon::run() {
  start();
  wait();
}

void Daemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
}

void Daemon::wait() {
  OPTSCHED_REQUIRE(started_, "daemon not started");
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_cv_.wait(lock, [this] {
      return stop_requested_.load(std::memory_order_acquire);
    });
  }
  // Teardown order: cancel in-flight searches so they return promptly,
  // stop the pool (joins workers, abandons queued jobs with typed
  // replies), then unblock and join every connection reader.
  cancel_.cancel();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_) pool_->stop();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& connection : connections_) connection.stream.shutdown_io();
  }
  for (auto& connection : connections_)
    if (connection.thread.joinable()) connection.thread.join();
  listener_.close();
}

void Daemon::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::optional<util::UnixStream> stream;
    try {
      stream = listener_.accept(/*timeout_ms=*/100);
    } catch (const util::Error&) {
      break;  // listener died (e.g. closed during teardown)
    }
    if (!stream) continue;
    const std::lock_guard<std::mutex> lock(mu_);
    // Reap connections whose reader already finished, so a long-lived
    // daemon does not accumulate one entry per historical client.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->done.load(std::memory_order_acquire)) {
        if (it->thread.joinable()) it->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    Connection& connection = connections_.emplace_back();
    connection.stream = std::move(*stream);
    connection.thread =
        std::thread([this, &connection] { serve_connection(connection); });
  }
}

void Daemon::serve_connection(Connection& connection) {
  std::string line;
  try {
    while (connection.stream.read_line(line, config_.max_frame_bytes)) {
      std::string reply;
      bool shutdown_after_reply = false;
      try {
        const Command command = parse_command(line);
        switch (command.verb) {
          case Verb::kSolve:
            reply = handle_solve(command.solve);
            break;
          case Verb::kStatus:
            reply = encode_status_reply(status());
            break;
          case Verb::kShutdown:
            reply = encode_ack(Verb::kShutdown);
            shutdown_after_reply = true;
            break;
        }
      } catch (const ProtocolError& e) {
        reply = encode_error(e.code, e.what());
      } catch (const util::Error& e) {
        reply = encode_error(ErrorCode::kBadRequest, e.what());
      }
      connection.stream.write_line(reply);
      if (shutdown_after_reply) {
        stop();
        break;
      }
    }
  } catch (const util::Error& e) {
    // Oversized frame, EOF mid-frame, or socket failure: the stream
    // cannot resynchronize, so send a best-effort typed error and drop
    // the connection. The daemon itself keeps serving.
    try {
      connection.stream.write_line(
          encode_error(ErrorCode::kBadRequest, e.what()));
    } catch (const util::Error&) {
    }
  }
  connection.stream.shutdown_io();
  connection.done.store(true, std::memory_order_release);
}

std::string Daemon::handle_solve(const SolveCommand& command) {
  // Canonicalize both cache-key halves up front: the spec line through
  // a ScenarioSpec round-trip (PR 4's bit-identical rematerialization
  // contract), the engine spec through canonical_engine_spec.
  std::string canonical_spec;
  try {
    canonical_spec =
        workload::ScenarioSpec::parse(command.spec).to_string();
  } catch (const util::Error& e) {
    throw ProtocolError(ErrorCode::kBadSpec, e.what());
  }
  const auto [engine_name, engine_options] =
      api::parse_engine_spec(command.engine);
  if (!api::SolverRegistry::instance().contains(engine_name))
    throw ProtocolError(ErrorCode::kUnknownEngine,
                        "unknown engine '" + engine_name + "'");
  const std::string canonical_engine =
      api::canonical_engine_spec(command.engine);
  const std::string key = ResultCache::key(canonical_spec, canonical_engine);

  if (!command.no_cache) {
    if (auto hit = cache_.lookup(key)) {
      cache_hits_served_.fetch_add(1, std::memory_order_relaxed);
      SolveReply reply;
      reply.outcome = std::move(*hit);
      reply.cache_hit = true;
      const CacheStats cache_stats = cache_.stats();
      reply.cache_lookups = cache_stats.lookups;
      reply.cache_bytes = cache_stats.bytes;
      return encode_solve_reply(reply);
    }
  }

  // Effective per-job limits: the command's values, with the daemon's
  // defaults where unset. The memory cap doubles as the governor
  // reservation, so the admitted sum can never exceed the budget.
  api::SolveLimits limits = command.limits;
  if (limits.time_budget_ms <= 0)
    limits.time_budget_ms = config_.default_budget_ms;
  if (limits.max_memory_bytes == 0)
    limits.max_memory_bytes = config_.default_job_memory;

  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();

  WorkerPool::Job job;
  job.memory_bytes = config_.memory_budget ? limits.max_memory_bytes : 0;
  job.abandon = [promise] {
    promise->set_value(encode_error(ErrorCode::kShuttingDown,
                                    "daemon stopped before the job ran"));
  };
  job.deliver = [promise](std::string reply) {
    promise->set_value(std::move(reply));
  };
  job.run = [this, key, canonical_spec, canonical_engine,
             engine_name = engine_name, engine_options = engine_options,
             limits, no_cache = command.no_cache](
                double queue_wait_ms) -> std::string {
    try {
      const util::Timer timer;
      const workload::Instance instance =
          workload::ScenarioSpec::parse(canonical_spec).materialize();
      api::SolveRequest request(instance.graph, instance.machine,
                                instance.comm);
      request.limits = limits;
      request.cancel = cancel_;
      request.options = engine_options;
      const api::SolveResult result = api::solve(engine_name, request);

      SolveOutcome outcome =
          make_outcome(canonical_spec, canonical_engine, result);
      if (!no_cache && cacheable(engine_name, result))
        cache_.insert(key, outcome);

      SolveReply reply;
      reply.outcome = std::move(outcome);
      reply.cache_hit = false;
      const CacheStats cache_stats = cache_.stats();
      reply.cache_lookups = cache_stats.lookups;
      reply.cache_bytes = cache_stats.bytes;
      reply.queue_wait_ms = queue_wait_ms;
      reply.solve_ms = timer.millis();
      return encode_solve_reply(reply);
    } catch (const std::exception& e) {
      return encode_error(ErrorCode::kSolveFailed, e.what());
    }
  };

  pool_->submit(std::move(job));  // throws typed admission rejections
  return future.get();
}

bool Daemon::cacheable(const std::string& engine_name,
                       const api::SolveResult& result) const {
  // Only outcomes that are pure functions of the cache key may enter
  // the cache: a truncated run (budget/cancel) reflects wall-clock
  // timing, and a parallel engine may return a different (equally
  // optimal) schedule per run. Complete deterministic runs are also
  // limit-invariant — any budget large enough to finish yields the
  // same result — which is why limits stay out of the key.
  switch (result.reason) {
    case core::Termination::kOptimal:
    case core::Termination::kBoundedOptimal:
    case core::Termination::kHeuristic:
      break;
    default:
      return false;
  }
  return !api::SolverRegistry::instance().info(engine_name).caps.parallel;
}

StatusReply Daemon::status() const {
  StatusReply reply;
  const PoolStatus pool_status = pool_->status();
  reply.accepted = pool_status.accepted;
  reply.completed = pool_status.completed;
  reply.rejected = pool_status.rejected;
  reply.cache_hits_served =
      cache_hits_served_.load(std::memory_order_relaxed);
  reply.queue_depth = pool_status.queue_depth;
  reply.queue_cap = config_.queue_cap;
  reply.in_flight = pool_status.in_flight;
  reply.workers = std::max(1u, config_.workers);
  reply.memory_reserved = pool_status.memory_reserved;
  reply.memory_budget = config_.memory_budget;
  reply.cache = cache_.stats();
  return reply;
}

}  // namespace optsched::server
