#include "server/client.hpp"

#include <cmath>

#include "util/socket.hpp"
#include "util/strings.hpp"

namespace optsched::server {

namespace {

core::Termination termination_from_string(const std::string& text) {
  for (const core::Termination t :
       {core::Termination::kOptimal, core::Termination::kBoundedOptimal,
        core::Termination::kExpansionLimit, core::Termination::kTimeLimit,
        core::Termination::kMemoryLimit, core::Termination::kCancelled,
        core::Termination::kHeuristic})
    if (text == core::to_string(t)) return t;
  throw util::Error("unknown termination '" + text + "' on the wire");
}

}  // namespace

Client::Client(const std::string& socket_path)
    : stream_(util::UnixStream::connect(socket_path)) {}

std::string Client::round_trip(const std::string& frame) {
  try {
    stream_.write_line(frame);
    std::string reply;
    OPTSCHED_REQUIRE(stream_.read_line(reply),
                     "daemon closed the connection without replying");
    return reply;
  } catch (const ProtocolError&) {
    throw;
  } catch (const util::Error& e) {
    throw ProtocolError(ErrorCode::kTransport, e.what());
  }
}

SolveReply Client::solve_raw(const SolveCommand& command) {
  Command wrapped;
  wrapped.verb = Verb::kSolve;
  wrapped.solve = command;
  return parse_solve_reply(round_trip(encode_command(wrapped)));
}

StatusReply Client::status() {
  Command command;
  command.verb = Verb::kStatus;
  return parse_status_reply(round_trip(encode_command(command)));
}

void Client::shutdown() {
  Command command;
  command.verb = Verb::kShutdown;
  parse_reply(round_trip(encode_command(command)));  // throws on !ok
}

api::SolveResult rebuild_result(const workload::Instance& instance,
                                const SolveReply& reply) {
  const SolveOutcome& outcome = reply.outcome;
  OPTSCHED_REQUIRE(
      outcome.schedule.size() == instance.graph.num_nodes(),
      "wire schedule has " + std::to_string(outcome.schedule.size()) +
          " placements for a " +
          std::to_string(instance.graph.num_nodes()) + "-task instance");

  sched::Schedule schedule(instance.graph, instance.machine, instance.comm);
  for (const auto& placement : outcome.schedule) {
    OPTSCHED_REQUIRE(placement.node < instance.graph.num_nodes() &&
                         placement.proc < instance.machine.num_procs(),
                     "wire placement out of range");
    schedule.place(placement.node, placement.proc, placement.start);
    // Transport integrity: place() recomputes finish from the exec-time
    // model; the start time round-tripped exactly, so any difference
    // means the wire outcome and this instance disagree.
    const auto& placed = schedule.placement(placement.node);
    OPTSCHED_REQUIRE(placed.finish == placement.finish,
                     "wire finish time " +
                         util::format_number(placement.finish) +
                         " does not replay (got " +
                         util::format_number(placed.finish) + ") for node " +
                         std::to_string(placement.node));
  }

  api::SolveResult result(std::move(schedule));
  result.makespan = outcome.makespan;
  result.proved_optimal = outcome.proved_optimal;
  result.bound_factor = outcome.bound_factor;
  result.reason = termination_from_string(outcome.termination);
  result.engine = outcome.engine;
  result.stats.search.expanded = outcome.expanded;
  result.stats.search.generated = outcome.generated;
  result.stats.search.peak_memory_bytes = outcome.peak_memory_bytes;
  result.stats.cache_hit = reply.cache_hit;
  result.stats.cache_lookups = reply.cache_lookups;
  result.stats.cache_bytes = reply.cache_bytes;
  result.stats.queue_wait_ms = reply.queue_wait_ms;
  return result;
}

}  // namespace optsched::server
