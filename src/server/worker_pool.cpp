#include "server/worker_pool.hpp"

#include <algorithm>
#include <utility>

namespace optsched::server {

WorkerPool::WorkerPool(const PoolConfig& config) : config_(config) {
  const unsigned workers = std::max(1u, config_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::submit(Job job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw ProtocolError(ErrorCode::kShuttingDown,
                          "daemon is shutting down");
    if (queue_.size() >= config_.queue_cap) {
      ++rejected_;
      throw ProtocolError(
          ErrorCode::kOverloaded,
          "queue depth cap " + std::to_string(config_.queue_cap) +
              " reached (" + std::to_string(in_flight_) + " in flight)");
    }
    if (config_.memory_budget != 0) {
      if (job.memory_bytes > config_.memory_budget) {
        ++rejected_;
        throw ProtocolError(
            ErrorCode::kMemory,
            "job memory cap " + std::to_string(job.memory_bytes) +
                " exceeds the daemon budget " +
                std::to_string(config_.memory_budget));
      }
      if (memory_reserved_ + job.memory_bytes > config_.memory_budget) {
        ++rejected_;
        throw ProtocolError(
            ErrorCode::kOverloaded,
            "memory governor: " + std::to_string(memory_reserved_) +
                " of " + std::to_string(config_.memory_budget) +
                " bytes already reserved; job needs " +
                std::to_string(job.memory_bytes));
      }
      memory_reserved_ += job.memory_bytes;
    }
    job.queued.reset();
    queue_.push_back(std::move(job));
    ++accepted_;
  }
  cv_.notify_one();
}

void WorkerPool::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // queued jobs are abandoned by stop()
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const double queue_wait_ms = job.queued.millis();
    std::string reply = job.run(queue_wait_ms);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      ++completed_;
      if (config_.memory_budget != 0) memory_reserved_ -= job.memory_bytes;
    }
    // Reservation is released above, before the client can see the
    // reply — at saturation (reserved == budget) the client's follow-up
    // request must not race its own job's bookkeeping.
    job.deliver(std::move(reply));
  }
}

void WorkerPool::stop() {
  std::deque<Job> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty() && queue_.empty()) return;
    stopping_ = true;
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  // Jobs that never started: release their reservations and tell their
  // waiting connections the daemon is draining.
  for (auto& job : orphans) {
    if (job.abandon) job.abandon();
    const std::lock_guard<std::mutex> lock(mu_);
    if (config_.memory_budget != 0) memory_reserved_ -= job.memory_bytes;
  }
}

PoolStatus WorkerPool::status() const {
  const std::lock_guard<std::mutex> lock(mu_);
  PoolStatus out;
  out.accepted = accepted_;
  out.completed = completed_;
  out.rejected = rejected_;
  out.queue_depth = queue_.size();
  out.in_flight = in_flight_;
  out.memory_reserved = memory_reserved_;
  return out;
}

}  // namespace optsched::server
