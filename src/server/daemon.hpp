// The resident solver daemon ("solver-as-a-service").
//
// `optsched_cli serve --socket <path>` constructs a Daemon and calls
// run(): it binds a Unix-domain listener, accepts connections, and
// serves newline-delimited JSON commands (server/protocol.hpp). Each
// connection gets a reader thread; solve commands flow
//
//   parse -> canonicalize (spec + engine) -> result-cache lookup
//         -> [hit]  reply verbatim from the cache
//         -> [miss] admission control -> worker pool -> solve -> reply
//                   (and insert into the cache when deterministic)
//
// Admission control (queue depth cap + per-job and global memory
// governor) turns overload into typed reject frames instead of
// unbounded queues or OOM — see worker_pool.hpp. The cache is keyed on
// (canonical scenario line, canonical engine spec) and only stores
// outcomes that are pure functions of that key: results whose
// termination proves a complete deterministic run (optimal /
// bounded-optimal / heuristic) from engines without the `parallel`
// capability (a parallel engine may legitimately return a *different*
// optimal schedule per run, which would break the bit-agreement
// contract). See DESIGN.md §7 for the full soundness argument.
//
// A shutdown command (or stop() from another thread) drains the daemon:
// the listener closes, in-flight solves are cancelled through the
// shared CancellationToken, queued jobs are abandoned with typed
// kShuttingDown replies, and every connection thread is joined before
// run() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/controls.hpp"
#include "server/result_cache.hpp"
#include "server/worker_pool.hpp"
#include "util/socket.hpp"

namespace optsched::server {

struct DaemonConfig {
  std::string socket_path;
  unsigned workers = 2;
  std::size_t queue_cap = 64;
  /// Result-cache byte budget (0 disables caching).
  std::size_t cache_bytes = 64u << 20;
  /// Global memory governor across in-flight searches (0 disables).
  std::size_t memory_budget = 1u << 30;
  /// Per-job search-memory cap applied when a solve command does not
  /// set max_memory_mb itself; must be <= memory_budget when both on.
  std::size_t default_job_memory = 128u << 20;
  /// Per-job deadline applied when a solve command does not set
  /// budget_ms itself (0 = unlimited).
  double default_budget_ms = 0.0;
  /// Hard per-frame byte cap; longer lines kill the offending
  /// connection with a typed error, never daemon memory.
  std::size_t max_frame_bytes = 1u << 20;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  /// Bind the socket and launch the accept loop + worker pool. Throws
  /// util::Error when the socket cannot be bound (e.g. a live daemon
  /// already listens there). Returns once the daemon is accepting, so
  /// tests and scripts can connect immediately after.
  void start();

  /// Block until a shutdown command arrives (or stop() is called), then
  /// tear everything down: listener, in-flight jobs, connections.
  void wait();

  /// start() + wait() — the CLI entry point.
  void run();

  /// Request shutdown from any thread. Idempotent, non-blocking.
  void stop();

  StatusReply status() const;
  const DaemonConfig& config() const { return config_; }

 private:
  struct Connection {
    util::UnixStream stream;
    std::thread thread;
    /// Set by the reader at exit so the accept loop can reap the entry.
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  /// Handle one solve command; returns the reply frame to write.
  std::string handle_solve(const SolveCommand& command);
  bool cacheable(const std::string& engine_name,
                 const api::SolveResult& result) const;

  const DaemonConfig config_;
  util::UnixListener listener_;
  std::unique_ptr<WorkerPool> pool_;
  ResultCache cache_;
  core::CancellationToken cancel_;  ///< shared by every in-flight solve

  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> cache_hits_served_{0};
  std::thread accept_thread_;
  bool started_ = false;

  std::mutex mu_;  ///< guards connections_ and stop_cv_
  std::condition_variable stop_cv_;
  std::list<Connection> connections_;
};

}  // namespace optsched::server
