// Sound LRU result cache for the solver daemon.
//
// Key: `canonical scenario spec line + '\n' + canonical engine spec`.
// PR 4's ScenarioSpec canonical serialization rematerializes
// bit-identical instances and api::canonical_engine_spec normalizes the
// engine configuration, so equal keys denote bit-identical solves — a
// hit can return the stored SolveOutcome verbatim and still bit-agree
// with a fresh search (the soundness argument is spelled out in
// DESIGN.md §7; the daemon additionally only inserts *deterministic*
// outcomes, see daemon.cpp's cacheable()).
//
// Eviction is strict LRU under a byte budget: each entry is charged its
// key, placement vector, and string payloads; inserting evicts from the
// cold end until the new entry fits, and an entry larger than the whole
// budget is refused outright — resident bytes never exceed the budget.
// All operations are serialized by one mutex (lookups copy out under
// the lock; the daemon's hot path is the search, not the cache).
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "server/protocol.hpp"

namespace optsched::server {

class ResultCache {
 public:
  /// budget_bytes == 0 disables caching entirely (every lookup misses,
  /// every insert is dropped) but still counts lookups.
  explicit ResultCache(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// Compose the cache key from already-canonicalized halves.
  static std::string key(const std::string& canonical_spec,
                         const std::string& canonical_engine_spec) {
    return canonical_spec + '\n' + canonical_engine_spec;
  }

  /// Accounted size of one entry (key + payload strings + placements).
  static std::size_t entry_bytes(const std::string& key,
                                 const SolveOutcome& outcome);

  /// Copy out the entry and mark it most-recently-used; nullopt on miss.
  std::optional<SolveOutcome> lookup(const std::string& key);

  /// Insert (or refresh) an entry, evicting least-recently-used entries
  /// until the budget holds. No-op when the entry alone exceeds the
  /// budget.
  void insert(const std::string& key, const SolveOutcome& outcome);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    SolveOutcome outcome;
    std::size_t bytes = 0;
  };

  void evict_until_fits(std::size_t incoming_bytes);  // mu_ held

  const std::size_t budget_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent, back = eviction victim
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace optsched::server
