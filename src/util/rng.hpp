// Deterministic pseudo-random number generation.
//
// All stochastic parts of optsched (workload generators, tie-breaking) are
// seeded explicitly so every experiment in EXPERIMENTS.md is reproducible
// bit-for-bit. We use splitmix64 for seeding/hash mixing and xoshiro256**
// as the workhorse generator (fast, 256-bit state, passes BigCrush).
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace optsched::util {

/// One round of the splitmix64 mixing function. Also used as the hash mixer
/// for state signatures (core/signature.hpp).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // Expand the 64-bit seed through splitmix64 as recommended upstream.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Uses Lemire's unbiased method.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive (signed convenience).
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
    OPTSCHED_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Derive an independent child generator (for per-thread streams).
  Rng split() noexcept {
    return Rng(splitmix64((*this)()) ^ 0xa0761d6478bd642fULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace optsched::util
