#include "util/rng.hpp"

namespace optsched::util {

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  OPTSCHED_ASSERT(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == ~0ULL) return (*this)();
  const std::uint64_t bound = range + 1;
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

}  // namespace optsched::util
