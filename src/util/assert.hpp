// Lightweight contract checking for optsched.
//
// OPTSCHED_ASSERT is active in all build types: the library's invariants are
// cheap relative to state expansion, and search-code bugs silently produce
// *suboptimal* (not crashing) schedules, which is far worse than an abort.
// Errors caused by caller input throw optsched::util::Error instead.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace optsched::util {

/// Exception thrown for invalid caller-supplied input (malformed graphs,
/// out-of-range parameters, unparsable files). Internal invariant failures
/// use OPTSCHED_ASSERT and abort.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "optsched: assertion failed: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace optsched::util

#define OPTSCHED_ASSERT(expr)                                       \
  do {                                                              \
    if (!(expr)) ::optsched::util::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

/// Throw util::Error with a message when a caller-input check fails.
#define OPTSCHED_REQUIRE(expr, msg)                   \
  do {                                                \
    if (!(expr)) throw ::optsched::util::Error(msg);  \
  } while (0)
