// Open-addressing hash set of 128-bit keys.
//
// The A* CLOSED/SEEN structure stores one 128-bit signature per generated
// state; it is the hottest container in the search after the OPEN heap.
// std::unordered_set's node allocations dominate at millions of inserts, so
// we use a flat power-of-two table with linear probing and a max load factor
// of 0.7. Zero (0,0) is reserved as the empty sentinel; real signatures are
// never (0,0) by construction (core/signature.hpp mixes in a nonzero salt).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace optsched::util {

struct Key128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Key128& a, const Key128& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
  bool is_zero() const noexcept { return lo == 0 && hi == 0; }
};

class FlatSet128 {
 public:
  explicit FlatSet128(std::size_t expected = 16) { rehash(capacity_for(expected)); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Insert key; returns true if newly inserted, false if already present.
  /// Keys equal to the zero sentinel are rejected via assertion.
  bool insert(const Key128& key) {
    OPTSCHED_ASSERT(!key.is_zero());
    if ((size_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    std::size_t i = index_of(key);
    while (true) {
      Key128& slot = slots_[i];
      if (slot.is_zero()) {
        slot = key;
        ++size_;
        return true;
      }
      if (slot == key) return false;
      i = (i + 1) & mask_;
    }
  }

  bool contains(const Key128& key) const noexcept {
    std::size_t i = index_of(key);
    while (true) {
      const Key128& slot = slots_[i];
      if (slot.is_zero()) return false;
      if (slot == key) return true;
      i = (i + 1) & mask_;
    }
  }

  void clear() {
    for (auto& s : slots_) s = Key128{};
    size_ = 0;
  }

  /// Approximate heap footprint in bytes (for memory reporting).
  std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Key128);
  }

 private:
  static std::size_t capacity_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    return cap;
  }

  std::size_t index_of(const Key128& key) const noexcept {
    return static_cast<std::size_t>(splitmix64(key.lo ^ (key.hi * 0x9ddfea08eb382d69ULL))) & mask_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Key128> old = std::move(slots_);
    slots_.assign(new_cap, Key128{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (const auto& k : old)
      if (!k.is_zero()) insert(k);
  }

  std::vector<Key128> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace optsched::util
