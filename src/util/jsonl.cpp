#include "util/jsonl.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace optsched::util {

namespace {

/// Recursive-descent parser over one frame. Error messages carry the
/// byte offset so a malformed frame in a daemon log is diagnosable.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    OPTSCHED_REQUIRE(pos_ == text_.size(),
                     err("trailing content after JSON value"));
    return value;
  }

 private:
  std::string err(const std::string& what) const {
    return "JSON: " + what + " at byte " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    OPTSCHED_REQUIRE(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    OPTSCHED_REQUIRE(peek() == c, err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    OPTSCHED_REQUIRE(depth < Json::kMaxDepth, err("nesting too deep"));
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        OPTSCHED_REQUIRE(consume_literal("true"), err("bad literal"));
        return Json(true);
      case 'f':
        OPTSCHED_REQUIRE(consume_literal("false"), err("bad literal"));
        return Json(false);
      case 'n':
        OPTSCHED_REQUIRE(consume_literal("null"), err("bad literal"));
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_ws();
      OPTSCHED_REQUIRE(peek() == '"', err("expected object key string"));
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(items));
    }
  }

  /// One \uXXXX escape (pos_ just past the 'u'); surrogate pairs are
  /// combined, lone surrogates rejected. Appends UTF-8 to out.
  void parse_unicode_escape(std::string& out) {
    const auto hex4 = [&]() -> unsigned {
      OPTSCHED_REQUIRE(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
      unsigned v = 0;
      const char* begin = text_.data() + pos_;
      const auto [ptr, ec] = std::from_chars(begin, begin + 4, v, 16);
      OPTSCHED_REQUIRE(ec == std::errc() && ptr == begin + 4,
                       err("bad \\u escape"));
      pos_ += 4;
      return v;
    };
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      OPTSCHED_REQUIRE(consume_literal("\\u"), err("lone high surrogate"));
      const unsigned lo = hex4();
      OPTSCHED_REQUIRE(lo >= 0xDC00 && lo <= 0xDFFF,
                       err("bad low surrogate"));
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else {
      OPTSCHED_REQUIRE(!(cp >= 0xDC00 && cp <= 0xDFFF),
                       err("lone low surrogate"));
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      OPTSCHED_REQUIRE(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      OPTSCHED_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                       err("unescaped control character in string"));
      if (c != '\\') {
        out += c;
        continue;
      }
      OPTSCHED_REQUIRE(pos_ < text_.size(), err("truncated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': parse_unicode_escape(out); break;
        default: OPTSCHED_REQUIRE(false, err("bad escape character"));
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    OPTSCHED_REQUIRE(pos_ > digits, err("expected a value"));
    double v = 0.0;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    OPTSCHED_REQUIRE(ec == std::errc() && ptr == end && std::isfinite(v),
                     err("malformed number"));
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool needs_escape(char c) {
  return c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
}

void dump_string(const std::string& text, std::string& out) {
  // Append maximal runs of clean characters in one shot; almost every
  // string the dist protocol and the reports emit is escape-free, so the
  // common cost is a single memcpy instead of length() one-byte appends.
  out += '"';
  std::size_t run = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (!needs_escape(c)) continue;
    out.append(text, run, i - run);
    run = i + 1;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      }
    }
  }
  out.append(text, run, text.size() - run);
  out += '"';
}

/// Lower bound on the dumped size, used to reserve the output buffer once
/// instead of letting it double its way up through reallocations. Cheap by
/// construction: strings count raw length (escapes only grow the result),
/// numbers a typical short rendering.
std::size_t dump_estimate(const Json& v) {
  switch (v.type()) {
    case Json::Type::kNull: return 4;
    case Json::Type::kBool: return 5;
    case Json::Type::kNumber: return 8;
    case Json::Type::kString: return v.as_string().size() + 2;
    case Json::Type::kArray: {
      std::size_t n = 2;
      for (const auto& item : v.as_array()) n += dump_estimate(item) + 1;
      return n;
    }
    case Json::Type::kObject: {
      std::size_t n = 2;
      for (const auto& [key, value] : v.as_object())
        n += key.size() + 4 + dump_estimate(value);
      return n;
    }
  }
  return 0;
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull: out += "null"; return;
    case Json::Type::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Json::Type::kNumber: {
      const double d = v.as_number();
      // JSON has no non-finite literals, and silently coercing to null
      // would round-trip a number into a type the decoder did not ask
      // for. A caller with a legitimate non-finite sentinel (the solve
      // protocol's unbounded bound_factor) must encode the null itself.
      OPTSCHED_REQUIRE(std::isfinite(d),
                       "cannot serialize non-finite number as JSON");
      out += format_number(d);
      return;
    }
    case Json::Type::kString: dump_string(v.as_string(), out); return;
    case Json::Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(value, out);
      }
      out += '}';
      return;
    }
  }
}

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

std::string Json::dump() const {
  std::string out;
  out.reserve(dump_estimate(*this));
  dump_value(*this, out);
  return out;
}

bool Json::as_bool() const {
  OPTSCHED_REQUIRE(type_ == Type::kBool,
                   std::string("JSON: expected bool, got ") +
                       type_name(type_));
  return bool_;
}

double Json::as_number() const {
  OPTSCHED_REQUIRE(type_ == Type::kNumber,
                   std::string("JSON: expected number, got ") +
                       type_name(type_));
  return number_;
}

const std::string& Json::as_string() const {
  OPTSCHED_REQUIRE(type_ == Type::kString,
                   std::string("JSON: expected string, got ") +
                       type_name(type_));
  return string_;
}

const Json::Array& Json::as_array() const {
  OPTSCHED_REQUIRE(type_ == Type::kArray,
                   std::string("JSON: expected array, got ") +
                       type_name(type_));
  return array_;
}

const Json::Object& Json::as_object() const {
  OPTSCHED_REQUIRE(type_ == Type::kObject,
                   std::string("JSON: expected object, got ") +
                       type_name(type_));
  return object_;
}

bool Json::has(const std::string& key) const {
  return as_object().count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  const Object& members = as_object();
  const auto it = members.find(key);
  OPTSCHED_REQUIRE(it != members.end(),
                   "JSON: missing required field '" + key + "'");
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;  // {} literal ergonomics
  OPTSCHED_REQUIRE(type_ == Type::kObject,
                   std::string("JSON: expected object, got ") +
                       type_name(type_));
  return object_[key];
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_number() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

std::uint64_t Json::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  if (!has(key)) return fallback;
  const double v = at(key).as_number();
  OPTSCHED_REQUIRE(v >= 0 && v == std::floor(v),
                   "JSON: field '" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;  // [] literal ergonomics
  OPTSCHED_REQUIRE(type_ == Type::kArray,
                   std::string("JSON: expected array, got ") +
                       type_name(type_));
  array_.push_back(std::move(value));
}

}  // namespace optsched::util
