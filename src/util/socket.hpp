// Unix-domain stream sockets with newline framing.
//
// The serving layer (server/daemon.hpp) speaks one JSON object per line
// over a local socket; this header owns the POSIX plumbing so the
// protocol and daemon code never touch a file descriptor directly:
//
//  * UnixListener — bind/listen/accept with a poll() timeout so the
//    accept loop can observe a stop flag; unlinks the socket path on
//    destruction.
//  * UnixStream — a connected byte stream with buffered read_line()
//    (newline-stripped, with a hard per-frame byte cap, so an
//    adversarial client cannot balloon daemon memory) and write_line()
//    (appends the newline, retries partial writes, never raises
//    SIGPIPE — a vanished peer is a util::Error).
//
// Local (AF_UNIX) only by design: the daemon's trust boundary is the
// socket file's filesystem permissions, and the wire format is
// newline-delimited JSON either way (DESIGN.md §7).
//
// The dist transport (DESIGN.md §11) additionally runs a binary framing
// over the same streams; for that, UnixStream exposes its read-ahead
// buffer (buffered()/consume()/fill_some()) so a caller can implement
// its own frame boundary detection, and gathered writes (write_gather)
// so many small frames cost one syscall.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optsched::util {

/// A connected Unix-domain stream. Move-only (owns the fd).
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(int fd) : fd_(fd) {}
  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;
  ~UnixStream();

  /// Connect to a listening socket at `path`; throws util::Error (with
  /// errno text) when nothing is listening.
  static UnixStream connect(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  /// The underlying descriptor, for callers multiplexing with poll().
  /// Check has_buffered_line() too: a frame already buffered does not
  /// make the fd readable.
  int fd() const { return fd_; }
  void close();

  /// Half-close both directions without releasing the fd: a peer (or a
  /// thread of our own) blocked in read_line() wakes up with EOF. Used
  /// by the daemon to unblock connection reader threads at shutdown.
  /// Safe to call from another thread while read_line() is in flight.
  void shutdown_io();

  /// Write `line` plus a trailing '\n', retrying partial writes.
  /// Throws util::Error when the peer is gone (no SIGPIPE).
  void write_line(std::string_view line);

  /// Write raw bytes exactly as given (no newline appended), retrying
  /// partial writes. Throws util::Error when the peer is gone.
  void write_all(std::string_view bytes);

  /// Gathered write: all of `frames`, in order, in as few sendmsg()
  /// calls as iovec limits allow. Equivalent to write_all on the
  /// concatenation, but without building it. Throws util::Error when
  /// the peer is gone.
  void write_gather(const std::vector<std::string>& frames);

  /// Read one '\n'-terminated frame into `out` (newline stripped).
  /// Returns false on clean EOF at a frame boundary. Throws util::Error
  /// on a socket error, on EOF mid-frame, or when a frame exceeds
  /// `max_bytes` — the caller must treat that as fatal for the
  /// connection (the stream cannot resynchronize mid-line).
  bool read_line(std::string& out, std::size_t max_bytes = 1 << 20);

  /// A complete frame is already buffered: the next read_line() returns
  /// without touching the socket. poll()-driven callers must drain these
  /// before sleeping on the fd, or a buffered frame sits stranded behind
  /// a quiet socket.
  bool has_buffered_line() const {
    return buffer_.find('\n') != std::string::npos;
  }

  // --- raw buffer access for callers implementing their own framing ---
  // (parallel/wire.hpp builds a length-prefixed binary framing on top;
  // read_line() and these primitives share one read-ahead buffer, so
  // JSON lines and binary frames can interleave on the same stream.)

  /// Bytes read ahead of the last consumed frame. A view into internal
  /// storage: invalidated by read_line/consume/fill_some.
  std::string_view buffered() const { return buffer_; }

  /// Discard exactly `n` leading buffered bytes (n <= buffered().size()).
  void consume(std::size_t n);

  /// One recv() into the read-ahead buffer (blocking). Returns false on
  /// EOF, true when at least one byte arrived. Throws util::Error on a
  /// socket error. Callers enforce their own buffered-size caps.
  bool fill_some();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned frame
};

/// A listening Unix-domain socket bound to a filesystem path. Move-only;
/// closes and unlinks the path on destruction.
class UnixListener {
 public:
  UnixListener() = default;
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  /// Bind and listen at `path`, replacing a stale socket file. Throws
  /// util::Error on a path that is too long for sockaddr_un, already in
  /// use by a live listener, or not bindable.
  static UnixListener bind(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void close();  ///< close + unlink (idempotent)

  /// Wait up to `timeout_ms` for a connection; nullopt on timeout so
  /// the accept loop can poll a stop flag. Throws util::Error on a
  /// listener error.
  std::optional<UnixStream> accept(int timeout_ms);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace optsched::util
