#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace optsched::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OPTSCHED_REQUIRE(!header_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  if (!rows_.empty())
    OPTSCHED_ASSERT(rows_.back().size() == header_.size());
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  OPTSCHED_ASSERT(!rows_.empty() && rows_.back().size() < header_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  OPTSCHED_ASSERT(row < rows_.size() && col < rows_[row].size());
  return rows_[row][col];
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  if (!title.empty()) os << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << std::setw(static_cast<int>(width[c])) << v;
      os << (c + 1 == header_.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << r[c] << (c + 1 == r.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds < 1e-3) {
    os << std::setprecision(1) << seconds * 1e6 << "us";
  } else if (seconds < 1.0) {
    os << std::setprecision(2) << seconds * 1e3 << "ms";
  } else {
    os << std::setprecision(2) << seconds << "s";
  }
  return os.str();
}

}  // namespace optsched::util
