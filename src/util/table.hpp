// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every bench prints (a) an aligned human-readable table mirroring the
// paper's layout and (b) optional CSV for plotting. Cells are strings so
// "TIMEOUT" / "—" entries (as in the paper's Table 1) are first-class.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace optsched::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Aligned fixed-width rendering with a separator under the header.
  void print(std::ostream& os, const std::string& title = "") const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric/plain cells).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds adaptively (µs/ms/s) for human-readable bench output.
std::string format_seconds(double seconds);

}  // namespace optsched::util
