// Wall-clock timing helpers for benches and search deadlines.
#pragma once

#include <chrono>
#include <cstdint>

namespace optsched::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// A wall-clock budget; `expired()` is cheap enough to poll per expansion.
class Deadline {
 public:
  /// budget_ms <= 0 means "no deadline".
  explicit Deadline(double budget_ms = 0) : budget_ms_(budget_ms) {}

  bool enabled() const { return budget_ms_ > 0; }
  bool expired() const { return enabled() && timer_.millis() >= budget_ms_; }
  double remaining_ms() const {
    return enabled() ? budget_ms_ - timer_.millis() : 1e300;
  }

 private:
  Timer timer_;
  double budget_ms_;
};

}  // namespace optsched::util
