// Minimal JSON value type for the newline-delimited wire protocol.
//
// The server subsystem speaks one JSON object per line over a local
// socket (server/protocol.hpp); this header provides the value model,
// a strict recursive-descent parser, and a deterministic serializer:
//
//  * objects serialize with sorted keys (std::map), so a frame built
//    from the same fields is byte-identical across runs;
//  * numbers round-trip exactly — dump() uses the shortest
//    representation that parses back to the same double
//    (util::format_number), which is what makes "a cache hit bit-agrees
//    with a cold solve" checkable through the wire;
//  * parse() rejects trailing garbage, unterminated strings, bad
//    escapes, and nesting deeper than kMaxDepth with util::Error, so a
//    malformed or adversarial frame is a typed protocol error, never
//    UB or a crash.
//
// Deliberately not a general-purpose JSON library: no comments, no
// NaN/Infinity literals — dump() throws util::Error on a non-finite
// number (a caller with a legitimate non-finite sentinel encodes null
// explicitly, as the solve protocol does for an unbounded bound_factor)
// — and no duplicate-key detection (last wins).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace optsched::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Nesting depth bound enforced by parse(): protocol frames are ~2
  /// levels deep, so 64 is generous while keeping recursion on hostile
  /// input bounded.
  static constexpr int kMaxDepth = 64;

  Json() = default;  ///< null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parse exactly one JSON value spanning the whole input (leading and
  /// trailing whitespace allowed). Throws util::Error with a byte offset
  /// on any syntax violation.
  static Json parse(std::string_view text);

  /// Deterministic one-line serialization (sorted object keys, exact
  /// number round-trip, no insignificant whitespace).
  std::string dump() const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Checked accessors: throw util::Error on a type mismatch, so protocol
  // decoding code reads fields without pre-checking every type() itself.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // Object helpers (throw util::Error when *this is not an object).
  bool has(const std::string& key) const;
  /// Member lookup; throws util::Error naming the missing key.
  const Json& at(const std::string& key) const;
  /// Member access for building frames; creates the key (and makes a
  /// null value) when absent.
  Json& operator[](const std::string& key);

  // Typed member getters with fallbacks, for optional protocol fields.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Non-negative integer field (rejects negatives and fractions — the
  /// protocol's counters and byte sizes); throws util::Error otherwise.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;

  // Array helper (throws when *this is not an array).
  void push_back(Json value);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace optsched::util
