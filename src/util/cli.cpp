#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace optsched::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

Cli& Cli::describe(const std::string& name, const std::string& help) {
  described_.emplace_back(name, help);
  return *this;
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got '" + it->second +
                "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got '" + it->second +
                "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::maybe_print_help(const std::string& program_summary) const {
  if (!has("help")) return false;
  std::printf("%s\n\n%s\n\nFlags:\n", program_.c_str(),
              program_summary.c_str());
  for (const auto& [name, help] : described_)
    std::printf("  --%-18s %s\n", name.c_str(), help.c_str());
  std::printf("  --%-18s %s\n", "help", "show this message");
  return true;
}

void Cli::validate() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (name == "help") continue;
    bool known = false;
    for (const auto& [dname, dhelp] : described_) {
      (void)dhelp;
      if (dname == name) {
        known = true;
        break;
      }
    }
    OPTSCHED_REQUIRE(known, "unknown flag --" + name);
  }
}

}  // namespace optsched::util
