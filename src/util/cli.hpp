// Minimal command-line flag parser shared by benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags raise util::Error so typos in bench invocations fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optsched::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declare a flag so it shows up in help and passes the unknown-flag check.
  Cli& describe(const std::string& name, const std::string& help);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Print usage built from describe() calls; returns true if --help given.
  bool maybe_print_help(const std::string& program_summary) const;

  /// Throw util::Error if any parsed flag was never describe()d.
  void validate() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> described_;
  std::vector<std::string> positional_;
};

}  // namespace optsched::util
