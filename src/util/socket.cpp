#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/assert.hpp"

namespace optsched::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  OPTSCHED_REQUIRE(!path.empty() && path.size() < sizeof(addr.sun_path),
                   "socket path '" + path + "' is empty or longer than " +
                       std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// connect() with EINTR handled correctly: a connect interrupted by a
/// signal keeps completing in the background (POSIX), so retrying the
/// call can fail spuriously and treating EINTR as failure misreads a
/// live peer as dead. Wait for completion with poll() and read the
/// final status from SO_ERROR. Returns 0 on success; otherwise -1 with
/// errno set to the connect failure.
int connect_fd(int fd, const sockaddr_un& addr) {
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0)
    return 0;
  if (errno != EINTR) return -1;
  pollfd pfd{fd, POLLOUT, 0};
  while (::poll(&pfd, 1, -1) < 0) {
    if (errno != EINTR) return -1;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

}  // namespace

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream::~UnixStream() { close(); }

void UnixStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  if (connect_fd(fd, addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to '" + path + "'");
  }
  return UnixStream(fd);
}

void UnixStream::shutdown_io() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixStream::write_line(std::string_view line) {
  std::string frame(line);
  frame += '\n';
  write_all(frame);
}

void UnixStream::write_all(std::string_view bytes) {
  OPTSCHED_REQUIRE(valid(), "write on a closed stream");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as an EPIPE error
    // on this call, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send()");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void UnixStream::write_gather(const std::vector<std::string>& frames) {
  OPTSCHED_REQUIRE(valid(), "write on a closed stream");
  constexpr std::size_t kMaxIov = 64;  // well under any IOV_MAX
  iovec iov[kMaxIov];
  std::size_t next = 0;      // first frame not yet fully queued
  std::size_t offset = 0;    // bytes of frames[next] already sent
  while (next < frames.size()) {
    std::size_t n_iov = 0;
    for (std::size_t i = next; i < frames.size() && n_iov < kMaxIov; ++i) {
      const std::string& f = frames[i];
      const std::size_t skip = (i == next) ? offset : 0;
      if (f.size() == skip) continue;  // empty (or fully-sent) frame
      iov[n_iov].iov_base = const_cast<char*>(f.data() + skip);
      iov[n_iov].iov_len = f.size() - skip;
      ++n_iov;
    }
    if (n_iov == 0) return;  // all remaining frames were empty
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = n_iov;
    const ssize_t sent = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg()");
    }
    // Advance (next, offset) past `sent` bytes — a short write resumes
    // mid-frame on the next iteration.
    std::size_t remaining = static_cast<std::size_t>(sent);
    while (remaining > 0 && next < frames.size()) {
      const std::size_t left = frames[next].size() - offset;
      if (remaining < left) {
        offset += remaining;
        remaining = 0;
      } else {
        remaining -= left;
        ++next;
        offset = 0;
      }
    }
    // Skip frames that are empty so `offset` always indexes into a
    // nonempty frame on the next pass.
    while (next < frames.size() && frames[next].size() == offset) {
      ++next;
      offset = 0;
    }
  }
}

void UnixStream::consume(std::size_t n) {
  OPTSCHED_REQUIRE(n <= buffer_.size(), "consume past buffered bytes");
  buffer_.erase(0, n);
}

bool UnixStream::fill_some() {
  OPTSCHED_REQUIRE(valid(), "fill_some on a closed stream");
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv()");
    }
    if (n == 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

bool UnixStream::read_line(std::string& out, std::size_t max_bytes) {
  OPTSCHED_REQUIRE(valid(), "read_line on a closed stream");
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      OPTSCHED_REQUIRE(newline <= max_bytes,
                       "frame exceeds " + std::to_string(max_bytes) +
                           " bytes");
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    // The frame cap applies to bytes buffered *before* the newline too,
    // so an endless unterminated line cannot grow the buffer unbounded.
    OPTSCHED_REQUIRE(buffer_.size() <= max_bytes,
                     "frame exceeds " + std::to_string(max_bytes) + " bytes");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv()");
    }
    if (n == 0) {
      OPTSCHED_REQUIRE(buffer_.empty(), "connection closed mid-frame");
      return false;  // clean EOF at a frame boundary
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

UnixListener UnixListener::bind(const std::string& path) {
  const sockaddr_un addr = make_address(path);

  // Replace a stale socket file from a crashed daemon — but only if
  // nothing is accepting on it, so two live daemons cannot fight over
  // one path. The probe uses its own fd: a socket that went through a
  // failed connect() is not reusable for bind(). connect_fd (not bare
  // ::connect) so a signal during the probe cannot misread a live
  // listener as stale and unlink its socket from under it.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe < 0) throw_errno("socket()");
  const bool live = connect_fd(probe, addr) == 0;
  ::close(probe);
  if (live)
    throw Error("socket '" + path + "' already has a live listener");
  ::unlink(path.c_str());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind to '" + path + "'");
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("listen on '" + path + "'");
  }
  UnixListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

std::optional<UnixStream> UnixListener::accept(int timeout_ms) {
  OPTSCHED_REQUIRE(valid(), "accept on a closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll()");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept()");
  }
  return UnixStream(fd);
}

}  // namespace optsched::util
