// Dynamic bitset with a single-word fast path.
//
// Search states track which DAG nodes are scheduled. The paper's workloads
// have v <= 32, so the common case is one 64-bit word held inline; larger
// graphs spill to heap storage transparently. The interface is the small
// subset the search needs (set/test/count/iterate), kept allocation-free on
// the fast path.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace optsched::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  explicit DynamicBitset(std::size_t nbits) : nbits_(nbits) {
    if (nbits_ > 64) words_.assign(word_count(), 0);
  }

  std::size_t size() const noexcept { return nbits_; }

  bool test(std::size_t i) const noexcept {
    OPTSCHED_ASSERT(i < nbits_);
    if (nbits_ <= 64) return (inline_word_ >> i) & 1ULL;
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) noexcept {
    OPTSCHED_ASSERT(i < nbits_);
    if (nbits_ <= 64) {
      inline_word_ |= 1ULL << i;
    } else {
      words_[i >> 6] |= 1ULL << (i & 63);
    }
  }

  void reset(std::size_t i) noexcept {
    OPTSCHED_ASSERT(i < nbits_);
    if (nbits_ <= 64) {
      inline_word_ &= ~(1ULL << i);
    } else {
      words_[i >> 6] &= ~(1ULL << (i & 63));
    }
  }

  void clear() noexcept {
    inline_word_ = 0;
    for (auto& w : words_) w = 0;
  }

  std::size_t count() const noexcept {
    if (nbits_ <= 64) return static_cast<std::size_t>(popcount(inline_word_));
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(popcount(w));
    return total;
  }

  bool all() const noexcept { return count() == nbits_; }
  bool none() const noexcept { return count() == 0; }
  bool any() const noexcept { return !none(); }

  bool operator==(const DynamicBitset& other) const noexcept {
    if (nbits_ != other.nbits_) return false;
    if (nbits_ <= 64) return inline_word_ == other.inline_word_;
    return words_ == other.words_;
  }

  /// Call fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    if (nbits_ <= 64) {
      for_each_in_word(inline_word_, 0, fn);
      return;
    }
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      for_each_in_word(words_[wi], wi << 6, fn);
  }

  /// Order-insensitive 64-bit hash of the contents.
  std::uint64_t hash() const noexcept {
    if (nbits_ <= 64) return splitmix64(inline_word_ ^ nbits_);
    std::uint64_t h = splitmix64(nbits_);
    for (auto w : words_) h = splitmix64(h ^ w);
    return h;
  }

 private:
  static int popcount(std::uint64_t w) noexcept {
    return __builtin_popcountll(w);
  }

  template <typename Fn>
  static void for_each_in_word(std::uint64_t w, std::size_t base, Fn&& fn) {
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      fn(base + static_cast<std::size_t>(bit));
      w &= w - 1;
    }
  }

  std::size_t word_count() const noexcept { return (nbits_ + 63) >> 6; }

  std::size_t nbits_ = 0;
  std::uint64_t inline_word_ = 0;      // used when nbits_ <= 64
  std::vector<std::uint64_t> words_;   // used when nbits_ > 64
};

}  // namespace optsched::util
