// Streaming statistics accumulator (Welford) used by benches to report
// mean/min/max/stddev across repetitions and random seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace optsched::util {

class Accumulator {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace optsched::util
