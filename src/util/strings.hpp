// Small string helpers shared by the spec/corpus parsers and report
// writers. Header-only; kept out of cli.cpp so library code (workload
// scenario parsing) can use them without pulling in the flag parser.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace optsched::util {

/// Strict base-10 uint64 parse: the whole token must be digits (no sign,
/// no trailing garbage — std::stoull would silently accept "1O" as 1).
/// Throws util::Error naming `what` on anything else.
inline std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t v = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, v);
  OPTSCHED_REQUIRE(!text.empty() && ec == std::errc() && ptr == end,
                   "malformed " + std::string(what) + " '" +
                       std::string(text) + "'");
  return v;
}

/// Strip leading and trailing ASCII whitespace.
inline std::string trim(std::string_view text) {
  const auto* ws = " \t\r\n";
  const auto begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  const auto end = text.find_last_not_of(ws);
  return std::string(text.substr(begin, end - begin + 1));
}

/// Split on a delimiter character. Empty input yields an empty vector;
/// otherwise every delimiter produces a field (possibly empty).
inline std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Split on runs of whitespace; never yields empty fields.
inline std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

/// Shortest text that parses back to exactly the same double; integers
/// (sizes, seeds-as-params, cost means) print bare. Used by the scenario
/// serializer and the suite report writers, where the default 6-digit
/// iostream formatting would hide small makespan disagreements.
///
/// Finite values only: a non-finite double throws util::Error instead of
/// silently emitting "inf"/"nan" tokens that no parser on the other side
/// of a wire format accepts (the jsonl parser rejects them by design, and
/// the scenario/corpus readers treat them as malformed). Callers writing
/// human-facing reports where ±inf is a legitimate sentinel (unbounded
/// bound_factor columns) use format_number_lenient instead.
inline std::string format_number(double v) {
  OPTSCHED_REQUIRE(std::isfinite(v),
                   "cannot format non-finite number for a wire format");
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  OPTSCHED_ASSERT(ec == std::errc());
  return std::string(buf, end);
}

/// format_number with ±inf/NaN spelled out ("inf", "-inf", "nan" — the
/// std::to_chars spellings): for CSV columns and log lines read by humans
/// or by name-aware report tooling, never for round-tripped wire formats.
inline std::string format_number_lenient(double v) {
  if (std::isfinite(v)) return format_number(v);
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  OPTSCHED_ASSERT(ec == std::errc());
  return std::string(buf, end);
}

/// Join with a separator: join({"a","b"}, ",") == "a,b".
inline std::string join(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace optsched::util
