// Standalone schedule validator — the differential-oracle backbone.
//
// Unlike sched::validate (which throws on the first problem, the right
// behaviour for library callers asserting an invariant), ScheduleValidator
// collects *every* violation with a typed kind, so the suite runner and the
// workload property tests can report all of what is wrong with a schedule
// in one pass and aggregate violation kinds across a corpus.
//
// Checked invariants, in order:
//  * completeness  — every task placed exactly once (kUnplaced);
//  * timing        — start >= 0 and finite, duration == exec_time on the
//                    assigned processor (kBadTiming);
//  * exclusivity   — no two tasks overlap on any processor (kOverlap);
//  * precedence    — every task starts no earlier than each parent's finish
//                    plus the communication delay of the connecting edge
//                    under the schedule's CommMode (kPrecedence).
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace optsched::sched {

struct Violation {
  enum class Kind {
    kUnplaced,    ///< a task was never placed
    kBadTiming,   ///< negative/non-finite start or duration != exec time
    kOverlap,     ///< two tasks overlap on one processor
    kPrecedence,  ///< a task starts before a parent's data can arrive
  };

  Kind kind;
  dag::NodeId node;     ///< the offending task (the child for kPrecedence)
  std::string message;  ///< human-readable, names the tasks involved
};

const char* to_string(Violation::Kind kind);

class ScheduleValidator {
 public:
  /// `tolerance` absorbs floating-point noise in start/finish arithmetic;
  /// the default matches the historical sched::validate slack.
  explicit ScheduleValidator(double tolerance = 1e-9)
      : tolerance_(tolerance) {}

  /// All violations, in check order (empty == the schedule is feasible).
  std::vector<Violation> check(const Schedule& schedule) const;

  /// True when check() would return no violations.
  bool valid(const Schedule& schedule) const {
    return check(schedule).empty();
  }

  /// One line per violation ("" when feasible) for logs and reports.
  std::string report(const Schedule& schedule) const;

 private:
  double tolerance_;
};

}  // namespace optsched::sched
