// Schedule quality metrics beyond the makespan: processor utilization,
// idle time, communication volume, load balance, and speedup/efficiency
// relative to the serial execution. What a user quoting "optimal" numbers
// in a paper or dashboard actually reports.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace optsched::sched {

struct ScheduleMetrics {
  double makespan = 0.0;
  double total_work = 0.0;           ///< sum of execution times as placed
  double total_idle = 0.0;           ///< sum over procs of (makespan - busy)
  std::uint32_t procs_used = 0;
  /// total busy time / (makespan * num_procs) in [0, 1].
  double utilization = 0.0;
  /// serial time (all work on the fastest processor) / makespan.
  double speedup = 0.0;
  /// speedup / procs_used in (0, 1].
  double efficiency = 0.0;
  /// max proc busy time / mean busy time over used procs (1.0 = balanced).
  double load_imbalance = 1.0;
  /// Sum of edge costs actually paid (endpoints on different processors).
  double comm_volume = 0.0;
  /// Fraction of edges crossing processors.
  double cut_edge_fraction = 0.0;
  /// Per-processor busy time.
  std::vector<double> busy_time;
};

/// Compute metrics for a complete schedule.
ScheduleMetrics compute_metrics(const Schedule& schedule);

/// Multi-line human-readable report.
std::string format_metrics(const ScheduleMetrics& metrics);

}  // namespace optsched::sched
