#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace optsched::sched {

double earliest_start(const Schedule& s, NodeId n, ProcId p, bool insertion) {
  const double dat = s.data_available_time(n, p);
  if (!insertion) return std::max(dat, s.proc_ready_time(p));

  const double exec = s.machine().exec_time(s.graph().weight(n), p);
  const auto& slots = s.proc_slots(p);
  double cursor = dat;
  for (const auto& slot : slots) {
    if (cursor + exec <= slot.start + 1e-12) return cursor;  // fits in gap
    cursor = std::max(cursor, slot.finish);
  }
  return cursor;
}

namespace {

struct ReadyTracker {
  explicit ReadyTracker(const dag::TaskGraph& g) : graph(&g) {
    pending_parents.resize(g.num_nodes());
    for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
      pending_parents[n] = g.num_parents(n);
      if (pending_parents[n] == 0) ready.push_back(n);
    }
  }

  void mark_scheduled(dag::NodeId n) {
    ready.erase(std::find(ready.begin(), ready.end(), n));
    for (const auto& [child, cost] : graph->children(n)) {
      (void)cost;
      if (--pending_parents[child] == 0) ready.push_back(child);
    }
  }

  const dag::TaskGraph* graph;
  std::vector<std::size_t> pending_parents;
  std::vector<dag::NodeId> ready;
};

double priority_value(Priority priority, const dag::Levels& lv, NodeId n) {
  switch (priority) {
    case Priority::kStaticLevel:
      return lv.static_level[n];
    case Priority::kBLevel:
      return lv.b_level[n];
    case Priority::kTLevelPlusBLevel:
      return lv.b_level[n] + lv.t_level[n];
    case Priority::kAlap:
      // ALAP is minimized, so negate to reuse the max-selection loop.
      return -(lv.cp_length - lv.b_level[n]);
  }
  OPTSCHED_ASSERT(false);
  return 0.0;
}

}  // namespace

Schedule list_schedule(const dag::TaskGraph& graph,
                       const machine::Machine& machine,
                       const ListConfig& config) {
  OPTSCHED_REQUIRE(graph.finalized(), "list_schedule requires finalize()");
  const dag::Levels lv = dag::compute_levels(graph);
  Schedule s(graph, machine, config.comm);
  ReadyTracker tracker(graph);

  while (!tracker.ready.empty()) {
    // Highest priority ready node; ties broken by smaller id (deterministic).
    NodeId best = tracker.ready.front();
    double best_pri = priority_value(config.priority, lv, best);
    for (const NodeId n : tracker.ready) {
      const double pri = priority_value(config.priority, lv, n);
      if (pri > best_pri || (pri == best_pri && n < best)) {
        best = n;
        best_pri = pri;
      }
    }

    // Pick the processor by the configured rule.
    ProcId best_proc = 0;
    double best_metric = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    for (ProcId p = 0; p < machine.num_procs(); ++p) {
      const double st = earliest_start(s, best, p, config.insertion);
      const double metric = config.proc_rule == ProcRule::kEarliestStart
                                ? st
                                : st + machine.exec_time(graph.weight(best), p);
      if (metric < best_metric) {
        best_metric = metric;
        best_proc = p;
        best_start = st;
      }
    }

    if (config.insertion)
      s.place(best, best_proc, best_start);
    else
      s.append(best, best_proc);
    tracker.mark_scheduled(best);
  }
  return s;
}

Schedule upper_bound_schedule(const dag::TaskGraph& graph,
                              const machine::Machine& machine, CommMode comm) {
  ListConfig cfg;
  cfg.priority = Priority::kBLevel;
  cfg.proc_rule = ProcRule::kEarliestStart;
  cfg.insertion = false;
  cfg.comm = comm;
  return list_schedule(graph, machine, cfg);
}

Schedule hlfet(const dag::TaskGraph& graph, const machine::Machine& machine,
               CommMode comm) {
  ListConfig cfg;
  cfg.priority = Priority::kStaticLevel;
  cfg.proc_rule = ProcRule::kEarliestStart;
  cfg.comm = comm;
  return list_schedule(graph, machine, cfg);
}

Schedule mcp(const dag::TaskGraph& graph, const machine::Machine& machine,
             CommMode comm) {
  ListConfig cfg;
  cfg.priority = Priority::kAlap;
  cfg.proc_rule = ProcRule::kEarliestFinish;
  cfg.insertion = true;
  cfg.comm = comm;
  return list_schedule(graph, machine, cfg);
}

Schedule etf(const dag::TaskGraph& graph, const machine::Machine& machine,
             CommMode comm) {
  OPTSCHED_REQUIRE(graph.finalized(), "etf requires finalize()");
  const dag::Levels lv = dag::compute_levels(graph);
  Schedule s(graph, machine, comm);
  ReadyTracker tracker(graph);

  while (!tracker.ready.empty()) {
    NodeId best_node = dag::kInvalidNode;
    ProcId best_proc = 0;
    double best_st = std::numeric_limits<double>::infinity();
    double best_sl = -1.0;
    for (const NodeId n : tracker.ready) {
      for (ProcId p = 0; p < machine.num_procs(); ++p) {
        const double st = earliest_start(s, n, p, /*insertion=*/false);
        const bool better =
            st < best_st ||
            (st == best_st && lv.static_level[n] > best_sl) ||
            (st == best_st && lv.static_level[n] == best_sl &&
             n < best_node);
        if (better) {
          best_node = n;
          best_proc = p;
          best_st = st;
          best_sl = lv.static_level[n];
        }
      }
    }
    s.append(best_node, best_proc);
    tracker.mark_scheduled(best_node);
  }
  return s;
}

Schedule repair_schedule(const dag::TaskGraph& graph,
                         const machine::Machine& machine,
                         const Schedule& previous,
                         const std::vector<ProcId>& proc_map,
                         CommMode comm) {
  OPTSCHED_REQUIRE(graph.finalized(), "repair_schedule requires finalize()");
  OPTSCHED_REQUIRE(graph.num_nodes() == previous.graph().num_nodes(),
                   "repair_schedule: node count changed");
  OPTSCHED_REQUIRE(previous.complete(),
                   "repair_schedule needs a complete incumbent");
  OPTSCHED_REQUIRE(proc_map.size() == previous.machine().num_procs(),
                   "repair_schedule: proc_map size mismatch");

  Schedule s(graph, machine, comm);
  ReadyTracker tracker(graph);
  while (!tracker.ready.empty()) {
    // Keep the incumbent's execution order: earliest previous start first
    // (ties by smaller id). The new graph's ready filter re-legalizes the
    // order when the delta added precedence.
    NodeId best = tracker.ready.front();
    double best_start = previous.placement(best).start;
    for (const NodeId n : tracker.ready) {
      const double st = previous.placement(n).start;
      if (st < best_start || (st == best_start && n < best)) {
        best = n;
        best_start = st;
      }
    }

    ProcId target = proc_map[previous.placement(best).proc];
    if (target == machine::kInvalidProc) {
      // Previous processor dropped: re-seat on the earliest-finishing one.
      double best_ft = std::numeric_limits<double>::infinity();
      for (ProcId p = 0; p < machine.num_procs(); ++p) {
        const double ft = earliest_start(s, best, p, /*insertion=*/false) +
                          machine.exec_time(graph.weight(best), p);
        if (ft < best_ft) {
          best_ft = ft;
          target = p;
        }
      }
    }
    s.append(best, target);
    tracker.mark_scheduled(best);
  }
  validate(s);
  return s;
}

}  // namespace optsched::sched
