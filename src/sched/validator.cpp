#include "sched/validator.hpp"

#include <cmath>

namespace optsched::sched {

const char* to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kUnplaced: return "unplaced";
    case Violation::Kind::kBadTiming: return "bad-timing";
    case Violation::Kind::kOverlap: return "overlap";
    case Violation::Kind::kPrecedence: return "precedence";
  }
  return "?";
}

std::vector<Violation> ScheduleValidator::check(const Schedule& s) const {
  const auto& g = s.graph();
  const auto& m = s.machine();
  std::vector<Violation> out;

  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (!s.scheduled(n))
      out.push_back({Violation::Kind::kUnplaced, n,
                     "schedule incomplete: task " + g.name(n) + " unplaced"});

  for (ProcId p = 0; p < m.num_procs(); ++p) {
    const auto& list = s.proc_slots(p);
    for (std::size_t i = 0; i < list.size(); ++i) {
      const auto& slot = list[i];
      if (!(std::isfinite(slot.start) && slot.start >= -tolerance_)) {
        out.push_back({Violation::Kind::kBadTiming, slot.node,
                       "task " + g.name(slot.node) +
                           " has a negative or non-finite start time"});
      }
      const double exec = m.exec_time(g.weight(slot.node), p);
      if (!(std::abs((slot.finish - slot.start) - exec) < tolerance_))
        out.push_back({Violation::Kind::kBadTiming, slot.node,
                       "task " + g.name(slot.node) +
                           " duration does not match its execution time"});
      if (i > 0 && !(list[i - 1].finish <= slot.start + tolerance_))
        out.push_back({Violation::Kind::kOverlap, slot.node,
                       "tasks " + g.name(list[i - 1].node) + " and " +
                           g.name(slot.node) + " overlap on processor " +
                           std::to_string(p)});
    }
  }

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!s.scheduled(n)) continue;
    const Placement& pn = s.placement(n);
    for (const auto& [parent, cost] : g.parents(n)) {
      if (!s.scheduled(parent)) continue;  // already reported as kUnplaced
      const Placement& pp = s.placement(parent);
      const double earliest =
          pp.finish + m.comm_delay(cost, pp.proc, pn.proc, s.comm_mode());
      if (!(pn.start >= earliest - tolerance_))
        out.push_back({Violation::Kind::kPrecedence, n,
                       "precedence violation: " + g.name(n) +
                           " starts before data from " + g.name(parent) +
                           " can arrive"});
    }
  }
  return out;
}

std::string ScheduleValidator::report(const Schedule& s) const {
  std::string out;
  for (const Violation& v : check(s)) {
    out += '[';
    out += to_string(v.kind);
    out += "] ";
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace optsched::sched
