// Schedule serialization: a stable text format for downstream tooling
// (plotters, trace replayers) and for regression-diffing schedules across
// library versions.
//
//   schedule <num_tasks> <num_procs> <makespan>
//   task <node> <proc> <start> <finish> [name]
//
// plus CSV export (one row per task) for spreadsheets/pandas.
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

namespace optsched::sched {

/// Write the stable text format (sorted by node id; round-trips exactly
/// for integer-valued times).
void write_schedule(const Schedule& schedule, std::ostream& out);

/// Parse a schedule produced by write_schedule against the same graph and
/// machine. Throws util::Error with a line-numbered message on malformed
/// input, and validates the result (precedence, overlap) before returning.
Schedule read_schedule(const dag::TaskGraph& graph,
                       const machine::Machine& machine, std::istream& in,
                       CommMode comm = CommMode::kUnitDistance);

/// CSV: node,name,proc,start,finish
void write_schedule_csv(const Schedule& schedule, std::ostream& out);

}  // namespace optsched::sched
