// Polynomial-time list-scheduling heuristics.
//
// These serve three roles in the reproduction:
//  1. the paper's linear-time upper-bound heuristic (§3.2 "Upper-Bound
//     Solution Cost", after Kwok/Ahmad/Gu FAST [14]): schedule a priority
//     list node by node onto the processor allowing the earliest start;
//  2. comparison baselines in examples/benches (HLFET, MCP, ETF flavours);
//  3. the reference point for Aε*'s measured deviation from optimal.
#pragma once

#include "dag/levels.hpp"
#include "sched/schedule.hpp"

namespace optsched::sched {

/// Static node priority used to order the list.
enum class Priority {
  kStaticLevel,      ///< sl(n)                 (HLFET)
  kBLevel,           ///< b-level(n)            (paper's upper-bound list)
  kTLevelPlusBLevel, ///< b-level + t-level     (the search's ready ordering)
  kAlap,             ///< ascending ALAP = CP - b-level   (MCP)
};

/// Processor choice for the selected node.
enum class ProcRule {
  kEarliestStart,   ///< min start time (paper's upper-bound heuristic)
  kEarliestFinish,  ///< min finish time (differs on heterogeneous machines)
};

struct ListConfig {
  Priority priority = Priority::kBLevel;
  ProcRule proc_rule = ProcRule::kEarliestStart;
  bool insertion = false;  ///< allow placing tasks into idle gaps
  CommMode comm = CommMode::kUnitDistance;
};

/// Generic ready-list scheduler: repeatedly pick the ready node with the
/// best priority (ties by smaller id) and place it per the config.
Schedule list_schedule(const dag::TaskGraph& graph,
                       const machine::Machine& machine,
                       const ListConfig& config = {});

/// The paper's upper-bound heuristic: decreasing b-level, earliest start,
/// no insertion. The resulting makespan is the search's pruning bound U.
Schedule upper_bound_schedule(const dag::TaskGraph& graph,
                              const machine::Machine& machine,
                              CommMode comm = CommMode::kUnitDistance);

/// Highest Level First with Estimated Times (static levels, append).
Schedule hlfet(const dag::TaskGraph& graph, const machine::Machine& machine,
               CommMode comm = CommMode::kUnitDistance);

/// Modified Critical Path flavour: ALAP priorities with insertion.
Schedule mcp(const dag::TaskGraph& graph, const machine::Machine& machine,
             CommMode comm = CommMode::kUnitDistance);

/// Earliest Task First: dynamically pick the (ready node, processor) pair
/// with the globally smallest start time; ties by higher static level.
Schedule etf(const dag::TaskGraph& graph, const machine::Machine& machine,
             CommMode comm = CommMode::kUnitDistance);

/// Earliest start time for `n` on `p` honouring `insertion` (idle-gap
/// search). Exposed for tests and for the ETF scheduler.
double earliest_start(const Schedule& schedule, NodeId n, ProcId p,
                      bool insertion);

/// Warm-start incumbent repair: rebuild `previous` (a complete schedule of
/// the pre-delta instance) as a valid schedule of the perturbed instance.
/// Nodes are appended in the previous schedule's start-time order (ties by
/// id), filtered through the new graph's precedence constraints, each onto
/// proc_map[its previous processor] — or, when that processor was dropped,
/// onto the earliest-finishing new processor. `graph` must have the same
/// node count as previous.graph(); `proc_map` maps old ProcIds to new ones
/// (kInvalidProc = dropped). Deterministic, O(v log v + v * p); the result
/// is validated and its makespan is the warm search's instant upper bound.
Schedule repair_schedule(const dag::TaskGraph& graph,
                         const machine::Machine& machine,
                         const Schedule& previous,
                         const std::vector<ProcId>& proc_map,
                         CommMode comm = CommMode::kUnitDistance);

}  // namespace optsched::sched
