#include "sched/schedule_io.hpp"

#include <sstream>

namespace optsched::sched {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& msg) {
  throw util::Error("schedule parse error at line " + std::to_string(line) +
                    ": " + msg);
}

}  // namespace

void write_schedule(const Schedule& s, std::ostream& out) {
  const auto& g = s.graph();
  OPTSCHED_REQUIRE(s.complete(), "write_schedule requires a complete schedule");
  out << "schedule " << g.num_nodes() << " " << s.machine().num_procs() << " "
      << s.makespan() << "\n";
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
    const Placement& p = s.placement(n);
    out << "task " << n << " " << p.proc << " " << p.start << " " << p.finish
        << " " << g.name(n) << "\n";
  }
}

Schedule read_schedule(const dag::TaskGraph& graph,
                       const machine::Machine& machine, std::istream& in,
                       CommMode comm) {
  Schedule s(graph, machine, comm);
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    if (directive == "schedule") {
      std::size_t tasks, procs;
      double makespan;
      if (!(ls >> tasks >> procs >> makespan))
        parse_error(lineno, "'schedule' expects: tasks procs makespan");
      if (tasks != graph.num_nodes())
        parse_error(lineno, "task count does not match the graph");
      if (procs != machine.num_procs())
        parse_error(lineno, "processor count does not match the machine");
      saw_header = true;
    } else if (directive == "task") {
      if (!saw_header) parse_error(lineno, "'task' before 'schedule'");
      std::size_t node, proc;
      double start, finish;
      if (!(ls >> node >> proc >> start >> finish))
        parse_error(lineno, "'task' expects: node proc start finish [name]");
      if (node >= graph.num_nodes())
        parse_error(lineno, "node id out of range");
      if (proc >= machine.num_procs())
        parse_error(lineno, "processor id out of range");
      if (s.scheduled(static_cast<dag::NodeId>(node)))
        parse_error(lineno, "task placed twice");
      s.place(static_cast<dag::NodeId>(node),
              static_cast<machine::ProcId>(proc), start);
      const double actual = s.placement(static_cast<dag::NodeId>(node)).finish;
      if (std::abs(actual - finish) > 1e-6)
        parse_error(lineno, "finish time inconsistent with execution time");
    } else {
      parse_error(lineno, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) throw util::Error("schedule file has no header");
  validate(s);
  return s;
}

void write_schedule_csv(const Schedule& s, std::ostream& out) {
  const auto& g = s.graph();
  out << "node,name,proc,start,finish\n";
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
    const Placement& p = s.placement(n);
    out << n << "," << g.name(n) << "," << p.proc << "," << p.start << ","
        << p.finish << "\n";
  }
}

}  // namespace optsched::sched
