// Schedule container and construction semantics (paper §2).
//
// A Schedule maps every task to a (processor, start time, finish time)
// placement. It can be built two ways:
//
//  * `append(node, proc)` — the search/list-scheduler semantics: the node is
//    placed after the last task already on `proc`, starting at
//    max(processor ready time, data-available time). Every feasible schedule
//    normalizes to this form without increasing its length, which is why
//    searching append-order/assignment pairs is complete (see DESIGN.md §1).
//  * `place(node, proc, start)` — raw placement for insertion-based
//    heuristics (e.g. MCP); validity is checked by sched::validate.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "machine/machine.hpp"

namespace optsched::sched {

using dag::NodeId;
using machine::CommMode;
using machine::ProcId;

struct Placement {
  ProcId proc = machine::kInvalidProc;
  double start = -1.0;
  double finish = -1.0;

  bool assigned() const noexcept { return proc != machine::kInvalidProc; }
};

/// One scheduled task on a processor's timeline.
struct Slot {
  NodeId node;
  double start;
  double finish;
};

class Schedule {
 public:
  Schedule(const dag::TaskGraph& graph, const machine::Machine& machine,
           CommMode comm = CommMode::kUnitDistance);

  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const machine::Machine& machine() const noexcept { return *machine_; }
  CommMode comm_mode() const noexcept { return comm_; }

  bool scheduled(NodeId n) const { return placements_[n].assigned(); }
  const Placement& placement(NodeId n) const { return placements_[n]; }

  std::size_t num_scheduled() const noexcept { return num_scheduled_; }
  bool complete() const noexcept {
    return num_scheduled_ == graph_->num_nodes();
  }

  /// Finish time of the last task currently on `p` (0 if none).
  double proc_ready_time(ProcId p) const { return proc_ready_[p]; }

  /// Earliest time all of n's input data can be available on processor `p`
  /// (parents must all be scheduled).
  double data_available_time(NodeId n, ProcId p) const;

  /// Append `n` to processor `p` (see class comment); returns finish time.
  /// All parents of n must already be scheduled.
  double append(NodeId n, ProcId p);

  /// Raw placement at an explicit start time (for insertion heuristics).
  /// Keeps per-processor slot lists sorted by start time.
  void place(NodeId n, ProcId p, double start);

  /// max finish time over scheduled tasks (the schedule length once
  /// complete; the paper's g(s) for partial schedules).
  double makespan() const noexcept { return makespan_; }

  /// Tasks on processor `p` ordered by start time.
  const std::vector<Slot>& proc_slots(ProcId p) const { return slots_[p]; }

  /// Processors with at least one task.
  std::uint32_t procs_used() const;

 private:
  const dag::TaskGraph* graph_;
  const machine::Machine* machine_;
  CommMode comm_;
  std::vector<Placement> placements_;
  std::vector<std::vector<Slot>> slots_;
  std::vector<double> proc_ready_;
  std::size_t num_scheduled_ = 0;
  double makespan_ = 0.0;
};

/// Validate a (complete) schedule: every task placed exactly once, no
/// overlap on any processor, and every task starts no earlier than each
/// parent's finish plus the communication delay. Throws util::Error with a
/// precise message on the first violation. Implemented on top of
/// ScheduleValidator (sched/validator.hpp), which reports *all* violations
/// with typed kinds for the suite runner and property tests.
void validate(const Schedule& schedule);

/// ASCII Gantt chart (one row per processor) for reports and examples.
std::string render_gantt(const Schedule& schedule, std::size_t width = 72);

}  // namespace optsched::sched
