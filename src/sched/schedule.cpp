#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sched/validator.hpp"

namespace optsched::sched {

Schedule::Schedule(const dag::TaskGraph& graph, const machine::Machine& machine,
                   CommMode comm)
    : graph_(&graph), machine_(&machine), comm_(comm) {
  OPTSCHED_REQUIRE(graph.finalized(), "Schedule requires a finalized graph");
  placements_.assign(graph.num_nodes(), Placement{});
  slots_.assign(machine.num_procs(), {});
  proc_ready_.assign(machine.num_procs(), 0.0);
}

double Schedule::data_available_time(NodeId n, ProcId p) const {
  OPTSCHED_ASSERT(n < graph_->num_nodes() && p < machine_->num_procs());
  double dat = 0.0;
  for (const auto& [parent, cost] : graph_->parents(n)) {
    const Placement& pp = placements_[parent];
    OPTSCHED_ASSERT(pp.assigned());
    dat = std::max(dat, pp.finish +
                            machine_->comm_delay(cost, pp.proc, p, comm_));
  }
  return dat;
}

double Schedule::append(NodeId n, ProcId p) {
  OPTSCHED_ASSERT(n < graph_->num_nodes() && p < machine_->num_procs());
  OPTSCHED_ASSERT(!placements_[n].assigned());
  const double start = std::max(proc_ready_[p], data_available_time(n, p));
  const double finish = start + machine_->exec_time(graph_->weight(n), p);
  placements_[n] = {p, start, finish};
  slots_[p].push_back({n, start, finish});
  proc_ready_[p] = finish;
  makespan_ = std::max(makespan_, finish);
  ++num_scheduled_;
  return finish;
}

void Schedule::place(NodeId n, ProcId p, double start) {
  OPTSCHED_ASSERT(n < graph_->num_nodes() && p < machine_->num_procs());
  OPTSCHED_ASSERT(!placements_[n].assigned());
  OPTSCHED_ASSERT(std::isfinite(start) && start >= 0.0);
  const double finish = start + machine_->exec_time(graph_->weight(n), p);
  placements_[n] = {p, start, finish};
  auto& list = slots_[p];
  const Slot slot{n, start, finish};
  list.insert(std::upper_bound(list.begin(), list.end(), slot,
                               [](const Slot& a, const Slot& b) {
                                 return a.start < b.start;
                               }),
              slot);
  proc_ready_[p] = std::max(proc_ready_[p], finish);
  makespan_ = std::max(makespan_, finish);
  ++num_scheduled_;
}

std::uint32_t Schedule::procs_used() const {
  std::uint32_t used = 0;
  for (const auto& list : slots_)
    if (!list.empty()) ++used;
  return used;
}

void validate(const Schedule& s) {
  const auto violations = ScheduleValidator().check(s);
  if (!violations.empty()) throw util::Error(violations.front().message);
}

std::string render_gantt(const Schedule& s, std::size_t width) {
  const auto& g = s.graph();
  const auto& m = s.machine();
  const double span = std::max(s.makespan(), 1e-9);
  const double scale = static_cast<double>(width) / span;

  std::ostringstream out;
  out << "makespan = " << s.makespan() << "\n";
  for (ProcId p = 0; p < m.num_procs(); ++p) {
    out << "PE" << p << " |";
    std::string row(width, ' ');
    for (const auto& slot : s.proc_slots(p)) {
      auto a = static_cast<std::size_t>(slot.start * scale);
      auto b = static_cast<std::size_t>(slot.finish * scale);
      a = std::min(a, width - 1);
      b = std::min(std::max(b, a + 1), width);
      const std::string& label = g.name(slot.node);
      for (std::size_t i = a; i < b; ++i) {
        const std::size_t k = i - a;
        row[i] = k < label.size() ? label[k] : '=';
      }
    }
    out << row << "|\n";
  }
  return out.str();
}

}  // namespace optsched::sched
