#include "sched/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace optsched::sched {

ScheduleMetrics compute_metrics(const Schedule& s) {
  OPTSCHED_REQUIRE(s.complete(), "compute_metrics requires a complete schedule");
  const auto& g = s.graph();
  const auto& m = s.machine();

  ScheduleMetrics out;
  out.makespan = s.makespan();
  out.busy_time.assign(m.num_procs(), 0.0);

  for (machine::ProcId p = 0; p < m.num_procs(); ++p) {
    for (const Slot& slot : s.proc_slots(p))
      out.busy_time[p] += slot.finish - slot.start;
    out.total_work += out.busy_time[p];
    if (!s.proc_slots(p).empty()) ++out.procs_used;
  }
  out.total_idle =
      out.makespan * static_cast<double>(m.num_procs()) - out.total_work;
  out.utilization =
      out.makespan > 0
          ? out.total_work / (out.makespan * static_cast<double>(m.num_procs()))
          : 0.0;

  // Serial reference: all work on the fastest processor.
  const double serial = g.total_work() / m.max_speed();
  out.speedup = out.makespan > 0 ? serial / out.makespan : 0.0;
  out.efficiency =
      out.procs_used > 0 ? out.speedup / static_cast<double>(out.procs_used)
                         : 0.0;

  double max_busy = 0.0, sum_busy = 0.0;
  for (machine::ProcId p = 0; p < m.num_procs(); ++p)
    if (!s.proc_slots(p).empty()) {
      max_busy = std::max(max_busy, out.busy_time[p]);
      sum_busy += out.busy_time[p];
    }
  const double mean_busy =
      out.procs_used ? sum_busy / static_cast<double>(out.procs_used) : 0.0;
  out.load_imbalance = mean_busy > 0 ? max_busy / mean_busy : 1.0;

  std::size_t cut = 0;
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n))
      if (s.placement(n).proc != s.placement(child).proc) {
        out.comm_volume += cost;
        ++cut;
      }
  out.cut_edge_fraction =
      g.num_edges() ? static_cast<double>(cut) /
                          static_cast<double>(g.num_edges())
                    : 0.0;
  return out;
}

std::string format_metrics(const ScheduleMetrics& x) {
  std::ostringstream out;
  out << "makespan " << x.makespan << ", speedup " << x.speedup
      << " on " << x.procs_used << " procs (efficiency " << x.efficiency
      << ")\n"
      << "utilization " << x.utilization << ", idle " << x.total_idle
      << ", load imbalance " << x.load_imbalance << "\n"
      << "communication: volume " << x.comm_volume << ", cut edges "
      << x.cut_edge_fraction * 100 << "%\n";
  return out.str();
}

}  // namespace optsched::sched
