#include "core/astar.hpp"

#include <algorithm>
#include <set>

#include "core/open_list.hpp"
#include "util/timer.hpp"

namespace optsched::core {

namespace {

State make_root() {
  State root;
  root.sig = root_signature();
  root.parent = kNoParent;
  root.depth = 0;
  root.g = 0.0;
  root.h = 0.0;
  return root;
}

/// Shared bookkeeping for both selection disciplines (plain A* and FOCAL).
struct SearchDriver {
  explicit SearchDriver(const SearchProblem& p, const SearchConfig& c)
      : problem(p),
        config(c),
        expander(p, c),
        seen(1 << 12),
        incumbent_len(p.upper_bound()) {}

  const SearchProblem& problem;
  SearchConfig config;
  Expander expander;
  StateArena arena;
  util::FlatSet128 seen;
  double incumbent_len;                  ///< best complete schedule known
  std::optional<StateIndex> incumbent;   ///< goal state achieving it (if any)
  util::Timer timer;

  bool is_goal(const State& s) const { return s.depth == problem.num_nodes(); }

  /// Threshold passed to the expander's upper-bound pruning.
  double prune_bound() const {
    if (!config.prune.upper_bound) return 0.0;  // unused
    return config.prune.strict_upper_bound ? problem.upper_bound()
                                           : incumbent_len;
  }

  /// Record a goal state if it beats the incumbent.
  void offer_goal(StateIndex idx) {
    const State& s = arena[idx];
    OPTSCHED_ASSERT(is_goal(s));
    if (s.g < incumbent_len) {
      incumbent_len = s.g;
      incumbent = idx;
    } else if (!incumbent) {
      // Equal to the heuristic bound: prefer the search's schedule so the
      // caller sees a goal found by A* (matters only for reporting).
      if (s.g <= incumbent_len) incumbent = idx;
    }
  }

  SearchResult finish(Termination reason, bool proved, double bound_factor,
                      std::size_t max_open, std::size_t open_mem) {
    SearchResult result{
        incumbent ? reconstruct_schedule(problem, arena, *incumbent)
                  : sched::Schedule(problem.upper_bound_schedule()),
        0.0, proved, bound_factor, reason, {}};
    result.makespan = result.schedule.makespan();
    result.stats.absorb(expander.stats());
    result.stats.max_open_size = max_open;
    result.stats.peak_memory_bytes =
        arena.memory_bytes() + seen.memory_bytes() + open_mem;
    result.stats.elapsed_seconds = timer.seconds();
    sched::validate(result.schedule);
    return result;
  }

  std::optional<Termination> hit_limit(std::size_t open_mem) const {
    if (config.controls.cancel.cancelled()) return Termination::kCancelled;
    if (config.max_expansions &&
        expander.stats().expanded >= config.max_expansions)
      return Termination::kExpansionLimit;
    if (config.time_budget_ms > 0 && timer.millis() >= config.time_budget_ms)
      return Termination::kTimeLimit;
    if (config.max_memory_bytes &&
        arena.memory_bytes() + seen.memory_bytes() + open_mem >=
            config.max_memory_bytes)
      return Termination::kMemoryLimit;
    return std::nullopt;
  }

  /// Fire the progress callback every `progress_every` expansions.
  void maybe_progress(double frontier_min_f) {
    const std::uint64_t expanded = expander.stats().expanded;
    if (!progress_gate_.open(expanded)) return;
    config.controls.progress(
        {expanded, frontier_min_f, incumbent_len, timer.seconds()});
  }

  ProgressGate progress_gate_{config.controls};
};

SearchResult run_astar(SearchDriver& d) {
  OpenList open;
  const StateIndex root = d.arena.add(make_root());
  d.seen.insert(d.arena[root].sig);
  open.push({d.arena[root].f(), 0.0, root});

  std::size_t max_open = 1;
  const double bound_factor = std::max(1.0, d.config.h_weight);
  const bool exact = d.config.h_weight == 1.0;

  while (!open.empty()) {
    if (const auto limit = d.hit_limit(open.memory_bytes()))
      return d.finish(*limit, false, bound_factor, max_open,
                      open.memory_bytes());

    const OpenEntry e = open.pop();
    d.maybe_progress(e.f);

    // Incumbent domination: e.f is the minimum over OPEN, so nothing left
    // can strictly beat the incumbent — it is optimal (for exact search).
    // Paper-fidelity mode keeps the f == U frontier alive so the goal is
    // popped explicitly, as in the Figure 3 trace.
    const bool dominated = d.config.prune.strict_upper_bound
                               ? e.f > d.incumbent_len + 1e-9
                               : e.f >= d.incumbent_len - 1e-9;
    if (exact && dominated) break;

    const State& s = d.arena[e.index];
    if (d.is_goal(s)) {
      // Goal popped with minimum f: optimal (admissible h, exact dedup).
      d.offer_goal(e.index);
      return d.finish(
          exact ? Termination::kOptimal : Termination::kBoundedOptimal, true,
          exact ? 1.0 : bound_factor, max_open, open.memory_bytes());
    }

    d.expander.expand(d.arena, d.seen, e.index, d.prune_bound(),
                      [&](StateIndex idx, const State& child) {
                        if (d.config.incumbent_updates &&
                            d.is_goal(child)) {
                          d.offer_goal(idx);
                          return;  // complete: nothing to expand
                        }
                        open.push({child.f(), child.g, idx});
                      });
    max_open = std::max(max_open, open.size());
  }

  // OPEN exhausted or dominated: every complete schedule not examined was
  // proven >= the incumbent, so the incumbent is optimal.
  return d.finish(Termination::kOptimal, exact, exact ? 1.0 : bound_factor,
                  max_open, 0);
}

// ---- Aε* (FOCAL) ---------------------------------------------------------
//
// OPEN is an ordered set by (f, -g); FOCAL is the prefix with
// f <= (1 + eps) * fmin, from which the entry with the smallest h (ties:
// larger g, then smaller index — deterministic) is expanded. Theorem 2:
// the first goal obtained this way costs at most (1+eps) * optimal.
struct FocalEntry {
  double f;
  double g;
  double h;
  StateIndex index;

  friend bool operator<(const FocalEntry& a, const FocalEntry& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g > b.g;
    return a.index < b.index;
  }
};

SearchResult run_focal(SearchDriver& d) {
  std::set<FocalEntry> open;
  const StateIndex root = d.arena.add(make_root());
  d.seen.insert(d.arena[root].sig);
  open.insert({d.arena[root].f(), 0.0, d.arena[root].h, root});

  std::size_t max_open = 1;
  const double eps = d.config.epsilon;
  const double bound_factor = (1.0 + eps) * std::max(1.0, d.config.h_weight);
  auto open_mem = [&] { return open.size() * sizeof(FocalEntry) * 3; };

  while (!open.empty()) {
    if (const auto limit = d.hit_limit(open_mem()))
      return d.finish(*limit, false, bound_factor, max_open, open_mem());

    const double fmin = open.begin()->f;
    d.maybe_progress(fmin);

    // (1+eps)-termination: the incumbent is already within the guarantee
    // of everything that remains (optimal >= fmin).
    if (d.incumbent_len <= (1.0 + eps) * fmin + 1e-9) {
      const bool is_exact = d.incumbent_len <= fmin + 1e-9;
      return d.finish(is_exact ? Termination::kOptimal
                               : Termination::kBoundedOptimal,
                      true, is_exact ? 1.0 : bound_factor, max_open,
                      open_mem());
    }

    const double bound = (1.0 + eps) * fmin;

    // Select min-h within the FOCAL prefix. Any member of FOCAL preserves
    // the (1+eps) guarantee (Pearl & Kim: the secondary selection rule is
    // free), so the scan is capped to keep selection O(1) amortized —
    // beyond the cap the smallest-f member is as good a choice as any.
    constexpr int kFocalScanCap = 64;
    auto chosen = open.begin();
    int scanned = 0;
    for (auto it = open.begin(); it != open.end() && it->f <= bound + 1e-12 &&
                                 scanned < kFocalScanCap;
         ++it, ++scanned) {
      const bool better =
          it->h < chosen->h || (it->h == chosen->h && it->g > chosen->g);
      if (better) chosen = it;
    }
    const FocalEntry e = *chosen;
    open.erase(chosen);

    const State& s = d.arena[e.index];
    if (d.is_goal(s)) {
      d.offer_goal(e.index);
      const bool is_exact = e.f <= fmin + 1e-9 && d.config.h_weight == 1.0;
      return d.finish(is_exact ? Termination::kOptimal
                               : Termination::kBoundedOptimal,
                      true, is_exact ? 1.0 : bound_factor, max_open,
                      open_mem());
    }

    d.expander.expand(d.arena, d.seen, e.index, d.prune_bound(),
                      [&](StateIndex idx, const State& child) {
                        if (d.config.incumbent_updates && d.is_goal(child)) {
                          d.offer_goal(idx);
                          return;
                        }
                        open.insert({child.f(), child.g, child.h, idx});
                      });
    max_open = std::max(max_open, open.size());
  }

  return d.finish(Termination::kOptimal, d.config.h_weight == 1.0,
                  d.config.h_weight == 1.0 ? 1.0 : bound_factor, max_open, 0);
}

}  // namespace

SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config) {
  OPTSCHED_REQUIRE(config.epsilon >= 0.0, "epsilon must be >= 0");
  OPTSCHED_REQUIRE(config.h_weight >= 1.0, "h_weight must be >= 1");
  SearchDriver driver(problem, config);
  return config.epsilon > 0.0 ? run_focal(driver) : run_astar(driver);
}

SearchResult astar_schedule(const dag::TaskGraph& graph,
                            const machine::Machine& machine,
                            const SearchConfig& config, CommMode comm) {
  const SearchProblem problem(graph, machine, comm);
  return astar_schedule(problem, config);
}

}  // namespace optsched::core
