#include "core/astar.hpp"

#include <algorithm>
#include <set>

#include "core/bucket_queue.hpp"
#include "core/open_list.hpp"
#include "core/search_kernel.hpp"
#include "util/timer.hpp"

namespace optsched::core {

namespace {

State make_root() {
  State root;
  root.sig = root_signature();
  root.parent = kNoParent;
  root.depth = 0;
  root.g = 0.0;
  root.h = 0.0;
  return root;
}

/// Shared bookkeeping for both selection disciplines (plain A* and FOCAL).
struct SearchDriver {
  explicit SearchDriver(const SearchProblem& p, const SearchConfig& c,
                        WarmStart* w = nullptr)
      : problem(p),
        config(c),
        expander(p, c),
        seen(1 << 12),
        incumbent_len(p.upper_bound()),
        warm(w),
        guard(c.controls,
              {c.max_expansions, c.time_budget_ms, c.max_memory_bytes},
              timer) {
    if (warm && warm->seed_upper_bound < incumbent_len) {
      incumbent_len = warm->seed_upper_bound;
      seed_schedule = warm->seed_schedule;
    }
  }

  const SearchProblem& problem;
  SearchConfig config;
  Expander expander;
  StateArena arena;
  util::FlatSet128 seen;
  double incumbent_len;                  ///< best complete schedule known
  std::optional<StateIndex> incumbent;   ///< goal state achieving it (if any)
  /// Warm-start repaired incumbent (only when it beats the static U): the
  /// fallback schedule when the search proves nothing in the arena beats it.
  const sched::Schedule* seed_schedule = nullptr;
  WarmStart* warm = nullptr;           ///< null = cold solve
  std::vector<std::uint8_t> flags;     ///< per-arena expansion record (warm)
  std::vector<double> bounds;          ///< prune bound at expansion (warm)
  const char* queue_kind = "";         ///< OPEN structure actually used
  const char* queue_fallback = "";     ///< why not bucket (when applicable)
  std::uint64_t bucket_peak = 0;
  util::Timer timer;
  KernelGuard guard;

  bool is_goal_depth(std::uint32_t depth) const {
    return depth == problem.num_nodes();
  }

  /// Threshold passed to the expander's upper-bound pruning.
  double prune_bound() const {
    if (!config.prune.upper_bound) return 0.0;  // unused
    return config.prune.strict_upper_bound ? problem.upper_bound()
                                           : incumbent_len;
  }

  /// Expand through the Expander, keeping the warm-start expansion record
  /// current: which states were expanded, and whether any child was
  /// discarded by upper-bound pruning (that decision compared an f and a
  /// bound specific to this instance, so such an expansion cannot be
  /// trusted to replay from the arena and a future resolve re-expands it).
  template <typename Emit>
  void expand_state(StateIndex idx, Emit&& emit) {
    if (!warm) {
      expander.expand(arena, seen, idx, prune_bound(), emit);
      return;
    }
    const std::uint64_t pruned_before = expander.stats().pruned_upper_bound;
    const double bound = prune_bound();
    expander.expand(arena, seen, idx, bound, emit);
    flags.resize(arena.size(), 0);
    bounds.resize(arena.size(), 0.0);
    flags[idx] = WarmStart::kExpanded;
    bounds[idx] = bound;
    if (expander.stats().pruned_upper_bound != pruned_before)
      flags[idx] |= WarmStart::kBoundPruned;
  }

  /// Record a goal state if it beats the incumbent.
  void offer_goal(StateIndex idx) {
    const HotState& s = arena.hot(idx);
    OPTSCHED_ASSERT(is_goal_depth(s.depth()));
    if (s.g < incumbent_len) {
      incumbent_len = s.g;
      incumbent = idx;
    } else if (!incumbent) {
      // Equal to the heuristic bound: prefer the search's schedule so the
      // caller sees a goal found by A* (matters only for reporting).
      if (s.g <= incumbent_len) incumbent = idx;
    }
  }

  SearchResult finish(Termination reason, bool proved, double bound_factor,
                      std::size_t max_open, std::size_t open_mem) {
    SearchResult result{
        incumbent ? reconstruct_schedule(problem, arena, *incumbent)
        : seed_schedule
            ? sched::Schedule(*seed_schedule)
            : sched::Schedule(problem.upper_bound_schedule()),
        0.0, proved, bound_factor, reason, {}};
    result.makespan = result.schedule.makespan();
    result.stats.absorb(expander.stats());
    result.stats.max_open_size = max_open;
    result.stats.peak_memory_bytes =
        arena.memory_bytes() + seen.memory_bytes() + open_mem;
    result.stats.arena_hot_bytes = arena.hot_memory_bytes();
    result.stats.arena_cold_bytes = arena.cold_memory_bytes();
    result.stats.queue_kind = queue_kind;
    result.stats.queue_fallback = queue_fallback;
    result.stats.bucket_peak = bucket_peak;
    result.stats.elapsed_seconds = timer.seconds();
    sched::validate(result.schedule);
    return result;
  }
};

// ---- plain A* (4-ary heap or bucket queue on (f, -g, index)) -------------

/// Peak-bucket-span counter: only the bucket queue has one.
inline std::uint64_t queue_peak(const OpenList&) { return 0; }
inline std::uint64_t queue_peak(const BucketQueue& q) { return q.peak_span(); }

template <typename Queue>
struct AStarPolicy {
  AStarPolicy(SearchDriver& driver, Queue queue)
      : d(driver),
        open(std::move(queue)),
        exact(driver.config.h_weight == 1.0) {}

  SearchDriver& d;
  Queue open;
  OpenEntry current{};  ///< last popped entry (f drives progress/domination)
  std::size_t max_open = 1;
  bool exact;
  bool goal_popped = false;

  bool keep_searching() const { return !goal_popped; }

  bool pop(StateIndex& out) {
    if (open.empty()) return false;
    current = open.pop();
    out = current.index;
    return true;
  }

  bool on_empty() { return false; }  // serial: an empty frontier ends it

  StepAction classify(StateIndex idx) {
    // Incumbent domination: current.f is the minimum over OPEN, so nothing
    // left can strictly beat the incumbent — it is optimal (for exact
    // search). Paper-fidelity mode keeps the f == U frontier alive so the
    // goal is popped explicitly, as in the Figure 3 trace.
    const bool dominated = d.config.prune.strict_upper_bound
                               ? current.f > d.incumbent_len + 1e-9
                               : current.f >= d.incumbent_len - 1e-9;
    if (exact && dominated) return StepAction::kStop;
    if (d.is_goal_depth(d.arena.hot(idx).depth())) return StepAction::kGoal;
    return StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    // Goal popped with minimum f: optimal (admissible h, exact dedup).
    d.offer_goal(idx);
    goal_popped = true;
  }

  void expand(StateIndex idx) {
    d.expand_state(idx, [&](StateIndex k, const State& child) {
      if (d.config.incumbent_updates && d.is_goal_depth(child.depth)) {
        d.offer_goal(k);
        return;  // complete: nothing to expand
      }
      open.push({child.f(), child.g, k});
    });
  }

  void after_expand() { max_open = std::max(max_open, open.size()); }

  std::uint64_t expanded_count() const { return d.expander.stats().expanded; }

  std::size_t memory_now() const {
    return d.arena.memory_bytes() + d.seen.memory_bytes() +
           open.memory_bytes();
  }

  void maybe_progress(KernelGuard& guard) {
    guard.maybe_progress(expanded_count(), current.f, d.incumbent_len);
  }
};

/// Seed OPEN + CLOSED from the arena. Cold start: a fresh root. Warm
/// start: CLOSED is pre-populated with the retained signatures (sound:
/// equal signatures imply an identical assignment multiset, hence equal
/// g), h is re-derived against the new instance, and retained states go
/// back onto OPEN — except skippable closed states (see WarmStart): for a
/// cost-only delta, a state the previous run fully expanded with no
/// bound-pruned child and no guard node ready re-expands to exactly the
/// children already in the arena, so it stays closed. That skip is where
/// a warm re-solve saves search work. Every state pushed back onto OPEN
/// has its expansion flags cleared: it is an OPEN member again, and if
/// this run ends without expanding it a stale kExpanded would otherwise
/// claim arena children that later compactions may have dropped.
template <typename Push>
void seed_frontier(SearchDriver& d, Push&& push) {
  if (d.arena.size() == 0) d.arena.add(make_root());
  if (d.warm) {
    d.flags.resize(d.arena.size(), 0);
    d.bounds.resize(d.arena.size(), 0.0);
  }
  const bool warm_arena = d.warm && d.arena.size() > 1;
  const bool allow_skip =
      warm_arena && d.warm->cost_only &&
      d.warm->guard_nodes.size() == d.problem.num_nodes();
  const double initial_prune = d.prune_bound();
  std::uint64_t skipped = 0;
  for (StateIndex i = 0; i < d.arena.size(); ++i) {
    d.seen.insert(d.arena.sig(i));
    if (warm_arena) {
      // Positions the expansion context on i (the guard test below reads
      // its ready list) and re-derives h against the new instance.
      const double h = d.expander.state_h(d.arena, i);
      if (i > 0) d.arena.patch_h(i, h * d.config.h_weight);
    }
    const std::uint8_t fl = d.warm ? d.flags[i] : 0;
    const bool replayable =
        (fl & WarmStart::kExpanded) &&
        (!(fl & WarmStart::kBoundPruned) ||
         (d.warm && d.warm->cost_nondecrease && d.bounds[i] >= initial_prune));
    if (allow_skip && replayable) {
      bool guard_ready = false;
      for (const dag::NodeId n : d.expander.context().ready())
        if (d.warm->guard_nodes[n]) {
          guard_ready = true;
          break;
        }
      if (!guard_ready) {
        ++skipped;
        continue;
      }
    }
    if (d.warm) d.flags[i] = 0;
    // Mirror generation-time upper-bound pruning for re-seeded states: a
    // retained state at or above the incumbent cannot lead to anything
    // better (admissible h), so it stays closed (its signature is already
    // in `seen`) without entering OPEN. The root is always pushed.
    if (warm_arena && i > 0 && d.config.prune.upper_bound) {
      const HotState& s = d.arena.hot(i);
      const bool over = d.config.prune.strict_upper_bound
                            ? s.f > d.problem.upper_bound() + 1e-9
                            : s.f >= d.incumbent_len - 1e-9;
      if (over && !d.is_goal_depth(s.depth())) continue;
    }
    push(i);
  }
  if (d.warm) d.warm->states_skipped = skipped;
}

template <typename Queue>
SearchResult run_astar_with(SearchDriver& d, Queue queue) {
  AStarPolicy<Queue> p(d, std::move(queue));
  seed_frontier(d, [&](StateIndex i) {
    const HotState& s = d.arena.hot(i);
    p.open.push({s.f, s.g, i});
  });

  const double bound_factor = std::max(1.0, d.config.h_weight);

  const auto hit = run_search_loop(d.guard, p);
  d.bucket_peak = queue_peak(p.open);

  if (hit)
    return d.finish(*hit, false, bound_factor, p.max_open,
                    p.open.memory_bytes());

  if (p.goal_popped)
    return d.finish(
        p.exact ? Termination::kOptimal : Termination::kBoundedOptimal, true,
        p.exact ? 1.0 : bound_factor, p.max_open, p.open.memory_bytes());

  // OPEN exhausted or dominated: every complete schedule not examined was
  // proven >= the incumbent, so the incumbent is optimal.
  return d.finish(Termination::kOptimal, p.exact,
                  p.exact ? 1.0 : bound_factor, p.max_open,
                  p.open.memory_bytes());
}

SearchResult run_astar(SearchDriver& d) {
  const QueueChoice choice = choose_queue(d.problem, d.config);
  d.queue_fallback = choice.fallback;
  if (choice.use_bucket) {
    d.queue_kind = "bucket";
    return run_astar_with(
        d, BucketQueue(d.problem.key_scale(), choice.max_f));
  }
  d.queue_kind = "heap";
  return run_astar_with(d, OpenList());
}

// ---- Aε* (FOCAL) ---------------------------------------------------------
//
// OPEN is an ordered set by (f, -g); FOCAL is the prefix with
// f <= (1 + eps) * fmin, from which the entry with the smallest h (ties:
// larger g, then smaller index — deterministic) is expanded. Theorem 2:
// the first goal obtained this way costs at most (1+eps) * optimal.
struct FocalEntry {
  double f;
  double g;
  double h;
  StateIndex index;

  friend bool operator<(const FocalEntry& a, const FocalEntry& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g > b.g;
    return a.index < b.index;
  }
};

struct FocalPolicy {
  explicit FocalPolicy(SearchDriver& driver)
      : d(driver), eps(driver.config.epsilon) {
    d.queue_kind = "focal";
    if (d.config.queue != QueueSelect::kHeap) d.queue_fallback = "focal";
  }

  SearchDriver& d;
  std::set<FocalEntry> open;
  double eps;
  FocalEntry current{};
  double fmin_at_pop = 0.0;  ///< frontier minimum when `current` was chosen
  std::size_t max_open = 1;
  bool goal_popped = false;
  bool bound_reached = false;  ///< incumbent within (1+eps) of everything left
  bool bound_exact = false;

  bool keep_searching() {
    if (goal_popped || bound_reached) return false;
    if (open.empty()) return true;  // let pop report exhaustion
    // (1+eps)-termination: the incumbent is already within the guarantee
    // of everything that remains (optimal >= fmin).
    const double fmin = open.begin()->f;
    if (d.incumbent_len <= (1.0 + eps) * fmin + 1e-9) {
      bound_reached = true;
      bound_exact = d.incumbent_len <= fmin + 1e-9;
      return false;
    }
    return true;
  }

  bool pop(StateIndex& out) {
    if (open.empty()) return false;
    fmin_at_pop = open.begin()->f;
    const double bound = (1.0 + eps) * fmin_at_pop;

    // Select min-h within the FOCAL prefix. Any member of FOCAL preserves
    // the (1+eps) guarantee (Pearl & Kim: the secondary selection rule is
    // free), so the scan is capped to keep selection O(1) amortized —
    // beyond the cap the smallest-f member is as good a choice as any.
    constexpr int kFocalScanCap = 64;
    auto chosen = open.begin();
    int scanned = 0;
    for (auto it = open.begin(); it != open.end() && it->f <= bound + 1e-12 &&
                                 scanned < kFocalScanCap;
         ++it, ++scanned) {
      const bool better =
          it->h < chosen->h || (it->h == chosen->h && it->g > chosen->g);
      if (better) chosen = it;
    }
    current = *chosen;
    open.erase(chosen);
    out = current.index;
    return true;
  }

  bool on_empty() { return false; }

  StepAction classify(StateIndex idx) {
    return d.is_goal_depth(d.arena.hot(idx).depth()) ? StepAction::kGoal
                                                     : StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    d.offer_goal(idx);
    goal_popped = true;
  }

  void expand(StateIndex idx) {
    d.expand_state(idx, [&](StateIndex k, const State& child) {
      if (d.config.incumbent_updates && d.is_goal_depth(child.depth)) {
        d.offer_goal(k);
        return;
      }
      open.insert({child.f(), child.g, child.h, k});
    });
  }

  void after_expand() { max_open = std::max(max_open, open.size()); }

  std::uint64_t expanded_count() const { return d.expander.stats().expanded; }

  /// Entry storage estimate for the FOCAL set (node-based; same factor as
  /// the parallel engine's accounting).
  std::size_t open_memory_bytes() const {
    return open.size() * sizeof(FocalEntry) * 3;
  }

  std::size_t memory_now() const {
    return d.arena.memory_bytes() + d.seen.memory_bytes() +
           open_memory_bytes();
  }

  void maybe_progress(KernelGuard& guard) {
    guard.maybe_progress(expanded_count(), fmin_at_pop, d.incumbent_len);
  }
};

SearchResult run_focal(SearchDriver& d) {
  FocalPolicy p(d);
  seed_frontier(d, [&](StateIndex i) {
    const HotState& s = d.arena.hot(i);
    p.open.insert({s.f, s.g, s.h(), i});
  });

  const double bound_factor =
      (1.0 + p.eps) * std::max(1.0, d.config.h_weight);

  if (const auto hit = run_search_loop(d.guard, p))
    return d.finish(*hit, false, bound_factor, p.max_open,
                    p.open_memory_bytes());

  if (p.bound_reached)
    return d.finish(p.bound_exact ? Termination::kOptimal
                                  : Termination::kBoundedOptimal,
                    true, p.bound_exact ? 1.0 : bound_factor, p.max_open,
                    p.open_memory_bytes());

  if (p.goal_popped) {
    const bool is_exact =
        p.current.f <= p.fmin_at_pop + 1e-9 && d.config.h_weight == 1.0;
    return d.finish(is_exact ? Termination::kOptimal
                             : Termination::kBoundedOptimal,
                    true, is_exact ? 1.0 : bound_factor, p.max_open,
                    p.open_memory_bytes());
  }

  return d.finish(Termination::kOptimal, d.config.h_weight == 1.0,
                  d.config.h_weight == 1.0 ? 1.0 : bound_factor, p.max_open,
                  p.open_memory_bytes());
}

/// Move the previous arena in and compact it to the clean subset: a state
/// survives iff its own assigned node is clean and its parent survived —
/// i.e. its whole chain avoids dirty nodes (parents precede children in
/// the arena, so one forward pass with index remapping suffices). A
/// surviving chain's stored g/finish/signature replay bit-identically
/// under the new instance (the context replay asserts exactly that in
/// debug builds); h is stale and is re-derived during frontier seeding.
/// The previous run's expansion record rides along under the same
/// remapping. Returns the retained count (0 = nothing reusable; the
/// caller starts from a cold root).
std::size_t retain_clean(SearchDriver& d, WarmStart& warm) {
  StateArena old = std::move(warm.arena);
  std::vector<std::uint8_t> old_flags = std::move(warm.expansion_flags);
  std::vector<double> old_bounds = std::move(warm.expansion_bounds);
  d.expander.invalidate_context();  // the context may point at old indices
  if (warm.instance_replaced || old.size() == 0 || !old.hot(0).is_root() ||
      warm.dirty_nodes.size() != d.problem.num_nodes())
    return 0;
  old_flags.resize(old.size(), 0);
  old_bounds.resize(old.size(), 0.0);
  std::vector<StateIndex> remap(old.size(), kNoParent);
  for (StateIndex i = 0; i < old.size(); ++i) {
    const HotState& hs = old.hot(i);
    State s;
    if (hs.is_root()) {
      s = make_root();
    } else {
      const dag::NodeId n = hs.node();
      if (n == dag::kInvalidNode || warm.dirty_nodes[n]) continue;
      if (hs.parent == kNoParent || remap[hs.parent] == kNoParent) continue;
      s.sig = old.sig(i);
      s.finish = old.finish(i);
      s.g = hs.g;
      s.h = hs.f - hs.g;  // stale; re-derived at seeding
      s.parent = remap[hs.parent];
      s.node = n;
      s.proc = hs.proc();
      s.depth = hs.depth();
    }
    remap[i] = d.arena.add(s);
    d.flags.push_back(old_flags[i]);
    d.bounds.push_back(old_bounds[i]);
  }
  return d.arena.size();
}

}  // namespace

SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config) {
  return astar_schedule(problem, config, nullptr);
}

SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config, WarmStart* warm) {
  OPTSCHED_REQUIRE(config.epsilon >= 0.0, "epsilon must be >= 0");
  OPTSCHED_REQUIRE(config.h_weight >= 1.0, "h_weight must be >= 1");
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());
  SearchDriver driver(problem, config, warm);
  std::size_t retained = 0;
  if (warm) {
    warm->states_retained = 0;
    warm->states_skipped = 0;
    warm->instant_proof = false;
    retained = retain_clean(driver, *warm);
    warm->states_retained = retained;

    // Instant proof: the effective incumbent (the repaired seed, or the
    // static U when that is at least as good) already matches the root's
    // admissible lower bound (unweighted h of the empty schedule), so no
    // complete schedule can beat it — return it proved-optimal with zero
    // expansions. A cold solve of the same instance reaches the same
    // makespan (it is the optimum), so bit-agreement is preserved. The
    // expansion record is wiped: no seeding pass ran, so nothing verified
    // that recorded expansions still have their children in the arena.
    {
      if (driver.arena.size() == 0) driver.arena.add(make_root());
      const double root_lb = driver.expander.state_h(driver.arena, 0);
      if (driver.incumbent_len <= root_lb + 1e-9) {
        warm->instant_proof = true;
        warm->warm_used = retained > 0 || driver.seed_schedule != nullptr;
        SearchResult result = driver.finish(Termination::kOptimal, true, 1.0,
                                            /*max_open=*/0, /*open_mem=*/0);
        warm->arena = std::move(driver.arena);
        warm->expansion_flags.assign(warm->arena.size(), 0);
        warm->expansion_bounds.assign(warm->arena.size(), 0.0);
        return result;
      }
    }
    warm->warm_used = retained > 0 || driver.seed_schedule != nullptr;
  }
  SearchResult result =
      config.epsilon > 0.0 ? run_focal(driver) : run_astar(driver);
  if (warm) {
    driver.flags.resize(driver.arena.size(), 0);
    driver.bounds.resize(driver.arena.size(), 0.0);
    warm->arena = std::move(driver.arena);
    warm->expansion_flags = std::move(driver.flags);
    warm->expansion_bounds = std::move(driver.bounds);
  }
  return result;
}

SearchResult astar_schedule(const dag::TaskGraph& graph,
                            const machine::Machine& machine,
                            const SearchConfig& config, CommMode comm) {
  const SearchProblem problem(graph, machine, comm);
  return astar_schedule(problem, config);
}

}  // namespace optsched::core
