#include "core/astar.hpp"

#include <algorithm>
#include <set>

#include "core/open_list.hpp"
#include "core/search_kernel.hpp"
#include "util/timer.hpp"

namespace optsched::core {

namespace {

State make_root() {
  State root;
  root.sig = root_signature();
  root.parent = kNoParent;
  root.depth = 0;
  root.g = 0.0;
  root.h = 0.0;
  return root;
}

/// Shared bookkeeping for both selection disciplines (plain A* and FOCAL).
struct SearchDriver {
  explicit SearchDriver(const SearchProblem& p, const SearchConfig& c)
      : problem(p),
        config(c),
        expander(p, c),
        seen(1 << 12),
        incumbent_len(p.upper_bound()),
        guard(c.controls,
              {c.max_expansions, c.time_budget_ms, c.max_memory_bytes},
              timer) {}

  const SearchProblem& problem;
  SearchConfig config;
  Expander expander;
  StateArena arena;
  util::FlatSet128 seen;
  double incumbent_len;                  ///< best complete schedule known
  std::optional<StateIndex> incumbent;   ///< goal state achieving it (if any)
  util::Timer timer;
  KernelGuard guard;

  bool is_goal_depth(std::uint32_t depth) const {
    return depth == problem.num_nodes();
  }

  /// Threshold passed to the expander's upper-bound pruning.
  double prune_bound() const {
    if (!config.prune.upper_bound) return 0.0;  // unused
    return config.prune.strict_upper_bound ? problem.upper_bound()
                                           : incumbent_len;
  }

  /// Record a goal state if it beats the incumbent.
  void offer_goal(StateIndex idx) {
    const HotState& s = arena.hot(idx);
    OPTSCHED_ASSERT(is_goal_depth(s.depth()));
    if (s.g < incumbent_len) {
      incumbent_len = s.g;
      incumbent = idx;
    } else if (!incumbent) {
      // Equal to the heuristic bound: prefer the search's schedule so the
      // caller sees a goal found by A* (matters only for reporting).
      if (s.g <= incumbent_len) incumbent = idx;
    }
  }

  SearchResult finish(Termination reason, bool proved, double bound_factor,
                      std::size_t max_open, std::size_t open_mem) {
    SearchResult result{
        incumbent ? reconstruct_schedule(problem, arena, *incumbent)
                  : sched::Schedule(problem.upper_bound_schedule()),
        0.0, proved, bound_factor, reason, {}};
    result.makespan = result.schedule.makespan();
    result.stats.absorb(expander.stats());
    result.stats.max_open_size = max_open;
    result.stats.peak_memory_bytes =
        arena.memory_bytes() + seen.memory_bytes() + open_mem;
    result.stats.arena_hot_bytes = arena.hot_memory_bytes();
    result.stats.arena_cold_bytes = arena.cold_memory_bytes();
    result.stats.elapsed_seconds = timer.seconds();
    sched::validate(result.schedule);
    return result;
  }
};

// ---- plain A* (4-ary heap on (f, -g)) ------------------------------------

struct AStarPolicy {
  explicit AStarPolicy(SearchDriver& driver)
      : d(driver), exact(driver.config.h_weight == 1.0) {}

  SearchDriver& d;
  OpenList open;
  OpenEntry current{};  ///< last popped entry (f drives progress/domination)
  std::size_t max_open = 1;
  bool exact;
  bool goal_popped = false;

  bool keep_searching() const { return !goal_popped; }

  bool pop(StateIndex& out) {
    if (open.empty()) return false;
    current = open.pop();
    out = current.index;
    return true;
  }

  bool on_empty() { return false; }  // serial: an empty frontier ends it

  StepAction classify(StateIndex idx) {
    // Incumbent domination: current.f is the minimum over OPEN, so nothing
    // left can strictly beat the incumbent — it is optimal (for exact
    // search). Paper-fidelity mode keeps the f == U frontier alive so the
    // goal is popped explicitly, as in the Figure 3 trace.
    const bool dominated = d.config.prune.strict_upper_bound
                               ? current.f > d.incumbent_len + 1e-9
                               : current.f >= d.incumbent_len - 1e-9;
    if (exact && dominated) return StepAction::kStop;
    if (d.is_goal_depth(d.arena.hot(idx).depth())) return StepAction::kGoal;
    return StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    // Goal popped with minimum f: optimal (admissible h, exact dedup).
    d.offer_goal(idx);
    goal_popped = true;
  }

  void expand(StateIndex idx) {
    d.expander.expand(d.arena, d.seen, idx, d.prune_bound(),
                      [&](StateIndex k, const State& child) {
                        if (d.config.incumbent_updates &&
                            d.is_goal_depth(child.depth)) {
                          d.offer_goal(k);
                          return;  // complete: nothing to expand
                        }
                        open.push({child.f(), child.g, k});
                      });
  }

  void after_expand() { max_open = std::max(max_open, open.size()); }

  std::uint64_t expanded_count() const { return d.expander.stats().expanded; }

  std::size_t memory_now() const {
    return d.arena.memory_bytes() + d.seen.memory_bytes() +
           open.memory_bytes();
  }

  void maybe_progress(KernelGuard& guard) {
    guard.maybe_progress(expanded_count(), current.f, d.incumbent_len);
  }
};

SearchResult run_astar(SearchDriver& d) {
  AStarPolicy p(d);
  const StateIndex root = d.arena.add(make_root());
  d.seen.insert(d.arena.sig(root));
  p.open.push({d.arena.hot(root).f, 0.0, root});

  const double bound_factor = std::max(1.0, d.config.h_weight);

  if (const auto hit = run_search_loop(d.guard, p))
    return d.finish(*hit, false, bound_factor, p.max_open,
                    p.open.memory_bytes());

  if (p.goal_popped)
    return d.finish(
        p.exact ? Termination::kOptimal : Termination::kBoundedOptimal, true,
        p.exact ? 1.0 : bound_factor, p.max_open, p.open.memory_bytes());

  // OPEN exhausted or dominated: every complete schedule not examined was
  // proven >= the incumbent, so the incumbent is optimal.
  return d.finish(Termination::kOptimal, p.exact,
                  p.exact ? 1.0 : bound_factor, p.max_open,
                  p.open.memory_bytes());
}

// ---- Aε* (FOCAL) ---------------------------------------------------------
//
// OPEN is an ordered set by (f, -g); FOCAL is the prefix with
// f <= (1 + eps) * fmin, from which the entry with the smallest h (ties:
// larger g, then smaller index — deterministic) is expanded. Theorem 2:
// the first goal obtained this way costs at most (1+eps) * optimal.
struct FocalEntry {
  double f;
  double g;
  double h;
  StateIndex index;

  friend bool operator<(const FocalEntry& a, const FocalEntry& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g > b.g;
    return a.index < b.index;
  }
};

struct FocalPolicy {
  explicit FocalPolicy(SearchDriver& driver)
      : d(driver), eps(driver.config.epsilon) {}

  SearchDriver& d;
  std::set<FocalEntry> open;
  double eps;
  FocalEntry current{};
  double fmin_at_pop = 0.0;  ///< frontier minimum when `current` was chosen
  std::size_t max_open = 1;
  bool goal_popped = false;
  bool bound_reached = false;  ///< incumbent within (1+eps) of everything left
  bool bound_exact = false;

  bool keep_searching() {
    if (goal_popped || bound_reached) return false;
    if (open.empty()) return true;  // let pop report exhaustion
    // (1+eps)-termination: the incumbent is already within the guarantee
    // of everything that remains (optimal >= fmin).
    const double fmin = open.begin()->f;
    if (d.incumbent_len <= (1.0 + eps) * fmin + 1e-9) {
      bound_reached = true;
      bound_exact = d.incumbent_len <= fmin + 1e-9;
      return false;
    }
    return true;
  }

  bool pop(StateIndex& out) {
    if (open.empty()) return false;
    fmin_at_pop = open.begin()->f;
    const double bound = (1.0 + eps) * fmin_at_pop;

    // Select min-h within the FOCAL prefix. Any member of FOCAL preserves
    // the (1+eps) guarantee (Pearl & Kim: the secondary selection rule is
    // free), so the scan is capped to keep selection O(1) amortized —
    // beyond the cap the smallest-f member is as good a choice as any.
    constexpr int kFocalScanCap = 64;
    auto chosen = open.begin();
    int scanned = 0;
    for (auto it = open.begin(); it != open.end() && it->f <= bound + 1e-12 &&
                                 scanned < kFocalScanCap;
         ++it, ++scanned) {
      const bool better =
          it->h < chosen->h || (it->h == chosen->h && it->g > chosen->g);
      if (better) chosen = it;
    }
    current = *chosen;
    open.erase(chosen);
    out = current.index;
    return true;
  }

  bool on_empty() { return false; }

  StepAction classify(StateIndex idx) {
    return d.is_goal_depth(d.arena.hot(idx).depth()) ? StepAction::kGoal
                                                     : StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    d.offer_goal(idx);
    goal_popped = true;
  }

  void expand(StateIndex idx) {
    d.expander.expand(d.arena, d.seen, idx, d.prune_bound(),
                      [&](StateIndex k, const State& child) {
                        if (d.config.incumbent_updates &&
                            d.is_goal_depth(child.depth)) {
                          d.offer_goal(k);
                          return;
                        }
                        open.insert({child.f(), child.g, child.h, k});
                      });
  }

  void after_expand() { max_open = std::max(max_open, open.size()); }

  std::uint64_t expanded_count() const { return d.expander.stats().expanded; }

  /// Entry storage estimate for the FOCAL set (node-based; same factor as
  /// the parallel engine's accounting).
  std::size_t open_memory_bytes() const {
    return open.size() * sizeof(FocalEntry) * 3;
  }

  std::size_t memory_now() const {
    return d.arena.memory_bytes() + d.seen.memory_bytes() +
           open_memory_bytes();
  }

  void maybe_progress(KernelGuard& guard) {
    guard.maybe_progress(expanded_count(), fmin_at_pop, d.incumbent_len);
  }
};

SearchResult run_focal(SearchDriver& d) {
  FocalPolicy p(d);
  const StateIndex root = d.arena.add(make_root());
  d.seen.insert(d.arena.sig(root));
  p.open.insert({d.arena.hot(root).f, 0.0, 0.0, root});

  const double bound_factor =
      (1.0 + p.eps) * std::max(1.0, d.config.h_weight);

  if (const auto hit = run_search_loop(d.guard, p))
    return d.finish(*hit, false, bound_factor, p.max_open,
                    p.open_memory_bytes());

  if (p.bound_reached)
    return d.finish(p.bound_exact ? Termination::kOptimal
                                  : Termination::kBoundedOptimal,
                    true, p.bound_exact ? 1.0 : bound_factor, p.max_open,
                    p.open_memory_bytes());

  if (p.goal_popped) {
    const bool is_exact =
        p.current.f <= p.fmin_at_pop + 1e-9 && d.config.h_weight == 1.0;
    return d.finish(is_exact ? Termination::kOptimal
                             : Termination::kBoundedOptimal,
                    true, is_exact ? 1.0 : bound_factor, p.max_open,
                    p.open_memory_bytes());
  }

  return d.finish(Termination::kOptimal, d.config.h_weight == 1.0,
                  d.config.h_weight == 1.0 ? 1.0 : bound_factor, p.max_open,
                  p.open_memory_bytes());
}

}  // namespace

SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config) {
  OPTSCHED_REQUIRE(config.epsilon >= 0.0, "epsilon must be >= 0");
  OPTSCHED_REQUIRE(config.h_weight >= 1.0, "h_weight must be >= 1");
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());
  SearchDriver driver(problem, config);
  return config.epsilon > 0.0 ? run_focal(driver) : run_astar(driver);
}

SearchResult astar_schedule(const dag::TaskGraph& graph,
                            const machine::Machine& machine,
                            const SearchConfig& config, CommMode comm) {
  const SearchProblem problem(graph, machine, comm);
  return astar_schedule(problem, config);
}

}  // namespace optsched::core
