#include "core/ida_star.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/timer.hpp"

namespace optsched::core {

namespace {

/// Incremental depth-first schedule state with apply/undo.
class DfsState {
 public:
  explicit DfsState(const SearchProblem& problem) : problem_(&problem) {
    const auto v = problem.num_nodes();
    finish_.assign(v, 0.0);
    proc_of_.assign(v, machine::kInvalidProc);
    proc_ready_.assign(problem.num_procs(), 0.0);
    busy_count_.assign(problem.num_procs(), 0);
    pending_.assign(v, 0);
    for (NodeId n = 0; n < v; ++n)
      pending_[n] = static_cast<std::uint32_t>(problem.graph().num_parents(n));
    h_scratch_.assign(v, 0.0);
  }

  struct Undo {
    NodeId node;
    ProcId proc;
    double prev_proc_ready;
    double prev_g;
    NodeId prev_nmax;
  };

  double start_time(NodeId n, ProcId p) const {
    const auto& graph = problem_->graph();
    double dat = 0.0;
    for (const auto& [parent, cost] : graph.parents(n))
      dat = std::max(dat, finish_[parent] +
                              problem_->machine().comm_delay(
                                  cost, proc_of_[parent], p, problem_->comm()));
    return std::max(proc_ready_[p], dat);
  }

  Undo apply(NodeId n, ProcId p) {
    const double st = start_time(n, p);
    const double ft =
        st + problem_->machine().exec_time(problem_->graph().weight(n), p);
    Undo undo{n, p, proc_ready_[p], g_, nmax_};
    finish_[n] = ft;
    proc_of_[n] = p;
    proc_ready_[p] = ft;
    ++busy_count_[p];
    if (ft > g_ || nmax_ == dag::kInvalidNode) {
      g_ = std::max(g_, ft);
      nmax_ = n;
    }
    for (const auto& [child, cost] : problem_->graph().children(n)) {
      (void)cost;
      --pending_[child];
    }
    ++depth_;
    assignments_.emplace_back(n, p);
    return undo;
  }

  void revert(const Undo& undo) {
    for (const auto& [child, cost] : problem_->graph().children(undo.node)) {
      (void)cost;
      ++pending_[child];
    }
    finish_[undo.node] = 0.0;
    proc_of_[undo.node] = machine::kInvalidProc;
    proc_ready_[undo.proc] = undo.prev_proc_ready;
    --busy_count_[undo.proc];
    g_ = undo.prev_g;
    nmax_ = undo.prev_nmax;
    --depth_;
    assignments_.pop_back();
  }

  void ready_nodes(std::vector<NodeId>& out) const {
    out.clear();
    for (NodeId n = 0; n < problem_->num_nodes(); ++n)
      if (proc_of_[n] == machine::kInvalidProc && pending_[n] == 0)
        out.push_back(n);
    std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
      return problem_->priority_rank(a) < problem_->priority_rank(b);
    });
  }

  std::vector<bool> busy_flags() const {
    std::vector<bool> busy(problem_->num_procs());
    for (ProcId p = 0; p < problem_->num_procs(); ++p)
      busy[p] = busy_count_[p] > 0;
    return busy;
  }

  double evaluate(HFunction fn) {
    const ScheduleView view{finish_.data(), proc_of_.data(), g_, nmax_,
                            depth_};
    return evaluate_h(fn, *problem_, view, h_scratch_.data());
  }

  double g() const noexcept { return g_; }
  std::uint32_t depth() const noexcept { return depth_; }

  /// Resident working set — the whole point of IDA* is that this stays
  /// O(v + p) regardless of how many states the probes visit.
  std::size_t memory_bytes() const noexcept {
    return finish_.capacity() * sizeof(double) +
           proc_of_.capacity() * sizeof(ProcId) +
           proc_ready_.capacity() * sizeof(double) +
           busy_count_.capacity() * sizeof(std::uint32_t) +
           pending_.capacity() * sizeof(std::uint32_t) +
           h_scratch_.capacity() * sizeof(double) +
           assignments_.capacity() * sizeof(std::pair<NodeId, ProcId>);
  }
  const std::vector<std::pair<NodeId, ProcId>>& assignments() const noexcept {
    return assignments_;
  }

 private:
  const SearchProblem* problem_;
  std::vector<double> finish_;
  std::vector<ProcId> proc_of_;
  std::vector<double> proc_ready_;
  std::vector<std::uint32_t> busy_count_;
  std::vector<std::uint32_t> pending_;
  std::vector<double> h_scratch_;
  std::vector<std::pair<NodeId, ProcId>> assignments_;
  double g_ = 0.0;
  NodeId nmax_ = dag::kInvalidNode;
  std::uint32_t depth_ = 0;
};

struct IdaDriver {
  const SearchProblem& problem;
  const SearchConfig& config;
  DfsState dfs;
  util::Timer timer;
  SearchStats stats;
  double threshold = 0.0;
  double next_threshold = std::numeric_limits<double>::infinity();
  std::vector<std::pair<NodeId, ProcId>> best_assignments;
  double best_len = std::numeric_limits<double>::infinity();
  bool aborted = false;
  Termination abort_reason = Termination::kOptimal;

  IdaDriver(const SearchProblem& p, const SearchConfig& c)
      : problem(p), config(c), dfs(p) {}

  bool limits_hit() {
    if (config.controls.cancel.cancelled()) {
      aborted = true;
      abort_reason = Termination::kCancelled;
      return true;
    }
    if (config.max_expansions && stats.expanded >= config.max_expansions) {
      aborted = true;
      abort_reason = Termination::kExpansionLimit;
      return true;
    }
    if (config.time_budget_ms > 0 && timer.millis() >= config.time_budget_ms) {
      aborted = true;
      abort_reason = Termination::kTimeLimit;
      return true;
    }
    return false;
  }

  /// Progress: the current threshold is the tightest known lower bound on
  /// the optimum (every f below it was exhausted in earlier probes); the
  /// incumbent is the heuristic upper bound until a goal ends the search.
  void maybe_progress() {
    if (!progress_gate.open(stats.expanded)) return;
    config.controls.progress({stats.expanded, threshold,
                              std::min(best_len, problem.upper_bound()),
                              timer.seconds()});
  }

  ProgressGate progress_gate{config.controls};

  /// Depth-first probe; returns true when a goal within `threshold` was
  /// found (search can stop: the first goal found at the current threshold
  /// is optimal because thresholds grow by the minimal overshoot).
  bool probe() {
    if (limits_hit()) return false;

    if (dfs.depth() == problem.num_nodes()) {
      best_assignments = dfs.assignments();
      best_len = dfs.g();
      return true;
    }
    ++stats.expanded;
    maybe_progress();

    std::vector<NodeId> ready;
    dfs.ready_nodes(ready);

    std::vector<ProcId> rep(problem.num_procs());
    if (config.prune.processor_isomorphism) {
      problem.automorphisms().state_classes(dfs.busy_flags(), rep);
    } else {
      for (ProcId p = 0; p < problem.num_procs(); ++p) rep[p] = p;
    }

    std::vector<bool> class_taken(problem.num_nodes(), false);
    for (const NodeId n : ready) {
      if (config.prune.node_equivalence) {
        const NodeId r = problem.equivalence().representative(n);
        if (class_taken[r]) {
          ++stats.skipped_equivalence;
          continue;
        }
        class_taken[r] = true;
      }
      for (ProcId p = 0; p < problem.num_procs(); ++p) {
        if (rep[p] != p) {
          ++stats.skipped_isomorphism;
          continue;
        }
        const auto undo = dfs.apply(n, p);
        ++stats.generated;
        const double f = dfs.g() + dfs.evaluate(config.h);
        const bool over_ub =
            config.prune.upper_bound &&
            (config.prune.strict_upper_bound
                 ? f > problem.upper_bound() + 1e-9
                 : f >= problem.upper_bound() - 1e-9);
        if (over_ub) {
          ++stats.pruned_upper_bound;
        } else if (f > threshold + 1e-9) {
          next_threshold = std::min(next_threshold, f);
        } else if (probe()) {
          dfs.revert(undo);
          return true;
        }
        dfs.revert(undo);
        if (aborted) return false;
      }
    }
    return false;
  }
};

}  // namespace

SearchResult ida_star_schedule(const SearchProblem& problem,
                               const SearchConfig& config) {
  OPTSCHED_REQUIRE(config.epsilon == 0.0,
                   "invalid argument: IDA* is exact-only and does not "
                   "support epsilon > 0 (use A* with epsilon, engine 'aeps')");
  OPTSCHED_REQUIRE(config.h_weight == 1.0,
                   "invalid argument: IDA* is exact-only and does not "
                   "support h_weight != 1 (use weighted A*)");
  IdaDriver driver(problem, config);

  // Initial threshold: f of the empty schedule.
  driver.threshold = driver.dfs.evaluate(config.h);
  bool found = false;
  while (!found && !driver.aborted) {
    driver.next_threshold = std::numeric_limits<double>::infinity();
    found = driver.probe();
    if (!found && !driver.aborted) {
      if (!std::isfinite(driver.next_threshold)) break;  // space exhausted
      driver.threshold = driver.next_threshold;
    }
  }

  sched::Schedule schedule(problem.graph(), problem.machine(), problem.comm());
  if (found) {
    for (const auto& [n, p] : driver.best_assignments) schedule.append(n, p);
  } else {
    schedule = problem.upper_bound_schedule();
  }
  sched::validate(schedule);

  SearchResult result{std::move(schedule), 0.0, !driver.aborted, 1.0,
                      driver.aborted ? driver.abort_reason
                                     : Termination::kOptimal,
                      driver.stats};
  result.makespan = result.schedule.makespan();
  result.stats.elapsed_seconds = driver.timer.seconds();
  result.stats.peak_memory_bytes = driver.dfs.memory_bytes();
  return result;
}

SearchResult ida_star_schedule(const dag::TaskGraph& graph,
                               const machine::Machine& machine,
                               const SearchConfig& config, CommMode comm) {
  const SearchProblem problem(graph, machine, comm);
  return ida_star_schedule(problem, config);
}

}  // namespace optsched::core
