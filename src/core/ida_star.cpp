// Iterative-deepening A*, expressed on the shared search kernel.
//
// Each threshold iteration is a depth-first probe: the kernel runs with a
// LIFO frontier, so the pop order reproduces the classic recursive
// formulation exactly (children are pushed in reverse priority order, best
// on top). Two properties keep the memory footprint the O(v)-ish working
// set that is IDA*'s whole point:
//
//   * Backtrack reclaim: arena indices are append-only and the frontier is
//     LIFO, so when an entry is popped, every arena index above the highest
//     index still on the stack is dead — the arena is truncated to that
//     watermark (tracked O(1) via a prefix-maxima stack).
//   * Delta replay: consecutive DFS pops are parent/child or near siblings,
//     so ExpansionContext::move_to rewinds/replays one or two assignments
//     per step — the same work the recursive apply/undo formulation did.
//
// Thresholds grow by the minimal overshoot, so the first goal found within
// the current threshold is optimal. DFS probes do not deduplicate
// (duplicate detection is forced off: a CLOSED set would reintroduce the
// O(states) memory IDA* exists to avoid).
#include "core/ida_star.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/search_kernel.hpp"
#include "util/timer.hpp"

namespace optsched::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct IdaPolicy {
  IdaPolicy(const SearchProblem& p, Expander& e, StateArena& a,
            util::FlatSet128& dummy)
      : problem(p), expander(e), arena(a), no_dedup(dummy) {}

  const SearchProblem& problem;
  Expander& expander;
  StateArena& arena;
  util::FlatSet128& no_dedup;  ///< never inserted into (dedup forced off)

  double threshold = 0.0;
  double next_threshold = kInf;
  double incumbent = kInf;  ///< heuristic upper bound (progress reporting)

  std::vector<StateIndex> stack;
  std::vector<StateIndex> stack_max;  ///< prefix maxima of `stack`
  std::vector<StateIndex> batch;      ///< scratch: one expansion's children

  bool found = false;
  std::vector<std::pair<NodeId, ProcId>> goal_assignments;
  double goal_len = kInf;
  std::size_t peak_memory = 0;
  std::size_t peak_hot = 0;
  std::size_t peak_cold = 0;

  void push(StateIndex idx) {
    stack_max.push_back(stack_max.empty()
                            ? idx
                            : std::max(stack_max.back(), idx));
    stack.push_back(idx);
  }

  /// Reset for the next threshold iteration (expansion stats persist).
  void begin_iteration(double new_threshold) {
    threshold = new_threshold;
    next_threshold = kInf;
    stack.clear();
    stack_max.clear();
    arena.clear();
    expander.invalidate_context();
    State root;
    root.sig = root_signature();
    root.parent = kNoParent;
    push(arena.add(root));
  }

  bool keep_searching() const { return !found; }

  bool pop(StateIndex& out) {
    if (stack.empty()) return false;
    out = stack.back();
    stack.pop_back();
    stack_max.pop_back();
    // Backtrack reclaim: with a LIFO frontier every arena index above the
    // highest one still referenced is an exhausted subtree.
    const StateIndex watermark =
        std::max(out, stack_max.empty() ? 0 : stack_max.back());
    if (static_cast<std::size_t>(watermark) + 1 < arena.size()) {
      arena.truncate(watermark + 1);
      expander.invalidate_context_from(watermark + 1);
    }
    return true;
  }

  bool on_empty() { return false; }  // iteration exhausted

  StepAction classify(StateIndex idx) {
    return arena.hot(idx).depth() == problem.num_nodes() ? StepAction::kGoal
                                                         : StepAction::kExpand;
  }

  void on_goal(StateIndex idx) {
    // First goal within the threshold: optimal (thresholds grow by the
    // minimal overshoot, so nothing cheaper was skipped).
    found = true;
    goal_len = arena.hot(idx).g;
    goal_assignments.clear();
    for (StateIndex i = idx; i != kNoParent; i = arena.hot(i).parent) {
      if (arena.hot(i).is_root()) break;
      goal_assignments.emplace_back(arena.hot(i).node(),
                                    arena.hot(i).proc());
    }
    std::reverse(goal_assignments.begin(), goal_assignments.end());
  }

  void expand(StateIndex idx) {
    batch.clear();
    expander.expand(arena, no_dedup, idx, problem.upper_bound(),
                    [&](StateIndex k, const State& child) {
                      const double f = child.f();
                      if (f > threshold + 1e-9) {
                        next_threshold = std::min(next_threshold, f);
                        return;  // truncated; reclaimed at the next pop
                      }
                      batch.push_back(k);
                    });
    // Children arrive best-priority-first; push reversed so the best pops
    // first — identical depth-first order to the recursive formulation.
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) push(*it);
  }

  void after_expand() {
    const std::size_t stack_bytes =
        (stack.capacity() + stack_max.capacity() + batch.capacity()) *
        sizeof(StateIndex);
    peak_hot = std::max(peak_hot, arena.hot_memory_bytes());
    peak_cold = std::max(peak_cold, arena.cold_memory_bytes());
    peak_memory =
        std::max(peak_memory, arena.memory_bytes() + stack_bytes);
  }

  std::uint64_t expanded_count() const { return expander.stats().expanded; }

  /// The memory cap is never binding for IDA* (documented contract): the
  /// working set is bounded by the DFS path, not by states visited.
  std::size_t memory_now() const { return 0; }

  void maybe_progress(KernelGuard& guard) {
    // The current threshold is the tightest known lower bound on the
    // optimum (every f below it was exhausted in earlier probes); the
    // incumbent is the heuristic upper bound until a goal ends the search.
    guard.maybe_progress(expanded_count(), threshold, incumbent);
  }
};

}  // namespace

SearchResult ida_star_schedule(const SearchProblem& problem,
                               const SearchConfig& config) {
  OPTSCHED_REQUIRE(config.epsilon == 0.0,
                   "invalid argument: IDA* is exact-only and does not "
                   "support epsilon > 0 (use A* with epsilon, engine 'aeps')");
  OPTSCHED_REQUIRE(config.h_weight == 1.0,
                   "invalid argument: IDA* is exact-only and does not "
                   "support h_weight != 1 (use weighted A*)");
  StateArena::require_packable(problem.num_nodes(), problem.num_procs());

  // DFS probes do not deduplicate: a CLOSED set would reintroduce the
  // O(states) memory IDA* avoids (and the recursive formulation never had
  // one). Everything else follows the caller's pruning config.
  SearchConfig probe_config = config;
  probe_config.prune.duplicate_detection = false;

  util::Timer timer;
  Expander expander(problem, probe_config);
  StateArena arena;
  util::FlatSet128 no_dedup(16);
  IdaPolicy policy(problem, expander, arena, no_dedup);
  policy.incumbent = problem.upper_bound();
  KernelGuard guard(config.controls,
                    {config.max_expansions, config.time_budget_ms,
                     /*memory: never binding*/ 0},
                    timer);

  // Initial threshold: f of the empty schedule.
  const double initial_threshold = [&] {
    const auto v = problem.num_nodes();
    std::vector<double> finish(v, 0.0);
    std::vector<ProcId> proc_of(v, machine::kInvalidProc);
    std::vector<double> scratch(2 * std::size_t{v}, 0.0);
    const ScheduleView empty{finish.data(), proc_of.data(), 0.0,
                             dag::kInvalidNode, 0};
    return evaluate_h(config.h, problem, empty, scratch.data());
  }();

  std::optional<Termination> aborted;
  double threshold = initial_threshold;
  while (!policy.found && !aborted) {
    policy.begin_iteration(threshold);
    aborted = run_search_loop(guard, policy);
    if (!policy.found && !aborted) {
      if (!std::isfinite(policy.next_threshold)) break;  // space exhausted
      threshold = policy.next_threshold;
    }
  }

  sched::Schedule schedule(problem.graph(), problem.machine(), problem.comm());
  if (policy.found) {
    for (const auto& [n, p] : policy.goal_assignments) schedule.append(n, p);
  } else {
    schedule = problem.upper_bound_schedule();
  }
  sched::validate(schedule);

  SearchResult result{std::move(schedule), 0.0, !aborted, 1.0,
                      aborted ? *aborted : Termination::kOptimal,
                      {}};
  result.stats.absorb(expander.stats());
  result.makespan = result.schedule.makespan();
  result.stats.elapsed_seconds = timer.seconds();
  result.stats.peak_memory_bytes = policy.peak_memory;
  result.stats.arena_hot_bytes = policy.peak_hot;
  result.stats.arena_cold_bytes = policy.peak_cold;
  return result;
}

SearchResult ida_star_schedule(const dag::TaskGraph& graph,
                               const machine::Machine& machine,
                               const SearchConfig& config, CommMode comm) {
  const SearchProblem problem(graph, machine, comm);
  return ida_star_schedule(problem, config);
}

}  // namespace optsched::core
