#include "core/heuristics.hpp"

#include <algorithm>

namespace optsched::core {

const char* to_string(HFunction h) {
  switch (h) {
    case HFunction::kZero:
      return "h_zero";
    case HFunction::kPaper:
      return "h_paper";
    case HFunction::kPath:
      return "h_path";
    case HFunction::kComposite:
      return "h_composite";
  }
  return "?";
}

namespace {

double h_paper(const SearchProblem& problem, const ScheduleView& view) {
  const auto& graph = problem.graph();
  const auto& sl = problem.levels().static_level;
  const double scale = problem.sl_scale();

  if (view.nmax == dag::kInvalidNode) {
    // Empty schedule: any node's static level is a chain of work that must
    // still execute sequentially, so max_n sl(n) lower-bounds the optimum.
    double best = 0.0;
    for (NodeId n = 0; n < problem.num_nodes(); ++n)
      best = std::max(best, sl[n]);
    return best * scale;
  }
  double best = 0.0;
  for (const auto& [child, cost] : graph.children(view.nmax)) {
    (void)cost;
    if (view.proc_of[child] == machine::kInvalidProc)
      best = std::max(best, sl[child]);
  }
  return best * scale;
}

// Topological earliest-start lower bound. For unscheduled nodes in
// topological order:
//   est(n) = max over parents m of
//              m scheduled ? FT(m)                   (no comm: child may
//                                                     share m's processor)
//                          : est(m) + w(m)/max_speed
// Then the goal cost is at least est(n) + sl(n)/max_speed for every
// unscheduled n (the node still has its static-level chain ahead of it).
double h_path(const SearchProblem& problem, const ScheduleView& view,
              double* est) {
  const auto& graph = problem.graph();
  const auto& sl = problem.levels().static_level;
  const double scale = problem.sl_scale();

  double bound = view.g;
  for (const NodeId n : graph.topo_order()) {
    if (view.proc_of[n] != machine::kInvalidProc) continue;
    double e = 0.0;
    for (const auto& [parent, cost] : graph.parents(n)) {
      (void)cost;
      if (view.proc_of[parent] != machine::kInvalidProc)
        e = std::max(e, view.finish_time[parent]);
      else
        e = std::max(e, est[parent] + graph.weight(parent) * scale);
    }
    est[n] = e;
    bound = std::max(bound, e + sl[n] * scale);
  }
  return bound - view.g;
}

// Aggregate-work bound: the optimum is at least (total work)/(p * max
// speed) regardless of the partial schedule; convert to an h by
// subtracting g (clamped at 0).
double h_load(const SearchProblem& problem, const ScheduleView& view) {
  const double w = problem.graph().total_work() * problem.sl_scale();
  const double bound = w / static_cast<double>(problem.num_procs());
  return std::max(0.0, bound - view.g);
}

}  // namespace

double evaluate_h(HFunction fn, const SearchProblem& problem,
                  const ScheduleView& view, double* scratch) {
  switch (fn) {
    case HFunction::kZero:
      return 0.0;
    case HFunction::kPaper:
      return h_paper(problem, view);
    case HFunction::kPath:
      return h_path(problem, view, scratch);
    case HFunction::kComposite:
      return std::max({h_paper(problem, view), h_path(problem, view, scratch),
                       h_load(problem, view)});
  }
  OPTSCHED_ASSERT(false);
  return 0.0;
}

}  // namespace optsched::core
