#include "core/heuristics.hpp"

#include <algorithm>

#include "core/hotpath.hpp"

namespace optsched::core {

const char* to_string(HFunction h) {
  switch (h) {
    case HFunction::kZero:
      return "h_zero";
    case HFunction::kPaper:
      return "h_paper";
    case HFunction::kPath:
      return "h_path";
    case HFunction::kComposite:
      return "h_composite";
  }
  return "?";
}

namespace {

// Reads the precomputed scaled_static_level array: max over sl[i] * scale
// equals (max over sl[i]) * scale bit-exactly — x -> fl(x * scale) is
// monotone and max is a selection — so this matches the historical
// "max raw levels, then scale" formulation double-for-double.
double h_paper(const SearchProblem& problem, const ScheduleView& view) {
  const auto& graph = problem.graph();
  const double* sl_scaled = problem.scaled_static_level().data();

  if (view.nmax == dag::kInvalidNode) {
    // Empty schedule: any node's static level is a chain of work that must
    // still execute sequentially, so max_n sl(n) lower-bounds the optimum.
    return hotpath::max_reduce(sl_scaled, problem.num_nodes());
  }
  double best = 0.0;
  for (const auto& [child, cost] : graph.children(view.nmax)) {
    (void)cost;
    // Branch-free select: unscheduled children contribute their level,
    // scheduled ones 0 (levels are >= 0, so 0 never wins spuriously).
    const double v =
        view.proc_of[child] == machine::kInvalidProc ? sl_scaled[child] : 0.0;
    best = std::max(best, v);
  }
  return best;
}

// Topological earliest-start lower bound. For unscheduled nodes in
// topological order:
//   est(n) = max over parents m of
//              m scheduled ? FT(m)                   (no comm: child may
//                                                     share m's processor)
//                          : est(m) + w(m)/max_speed
// Then the goal cost is at least est(n) + sl(n)/max_speed for every
// unscheduled n (the node still has its static-level chain ahead of it).
// Two-pass form: pass 1 (hotpath::est_seed, branch-free and vectorized)
// seeds est[i] = finish or 0 and add[i] = 0 or scaled weight, so pass 2's
// inner parent loop is the single expression est[p] + add[p] — scheduled
// parents contribute finish + 0, unscheduled ones est + w*scale, exactly
// the historical branchy values (adding literal 0.0 to finish >= 0 is
// exact). `scratch` must hold 2 * num_nodes doubles.
double h_path(const SearchProblem& problem, const ScheduleView& view,
              double* scratch) {
  const auto& graph = problem.graph();
  const std::size_t v = problem.num_nodes();
  const double* sl_scaled = problem.scaled_static_level().data();
  double* est = scratch;
  double* add = scratch + v;
  hotpath::est_seed(view.proc_of, view.finish_time,
                    problem.scaled_weight().data(), v, est, add);

  double bound = view.g;
  for (const NodeId n : graph.topo_order()) {
    if (view.proc_of[n] != machine::kInvalidProc) continue;
    double e = 0.0;
    for (const auto& [parent, cost] : graph.parents(n)) {
      (void)cost;
      e = std::max(e, est[parent] + add[parent]);
    }
    est[n] = e;  // add[n] stays w*scale: children see e + w(n)*scale
    bound = std::max(bound, e + sl_scaled[n]);
  }
  return bound - view.g;
}

// Aggregate-work bound: the optimum is at least (total work)/(p * max
// speed) regardless of the partial schedule; convert to an h by
// subtracting g (clamped at 0).
double h_load(const SearchProblem& problem, const ScheduleView& view) {
  const double w = problem.graph().total_work() * problem.sl_scale();
  const double bound = w / static_cast<double>(problem.num_procs());
  return std::max(0.0, bound - view.g);
}

}  // namespace

double evaluate_h(HFunction fn, const SearchProblem& problem,
                  const ScheduleView& view, double* scratch) {
  switch (fn) {
    case HFunction::kZero:
      return 0.0;
    case HFunction::kPaper:
      return h_paper(problem, view);
    case HFunction::kPath:
      return h_path(problem, view, scratch);
    case HFunction::kComposite:
      return std::max({h_paper(problem, view), h_path(problem, view, scratch),
                       h_load(problem, view)});
  }
  OPTSCHED_ASSERT(false);
  return 0.0;
}

}  // namespace optsched::core
