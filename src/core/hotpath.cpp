#include "core/hotpath.hpp"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPTSCHED_HOTPATH_X86 1
#include <immintrin.h>
#endif

namespace optsched::core::hotpath {

namespace {

constexpr std::uint32_t kUnscheduled = 0xFFFFFFFFu;  // machine::kInvalidProc

double max_reduce_scalar(const double* x, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void est_seed_scalar(const std::uint32_t* proc_of, const double* finish,
                     const double* w_scaled, std::size_t n, double* est,
                     double* add) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool sched = proc_of[i] != kUnscheduled;
    est[i] = sched ? finish[i] : 0.0;
    add[i] = sched ? 0.0 : w_scaled[i];
  }
}

#if OPTSCHED_HOTPATH_X86

__attribute__((target("avx2"))) double max_reduce_avx2(const double* x,
                                                       std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(x + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m =
      std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

__attribute__((target("avx2"))) void est_seed_avx2(
    const std::uint32_t* proc_of, const double* finish, const double* w_scaled,
    std::size_t n, double* est, double* add) {
  const __m128i invalid = _mm_set1_epi32(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i procs = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(proc_of + i));
    // Sign-extend the 32-bit compare mask to 64-bit lanes: all-ones where
    // the node is unscheduled.
    const __m256d unsched = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(procs, invalid)));
    _mm256_storeu_pd(est + i,
                     _mm256_andnot_pd(unsched, _mm256_loadu_pd(finish + i)));
    _mm256_storeu_pd(add + i,
                     _mm256_and_pd(unsched, _mm256_loadu_pd(w_scaled + i)));
  }
  est_seed_scalar(proc_of + i, finish + i, w_scaled + i, n - i, est + i,
                  add + i);
}

#endif  // OPTSCHED_HOTPATH_X86

using MaxReduceFn = double (*)(const double*, std::size_t);
using EstSeedFn = void (*)(const std::uint32_t*, const double*, const double*,
                           std::size_t, double*, double*);

struct Dispatch {
  MaxReduceFn max_reduce = max_reduce_scalar;
  EstSeedFn est_seed = est_seed_scalar;
  bool wide = false;

  Dispatch() {
#if OPTSCHED_HOTPATH_X86
    if (__builtin_cpu_supports("avx2")) {
      max_reduce = max_reduce_avx2;
      est_seed = est_seed_avx2;
      wide = true;
    }
#endif
  }
};

Dispatch g_dispatch;        // startup choice
bool g_scalar_only = false;  // bench/test override

}  // namespace

double max_reduce(const double* x, std::size_t n) {
  return g_scalar_only ? max_reduce_scalar(x, n) : g_dispatch.max_reduce(x, n);
}

void est_seed(const std::uint32_t* proc_of, const double* finish,
              const double* w_scaled, std::size_t n, double* est,
              double* add) {
  (g_scalar_only ? est_seed_scalar : g_dispatch.est_seed)(proc_of, finish,
                                                          w_scaled, n, est,
                                                          add);
}

bool wide_available() { return g_dispatch.wide; }

void force_scalar(bool scalar_only) { g_scalar_only = scalar_only; }

}  // namespace optsched::core::hotpath
