#include "core/delta.hpp"

#include <cmath>

namespace optsched::core {

const char* to_string(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kTaskCost: return "taskcost";
    case DeltaKind::kEdgeAdd: return "edgeadd";
    case DeltaKind::kEdgeRemove: return "edgedel";
    case DeltaKind::kCommCost: return "commcost";
    case DeltaKind::kProcDrop: return "procdrop";
    case DeltaKind::kProcAdd: return "procadd";
  }
  OPTSCHED_ASSERT(false);
  return "?";
}

namespace {

bool has_edge(const dag::TaskGraph& g, dag::NodeId src, dag::NodeId dst) {
  for (const auto& [child, cost] : g.children(src)) {
    (void)cost;
    if (child == dst) return true;
  }
  return false;
}

void require_node(const dag::TaskGraph& g, dag::NodeId n, const char* role) {
  OPTSCHED_REQUIRE(n < g.num_nodes(), std::string("delta ") + role +
                                          " node " + std::to_string(n) +
                                          " out of range");
}

void require_cost(double v, const char* what) {
  OPTSCHED_REQUIRE(std::isfinite(v) && v >= 0.0,
                   std::string("delta ") + what +
                       " must be finite and >= 0");
}

/// Rebuild the frozen graph with one structural/cost edit applied. The
/// copy preserves node ids, names, and CSR edge order, so everything the
/// delta does not touch compares bit-identical (dag::identical_graphs).
dag::TaskGraph rebuild_graph(const dag::TaskGraph& g,
                             const InstanceDelta& d) {
  dag::TaskGraph out;
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
    const double w = (d.kind == DeltaKind::kTaskCost && n == d.node)
                         ? d.value
                         : g.weight(n);
    out.add_node(w, g.name(n));
  }
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const auto& [child, cost] : g.children(n)) {
      if (d.kind == DeltaKind::kEdgeRemove && n == d.src && child == d.dst)
        continue;
      const double c = (d.kind == DeltaKind::kCommCost && n == d.src &&
                        child == d.dst)
                           ? d.value
                           : cost;
      out.add_edge(n, child, c);
    }
  }
  if (d.kind == DeltaKind::kEdgeAdd) out.add_edge(d.src, d.dst, d.value);
  out.finalize();  // rejects the cycle an edgeadd may introduce
  return out;
}

std::vector<std::vector<machine::ProcId>> adjacency_of(
    const machine::Machine& m) {
  std::vector<std::vector<machine::ProcId>> adj(m.num_procs());
  for (machine::ProcId p = 0; p < m.num_procs(); ++p)
    adj[p].assign(m.neighbors(p).begin(), m.neighbors(p).end());
  return adj;
}

std::vector<double> speeds_of(const machine::Machine& m) {
  std::vector<double> speeds(m.num_procs());
  for (machine::ProcId p = 0; p < m.num_procs(); ++p)
    speeds[p] = m.speed(p);
  return speeds;
}

}  // namespace

DeltaEffect apply_delta(const dag::TaskGraph& graph,
                        const machine::Machine& machine,
                        const InstanceDelta& delta) {
  OPTSCHED_REQUIRE(graph.finalized(), "apply_delta requires finalize()");
  const std::size_t v = graph.num_nodes();

  switch (delta.kind) {
    case DeltaKind::kTaskCost: {
      require_node(graph, delta.node, "taskcost");
      require_cost(delta.value, "taskcost value");
      DeltaEffect eff{rebuild_graph(graph, delta), machine, {}, {}, false, {}};
      eff.dirty_nodes.assign(v, false);
      eff.dirty_nodes[delta.node] = true;
      eff.level_seeds.assign(v, false);
      eff.level_seeds[delta.node] = true;
      eff.proc_map.resize(machine.num_procs());
      for (machine::ProcId p = 0; p < machine.num_procs(); ++p)
        eff.proc_map[p] = p;
      return eff;
    }
    case DeltaKind::kEdgeAdd:
    case DeltaKind::kEdgeRemove:
    case DeltaKind::kCommCost: {
      require_node(graph, delta.src, "edge src");
      require_node(graph, delta.dst, "edge dst");
      OPTSCHED_REQUIRE(delta.src != delta.dst, "delta edge src == dst");
      const bool exists = has_edge(graph, delta.src, delta.dst);
      if (delta.kind == DeltaKind::kEdgeAdd) {
        OPTSCHED_REQUIRE(!exists, "delta edgeadd: edge already exists");
        require_cost(delta.value, "edge cost");
      } else {
        OPTSCHED_REQUIRE(exists, "delta edge does not exist");
        if (delta.kind == DeltaKind::kCommCost)
          require_cost(delta.value, "edge cost");
      }
      DeltaEffect eff{rebuild_graph(graph, delta), machine, {}, {}, false, {}};
      eff.dirty_nodes.assign(v, false);
      eff.dirty_nodes[delta.dst] = true;
      eff.level_seeds.assign(v, false);
      // t-levels change in dst's descendant cone, b/static levels in src's
      // ancestor cone; seeding both endpoints covers both sweeps.
      eff.level_seeds[delta.src] = true;
      eff.level_seeds[delta.dst] = true;
      eff.proc_map.resize(machine.num_procs());
      for (machine::ProcId p = 0; p < machine.num_procs(); ++p)
        eff.proc_map[p] = p;
      return eff;
    }
    case DeltaKind::kProcDrop: {
      OPTSCHED_REQUIRE(delta.proc < machine.num_procs(),
                       "delta procdrop: processor out of range");
      OPTSCHED_REQUIRE(machine.num_procs() > 1,
                       "delta procdrop: cannot drop the last processor");
      auto adj = adjacency_of(machine);
      auto speeds = speeds_of(machine);
      adj.erase(adj.begin() + delta.proc);
      speeds.erase(speeds.begin() + delta.proc);
      for (auto& row : adj) {
        std::vector<machine::ProcId> next;
        next.reserve(row.size());
        for (const machine::ProcId q : row) {
          if (q == delta.proc) continue;
          next.push_back(q > delta.proc ? q - 1 : q);
        }
        row = std::move(next);
      }
      DeltaEffect eff{dag::TaskGraph(graph),
                      machine::Machine(std::move(adj), std::move(speeds),
                                       machine.topology_name() + "-drop"),
                      {}, {}, true, {}};
      eff.proc_map.resize(machine.num_procs());
      for (machine::ProcId p = 0; p < machine.num_procs(); ++p)
        eff.proc_map[p] = p == delta.proc          ? machine::kInvalidProc
                          : p > delta.proc ? p - 1 : p;
      return eff;
    }
    case DeltaKind::kProcAdd: {
      const double speed = delta.value == 0.0 ? 1.0 : delta.value;
      OPTSCHED_REQUIRE(std::isfinite(speed) && speed > 0.0,
                       "delta procadd: speed must be finite and > 0");
      auto adj = adjacency_of(machine);
      auto speeds = speeds_of(machine);
      const auto fresh = static_cast<machine::ProcId>(adj.size());
      adj.emplace_back();
      for (machine::ProcId p = 0; p < fresh; ++p) {
        adj[p].push_back(fresh);
        adj[fresh].push_back(p);
      }
      speeds.push_back(speed);
      DeltaEffect eff{dag::TaskGraph(graph),
                      machine::Machine(std::move(adj), std::move(speeds),
                                       machine.topology_name() + "-add"),
                      {}, {}, true, {}};
      eff.proc_map.resize(machine.num_procs());
      for (machine::ProcId p = 0; p < machine.num_procs(); ++p)
        eff.proc_map[p] = p;
      return eff;
    }
  }
  throw util::Error("unknown delta kind");
}

}  // namespace optsched::core
