// Search configuration: pruning toggles (paper §3.2), heuristic selection,
// the Aε* approximation factor (§3.4), and resource limits.
#pragma once

#include <cstdint>

#include "core/controls.hpp"
#include "core/heuristics.hpp"

namespace optsched::core {

/// The paper's state-space pruning techniques, individually toggleable so
/// Table 1's "A* full" column (no pruning) and the ablation bench can be
/// reproduced. Duplicate detection via the CLOSED/SEEN set is part of the
/// base A* algorithm (its absence makes the search an exhaustive tree walk)
/// and is listed here only for experimentation.
struct PruneConfig {
  bool processor_isomorphism = true;
  bool node_equivalence = true;
  bool upper_bound = true;
  bool duplicate_detection = true;

  /// Paper fidelity switch for the upper-bound rule. The paper discards a
  /// state only when f(s) > U ("greater than"), which keeps the entire
  /// f == U frontier alive when the heuristic schedule is already optimal
  /// — a common case. Our default discards f(s) >= bound and treats the
  /// heuristic schedule as an incumbent (classic B&B semantics), proving
  /// optimality by exhausting every state strictly cheaper than it. Set
  /// true to reproduce the paper's search tree (e.g. Figure 3) exactly.
  bool strict_upper_bound = false;

  /// All §3.2 techniques on (the paper's "A*" column).
  static PruneConfig all() { return {}; }

  /// No §3.2 techniques (the paper's "A* full" column). Duplicate
  /// detection stays on — it is part of the base algorithm.
  static PruneConfig none() {
    return {.processor_isomorphism = false,
            .node_equivalence = false,
            .upper_bound = false,
            .duplicate_detection = true,
            .strict_upper_bound = false};
  }

  /// Exactly the paper's §3.2 behaviour (Figure 3's worked example).
  static PruneConfig paper() {
    PruneConfig p;
    p.strict_upper_bound = true;
    return p;
  }
};

/// OPEN list implementation for best-first engines. kAuto picks the
/// bucketed queue whenever the instance's fixed-point key scale certifies
/// it (core/key_scale.hpp) and the configuration is exact best-first
/// (h_weight 1, epsilon 0, upper-bound pruning on); otherwise the 4-ary
/// heap. kBucket *requests* buckets but still falls back — soundness is
/// never configurable — with the reason reported in SearchStats.
enum class QueueSelect : std::uint8_t { kAuto, kBucket, kHeap };

const char* to_string(QueueSelect q);

struct SearchConfig {
  PruneConfig prune{};
  HFunction h = HFunction::kPaper;

  /// OPEN list selection (see QueueSelect). Pop order is identical either
  /// way, so results are bit-identical; this is purely a speed knob.
  QueueSelect queue = QueueSelect::kAuto;

  /// Weighted A*: child f = g + h_weight * h. 1.0 = optimal A*; w > 1
  /// returns a solution within factor w of optimal, faster (extension).
  double h_weight = 1.0;

  /// Aε* (paper §3.4): when > 0, expand from the FOCAL list
  /// {s : f(s) <= (1+epsilon) * min f} choosing the smallest h; the
  /// returned schedule is within (1+epsilon) of optimal.
  double epsilon = 0.0;

  /// Update the incumbent as soon as a goal state is *generated* (not just
  /// expanded), tightening the upper-bound pruning threshold on the fly —
  /// anytime branch-and-bound behaviour. Disabled in paper-fidelity mode.
  bool incumbent_updates = true;

  /// Resource limits; 0 = unlimited. When a limit is hit the search
  /// returns the best schedule known so far (never worse than the
  /// upper-bound heuristic's) with proved_optimal = false.
  std::uint64_t max_expansions = 0;
  double time_budget_ms = 0.0;
  /// Cap on search-state memory (arena + CLOSED set + OPEN list). Honored
  /// exactly by the serial A*/Aε*; the parallel engine enforces it as a
  /// per-PPE share; IDA* runs in O(v) and never trips it.
  std::size_t max_memory_bytes = 0;

  /// Cooperative cancellation and progress observation (see controls.hpp).
  SearchControls controls{};

  /// Exactly the paper's algorithm as described (for fidelity tests):
  /// strict f > U pruning, goal recognized at expansion only.
  static SearchConfig paper_faithful() {
    SearchConfig c;
    c.prune = PruneConfig::paper();
    c.incumbent_updates = false;
    return c;
  }
};

enum class Termination : std::uint8_t {
  kOptimal,          ///< goal popped with minimum f (or OPEN exhausted)
  kBoundedOptimal,   ///< Aε*/weighted A* goal within the configured factor
  kExpansionLimit,
  kTimeLimit,
  kMemoryLimit,      ///< SearchConfig::max_memory_bytes reached
  kCancelled,        ///< SearchControls::cancel was triggered
  kHeuristic,        ///< polynomial list heuristic ran (no optimality proof)
};

const char* to_string(Termination t);

}  // namespace optsched::core
