// Order-independent 128-bit state signatures.
//
// A search state is the *set* of (node, processor, finish-time) triples of
// its partial schedule: two states with equal sets are the same partial
// schedule (finish times are a function of the set), so duplicate states
// reached by different scheduling orders — Figure 3's "state not generated
// because it has been visited before" — are detected exactly. The signature
// is a commutative sum of per-triple splitmix64 mixes; summation makes it
// incrementally updatable in O(1) per expansion and independent of the
// insertion order. Two independent mixes give 128 bits, making accidental
// collisions (which would wrongly prune a state) vanishingly improbable
// (~2^-128 per pair; < 2^-40 across 10^12 generated states).
#pragma once

#include <bit>
#include <cstdint>

#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "util/flat_set.hpp"
#include "util/rng.hpp"

namespace optsched::core {

/// Signature of the empty partial schedule (nonzero so the zero key stays
/// reserved as the flat-set sentinel).
inline util::Key128 root_signature() noexcept {
  return {0x6f4a91c3be5d2708ULL, 0x1d2c3b4a59687f6eULL};
}

/// Signature after adding (node, proc, finish) to `base`.
inline util::Key128 extend_signature(util::Key128 base, dag::NodeId node,
                                     machine::ProcId proc,
                                     double finish) noexcept {
  const std::uint64_t ft_bits = std::bit_cast<std::uint64_t>(finish);
  const std::uint64_t packed = (static_cast<std::uint64_t>(node) << 32) |
                               static_cast<std::uint64_t>(proc);
  const std::uint64_t m =
      util::splitmix64(packed ^ util::splitmix64(ft_bits));
  base.lo += m;
  base.hi += util::splitmix64(m ^ 0xc2b2ae3d27d4eb4fULL);
  return base;
}

}  // namespace optsched::core
