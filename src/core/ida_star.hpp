// IDA* — iterative-deepening A* for optimal scheduling in O(v) memory.
//
// The paper singles out memory as the limiting resource of best-first
// search ("a huge memory requirement to store the search states is also
// another common problem"). IDA* trades re-expansion for memory: repeated
// depth-first probes with an increasing f threshold, keeping only the
// current assignment stack. The same pruning rules (processor isomorphism,
// node equivalence, upper bound) apply per probe; there is no CLOSED set,
// so transposition duplicates are re-explored — the classic trade-off.
#pragma once

#include "core/astar.hpp"

namespace optsched::core {

/// Optimal schedule via IDA*. Honors config.prune, config.h,
/// config.max_expansions (counted across probes), config.time_budget_ms,
/// and config.controls (cancellation + progress); epsilon and h_weight
/// must be at their defaults — anything else throws util::Error (the
/// unified API rejects such requests up front, see api/registry.hpp).
SearchResult ida_star_schedule(const SearchProblem& problem,
                               const SearchConfig& config = {});

SearchResult ida_star_schedule(const dag::TaskGraph& graph,
                               const machine::Machine& machine,
                               const SearchConfig& config = {},
                               CommMode comm = CommMode::kUnitDistance);

}  // namespace optsched::core
