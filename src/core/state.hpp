// Search states and the structure-of-arrays state arena.
//
// A state is one assignment step: "schedule `node` on `proc`", chained to
// its parent state. The full partial schedule a state denotes is recovered
// by replaying the parent chain (incrementally — see core/expansion.hpp),
// so a state stays small regardless of graph size. The paper identifies
// memory as the binding resource for A*; this layout keeps millions of
// states resident.
//
// The arena splits each state into a *hot* and a *cold* record:
//
//   HotState (24 bytes)   f, g, parent link, packed node/proc/depth — the
//                         fields the pop -> stale-filter -> replay path
//                         reads for every state it touches.
//   ColdState (24 bytes)  the 128-bit duplicate-detection signature and the
//                         stored finish time — read only when a state is
//                         generated (signature extension), deduplicated, or
//                         transferred between PPEs.
//
// Keeping the two apart more than halves the resident working set of the
// search loop versus the former 56-byte AoS record: consecutive frontier
// pops touch only the hot array, and the cold array stays out of cache
// until the next generation burst. `State` remains as the generation-time
// value type; `StateArena::add` splits it.
//
// Both arrays are plain vectors: all access is by index, and no caller may
// hold a reference across an `add` (growth reallocates).
#pragma once

#include <cstdint>
#include <vector>

#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "util/assert.hpp"
#include "util/flat_set.hpp"

namespace optsched::core {

using StateIndex = std::uint32_t;
inline constexpr StateIndex kNoParent = static_cast<StateIndex>(-1);

/// Packed-field capacity of the hot record (12/8/12 bits for
/// node/proc/depth, top code reserved as the root sentinel). Far beyond
/// what any exact state-space search can enumerate; engines validate their
/// problem against these before building an arena.
inline constexpr std::uint32_t kMaxArenaNodes = (1u << 12) - 2;  // 4094
inline constexpr std::uint32_t kMaxArenaProcs = (1u << 8) - 2;   // 254

/// Generation-time state record (the full AoS view). Built by the expander
/// for each surviving child, split into hot/cold by StateArena::add.
struct State {
  util::Key128 sig;          ///< order-independent partial-schedule identity
  double finish = 0.0;       ///< finish time of `node`
  double g = 0.0;            ///< max finish time over scheduled nodes
  double h = 0.0;            ///< admissible estimate of remaining length
  StateIndex parent = kNoParent;
  dag::NodeId node = dag::kInvalidNode;
  machine::ProcId proc = machine::kInvalidProc;
  std::uint32_t depth = 0;   ///< number of scheduled nodes

  double f() const noexcept { return g + h; }
  bool is_root() const noexcept { return parent == kNoParent && depth == 0; }
};

/// Resident per-state record of the search loop. Exactly 24 bytes.
struct HotState {
  double f = 0.0;            ///< g + h, fixed at generation time
  double g = 0.0;
  StateIndex parent = kNoParent;
  std::uint32_t packed = 0;  ///< node:12 | proc:8 | depth:12

  static constexpr std::uint32_t kNodeShift = 20;
  static constexpr std::uint32_t kProcShift = 12;
  static constexpr std::uint32_t kNodeMask = 0xfff;
  static constexpr std::uint32_t kProcMask = 0xff;
  static constexpr std::uint32_t kDepthMask = 0xfff;

  static std::uint32_t pack(dag::NodeId node, machine::ProcId proc,
                            std::uint32_t depth) noexcept {
    // kInvalidNode / kInvalidProc truncate to the all-ones sentinel codes.
    return ((node & kNodeMask) << kNodeShift) |
           ((proc & kProcMask) << kProcShift) | (depth & kDepthMask);
  }

  dag::NodeId node() const noexcept {
    const std::uint32_t raw = (packed >> kNodeShift) & kNodeMask;
    return raw == kNodeMask ? dag::kInvalidNode : raw;
  }
  machine::ProcId proc() const noexcept {
    const std::uint32_t raw = (packed >> kProcShift) & kProcMask;
    return raw == kProcMask ? machine::kInvalidProc : raw;
  }
  std::uint32_t depth() const noexcept { return packed & kDepthMask; }

  /// Heuristic value, recovered from the stored sum. Exact enough for the
  /// FOCAL tie-break (its only consumer); pushes at generation time use the
  /// generation-record h directly.
  double h() const noexcept { return f - g; }

  bool is_root() const noexcept { return parent == kNoParent && depth() == 0; }
};
static_assert(sizeof(HotState) == 24, "hot state record must stay 24 bytes");

/// Generation/dedup/transfer-time fields, kept off the search loop's path.
struct ColdState {
  util::Key128 sig;
  double finish = 0.0;
};

class StateArena {
 public:
  /// Engines call this once per solve: the packed hot record caps the
  /// instance size (far above exact-search tractability either way).
  static void require_packable(std::uint32_t num_nodes,
                               std::uint32_t num_procs) {
    OPTSCHED_REQUIRE(num_nodes <= kMaxArenaNodes,
                     "state-space search supports at most 4094 nodes");
    OPTSCHED_REQUIRE(num_procs <= kMaxArenaProcs,
                     "state-space search supports at most 254 processors");
  }

  StateIndex add(const State& s) {
    const auto idx = static_cast<StateIndex>(hot_.size());
    hot_.push_back({s.g + s.h, s.g, s.parent,
                    HotState::pack(s.node, s.proc, s.depth)});
    cold_.push_back({s.sig, s.finish});
    return idx;
  }

  /// Pre-size both arrays. The parallel engine calls this from each PPE's
  /// own thread after pinning, so the arena's first pages are first-touched
  /// (hence NUMA-placed) where the PPE runs.
  void reserve(std::size_t n) {
    hot_.reserve(n);
    cold_.reserve(n);
  }

  const HotState& hot(StateIndex i) const {
    OPTSCHED_ASSERT(i < hot_.size());
    return hot_[i];
  }

  const util::Key128& sig(StateIndex i) const {
    OPTSCHED_ASSERT(i < cold_.size());
    return cold_[i].sig;
  }

  double finish(StateIndex i) const {
    OPTSCHED_ASSERT(i < cold_.size());
    return cold_[i].finish;
  }

  /// Re-derive f after recomputing h — used only to patch imported states
  /// after a PPE transfer so re-sharing them sends the right bound.
  void patch_h(StateIndex i, double h) {
    OPTSCHED_ASSERT(i < hot_.size());
    hot_[i].f = hot_[i].g + h;
  }

  std::size_t size() const noexcept { return hot_.size(); }

  void clear() noexcept {
    hot_.clear();
    cold_.clear();
  }

  /// Drop every state with index >= new_size (IDA*'s backtrack reclaim).
  /// Indices below new_size keep their contents; callers that cache loaded
  /// indices must invalidate anything at or above the cut.
  void truncate(std::size_t new_size) {
    if (new_size < hot_.size()) {
      hot_.resize(new_size);
      cold_.resize(new_size);
    }
  }

  /// Resident footprint of the search loop's working set.
  std::size_t hot_memory_bytes() const noexcept {
    return hot_.capacity() * sizeof(HotState);
  }
  /// Generation/transfer-time footprint (signatures + stored finish times).
  std::size_t cold_memory_bytes() const noexcept {
    return cold_.capacity() * sizeof(ColdState);
  }
  std::size_t memory_bytes() const noexcept {
    return hot_memory_bytes() + cold_memory_bytes();
  }

 private:
  std::vector<HotState> hot_;
  std::vector<ColdState> cold_;
};

}  // namespace optsched::core
