// Search states and the state arena.
//
// A state is one assignment step: "schedule `node` on `proc`", chained to
// its parent state. The full partial schedule a state denotes is recovered
// by walking the parent chain and replaying the assignments (O(depth) with
// a small constant — see core/expansion.hpp), so a state itself stays at
// ~56 bytes regardless of graph size. The paper identifies memory as the
// binding resource for A*; this layout keeps millions of states resident.
//
// States are immutable once created and live in an arena (std::deque gives
// stable addresses and index-based parent links that serialize trivially
// for the parallel algorithm's state transfers).
#pragma once

#include <cstdint>
#include <deque>

#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "util/flat_set.hpp"

namespace optsched::core {

using StateIndex = std::uint32_t;
inline constexpr StateIndex kNoParent = static_cast<StateIndex>(-1);

struct State {
  util::Key128 sig;          ///< order-independent partial-schedule identity
  double finish = 0.0;       ///< finish time of `node`
  double g = 0.0;            ///< max finish time over scheduled nodes
  double h = 0.0;            ///< admissible estimate of remaining length
  StateIndex parent = kNoParent;
  dag::NodeId node = dag::kInvalidNode;
  machine::ProcId proc = machine::kInvalidProc;
  std::uint32_t depth = 0;   ///< number of scheduled nodes

  double f() const noexcept { return g + h; }
  bool is_root() const noexcept { return parent == kNoParent && depth == 0; }
};

class StateArena {
 public:
  StateIndex add(const State& s) {
    const auto idx = static_cast<StateIndex>(states_.size());
    states_.push_back(s);
    return idx;
  }

  const State& operator[](StateIndex i) const {
    OPTSCHED_ASSERT(i < states_.size());
    return states_[i];
  }

  /// Mutable access — used only to patch the heuristic value of imported
  /// states after replay (parallel transfers); search states are otherwise
  /// immutable.
  State& at(StateIndex i) {
    OPTSCHED_ASSERT(i < states_.size());
    return states_[i];
  }

  std::size_t size() const noexcept { return states_.size(); }

  std::size_t memory_bytes() const noexcept {
    return states_.size() * sizeof(State);
  }

 private:
  std::deque<State> states_;
};

/// Root (empty-schedule) state.
State make_root_state();

}  // namespace optsched::core
