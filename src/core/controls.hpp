// Cross-cutting search controls shared by every engine: cooperative
// cancellation and mid-search progress observation.
//
// Engines poll the cancellation token at expansion boundaries (never
// mid-expansion), so cancelling is cheap for the search loop — one relaxed
// atomic load per state — and a cancelled anytime engine still returns its
// best incumbent with Termination::kCancelled. Progress callbacks fire
// every `progress_every` expansions with the current frontier lower bound
// and incumbent, enabling live dashboards and anytime consumers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

namespace optsched::core {

/// Copyable handle to a shared cancellation flag. Every copy observes the
/// same flag, so a token embedded in a config struct can be cancelled from
/// another thread after the search has started. cancel() is sticky.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Snapshot passed to progress callbacks.
struct ProgressEvent {
  std::uint64_t expanded = 0;    ///< states expanded so far
  double lower_bound = 0.0;      ///< current frontier min f / IDA* threshold
  double incumbent = 0.0;        ///< best complete schedule length known
  double elapsed_seconds = 0.0;
};

using ProgressFn = std::function<void(const ProgressEvent&)>;

/// Controls every engine honors (serial engines call `progress` from the
/// calling thread; the parallel engine calls it from worker threads, one
/// call at a time under an internal mutex).
struct SearchControls {
  CancellationToken cancel{};
  ProgressFn progress{};
  std::uint64_t progress_every = 1024;  ///< expansions between callbacks
};

/// Shared throttle for progress callbacks: open(n) returns true when the
/// callback should fire at expansion count n, and advances the threshold
/// by progress_every. Engines wrap it with their own event construction.
/// The referenced controls must outlive the gate.
class ProgressGate {
 public:
  explicit ProgressGate(const SearchControls& controls)
      : controls_(&controls) {}

  bool open(std::uint64_t expanded) {
    if (!controls_->progress || expanded < next_) return false;
    const std::uint64_t every =
        controls_->progress_every ? controls_->progress_every : 1;
    next_ = expanded + every;
    return true;
  }

 private:
  const SearchControls* controls_;
  std::uint64_t next_ = 0;
};

}  // namespace optsched::core
