// Immutable per-search context: the scheduling instance plus everything
// precomputed from it (levels, node-equivalence classes, processor
// automorphisms, ready-node priority order, the heuristic upper bound).
// Shared read-only by all PPE threads in the parallel algorithm.
#pragma once

#include <memory>
#include <vector>

#include "core/key_scale.hpp"
#include "dag/equivalence.hpp"
#include "dag/graph.hpp"
#include "dag/levels.hpp"
#include "machine/automorphism.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace optsched::core {

using dag::NodeId;
using machine::CommMode;
using machine::ProcId;

class SearchProblem {
 public:
  SearchProblem(const dag::TaskGraph& graph, const machine::Machine& machine,
                CommMode comm = CommMode::kUnitDistance);

  /// Warm construction after an InstanceDelta: reuse what the delta cannot
  /// have changed instead of recomputing from scratch. Levels are patched
  /// via dag::update_levels restricted to the seeds' cones (pass an empty
  /// `level_seeds` when the graph is unchanged — the previous levels are
  /// copied verbatim), and the processor automorphism group is copied when
  /// `machine_changed` is false. `previous` must describe the pre-delta
  /// instance with the same node count. The result is bit-identical to a
  /// cold SearchProblem of (graph, machine, comm).
  SearchProblem(const dag::TaskGraph& graph, const machine::Machine& machine,
                CommMode comm, const SearchProblem& previous,
                const std::vector<bool>& level_seeds, bool machine_changed);

  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const machine::Machine& machine() const noexcept { return *machine_; }
  CommMode comm() const noexcept { return comm_; }
  const dag::Levels& levels() const noexcept { return levels_; }
  const dag::NodeEquivalence& equivalence() const noexcept { return equiv_; }
  const machine::AutomorphismGroup& automorphisms() const noexcept {
    return autos_;
  }

  std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(graph_->num_nodes());
  }
  std::uint32_t num_procs() const noexcept { return machine_->num_procs(); }

  /// Scale factor turning a static level (sum of node weights) into an
  /// admissible execution-time lower bound on a heterogeneous machine.
  double sl_scale() const noexcept { return sl_scale_; }

  /// Rank of a node in the paper's ready-node ordering (descending
  /// b-level + t-level; rank 0 = highest priority). Ties by smaller id.
  std::uint32_t priority_rank(NodeId n) const { return priority_rank_[n]; }

  /// Inverse permutation of priority_rank: node_by_rank()[r] is the node
  /// with rank r. Lets the expansion ready-bitset iterate in rank order.
  const std::vector<NodeId>& node_by_rank() const noexcept {
    return node_by_rank_;
  }

  /// Fixed-point grid certified for every f/g the search can produce
  /// (core/key_scale.hpp); !exact means the bucket queue must not be used.
  const KeyScale& key_scale() const noexcept { return key_scale_; }

  /// static_level[n] * sl_scale and weight(n) * sl_scale, precomputed so
  /// the heuristic inner loops read contiguous arrays with no per-element
  /// multiply (and so scalar and wide paths share the exact same doubles).
  const std::vector<double>& scaled_static_level() const noexcept {
    return scaled_static_level_;
  }
  const std::vector<double>& scaled_weight() const noexcept {
    return scaled_weight_;
  }

  /// The paper's upper-bound heuristic schedule (the incumbent the search
  /// starts from) and its makespan U.
  const sched::Schedule& upper_bound_schedule() const noexcept { return *ub_; }
  double upper_bound() const noexcept { return ub_len_; }

 private:
  /// Priority ranks + upper-bound schedule, shared by both constructors.
  void init_derived();

  const dag::TaskGraph* graph_;
  const machine::Machine* machine_;
  CommMode comm_;
  dag::Levels levels_;
  dag::NodeEquivalence equiv_;
  machine::AutomorphismGroup autos_;
  std::vector<std::uint32_t> priority_rank_;
  std::vector<NodeId> node_by_rank_;
  std::shared_ptr<const sched::Schedule> ub_;
  double ub_len_ = 0.0;
  double sl_scale_ = 1.0;
  KeyScale key_scale_;
  std::vector<double> scaled_static_level_;
  std::vector<double> scaled_weight_;
};

}  // namespace optsched::core
