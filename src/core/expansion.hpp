// State expansion: rebuilding a state's schedule context from its parent
// chain and generating successor states (paper §3.1's expansion operator
// with §3.2's pruning techniques applied).
//
// States store only their last assignment (core/state.hpp); the full
// partial-schedule context — per-node finish times and processors, per-
// processor ready times, the ready list — is reconstructed here in
// O(depth + e) by replaying the chain. The replay is deterministic, so the
// recomputed times equal the stored ones exactly (asserted).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/heuristics.hpp"
#include "core/problem.hpp"
#include "core/signature.hpp"
#include "core/state.hpp"
#include "util/flat_set.hpp"

namespace optsched::core {

/// Counters accumulated across expansions (reported in SearchResult).
struct ExpandStats {
  std::uint64_t expanded = 0;          ///< states whose successors were built
  std::uint64_t generated = 0;         ///< successor states stored
  std::uint64_t duplicates_dropped = 0;///< successors already seen
  std::uint64_t pruned_upper_bound = 0;
  std::uint64_t skipped_equivalence = 0;  ///< ready nodes skipped (Def. 3)
  std::uint64_t skipped_isomorphism = 0;  ///< processors skipped (Def. 2)

  void merge(const ExpandStats& o) {
    expanded += o.expanded;
    generated += o.generated;
    duplicates_dropped += o.duplicates_dropped;
    pruned_upper_bound += o.pruned_upper_bound;
    skipped_equivalence += o.skipped_equivalence;
    skipped_isomorphism += o.skipped_isomorphism;
  }
};

/// Reconstructed schedule context of one state. One instance per search
/// thread; all storage is reused across load() calls.
class ExpansionContext {
 public:
  explicit ExpansionContext(const SearchProblem& problem);

  /// Rebuild the context for `arena[index]`.
  void load(const StateArena& arena, StateIndex index);

  const SearchProblem& problem() const noexcept { return *problem_; }

  bool scheduled(NodeId n) const { return proc_of_[n] != machine::kInvalidProc; }
  double finish_time(NodeId n) const { return finish_[n]; }
  ProcId proc_of(NodeId n) const { return proc_of_[n]; }
  double proc_ready(ProcId p) const { return proc_ready_[p]; }
  const std::vector<bool>& busy() const noexcept { return busy_; }
  double g() const noexcept { return g_; }
  NodeId nmax() const noexcept { return nmax_; }
  std::uint32_t depth() const noexcept { return depth_; }

  /// Ready nodes in the paper's priority order (descending b+t level).
  const std::vector<NodeId>& ready() const noexcept { return ready_; }

  /// Earliest start of `n` on `p` given this context (append semantics).
  double start_time(NodeId n, ProcId p) const;

  ScheduleView view() const {
    return {finish_.data(), proc_of_.data(), g_, nmax_, depth_};
  }

  /// Assignment sequence (root to this state) — for schedule reconstruction
  /// and for serializing states across PPEs.
  const std::vector<std::pair<NodeId, ProcId>>& assignments() const noexcept {
    return assignment_seq_;
  }

 private:
  friend class Expander;

  const SearchProblem* problem_;
  std::vector<double> finish_;
  std::vector<ProcId> proc_of_;
  std::vector<double> proc_ready_;
  std::vector<bool> busy_;
  std::vector<NodeId> ready_;
  std::vector<std::uint32_t> pending_parents_;
  std::vector<StateIndex> chain_;  // scratch for the parent walk
  std::vector<std::pair<NodeId, ProcId>> assignment_seq_;
  double g_ = 0.0;
  NodeId nmax_ = dag::kInvalidNode;
  std::uint32_t depth_ = 0;
};

/// Generates the successors of a state, applying the configured pruning.
/// The same Expander instance must not be used concurrently; the parallel
/// algorithm creates one per PPE.
class Expander {
 public:
  Expander(const SearchProblem& problem, const SearchConfig& config);

  /// Expand arena[index]. Every surviving successor is appended to `arena`
  /// and reported through `emit(StateIndex, const State&)`. `seen` receives
  /// the signatures of all surviving successors (duplicate filter).
  /// `prune_bound` is the current upper-bound threshold (the incumbent
  /// makespan, or the static U in paper-fidelity mode); children with
  /// f >= bound (f > bound when strict_upper_bound) are discarded.
  template <typename Emit>
  void expand(StateArena& arena, util::FlatSet128& seen, StateIndex index,
              double prune_bound, Emit&& emit);

  ExpandStats& stats() noexcept { return stats_; }
  const ExpandStats& stats() const noexcept { return stats_; }
  const ExpansionContext& context() const noexcept { return ctx_; }

 private:
  /// Build the child state for (node -> proc) on top of the loaded context.
  /// Returns false if the child was pruned.
  template <typename Emit>
  bool try_emit_child(StateArena& arena, util::FlatSet128& seen,
                      StateIndex parent_index, NodeId node, ProcId proc,
                      double prune_bound, Emit&& emit);

  const SearchProblem* problem_;
  SearchConfig config_;
  ExpansionContext ctx_;
  ExpandStats stats_;
  std::vector<double> h_scratch_;
  std::vector<ProcId> proc_rep_;
  std::vector<bool> class_taken_;
};

// ---- implementation of the templated members ----------------------------

template <typename Emit>
void Expander::expand(StateArena& arena, util::FlatSet128& seen,
                      StateIndex index, double prune_bound, Emit&& emit) {
  ctx_.load(arena, index);
  ++stats_.expanded;

  const auto& autos = problem_->automorphisms();
  const std::uint32_t p = problem_->num_procs();

  // Processor isomorphism (Def. 2 / automorphism orbits): try only one
  // representative per equivalence class of processors.
  if (config_.prune.processor_isomorphism) {
    autos.state_classes(ctx_.busy_, proc_rep_);
  } else {
    proc_rep_.resize(p);
    for (ProcId q = 0; q < p; ++q) proc_rep_[q] = q;
  }

  // Node equivalence (Def. 3): among ready nodes of one equivalence class,
  // expand only the first (equivalent nodes tie in priority and are
  // ordered by id, so the first seen is the smallest id).
  const auto& equiv = problem_->equivalence();
  if (config_.prune.node_equivalence) {
    class_taken_.assign(problem_->num_nodes(), false);
  }

  for (const NodeId n : ctx_.ready_) {
    if (config_.prune.node_equivalence) {
      const NodeId rep = equiv.representative(n);
      if (class_taken_[rep]) {
        ++stats_.skipped_equivalence;
        continue;
      }
      class_taken_[rep] = true;
    }
    for (ProcId q = 0; q < p; ++q) {
      if (proc_rep_[q] != q) {
        ++stats_.skipped_isomorphism;
        continue;
      }
      try_emit_child(arena, seen, index, n, q, prune_bound, emit);
    }
  }
}

template <typename Emit>
bool Expander::try_emit_child(StateArena& arena, util::FlatSet128& seen,
                              StateIndex parent_index, NodeId node,
                              ProcId proc, double prune_bound, Emit&& emit) {
  const State& parent = arena[parent_index];

  const double st = ctx_.start_time(node, proc);
  const double ft =
      st + problem_->machine().exec_time(problem_->graph().weight(node), proc);
  const double child_g = std::max(ctx_.g_, ft);

  // Temporarily extend the context so the heuristic sees the child state.
  const NodeId saved_nmax = ctx_.nmax_;
  const double saved_g = ctx_.g_;
  ctx_.finish_[node] = ft;
  ctx_.proc_of_[node] = proc;
  ctx_.g_ = child_g;
  if (ft > saved_g || saved_nmax == dag::kInvalidNode) ctx_.nmax_ = node;
  ctx_.depth_ += 1;

  const double h =
      evaluate_h(config_.h, *problem_, ctx_.view(), h_scratch_.data()) *
      config_.h_weight;

  // Restore the context before any early return.
  ctx_.finish_[node] = 0.0;
  ctx_.proc_of_[node] = machine::kInvalidProc;
  ctx_.g_ = saved_g;
  ctx_.nmax_ = saved_nmax;
  ctx_.depth_ -= 1;

  const double f = child_g + h;
  if (config_.prune.upper_bound) {
    const bool over = config_.prune.strict_upper_bound
                          ? f > prune_bound + 1e-9
                          : f >= prune_bound - 1e-9;
    if (over) {
      ++stats_.pruned_upper_bound;
      return false;
    }
  }

  const util::Key128 sig = extend_signature(parent.sig, node, proc, ft);
  if (config_.prune.duplicate_detection && !seen.insert(sig)) {
    ++stats_.duplicates_dropped;
    return false;
  }

  State child;
  child.sig = sig;
  child.finish = ft;
  child.g = child_g;
  child.h = h;
  child.parent = parent_index;
  child.node = node;
  child.proc = proc;
  child.depth = parent.depth + 1;

  const StateIndex idx = arena.add(child);
  ++stats_.generated;
  emit(idx, arena[idx]);
  return true;
}

/// Rebuild the complete schedule a goal state denotes.
sched::Schedule reconstruct_schedule(const SearchProblem& problem,
                                     const StateArena& arena,
                                     StateIndex goal_index);

}  // namespace optsched::core
