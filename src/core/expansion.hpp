// State expansion: rebuilding a state's schedule context from its parent
// chain and generating successor states (paper §3.1's expansion operator
// with §3.2's pruning techniques applied).
//
// States store only their last assignment (core/state.hpp); the full
// partial-schedule context — per-node finish times and processors, per-
// processor ready times, the ready list — lives in ExpansionContext.
// A full rebuild (`load`) replays the whole chain in O(depth + e).
// `move_to` exploits frontier locality instead: consecutive pops from OPEN
// are usually near each other in the search tree, so it finds the lowest
// common ancestor of the currently loaded state and the target, rewinds
// assignments back to the LCA through an undo stack, and replays only the
// divergent suffix — falling back to `load` when the delta would do more
// assignment work than a full replay. Both paths are deterministic, so the
// recomputed times equal the stored ones exactly (asserted), and the
// full/incremental split is observable through ExpandStats.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/heuristics.hpp"
#include "core/problem.hpp"
#include "core/signature.hpp"
#include "core/state.hpp"
#include "util/flat_set.hpp"

namespace optsched::core {

/// Counters accumulated across expansions (reported in SearchResult).
struct ExpandStats {
  std::uint64_t expanded = 0;          ///< states whose successors were built
  std::uint64_t generated = 0;         ///< successor states stored
  std::uint64_t duplicates_dropped = 0;///< successors already seen
  std::uint64_t pruned_upper_bound = 0;
  std::uint64_t skipped_equivalence = 0;  ///< ready nodes skipped (Def. 3)
  std::uint64_t skipped_isomorphism = 0;  ///< processors skipped (Def. 2)
  std::uint64_t loads_full = 0;           ///< context rebuilt from the root
  std::uint64_t loads_incremental = 0;    ///< context delta-replayed via LCA
  std::uint64_t assignments_replayed = 0; ///< apply ops across all loads

  void merge(const ExpandStats& o) {
    expanded += o.expanded;
    generated += o.generated;
    duplicates_dropped += o.duplicates_dropped;
    pruned_upper_bound += o.pruned_upper_bound;
    skipped_equivalence += o.skipped_equivalence;
    skipped_isomorphism += o.skipped_isomorphism;
    loads_full += o.loads_full;
    loads_incremental += o.loads_incremental;
    assignments_replayed += o.assignments_replayed;
  }
};

/// Reconstructed schedule context of one state. One instance per search
/// thread; all storage is reused across load()/move_to() calls.
class ExpansionContext {
 public:
  explicit ExpansionContext(const SearchProblem& problem);

  /// Rebuild the context for `arena[index]` from scratch.
  void load(const StateArena& arena, StateIndex index);

  /// Bring the context to `arena[index]` by rewinding to the lowest common
  /// ancestor of the currently loaded state and replaying the divergent
  /// suffix; falls back to load() past the divergence threshold (or when
  /// nothing valid is loaded). Bit-exact with a fresh load().
  void move_to(const StateArena& arena, StateIndex index);

  /// Forget the loaded state (e.g. the arena was cleared or swapped).
  void invalidate() noexcept { attached_ = false; }

  /// The arena dropped every index >= first_dropped (StateArena::truncate);
  /// forget the loaded state if it was among them. Surviving indices keep
  /// their contents, so a loaded state below the cut stays valid.
  void invalidate_from(StateIndex first_dropped) noexcept {
    if (attached_ && loaded_ >= first_dropped) attached_ = false;
  }

  /// Counter sink for load/replay accounting (may be null).
  void set_stats(ExpandStats* stats) noexcept { stats_ = stats; }

  const SearchProblem& problem() const noexcept { return *problem_; }

  bool scheduled(NodeId n) const { return proc_of_[n] != machine::kInvalidProc; }
  double finish_time(NodeId n) const { return finish_[n]; }
  ProcId proc_of(NodeId n) const { return proc_of_[n]; }
  double proc_ready(ProcId p) const { return proc_ready_[p]; }
  const std::vector<bool>& busy() const noexcept { return busy_; }
  double g() const noexcept { return g_; }
  NodeId nmax() const noexcept { return nmax_; }
  std::uint32_t depth() const noexcept { return depth_; }

  /// Ready nodes in the paper's priority order (descending b+t level).
  /// Readiness is kept as a rank-indexed bitset (O(1) insert/remove in
  /// apply/rewind instead of a sorted-vector memmove); this accessor
  /// materializes it into a reused scratch vector — the hot expansion
  /// loop iterates the bitset words directly and never pays for this.
  const std::vector<NodeId>& ready() const {
    ready_list_.clear();
    for_each_ready([&](NodeId n) { ready_list_.push_back(n); });
    return ready_list_;
  }

  /// Visit ready nodes in priority-rank order: a ctz scan over the bitset
  /// words — same order the sorted ready vector historically produced
  /// (ranks are unique). `fn` must not change readiness.
  template <typename Fn>
  void for_each_ready(Fn&& fn) const {
    const std::vector<NodeId>& by_rank = problem_->node_by_rank();
    for (std::size_t w = 0; w < ready_bits_.size(); ++w) {
      std::uint64_t bits = ready_bits_[w];
      while (bits != 0) {
        const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        fn(by_rank[(w << 6) + b]);
      }
    }
  }

  /// Earliest start of `n` on `p` given this context (append semantics).
  double start_time(NodeId n, ProcId p) const;

  ScheduleView view() const {
    return {finish_.data(), proc_of_.data(), g_, nmax_, depth_};
  }

  /// Assignment sequence (root to this state) — for schedule reconstruction
  /// and for serializing states across PPEs.
  const std::vector<std::pair<NodeId, ProcId>>& assignments() const noexcept {
    return assignment_seq_;
  }

 private:
  friend class Expander;

  /// Undo record for one applied assignment.
  struct Undo {
    NodeId node;
    ProcId proc;
    double prev_proc_ready;
    double prev_g;
    NodeId prev_nmax;
    bool prev_busy;
  };

  /// Reset to the empty schedule (O(v + p)).
  void reset();
  /// Schedule `n` on `p` on top of the current context; returns the finish
  /// time. Maintains ready list, pending counts, and the undo stack.
  double apply(NodeId n, ProcId p);
  /// Undo the most recent apply().
  void rewind_one();
  /// apply() the stored assignment of arena[i] and record it on the path.
  void replay_state(const StateArena& arena, StateIndex i);

  void ready_insert(NodeId n);
  void ready_remove(NodeId n);

  const SearchProblem* problem_;
  std::vector<double> finish_;
  std::vector<ProcId> proc_of_;
  std::vector<double> proc_ready_;
  std::vector<bool> busy_;
  /// Readiness bitset indexed by priority rank (bit r = node_by_rank[r]).
  std::vector<std::uint64_t> ready_bits_;
  mutable std::vector<NodeId> ready_list_;  ///< ready() scratch
  std::vector<std::uint32_t> pending_parents_;
  std::vector<StateIndex> chain_;   // scratch for parent walks
  std::vector<StateIndex> path_;    // arena indices root -> loaded, by depth
  std::vector<Undo> undo_;          // parallel to path_
  std::vector<std::pair<NodeId, ProcId>> assignment_seq_;
  double g_ = 0.0;
  NodeId nmax_ = dag::kInvalidNode;
  std::uint32_t depth_ = 0;

  const StateArena* arena_ = nullptr;
  StateIndex loaded_ = 0;
  bool attached_ = false;
  ExpandStats* stats_ = nullptr;
};

/// Generates the successors of a state, applying the configured pruning.
/// The same Expander instance must not be used concurrently; the parallel
/// algorithm creates one per PPE.
class Expander {
 public:
  Expander(const SearchProblem& problem, const SearchConfig& config);

  /// Expand arena[index]. Every surviving successor is appended to `arena`
  /// and reported through `emit(StateIndex, const State&)`; the State
  /// reference is the generation record, valid only during the callback
  /// (copy it or re-read through the arena to keep it). `seen` is the
  /// pluggable duplicate-detection probe — any type with
  /// `bool insert(const util::Key128&)` returning true for a first-seen
  /// signature: the serial engines pass a thread-local FlatSet128, the
  /// parallel transports pass their mode's structure (PPE-local set, or
  /// the hash-sharded global table). `prune_bound` is the current
  /// upper-bound threshold (the incumbent makespan, or the static U in
  /// paper-fidelity mode); children with f >= bound (f > bound when
  /// strict_upper_bound) are discarded.
  template <typename Seen, typename Emit>
  void expand(StateArena& arena, Seen& seen, StateIndex index,
              double prune_bound, Emit&& emit);

  ExpandStats& stats() noexcept { return stats_; }
  const ExpandStats& stats() const noexcept { return stats_; }
  const ExpansionContext& context() const noexcept { return ctx_; }

  /// Forward arena invalidations to the owned context (IDA* truncation).
  void invalidate_context_from(StateIndex first_dropped) noexcept {
    ctx_.invalidate_from(first_dropped);
  }
  void invalidate_context() noexcept { ctx_.invalidate(); }

  /// Unweighted h of arena[index] under *this* problem (loads the context).
  /// Used by the warm-start path: for the root it is the instance's global
  /// lower bound (the instant-proof test), and generally it re-derives the
  /// value a cold search would have stored.
  double state_h(const StateArena& arena, StateIndex index);

  /// Recompute h (times the configured weight) for arena indices
  /// [1, arena.size()) and patch the stored f values. The root (index 0)
  /// keeps h = 0, matching make_root(). Warm-start retention calls this
  /// after truncating the arena to the clean prefix: the retained g values
  /// replay identically under the new instance, but h was computed against
  /// the old one and a stale (possibly inadmissible) f would break the
  /// optimality proof when the delta lowered costs.
  void repatch_h(StateArena& arena);

 private:
  /// Build the child state for (node -> proc) on top of the loaded context.
  /// Returns false if the child was pruned.
  template <typename Seen, typename Emit>
  bool try_emit_child(StateArena& arena, Seen& seen, StateIndex parent_index,
                      NodeId node, ProcId proc, double prune_bound,
                      Emit&& emit);

  const SearchProblem* problem_;
  SearchConfig config_;
  ExpansionContext ctx_;
  ExpandStats stats_;
  std::vector<double> h_scratch_;
  std::vector<ProcId> proc_rep_;
  std::vector<bool> class_taken_;
  /// Signature of the state being expanded, copied once per expand (a
  /// reference into the cold array would dangle across arena growth).
  util::Key128 parent_sig_{};
};

// ---- implementation of the templated members ----------------------------

template <typename Seen, typename Emit>
void Expander::expand(StateArena& arena, Seen& seen, StateIndex index,
                      double prune_bound, Emit&& emit) {
  ctx_.move_to(arena, index);
  ++stats_.expanded;
  parent_sig_ = arena.sig(index);

  const auto& autos = problem_->automorphisms();
  const std::uint32_t p = problem_->num_procs();

  // Processor isomorphism (Def. 2 / automorphism orbits): try only one
  // representative per equivalence class of processors.
  if (config_.prune.processor_isomorphism) {
    autos.state_classes(ctx_.busy_, proc_rep_);
  } else {
    proc_rep_.resize(p);
    for (ProcId q = 0; q < p; ++q) proc_rep_[q] = q;
  }

  // Node equivalence (Def. 3): among ready nodes of one equivalence class,
  // expand only the first (equivalent nodes tie in priority and are
  // ordered by id, so the first seen is the smallest id).
  const auto& equiv = problem_->equivalence();
  if (config_.prune.node_equivalence) {
    class_taken_.assign(problem_->num_nodes(), false);
  }

  ctx_.for_each_ready([&](const NodeId n) {
    if (config_.prune.node_equivalence) {
      const NodeId rep = equiv.representative(n);
      if (class_taken_[rep]) {
        ++stats_.skipped_equivalence;
        return;
      }
      class_taken_[rep] = true;
    }
    for (ProcId q = 0; q < p; ++q) {
      if (proc_rep_[q] != q) {
        ++stats_.skipped_isomorphism;
        continue;
      }
      try_emit_child(arena, seen, index, n, q, prune_bound, emit);
    }
  });
}

template <typename Seen, typename Emit>
bool Expander::try_emit_child(StateArena& arena, Seen& seen,
                              StateIndex parent_index, NodeId node,
                              ProcId proc, double prune_bound, Emit&& emit) {
  const double st = ctx_.start_time(node, proc);
  const double ft =
      st + problem_->machine().exec_time(problem_->graph().weight(node), proc);
  const double child_g = std::max(ctx_.g_, ft);

  // Temporarily extend the context so the heuristic sees the child state.
  // Only the fields ScheduleView reads are touched; the ready list, undo
  // stack, and processor-ready times stay at the parent state.
  const NodeId saved_nmax = ctx_.nmax_;
  const double saved_g = ctx_.g_;
  ctx_.finish_[node] = ft;
  ctx_.proc_of_[node] = proc;
  ctx_.g_ = child_g;
  if (ft > saved_g || saved_nmax == dag::kInvalidNode) ctx_.nmax_ = node;
  ctx_.depth_ += 1;

  const double h =
      evaluate_h(config_.h, *problem_, ctx_.view(), h_scratch_.data()) *
      config_.h_weight;

  // Restore the context before any early return.
  ctx_.finish_[node] = 0.0;
  ctx_.proc_of_[node] = machine::kInvalidProc;
  ctx_.g_ = saved_g;
  ctx_.nmax_ = saved_nmax;
  ctx_.depth_ -= 1;

  const double f = child_g + h;
  if (config_.prune.upper_bound) {
    const bool over = config_.prune.strict_upper_bound
                          ? f > prune_bound + 1e-9
                          : f >= prune_bound - 1e-9;
    if (over) {
      ++stats_.pruned_upper_bound;
      return false;
    }
  }

  const util::Key128 sig = extend_signature(parent_sig_, node, proc, ft);
  if (config_.prune.duplicate_detection && !seen.insert(sig)) {
    ++stats_.duplicates_dropped;
    return false;
  }

  State child;
  child.sig = sig;
  child.finish = ft;
  child.g = child_g;
  child.h = h;
  child.parent = parent_index;
  child.node = node;
  child.proc = proc;
  child.depth = ctx_.depth_ + 1;

  const StateIndex idx = arena.add(child);
  ++stats_.generated;
  emit(idx, child);
  return true;
}

/// Rebuild the complete schedule a goal state denotes.
sched::Schedule reconstruct_schedule(const SearchProblem& problem,
                                     const StateArena& arena,
                                     StateIndex goal_index);

}  // namespace optsched::core
