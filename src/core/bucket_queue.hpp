// Bucketed OPEN list: an array of f-keyed buckets with a monotone cursor.
//
// A* pops are (weakly) f-monotone, so a calendar of buckets indexed by the
// fixed-point f key (core/key_scale.hpp) replaces the 4-ary heap's
// O(log n) sift chains with O(1) pushes and an amortized-O(1) cursor walk
// on pop: the cursor only rescans a bucket range when an inconsistent
// heuristic pushes below it, and `prune_at_least`/`extract_surplus` drop
// or drain whole buckets from the top instead of rebuilding a heap.
//
// Pop order is *identical* to OpenList's: both order on
// (f asc, g desc, index asc). f equality is exact inside a bucket — keys
// are exact by construction — and the (g desc, index asc) tie-break is a
// strict total order (indices are unique), so given the same push
// sequence both structures produce the same pop sequence; the randomized
// bucket-vs-heap differential suite asserts exactly that. Entries inside
// a bucket form a binary max-heap on (g, -index), so per-bucket cost is
// O(log bucket) — logarithmic in the f-plateau size, not the frontier.
//
// Construction requires an exact KeyScale and a bucket span within
// kMaxBuckets; `admissible()` reports why an instance/config cannot use
// the bucket queue so `queue=auto` can fall back to the heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/config.hpp"
#include "core/key_scale.hpp"
#include "core/open_list.hpp"
#include "core/state.hpp"
#include "util/assert.hpp"

namespace optsched::core {

class SearchProblem;

class BucketQueue {
 public:
  /// Hard cap on the bucket array (vector headers alone cost ~24 bytes per
  /// bucket; 2^18 keys the span of any sane exact-search instance).
  static constexpr std::int64_t kMaxBuckets = std::int64_t{1} << 18;

  /// Can this (scale, max f) pair be bucketed at all? `max_f` must bound
  /// every f the run can push (U with upper-bound pruning, the loose
  /// serial bound without it).
  static bool admissible(const KeyScale& ks, double max_f) {
    return ks.exact && ks.on_grid(max_f) &&
           ks.key_of(max_f) + 2 <= kMaxBuckets;
  }

  BucketQueue(const KeyScale& ks, double max_f) : scale_(ks) {
    OPTSCHED_ASSERT(admissible(ks, max_f));
    buckets_.resize(static_cast<std::size_t>(scale_.key_of(max_f)) + 2);
    inv_scale_ = 1.0 / scale_.scale;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(const OpenEntry& e) {
    const std::int64_t key = key_for(e.f);
    Bucket& b = buckets_[static_cast<std::size_t>(key)];
    b.push_back({e.g, e.index});
    std::push_heap(b.begin(), b.end(), deeper_last);
    if (key < cursor_) cursor_ = key;
    ++size_;
    if (size_ == 1) {
      // Push into an empty queue (fresh, cleared, or drained by pops):
      // every bucket is empty, so the watermarks re-anchor to this key —
      // keeping peak_span a live-span high-water mark, not an all-time
      // key-range one.
      lo_key_ = hi_key_ = key;
    } else {
      lo_key_ = std::min(lo_key_, key);
      hi_key_ = std::max(hi_key_, key);
    }
    peak_span_ = std::max(peak_span_,
                          static_cast<std::uint64_t>(hi_key_ - lo_key_ + 1));
  }

  /// O(batch): per-entry push is already O(log plateau), no heapify pass
  /// to amortize (cf. OpenList::push_batch).
  void push_batch(const std::vector<OpenEntry>& batch) {
    for (const OpenEntry& e : batch) push(e);
  }

  const OpenEntry& top() const {
    OPTSCHED_ASSERT(!empty());
    const std::int64_t key = settle_cursor();
    const Entry& e = buckets_[static_cast<std::size_t>(key)].front();
    top_scratch_ = {f_of(key), e.g, e.index};
    return top_scratch_;
  }

  OpenEntry pop() {
    OPTSCHED_ASSERT(!empty());
    cursor_ = settle_cursor();
    Bucket& b = buckets_[static_cast<std::size_t>(cursor_)];
    std::pop_heap(b.begin(), b.end(), deeper_last);
    const Entry e = b.back();
    b.pop_back();
    --size_;
    return {f_of(cursor_), e.g, e.index};
  }

  void clear() noexcept {
    for (std::int64_t k = lo_key_; k <= hi_key_ && size_ > 0; ++k) {
      size_ -= buckets_[static_cast<std::size_t>(k)].size();
      buckets_[static_cast<std::size_t>(k)].clear();
    }
    OPTSCHED_ASSERT(size_ == 0);
    cursor_ = 0;
    lo_key_ = 0;
    hi_key_ = -1;
  }

  /// Remove every entry with f >= bound — O(buckets dropped), no rebuild.
  void prune_at_least(double bound) {
    if (empty()) return;
    const std::int64_t cut = std::min(
        static_cast<std::int64_t>(buckets_.size()), cut_key(bound));
    for (std::int64_t k = std::max(cut, lo_key_); k <= hi_key_; ++k) {
      size_ -= buckets_[static_cast<std::size_t>(k)].size();
      buckets_[static_cast<std::size_t>(k)].clear();
    }
    hi_key_ = std::min(hi_key_, cut - 1);
  }

  /// Drain up to `count` entries from the *worst* end for load sharing,
  /// never touching the best bucket (donating near-best states would
  /// stall the donor — the same slack-band rule as OpenList).
  ///
  /// `live_bound` is the incumbent bound at extraction time (see
  /// OpenList::extract_surplus): buckets at or above it are dead and are
  /// pruned here rather than donated, so a bound that tightened since the
  /// donor's last prune cannot ship dead states.
  std::vector<OpenEntry> extract_surplus(
      std::size_t count,
      double live_bound = std::numeric_limits<double>::infinity()) {
    std::vector<OpenEntry> out;
    if (live_bound < std::numeric_limits<double>::infinity())
      prune_at_least(live_bound);
    if (size_ <= 1 || count == 0) return out;
    const std::int64_t best = settle_cursor();
    const std::int64_t guard = cut_key(donation_threshold(f_of(best)));
    for (std::int64_t k = hi_key_; k >= guard && out.size() < count; --k) {
      Bucket& b = buckets_[static_cast<std::size_t>(k)];
      while (!b.empty() && out.size() < count) {
        std::pop_heap(b.begin(), b.end(), deeper_last);
        out.push_back({f_of(k), b.back().g, b.back().index});
        b.pop_back();
        --size_;
      }
    }
    return out;
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = buckets_.capacity() * sizeof(Bucket);
    for (const Bucket& b : buckets_) bytes += b.capacity() * sizeof(Entry);
    return bytes;
  }

  /// Widest occupied key span observed (buckets between the lowest and
  /// highest live f keys) — the structure's resident-width counter.
  std::uint64_t peak_span() const noexcept { return peak_span_; }

  /// The slack band protecting a donor's near-best frontier: states within
  /// ~0.1% of the best f are never donated (shared with OpenList).
  static double donation_threshold(double best_f) {
    return best_f + std::max(1.0, std::fabs(best_f)) * (1.0 / 1024.0);
  }

 private:
  struct Entry {
    double g;
    StateIndex index;
  };
  using Bucket = std::vector<Entry>;

  /// Max-heap order on (g, -index): pop_heap yields the deepest entry,
  /// ties by smallest index — OpenList::before's exact tie-break.
  static bool deeper_last(const Entry& a, const Entry& b) noexcept {
    if (a.g != b.g) return a.g < b.g;
    return a.index > b.index;
  }

  std::int64_t key_for(double f) const {
    OPTSCHED_ASSERT(scale_.on_grid(f));
    const auto key = scale_.key_of(f);
    OPTSCHED_ASSERT(key >= 0 &&
                    key < static_cast<std::int64_t>(buckets_.size()));
    return key;
  }

  /// First key whose bucket holds entries with f >= bound (for pruning:
  /// an on-grid bound maps exactly; an off-grid one conservatively up).
  std::int64_t cut_key(double bound) const {
    const double scaled = bound * scale_.scale;
    const auto floor_key = static_cast<std::int64_t>(std::floor(scaled));
    const std::int64_t k = scaled == std::floor(scaled) ? floor_key
                                                        : floor_key + 1;
    return std::clamp<std::int64_t>(k, 0,
                                    static_cast<std::int64_t>(buckets_.size()));
  }

  double f_of(std::int64_t key) const { return key * inv_scale_; }

  /// First non-empty bucket at or after the cursor (the cursor may trail
  /// after pops empty a bucket, or lead after a below-cursor push).
  std::int64_t settle_cursor() const {
    std::int64_t k = std::max(cursor_, lo_key_);
    while (buckets_[static_cast<std::size_t>(k)].empty()) {
      ++k;
      OPTSCHED_ASSERT(k <= hi_key_);
    }
    return k;
  }

  KeyScale scale_;
  double inv_scale_ = 1.0;
  std::vector<Bucket> buckets_;
  std::int64_t cursor_ = 0;
  std::int64_t lo_key_ = 0;   ///< lowest key ever occupied
  std::int64_t hi_key_ = -1;  ///< highest key ever occupied
  std::size_t size_ = 0;
  std::uint64_t peak_span_ = 0;
  mutable OpenEntry top_scratch_{};
};

/// Outcome of OPEN-list selection for one (instance, config) pair.
struct QueueChoice {
  bool use_bucket = false;
  /// Why the bucket queue was rejected; "" when chosen, or when queue=heap
  /// picked the heap explicitly (no fallback happened).
  const char* fallback = "";
  double max_f = 0.0;  ///< f bound the bucket array is sized for
};

/// Decide heap vs bucket for a best-first engine. Bucket requires: an
/// exact fixed-point key scale for the instance, h_weight == 1 (a weight
/// multiplies h off the grid), epsilon == 0 (FOCAL uses its own set), a
/// finite f bound whose key span fits kMaxBuckets, and — for kComposite —
/// the W/(p * max_speed) workload atom on the grid. queue=bucket still
/// falls back on these (soundness is not configurable); queue=heap skips
/// the checks entirely.
QueueChoice choose_queue(const SearchProblem& problem,
                         const SearchConfig& config);

}  // namespace optsched::core
