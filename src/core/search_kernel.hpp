// Shared best-first search kernel.
//
// Every state-space engine in the library runs the same loop: pop a
// frontier entry, filter stale/dominated entries, recognize goals, bring
// the expansion context to the popped state (delta replay), expand, and —
// interleaved with all of that — honor cancellation, expansion/time/memory
// budgets, and progress callbacks. This header centralizes that loop so
// the cross-cutting handling lives in exactly one place:
//
//   KernelGuard       cancellation + expansion/time/memory limits + the
//                     progress-callback throttle, polled once per step.
//   run_search_loop   the pop -> filter -> goal -> expand skeleton,
//                     parameterized by an engine Policy.
//   SharedIncumbent   the incumbent shared across search threads: lock-free
//                     bound reads on the hot path, exact value + winning
//                     payload behind a mutex (parallel engines).
//
// A Policy supplies the frontier discipline and the engine-specific
// decisions (duck-typed; see the engines for examples):
//
//   bool keep_searching();            // pre-pop termination (dominated
//                                     //   frontier, goal found, shared
//                                     //   done flag, FOCAL bound test)
//   bool pop(StateIndex& out);        // next frontier entry; false = empty
//   bool on_empty();                  // empty frontier: true = retry the
//                                     //   loop (parallel idle/steal dance),
//                                     //   false = exhausted
//   StepAction classify(StateIndex);  // stale-filter / incumbent-prune /
//                                     //   goal recognition
//   void on_goal(StateIndex);         // record or publish the incumbent
//   void expand(StateIndex);          // move_to + successor generation
//   void after_expand();              // frontier bookkeeping, comm rounds
//   std::uint64_t expanded_count();   // for the expansion limit
//   std::size_t memory_now();         // for the memory cap
//   void maybe_progress(KernelGuard&);// progress emission (engines with a
//                                     //   shared reporter override gating)
//
// The loop runs serially; the parallel algorithm instantiates one kernel
// per PPE thread over thread-local state, which is what makes the single
// shared implementation safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "core/config.hpp"
#include "core/state.hpp"
#include "util/timer.hpp"

namespace optsched::core {

/// Cross-thread incumbent shared by the parallel engines: the bound is a
/// lock-free atomic for the hot paths (upper-bound pruning, frontier
/// domination tests), while the exact value and the winning payload (the
/// goal's assignment sequence) stay behind a mutex. Offers only ever
/// improve the incumbent, so concurrent goal discoveries keep the best.
template <typename Payload>
class SharedIncumbent {
 public:
  explicit SharedIncumbent(double initial) : bound_(initial), exact_(initial) {}

  /// Hot-path read of the current bound.
  double bound() const { return bound_.load(std::memory_order_acquire); }

  /// Register a complete solution; returns true when it improved the
  /// incumbent (and consumed the payload).
  bool offer(double value, Payload&& payload) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (value >= exact_ - 1e-12) return false;
    exact_ = value;
    payload_ = std::move(payload);
    bound_.store(value, std::memory_order_release);
    return true;
  }

  /// Exact value + payload copy (post-run result assembly).
  std::pair<double, Payload> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {exact_, payload_};
  }

 private:
  std::atomic<double> bound_;
  mutable std::mutex mu_;
  double exact_;     ///< guarded by mu_
  Payload payload_;  ///< ditto
};

/// What the policy wants done with a popped frontier entry.
enum class StepAction : std::uint8_t {
  kExpand,  ///< generate successors
  kSkip,    ///< stale or dominated entry: drop it and continue
  kGoal,    ///< complete schedule popped: hand it to the policy
  kStop,    ///< terminate the search loop (policy-level termination)
};

/// Uniform resource guard: cooperative cancellation, expansion/time/memory
/// limits, and the progress throttle. One instance per search thread; the
/// timer is borrowed so engines report elapsed time from the same clock
/// the deadline is enforced against.
class KernelGuard {
 public:
  struct Limits {
    std::uint64_t max_expansions = 0;   ///< 0 = unlimited
    double time_budget_ms = 0.0;        ///< <= 0 = unlimited
    std::size_t max_memory_bytes = 0;   ///< 0 = unlimited
  };

  KernelGuard(const SearchControls& controls, Limits limits,
              const util::Timer& timer, std::uint32_t poll_period = 1)
      : controls_(&controls),
        limits_(limits),
        timer_(&timer),
        poll_period_(poll_period ? poll_period : 1),
        gate_(controls) {}

  /// Per-step limit poll. Checks fire on every poll_period-th call (the
  /// first call always checks, so a pre-cancelled token stops the search
  /// before any expansion); period 1 — the serial default — polls every
  /// step, the parallel PPEs use a coarser period.
  std::optional<Termination> check(std::uint64_t expanded,
                                   std::size_t memory_now) {
    if (step_++ % poll_period_ != 0) return std::nullopt;
    if (controls_->cancel.cancelled()) return Termination::kCancelled;
    if (limits_.max_expansions && expanded >= limits_.max_expansions)
      return Termination::kExpansionLimit;
    if (limits_.time_budget_ms > 0 &&
        timer_->millis() >= limits_.time_budget_ms)
      return Termination::kTimeLimit;
    if (limits_.max_memory_bytes && memory_now >= limits_.max_memory_bytes)
      return Termination::kMemoryLimit;
    return std::nullopt;
  }

  /// Throttled progress emission for engines that report from their own
  /// thread (the parallel engine serializes through its shared reporter
  /// instead and ignores this gate).
  void maybe_progress(std::uint64_t expanded, double lower_bound,
                      double incumbent) {
    if (!gate_.open(expanded)) return;
    controls_->progress({expanded, lower_bound, incumbent, timer_->seconds()});
  }

  double seconds() const { return timer_->seconds(); }

 private:
  const SearchControls* controls_;
  Limits limits_;
  const util::Timer* timer_;
  std::uint32_t poll_period_;
  std::uint64_t step_ = 0;
  ProgressGate gate_;
};

/// The shared engine loop. Returns the limit that aborted the search, or
/// nullopt when the policy terminated it (goal, dominated or exhausted
/// frontier, StepAction::kStop) — the policy records which.
template <typename Policy>
std::optional<Termination> run_search_loop(KernelGuard& guard, Policy& p) {
  while (p.keep_searching()) {
    StateIndex idx;
    if (!p.pop(idx)) {
      if (p.on_empty()) continue;
      break;
    }
    if (const auto hit = guard.check(p.expanded_count(), p.memory_now()))
      return hit;
    p.maybe_progress(guard);
    switch (p.classify(idx)) {
      case StepAction::kSkip:
        break;
      case StepAction::kGoal:
        p.on_goal(idx);
        break;
      case StepAction::kStop:
        return std::nullopt;
      case StepAction::kExpand:
        p.expand(idx);
        p.after_expand();
        break;
    }
  }
  return std::nullopt;
}

}  // namespace optsched::core
