#include "core/expansion.hpp"

#include <algorithm>

namespace optsched::core {

const char* to_string(Termination t) {
  switch (t) {
    case Termination::kOptimal:
      return "optimal";
    case Termination::kBoundedOptimal:
      return "bounded-optimal";
    case Termination::kExpansionLimit:
      return "expansion-limit";
    case Termination::kTimeLimit:
      return "time-limit";
    case Termination::kMemoryLimit:
      return "memory-limit";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kHeuristic:
      return "heuristic";
  }
  return "?";
}

ExpansionContext::ExpansionContext(const SearchProblem& problem)
    : problem_(&problem) {
  const auto v = problem.num_nodes();
  finish_.assign(v, 0.0);
  proc_of_.assign(v, machine::kInvalidProc);
  proc_ready_.assign(problem.num_procs(), 0.0);
  busy_.assign(problem.num_procs(), false);
  pending_parents_.assign(v, 0);
  ready_.reserve(v);
  chain_.reserve(v);
  assignment_seq_.reserve(v);
}

double ExpansionContext::start_time(NodeId n, ProcId p) const {
  const auto& graph = problem_->graph();
  const auto& machine = problem_->machine();
  double dat = 0.0;
  for (const auto& [parent, cost] : graph.parents(n)) {
    OPTSCHED_ASSERT(scheduled(parent));
    dat = std::max(dat, finish_[parent] + machine.comm_delay(
                                              cost, proc_of_[parent], p,
                                              problem_->comm()));
  }
  return std::max(proc_ready_[p], dat);
}

void ExpansionContext::load(const StateArena& arena, StateIndex index) {
  const auto& graph = problem_->graph();
  const auto& machine = problem_->machine();

  // Reset.
  std::fill(proc_of_.begin(), proc_of_.end(), machine::kInvalidProc);
  std::fill(proc_ready_.begin(), proc_ready_.end(), 0.0);
  std::fill(busy_.begin(), busy_.end(), false);
  g_ = 0.0;
  nmax_ = dag::kInvalidNode;
  depth_ = 0;
  assignment_seq_.clear();

  // Walk to the root, then replay forward.
  chain_.clear();
  for (StateIndex i = index; i != kNoParent; i = arena[i].parent) {
    if (arena[i].is_root()) break;
    chain_.push_back(i);
  }
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    const State& s = arena[*it];
    const double st = start_time(s.node, s.proc);
    const double ft =
        st + machine.exec_time(graph.weight(s.node), s.proc);
    // Replay is deterministic: recomputed times must equal stored ones.
    OPTSCHED_ASSERT(ft == s.finish);
    finish_[s.node] = ft;
    proc_of_[s.node] = s.proc;
    proc_ready_[s.proc] = ft;
    busy_[s.proc] = true;
    assignment_seq_.emplace_back(s.node, s.proc);
    ++depth_;
  }
  // g = max finish time; nmax = node attaining it (first in replay order
  // on ties — deterministic, matching the child-construction rule).
  for (const auto& [n, p] : assignment_seq_) {
    (void)p;
    if (finish_[n] > g_ || nmax_ == dag::kInvalidNode) {
      g_ = finish_[n];
      nmax_ = n;
    }
  }
  OPTSCHED_ASSERT(depth_ == arena[index].depth);

  // Ready list: unscheduled nodes whose parents are all scheduled, ordered
  // by the paper's priority (descending b-level + t-level via rank).
  for (NodeId n = 0; n < problem_->num_nodes(); ++n) {
    std::uint32_t pending = 0;
    if (proc_of_[n] == machine::kInvalidProc)
      for (const auto& [parent, cost] : graph.parents(n)) {
        (void)cost;
        if (proc_of_[parent] == machine::kInvalidProc) ++pending;
      }
    pending_parents_[n] = pending;
  }
  ready_.clear();
  for (NodeId n = 0; n < problem_->num_nodes(); ++n)
    if (proc_of_[n] == machine::kInvalidProc && pending_parents_[n] == 0)
      ready_.push_back(n);
  std::sort(ready_.begin(), ready_.end(), [&](NodeId a, NodeId b) {
    return problem_->priority_rank(a) < problem_->priority_rank(b);
  });
}

Expander::Expander(const SearchProblem& problem, const SearchConfig& config)
    : problem_(&problem), config_(config), ctx_(problem) {
  h_scratch_.assign(problem.num_nodes(), 0.0);
  proc_rep_.assign(problem.num_procs(), 0);
  class_taken_.assign(problem.num_nodes(), false);
}

sched::Schedule reconstruct_schedule(const SearchProblem& problem,
                                     const StateArena& arena,
                                     StateIndex goal_index) {
  // Collect assignments root -> goal, then replay them through Schedule.
  std::vector<std::pair<NodeId, ProcId>> seq;
  for (StateIndex i = goal_index; i != kNoParent; i = arena[i].parent) {
    if (arena[i].is_root()) break;
    seq.emplace_back(arena[i].node, arena[i].proc);
  }
  std::reverse(seq.begin(), seq.end());

  sched::Schedule schedule(problem.graph(), problem.machine(), problem.comm());
  for (const auto& [node, proc] : seq) schedule.append(node, proc);
  OPTSCHED_ASSERT(schedule.complete());
  OPTSCHED_ASSERT(schedule.makespan() == arena[goal_index].g);
  return schedule;
}

}  // namespace optsched::core
