#include "core/expansion.hpp"

#include <algorithm>

namespace optsched::core {

const char* to_string(Termination t) {
  switch (t) {
    case Termination::kOptimal:
      return "optimal";
    case Termination::kBoundedOptimal:
      return "bounded-optimal";
    case Termination::kExpansionLimit:
      return "expansion-limit";
    case Termination::kTimeLimit:
      return "time-limit";
    case Termination::kMemoryLimit:
      return "memory-limit";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kHeuristic:
      return "heuristic";
  }
  return "?";
}

const char* to_string(QueueSelect q) {
  switch (q) {
    case QueueSelect::kAuto:
      return "auto";
    case QueueSelect::kBucket:
      return "bucket";
    case QueueSelect::kHeap:
      return "heap";
  }
  return "?";
}

ExpansionContext::ExpansionContext(const SearchProblem& problem)
    : problem_(&problem) {
  const auto v = problem.num_nodes();
  finish_.assign(v, 0.0);
  proc_of_.assign(v, machine::kInvalidProc);
  proc_ready_.assign(problem.num_procs(), 0.0);
  busy_.assign(problem.num_procs(), false);
  pending_parents_.assign(v, 0);
  ready_bits_.assign((v + 63) / 64, 0);
  ready_list_.reserve(v);
  chain_.reserve(v);
  path_.reserve(v);
  undo_.reserve(v);
  assignment_seq_.reserve(v);
}

double ExpansionContext::start_time(NodeId n, ProcId p) const {
  const auto& graph = problem_->graph();
  const auto& machine = problem_->machine();
  double dat = 0.0;
  for (const auto& [parent, cost] : graph.parents(n)) {
    OPTSCHED_ASSERT(scheduled(parent));
    dat = std::max(dat, finish_[parent] + machine.comm_delay(
                                              cost, proc_of_[parent], p,
                                              problem_->comm()));
  }
  return std::max(proc_ready_[p], dat);
}

void ExpansionContext::ready_insert(NodeId n) {
  const std::uint32_t rank = problem_->priority_rank(n);
  std::uint64_t& word = ready_bits_[rank >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (rank & 63);
  OPTSCHED_ASSERT((word & bit) == 0);
  word |= bit;
}

void ExpansionContext::ready_remove(NodeId n) {
  const std::uint32_t rank = problem_->priority_rank(n);
  std::uint64_t& word = ready_bits_[rank >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (rank & 63);
  OPTSCHED_ASSERT((word & bit) != 0);
  word &= ~bit;
}

void ExpansionContext::reset() {
  const auto& graph = problem_->graph();
  std::fill(finish_.begin(), finish_.end(), 0.0);
  std::fill(proc_of_.begin(), proc_of_.end(), machine::kInvalidProc);
  std::fill(proc_ready_.begin(), proc_ready_.end(), 0.0);
  std::fill(busy_.begin(), busy_.end(), false);
  g_ = 0.0;
  nmax_ = dag::kInvalidNode;
  depth_ = 0;
  assignment_seq_.clear();
  path_.clear();
  undo_.clear();
  std::fill(ready_bits_.begin(), ready_bits_.end(), 0);
  for (NodeId n = 0; n < problem_->num_nodes(); ++n) {
    const auto pending =
        static_cast<std::uint32_t>(graph.num_parents(n));
    pending_parents_[n] = pending;
    if (pending == 0) ready_insert(n);  // bitset is inherently rank-sorted
  }
}

double ExpansionContext::apply(NodeId n, ProcId p) {
  const auto& graph = problem_->graph();
  const double st = start_time(n, p);
  const double ft =
      st + problem_->machine().exec_time(graph.weight(n), p);
  undo_.push_back({n, p, proc_ready_[p], g_, nmax_,
                   static_cast<bool>(busy_[p])});
  finish_[n] = ft;
  proc_of_[n] = p;
  proc_ready_[p] = ft;
  busy_[p] = true;
  // g = max finish time; nmax = node attaining it, first in chain order on
  // ties — deterministic, matching the child-construction rule.
  if (ft > g_ || nmax_ == dag::kInvalidNode) {
    g_ = std::max(g_, ft);
    nmax_ = n;
  }
  ready_remove(n);
  for (const auto& [child, cost] : graph.children(n)) {
    (void)cost;
    if (--pending_parents_[child] == 0) ready_insert(child);
  }
  assignment_seq_.emplace_back(n, p);
  ++depth_;
  return ft;
}

void ExpansionContext::rewind_one() {
  OPTSCHED_ASSERT(!undo_.empty());
  const Undo u = undo_.back();
  undo_.pop_back();
  const auto& graph = problem_->graph();
  for (const auto& [child, cost] : graph.children(u.node)) {
    (void)cost;
    if (pending_parents_[child]++ == 0) ready_remove(child);
  }
  ready_insert(u.node);
  finish_[u.node] = 0.0;
  proc_of_[u.node] = machine::kInvalidProc;
  proc_ready_[u.proc] = u.prev_proc_ready;
  busy_[u.proc] = u.prev_busy;
  g_ = u.prev_g;
  nmax_ = u.prev_nmax;
  --depth_;
  assignment_seq_.pop_back();
}

void ExpansionContext::replay_state(const StateArena& arena, StateIndex i) {
  const HotState& s = arena.hot(i);
  const double ft = apply(s.node(), s.proc());
  // Replay is deterministic: recomputed times must equal stored ones.
  OPTSCHED_ASSERT(ft == arena.finish(i));
  (void)ft;
  path_.push_back(i);
}

void ExpansionContext::load(const StateArena& arena, StateIndex index) {
  reset();

  // Walk to the root, then replay forward.
  chain_.clear();
  for (StateIndex i = index; i != kNoParent; i = arena.hot(i).parent) {
    if (arena.hot(i).is_root()) break;
    chain_.push_back(i);
  }
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it)
    replay_state(arena, *it);
  OPTSCHED_ASSERT(depth_ == arena.hot(index).depth());

  arena_ = &arena;
  loaded_ = index;
  attached_ = true;
  if (stats_) {
    ++stats_->loads_full;
    stats_->assignments_replayed += depth_;
  }
}

void ExpansionContext::move_to(const StateArena& arena, StateIndex index) {
  if (!attached_ || arena_ != &arena || loaded_ >= arena.size()) {
    load(arena, index);
    return;
  }
  if (index == loaded_) {
    // Already there (re-expansion); the context is bit-identical.
    if (stats_) ++stats_->loads_incremental;
    return;
  }

  // Walk the target's ancestry until it meets the loaded path: the first
  // ancestor that sits on path_ at its own depth is the LCA (equal arena
  // index == equal state == equal chain below it). Everything walked over
  // is the divergent suffix to replay.
  chain_.clear();
  std::uint32_t lca_depth = 0;
  for (StateIndex i = index; !arena.hot(i).is_root();
       i = arena.hot(i).parent) {
    const std::uint32_t d = arena.hot(i).depth();
    if (d <= depth_ && path_[d - 1] == i) {
      lca_depth = d;
      break;
    }
    chain_.push_back(i);
  }

  const std::uint32_t target_depth = arena.hot(index).depth();
  const std::uint32_t rewind = depth_ - lca_depth;
  const auto replay = static_cast<std::uint32_t>(chain_.size());
  // Divergence threshold: the delta performs rewind + replay assignment
  // ops; a full rebuild replays target_depth (plus an O(v) reset that the
  // delta skips). Fall back when the delta would not do less work.
  if (rewind + replay > target_depth) {
    load(arena, index);
    return;
  }

  while (depth_ > lca_depth) {
    rewind_one();
    path_.pop_back();
  }
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it)
    replay_state(arena, *it);
  OPTSCHED_ASSERT(depth_ == target_depth);

  loaded_ = index;
  if (stats_) {
    ++stats_->loads_incremental;
    stats_->assignments_replayed += replay;
  }
}

Expander::Expander(const SearchProblem& problem, const SearchConfig& config)
    : problem_(&problem), config_(config), ctx_(problem) {
  h_scratch_.assign(2 * std::size_t{problem.num_nodes()}, 0.0);
  proc_rep_.assign(problem.num_procs(), 0);
  class_taken_.assign(problem.num_nodes(), false);
  ctx_.set_stats(&stats_);
}

double Expander::state_h(const StateArena& arena, StateIndex index) {
  ctx_.move_to(arena, index);
  return evaluate_h(config_.h, *problem_, ctx_.view(), h_scratch_.data());
}

void Expander::repatch_h(StateArena& arena) {
  for (StateIndex i = 1; i < arena.size(); ++i)
    arena.patch_h(i, state_h(arena, i) * config_.h_weight);
}

sched::Schedule reconstruct_schedule(const SearchProblem& problem,
                                     const StateArena& arena,
                                     StateIndex goal_index) {
  // Collect assignments root -> goal, then replay them through Schedule.
  std::vector<std::pair<NodeId, ProcId>> seq;
  for (StateIndex i = goal_index; i != kNoParent; i = arena.hot(i).parent) {
    if (arena.hot(i).is_root()) break;
    seq.emplace_back(arena.hot(i).node(), arena.hot(i).proc());
  }
  std::reverse(seq.begin(), seq.end());

  sched::Schedule schedule(problem.graph(), problem.machine(), problem.comm());
  for (const auto& [node, proc] : seq) schedule.append(node, proc);
  OPTSCHED_ASSERT(schedule.complete());
  OPTSCHED_ASSERT(schedule.makespan() == arena.hot(goal_index).g);
  return schedule;
}

}  // namespace optsched::core
