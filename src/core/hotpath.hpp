// Branch-free, vectorizable inner kernels for the expansion/heuristic hot
// path, behind a runtime CPU dispatch so release binaries stay portable.
//
// The kernels iterate the SoA context arrays (ScheduleView) with no
// early-exit branches: scheduled/unscheduled decisions become masks, max
// reductions scan the whole range. Each has a scalar body and, on x86-64,
// an AVX2 twin compiled with a target attribute and selected once at
// startup via __builtin_cpu_supports — no ISA flags leak into the global
// build, so the binary runs on any x86-64 (and any other arch uses the
// scalar path).
//
// Bit-exactness: the wide variants use only add/max/blend — no FMA, no
// reassociated sums — and max is a selection, so scalar and wide paths
// return identical doubles on identical inputs. The bucket queue's
// fixed-point soundness argument (core/key_scale.hpp) therefore covers
// both paths.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optsched::core::hotpath {

/// max(0, max_i x[i]) over the whole range, no early exit. Precondition:
/// x[i] >= 0 (static levels, start estimates).
double max_reduce(const double* x, std::size_t n);

/// Seed the h_path propagation arrays in one branch-free pass:
///   est[i] = scheduled(i) ? finish[i]   : 0
///   add[i] = scheduled(i) ? 0           : w_scaled[i]
/// so the topological inner loop can read est[p] + add[p] for every parent
/// without testing scheduledness. `proc_of[i] == 0xFFFFFFFF` (kInvalidProc)
/// means unscheduled.
void est_seed(const std::uint32_t* proc_of, const double* finish,
              const double* w_scaled, std::size_t n, double* est,
              double* add);

/// Was a wide (AVX2) implementation selected at startup?
bool wide_available();

/// Pin the dispatch to the scalar bodies (true) or back to the startup
/// choice (false). Bench/test knob for scalar-vs-wide comparisons; not
/// thread-safe against concurrent kernel calls.
void force_scalar(bool scalar_only);

}  // namespace optsched::core::hotpath
