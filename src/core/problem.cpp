#include "core/problem.hpp"

#include <algorithm>
#include <numeric>

#include "sched/list_scheduler.hpp"

namespace optsched::core {

SearchProblem::SearchProblem(const dag::TaskGraph& graph,
                             const machine::Machine& machine, CommMode comm)
    : graph_(&graph),
      machine_(&machine),
      comm_(comm),
      levels_(dag::compute_levels(graph)),
      equiv_(graph),
      autos_(machine) {
  OPTSCHED_REQUIRE(graph.finalized(), "SearchProblem requires finalize()");
  init_derived();
}

SearchProblem::SearchProblem(const dag::TaskGraph& graph,
                             const machine::Machine& machine, CommMode comm,
                             const SearchProblem& previous,
                             const std::vector<bool>& level_seeds,
                             bool machine_changed)
    : graph_(&graph),
      machine_(&machine),
      comm_(comm),
      levels_(level_seeds.empty()
                  ? previous.levels_
                  : dag::update_levels(graph, previous.levels_, level_seeds)),
      equiv_(graph),
      autos_(machine_changed ? machine::AutomorphismGroup(machine)
                             : previous.autos_) {
  OPTSCHED_REQUIRE(graph.finalized(), "SearchProblem requires finalize()");
  OPTSCHED_REQUIRE(graph.num_nodes() == previous.graph().num_nodes(),
                   "warm SearchProblem: node count changed");
  init_derived();
}

void SearchProblem::init_derived() {
  sl_scale_ = 1.0 / machine_->max_speed();

  // Paper §3.2: ready nodes are considered in decreasing b-level + t-level.
  std::vector<NodeId> order(graph_->num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double pa = levels_.priority(a), pb = levels_.priority(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  priority_rank_.assign(graph_->num_nodes(), 0);
  for (std::uint32_t r = 0; r < order.size(); ++r)
    priority_rank_[order[r]] = r;
  node_by_rank_ = std::move(order);

  ub_ = std::make_shared<const sched::Schedule>(
      sched::upper_bound_schedule(*graph_, *machine_, comm_));
  ub_len_ = ub_->makespan();

  const std::size_t v = graph_->num_nodes();
  scaled_static_level_.resize(v);
  scaled_weight_.resize(v);
  for (NodeId n = 0; n < v; ++n) {
    scaled_static_level_[n] = levels_.static_level[n] * sl_scale_;
    scaled_weight_[n] = graph_->weight(n) * sl_scale_;
  }

  key_scale_ = derive_key_scale(*this);  // needs ub_len_, so last
}

}  // namespace optsched::core
