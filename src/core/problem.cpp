#include "core/problem.hpp"

#include <algorithm>
#include <numeric>

#include "sched/list_scheduler.hpp"

namespace optsched::core {

SearchProblem::SearchProblem(const dag::TaskGraph& graph,
                             const machine::Machine& machine, CommMode comm)
    : graph_(&graph),
      machine_(&machine),
      comm_(comm),
      levels_(dag::compute_levels(graph)),
      equiv_(graph),
      autos_(machine) {
  OPTSCHED_REQUIRE(graph.finalized(), "SearchProblem requires finalize()");
  sl_scale_ = 1.0 / machine.max_speed();

  // Paper §3.2: ready nodes are considered in decreasing b-level + t-level.
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double pa = levels_.priority(a), pb = levels_.priority(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  priority_rank_.assign(graph.num_nodes(), 0);
  for (std::uint32_t r = 0; r < order.size(); ++r)
    priority_rank_[order[r]] = r;

  ub_ = std::make_shared<const sched::Schedule>(
      sched::upper_bound_schedule(graph, machine, comm));
  ub_len_ = ub_->makespan();
}

}  // namespace optsched::core
