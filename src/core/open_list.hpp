// OPEN list: 4-ary min-heap keyed on (f, -g) with lazy deletion.
//
// The heap stores (f, g, state index) triples; staleness (states already
// expanded, or superseded by the incumbent bound) is filtered at pop time
// by the caller. A 4-ary layout halves tree depth versus binary and keeps
// sift-down children on one cache line — this heap and the CLOSED set are
// the two hottest data structures in the search (see bench_micro).
//
// Tie-breaking on larger g prefers deeper states among equal-f candidates,
// which reaches goal states sooner without affecting optimality. The final
// tie-break on smaller state index makes the order a *strict total* order,
// so the heap and the bucket queue (core/bucket_queue.hpp) produce
// identical pop sequences — the property the bucket-vs-heap differential
// suite pins down.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/state.hpp"
#include "util/assert.hpp"

namespace optsched::core {

struct OpenEntry {
  double f;
  double g;
  StateIndex index;
};

class OpenList {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(const OpenEntry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Insert a batch of entries with one O(n) Floyd heapify instead of n
  /// sift-ups — for transferred/stolen state batches, where the batch is
  /// usually a sizable fraction of the frontier. Small batches into a big
  /// heap fall back to per-entry sift-up, which is cheaper there.
  void push_batch(const std::vector<OpenEntry>& batch) {
    if (batch.empty()) return;
    if (batch.size() < heap_.size() / 4) {
      for (const OpenEntry& e : batch) push(e);
      return;
    }
    heap_.insert(heap_.end(), batch.begin(), batch.end());
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

  const OpenEntry& top() const {
    OPTSCHED_ASSERT(!heap_.empty());
    return heap_[0];
  }

  OpenEntry pop() {
    OPTSCHED_ASSERT(!heap_.empty());
    const OpenEntry result = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return result;
  }

  void clear() noexcept { heap_.clear(); }

  /// Remove every entry with f >= bound (incumbent pruning after a goal or
  /// a tightened upper bound). Rebuilds the heap in O(n).
  void prune_at_least(double bound) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i)
      if (heap_[i].f < bound) heap_[kept++] = heap_[i];
    heap_.resize(kept);
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

  /// Extract up to `count` entries for the parallel algorithm's load
  /// sharing, worst-first and never from inside the donor's near-best slack
  /// band (donation_threshold): handing away a second-best frontier state
  /// would stall the donor. Entries are removed from this heap.
  ///
  /// `live_bound` is the *current* incumbent bound at extraction time:
  /// the donation band is computed against the frontier as pruned by that
  /// bound, so a bound that tightened after the donor last pruned cannot
  /// leak dead states (f >= live_bound) into the donation — they are
  /// dropped here exactly as prune_at_least would drop them. Pass
  /// +infinity (the default) when no bound applies (weighted/bounded
  /// searches, which never prune at the incumbent).
  std::vector<OpenEntry> extract_surplus(
      std::size_t count,
      double live_bound = std::numeric_limits<double>::infinity());

  /// States with f below this stay home during load sharing: the donor's
  /// best f plus a ~0.1% relative slack band. Shared with BucketQueue so
  /// both queues donate from the same region of the frontier.
  static double donation_threshold(double best_f) {
    return best_f + std::max(1.0, std::fabs(best_f)) * (1.0 / 1024.0);
  }

  std::size_t memory_bytes() const noexcept {
    return heap_.capacity() * sizeof(OpenEntry);
  }

 private:
  static bool before(const OpenEntry& a, const OpenEntry& b) noexcept {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g > b.g;
    return a.index < b.index;
  }

  void sift_up(std::size_t i) {
    const OpenEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const OpenEntry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<OpenEntry> heap_;
};

inline std::vector<OpenEntry> OpenList::extract_surplus(std::size_t count,
                                                        double live_bound) {
  std::vector<OpenEntry> result;
  if (live_bound < std::numeric_limits<double>::infinity())
    prune_at_least(live_bound);
  if (heap_.size() <= 1 || count == 0) return result;
  // The back of a 4-ary heap array is *not* among the worst entries — it
  // can hold the donor's second-best state. Donate only from outside the
  // slack band around the current best f, worst states first.
  const double threshold = donation_threshold(heap_[0].f);
  std::vector<OpenEntry> eligible;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].f >= threshold)
      eligible.push_back(heap_[i]);
    else
      heap_[kept++] = heap_[i];  // the top always stays: threshold > top f
  }
  heap_.resize(kept);
  if (eligible.size() > count) {
    const auto worse = [](const OpenEntry& a, const OpenEntry& b) {
      return before(b, a);
    };
    std::nth_element(eligible.begin(),
                     eligible.begin() + static_cast<std::ptrdiff_t>(count),
                     eligible.end(), worse);
    heap_.insert(heap_.end(),
                 eligible.begin() + static_cast<std::ptrdiff_t>(count),
                 eligible.end());
    eligible.resize(count);
  }
  result = std::move(eligible);
  for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  return result;
}

}  // namespace optsched::core
