#include "core/key_scale.hpp"

#include <algorithm>
#include <cmath>

#include "core/bucket_queue.hpp"
#include "core/problem.hpp"

namespace optsched::core {

namespace {

/// Smallest k with v * 2^k integral, or kMaxShift + 1 when none is found
/// within the budget (repeating binary fractions like 1/3, or values finer
/// than the maximum grid).
constexpr int kMaxShift = 20;

int required_shift(double v) {
  double s = v;
  for (int k = 0; k <= kMaxShift; ++k) {
    if (s == std::floor(s) && std::fabs(s) < 9.0e15) return k;
    s *= 2.0;  // exact: power-of-two scaling never rounds in range
  }
  return kMaxShift + 1;
}

}  // namespace

KeyScale derive_key_scale(const SearchProblem& problem) {
  const auto& graph = problem.graph();
  const auto& machine = problem.machine();
  const std::uint32_t v = problem.num_nodes();
  const std::uint32_t p = problem.num_procs();

  KeyScale ks;
  int shift = 0;
  double slowest_serial = 0.0;  // sum of worst-case exec times
  double comm_total = 0.0;      // sum of worst-case comm delays

  // Exec-time atoms w(n)/speed(q), plus the static-level/heuristic atoms
  // sl(n) * sl_scale and w(n) * sl_scale (core/heuristics.cpp).
  const double sl_scale = problem.sl_scale();
  for (NodeId n = 0; n < v; ++n) {
    double worst = 0.0;
    for (ProcId q = 0; q < p; ++q) {
      const double exec = machine.exec_time(graph.weight(n), q);
      shift = std::max(shift, required_shift(exec));
      worst = std::max(worst, exec);
    }
    slowest_serial += worst;
    shift = std::max(
        shift, required_shift(problem.levels().static_level[n] * sl_scale));
    shift = std::max(shift, required_shift(graph.weight(n) * sl_scale));
  }

  // Comm atoms: every edge cost times every hop distance the topology can
  // produce (unit mode multiplies by 1; hop mode by an integer, which
  // cannot need a finer grid than the cost itself — but the product is
  // what enters g, so check it directly against the largest distance).
  std::uint32_t max_hops = 1;
  if (problem.comm() == machine::CommMode::kHopScaled) {
    for (ProcId a = 0; a < p; ++a)
      for (ProcId b = 0; b < p; ++b)
        max_hops = std::max(max_hops, machine.hop_distance(a, b));
  }
  for (NodeId n = 0; n < v; ++n) {
    for (const auto& [child, cost] : graph.children(n)) {
      (void)child;
      double worst_delay = 0.0;
      for (std::uint32_t d = 1; d <= max_hops; ++d) {
        const double delay = cost * static_cast<double>(d);
        shift = std::max(shift, required_shift(delay));
        worst_delay = std::max(worst_delay, delay);
      }
      comm_total += worst_delay;
    }
  }

  ks.pruned_f_bound = problem.upper_bound();
  ks.loose_f_bound = slowest_serial + comm_total + problem.upper_bound();

  if (shift > kMaxShift) {
    ks.exact = false;
    ks.reason = "granularity";  // some cost is off every binary grid
    return ks;
  }
  ks.exact = true;
  ks.shift = shift;
  ks.scale = std::ldexp(1.0, shift);
  // The f bounds are sums/maxes of atoms and must land on the grid too;
  // if they do not (overflow-scale instances), report instead of asserting
  // later at push time.
  if (!ks.on_grid(ks.pruned_f_bound)) {
    ks.exact = false;
    ks.reason = "bound-off-grid";
  }
  return ks;
}

QueueChoice choose_queue(const SearchProblem& problem,
                         const SearchConfig& config) {
  QueueChoice choice;
  if (config.queue == QueueSelect::kHeap) return choice;
  const KeyScale& ks = problem.key_scale();
  if (!ks.exact) {
    choice.fallback = ks.reason;
    return choice;
  }
  if (config.epsilon > 0.0) {
    choice.fallback = "focal";
    return choice;
  }
  if (config.h_weight != 1.0) {
    choice.fallback = "weighted";
    return choice;
  }
  if (config.h == HFunction::kComposite) {
    // h_load's workload bound W/(p * max_speed) can surface as an exact f
    // (f = g + (bound - g) = bound); it divides by p, so it needs its own
    // grid check — computed exactly as h_load computes it.
    const double w = problem.graph().total_work() * problem.sl_scale();
    const double bound = w / static_cast<double>(problem.num_procs());
    if (!ks.on_grid(bound)) {
      choice.fallback = "granularity";
      return choice;
    }
  }
  choice.max_f =
      config.prune.upper_bound ? ks.pruned_f_bound : ks.loose_f_bound;
  if (!BucketQueue::admissible(ks, choice.max_f)) {
    choice.fallback = ks.on_grid(choice.max_f) ? "span" : "bound-off-grid";
    return choice;
  }
  choice.use_bucket = true;
  return choice;
}

}  // namespace optsched::core
