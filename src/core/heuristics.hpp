// Admissible heuristic functions h(s) for the A* search.
//
// The paper's h (Theorem 1) is deliberately cheap: with n_max the node
// attaining g(s) = max finish time,
//
//     h(s) = max_{n_j in succ(n_max)} sl(n_j)
//
// i.e. the largest static level among n_max's (unscheduled) successors — a
// lower bound on the work that must still execute after g(s). We provide it
// alongside three other admissible bounds for the ablation study (bench
// A2 in DESIGN.md):
//
//   kZero       h = 0 (uniform-cost search; the paper's "trivial" baseline)
//   kPaper      the function above
//   kPath       topological lower bound: earliest-start estimates for all
//               unscheduled nodes ignoring communication and contention,
//               h = max_n (est(n) + sl(n)) - g
//   kComposite  max(kPaper, kPath, workload bound W/p) — the tightest
//
// On heterogeneous machines all static-level terms are scaled by
// 1/max_speed so the bounds stay admissible.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace optsched::core {

enum class HFunction : std::uint8_t {
  kZero = 0,
  kPaper = 1,
  kPath = 2,
  kComposite = 3,
};

const char* to_string(HFunction h);

/// View of an expanded state's schedule context that the heuristics read.
/// Filled by ExpansionContext (core/expansion.hpp).
struct ScheduleView {
  const double* finish_time;     ///< per node; valid where scheduled
  const ProcId* proc_of;         ///< per node; kInvalidProc = unscheduled
  double g;                      ///< max finish over scheduled nodes
  NodeId nmax;                   ///< node attaining g (kInvalidNode if none)
  std::uint32_t num_scheduled;
};

/// Evaluate the selected heuristic. `scratch` must hold >= 2 * num_nodes
/// doubles (the h_path propagation arrays; reused across calls to avoid
/// per-expansion allocation).
double evaluate_h(HFunction fn, const SearchProblem& problem,
                  const ScheduleView& view, double* scratch);

}  // namespace optsched::core
