// Fixed-point key scale for the bucketed OPEN list (core/bucket_queue.hpp).
//
// The bucket queue indexes its buckets by integer f keys, but f and g are
// doubles: heterogeneous processor speeds yield exec times like 56.25, and
// hop-scaled communication multiplies edge costs by integer distances. The
// queue is only sound if every f the search can ever produce is *exactly*
// an integer multiple of a per-instance grid step 2^-shift.
//
// Soundness argument (DESIGN.md §"Hot-path engineering"): every g and h the
// engines compute is built from a finite atom set by +, max and monotone
// selection only —
//   * exec times  w(n) / speed(p)            for every (node, processor)
//   * comm terms  c(e) * hop_distance(p, q)  (or c(e) in unit mode)
//   * scaled static levels  sl(n) * sl_scale and  w(n) * sl_scale
// max of on-grid values is on-grid trivially; the sum of two doubles that
// are integer multiples of 2^-shift is the same integer multiple of
// 2^-shift the real sum is, *exactly*, as long as the magnitudes stay far
// below 2^53 * 2^-shift (no rounding can occur on a representable result).
// So checking the atoms once at problem-build time certifies every key the
// search derives from them. A power-of-two step is essential: multiplying
// by 2^shift is exact, so the on-grid test itself cannot misfire, and
// values like 1/3 (speed 3) are correctly rejected — their stored doubles
// are not on any coarse binary grid.
//
// When any atom needs a finer grid than 2^-kMaxShift the instance is
// reported non-representable and engines fall back to the heap
// (queue=auto never selects the bucket queue on such instances).
#pragma once

#include <cmath>
#include <cstdint>

namespace optsched::core {

class SearchProblem;

struct KeyScale {
  /// Every cost atom of the instance is an integer multiple of 2^-shift.
  bool exact = false;
  int shift = 0;
  double scale = 1.0;  ///< 2^shift, cached
  /// Conservative upper bound on any f value the search can produce with
  /// upper-bound pruning enabled: the instance's heuristic makespan U.
  double pruned_f_bound = 0.0;
  /// Ditto with pruning disabled: serial execution of everything on the
  /// slowest processor plus every communication delay — loose but finite.
  double loose_f_bound = 0.0;
  /// Human-readable reason when !exact ("" otherwise).
  const char* reason = "";

  /// Integer key of an on-grid value (exact: v * 2^shift has no fraction).
  std::int64_t key_of(double v) const {
    return static_cast<std::int64_t>(v * scale);
  }

  /// Is `v` exactly representable on this grid? v * 2^shift is computed
  /// exactly (power-of-two scaling), so the integrality test is precise.
  bool on_grid(double v) const {
    const double s = v * scale;
    return s == std::floor(s) && std::fabs(s) < 9.0e15;
  }
};

/// Derive the instance's grid at problem-build time (see file comment).
/// Cost: O(v * p + e) — trivial next to building the levels/upper bound.
KeyScale derive_key_scale(const SearchProblem& problem);

}  // namespace optsched::core
