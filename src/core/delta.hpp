// Typed instance deltas — the churn vocabulary of warm-start re-solve.
//
// An InstanceDelta is one small perturbation of a scheduling instance: a
// task's computation cost changes, a precedence edge appears or vanishes,
// an edge's communication cost changes, or a processor drops out of /
// joins the machine. apply_delta() rebuilds the (frozen) graph/machine
// with the change applied and reports exactly what the change invalidates:
//
//   dirty_nodes     nodes whose assignment timing the delta can alter — a
//                   partial schedule that never touches a dirty node has
//                   bit-identical finish times, g, and signature under the
//                   old and new instance, which is what lets the search
//                   retain its arena prefix (core/astar.hpp WarmStart).
//   level_seeds     nodes whose level attributes must be recomputed; the
//                   recompute is restricted to their ancestor/descendant
//                   cones (dag::update_levels).
//   machine_changed processor set or numbering changed: every stored state
//                   references ProcIds of the old machine, so nothing can
//                   be retained.
//   proc_map        old ProcId -> new ProcId (kInvalidProc = dropped),
//                   used by sched::repair_schedule to re-seat the previous
//                   incumbent.
//
// Dirty sets per kind (u -> w = the delta's edge):
//   taskcost n      {n}        (t-levels of descendants change, but a
//                              chain without n has unchanged times)
//   edgeadd  u->w   {w}        (only w's readiness/start can move)
//   edgedel  u->w   {w}
//   commcost u->w   {w}
//   procdrop/procadd           machine_changed (full invalidation)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "machine/machine.hpp"

namespace optsched::core {

enum class DeltaKind : std::uint8_t {
  kTaskCost = 0,  ///< node's computation cost := value
  kEdgeAdd,       ///< new edge src -> dst with comm cost value
  kEdgeRemove,    ///< drop edge src -> dst
  kCommCost,      ///< edge src -> dst comm cost := value
  kProcDrop,      ///< remove processor `proc` (ids above it shift down)
  kProcAdd,       ///< add a processor with speed value (0 = speed 1),
                  ///< connected to every existing processor
};

const char* to_string(DeltaKind kind);

struct InstanceDelta {
  DeltaKind kind = DeltaKind::kTaskCost;
  dag::NodeId node = dag::kInvalidNode;  ///< taskcost
  dag::NodeId src = dag::kInvalidNode;   ///< edge kinds
  dag::NodeId dst = dag::kInvalidNode;   ///< edge kinds
  machine::ProcId proc = machine::kInvalidProc;  ///< procdrop
  double value = 0.0;  ///< cost / speed, by kind

  friend bool operator==(const InstanceDelta&, const InstanceDelta&) = default;
};

/// The perturbed instance plus the invalidation summary (header comment).
struct DeltaEffect {
  dag::TaskGraph graph;
  machine::Machine machine;
  std::vector<bool> dirty_nodes;   ///< per NodeId (empty if machine_changed)
  std::vector<bool> level_seeds;   ///< per NodeId (empty if levels unchanged)
  bool machine_changed = false;
  /// old ProcId -> new ProcId; kInvalidProc for a dropped processor.
  std::vector<machine::ProcId> proc_map;
};

/// Apply one delta to a finalized instance. Throws util::Error on an
/// invalid delta (unknown node/edge/proc, duplicate edge, cycle, dropping
/// the last processor, non-finite cost).
DeltaEffect apply_delta(const dag::TaskGraph& graph,
                        const machine::Machine& machine,
                        const InstanceDelta& delta);

}  // namespace optsched::core
