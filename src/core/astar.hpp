// Serial A* and Aε* scheduling (paper §3.1, §3.2, §3.4).
//
// The search explores partial schedules best-first on f = g + h, with g the
// partial schedule length and h the configured admissible heuristic. With
// all pruning enabled this is the paper's "A*" column; PruneConfig::none()
// gives its "A* full" column; SearchConfig::epsilon > 0 gives the Aε*
// FOCAL variant with a (1+epsilon)-optimality guarantee.
//
// The search is *anytime*: it starts from the linear-time upper-bound
// heuristic's schedule as incumbent, so even when an expansion or time
// limit aborts the search a valid schedule (never worse than that
// heuristic's) is returned with proved_optimal = false.
#pragma once

#include <limits>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/expansion.hpp"
#include "core/problem.hpp"
#include "sched/schedule.hpp"

namespace optsched::core {

struct SearchStats {
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t pruned_upper_bound = 0;
  std::uint64_t skipped_equivalence = 0;
  std::uint64_t skipped_isomorphism = 0;
  /// Context loads rebuilt from the root vs. delta-replayed from the
  /// previously loaded state (ExpansionContext::move_to), and the total
  /// assignment applications across both — the per-expansion replay cost
  /// the delta path amortizes (assignments_replayed / expanded ≈ mean
  /// replay length; a full-replay engine would pay the mean state depth).
  std::uint64_t loads_full = 0;
  std::uint64_t loads_incremental = 0;
  std::uint64_t assignments_replayed = 0;
  std::size_t max_open_size = 0;
  /// Search-state memory: arena + CLOSED + OPEN for best-first engines,
  /// the bounded DFS working set for IDA*, summed across PPEs for the
  /// parallel engine. 0 means the producing engine does not track memory.
  std::size_t peak_memory_bytes = 0;
  /// The state arena's hot/cold split (core/state.hpp): hot is the
  /// search loop's resident working set, cold holds signatures + finish
  /// times touched only at generation/dedup/transfer time.
  std::size_t arena_hot_bytes = 0;
  std::size_t arena_cold_bytes = 0;
  /// OPEN list actually used: "bucket", "heap", "focal" (Aε* FOCAL set),
  /// or "" for engines without an OPEN list (IDA*, heuristics).
  const char* queue_kind = "";
  /// Why the bucket queue was not used when queue=auto|bucket asked for it
  /// ("" when it was, or when queue=heap chose the heap explicitly).
  const char* queue_fallback = "";
  /// Widest f-key span the bucket queue ever held (0 on the heap path);
  /// max across PPEs for the parallel engine.
  std::uint64_t bucket_peak = 0;
  double elapsed_seconds = 0.0;

  void absorb(const ExpandStats& e) {
    expanded += e.expanded;
    generated += e.generated;
    duplicates_dropped += e.duplicates_dropped;
    pruned_upper_bound += e.pruned_upper_bound;
    skipped_equivalence += e.skipped_equivalence;
    skipped_isomorphism += e.skipped_isomorphism;
    loads_full += e.loads_full;
    loads_incremental += e.loads_incremental;
    assignments_replayed += e.assignments_replayed;
  }
};

struct SearchResult {
  sched::Schedule schedule;   ///< always a valid complete schedule
  double makespan = 0.0;
  bool proved_optimal = false;
  /// Guaranteed makespan <= bound_factor * optimal (1.0 when optimal).
  double bound_factor = 1.0;
  Termination reason = Termination::kOptimal;
  SearchStats stats;
};

/// Cross-solve warm-start state (the SolveSession re-solve path). The
/// caller moves the previous solve's arena in together with the delta's
/// invalidation summary; the search compacts it to the clean subset —
/// every state whose whole parent chain avoids dirty nodes; parents
/// precede children in the arena, so one forward pass with index
/// remapping suffices — re-derives h for the retained states under the
/// new instance, pre-populates CLOSED with their signatures (sound
/// because a signature collision implies an identical assignment
/// multiset, hence identical g), and starts from
/// min(static U, seed_upper_bound) as the incumbent.
///
/// Retained states re-enter OPEN *except* skippable closed states: when
/// the delta changed only costs (`cost_only`), a state that the previous
/// run fully expanded with no upper-bound-pruned child and with no
/// `guard_nodes` member ready re-expands to exactly the child set already
/// sitting in the arena — untouched-node costs, the duplicate-detection
/// outcome (an equal-signature first copy has the same clean assignment
/// multiset, so it was retained too), and the equivalence/isomorphism
/// pruning decisions are all unchanged outside the guard set — so it
/// stays closed and is never re-expanded. This is where a warm re-solve
/// skips search work. Guard readiness is what keeps the recorded
/// expansion replayable: any child invalidated by the delta has a dirty
/// (guarded) node, which is by construction ready at the parent.
///
/// When the repaired seed schedule already matches the root's admissible
/// lower bound the solve returns proved-optimal with zero expansions
/// (instant proof). After the run the (final) arena and per-state
/// expansion record are moved back out for the next resolve.
struct WarmStart {
  /// expansion_flags bits.
  static constexpr std::uint8_t kExpanded = 1;     ///< successors were built
  static constexpr std::uint8_t kBoundPruned = 2;  ///< a child was discarded
                                                   ///< by upper-bound pruning

  StateArena arena;               ///< in: previous arena; out: final arena
  /// Per-arena-index expansion record, parallel to `arena` (moved in and
  /// out with it). kExpanded is only trusted if it has stayed valid
  /// through every compaction since it was set: seeding clears the flags
  /// of every state it pushes back onto OPEN, so a flag survives only
  /// along skip chains, whose children provably remain in the arena.
  std::vector<std::uint8_t> expansion_flags;
  /// Prune bound in force when the state was expanded (parallel to
  /// `arena`, meaningful where kBoundPruned is set). For a cost
  /// non-decreasing delta a bound-pruned expansion is still skippable
  /// when this recorded bound covers the new run's initial bound: every
  /// heuristic is a max of critical-path/load lower bounds and therefore
  /// monotone non-decreasing in task and comm costs, so a child with
  /// f_old >= recorded has f_new >= f_old >= the new bound — it would be
  /// pruned again.
  std::vector<double> expansion_bounds;
  std::vector<bool> dirty_nodes;  ///< per NodeId of the new graph
  /// Nodes whose readiness at a retained state vetoes the closed-state
  /// skip: the dirty nodes plus the delta's endpoints (equivalence
  /// classes of other nodes are unaffected by edits incident to these).
  std::vector<bool> guard_nodes;
  /// The delta changed task or comm costs only — precedence and machine
  /// are untouched — enabling the closed-state skip described above.
  bool cost_only = false;
  /// The delta did not decrease any cost (new value >= old): admissible h
  /// values can only grow, unlocking the recorded-bound skip relaxation
  /// documented on expansion_bounds.
  bool cost_nondecrease = false;
  bool instance_replaced = false; ///< machine changed: retain nothing
  double seed_upper_bound = std::numeric_limits<double>::infinity();
  /// Repaired incumbent, built against the *new* instance (borrowed; must
  /// outlive the call). May be null (first solve of a session).
  const sched::Schedule* seed_schedule = nullptr;

  // Outputs:
  std::uint64_t states_retained = 0;  ///< clean states reused
  std::uint64_t states_skipped = 0;   ///< retained states never re-expanded
  bool warm_used = false;   ///< any reuse happened (states, bound, or proof)
  bool instant_proof = false;  ///< seed matched the root lower bound
};

/// Run the search on a prepared problem (reusable across configs/threads).
SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config = {});

/// Warm-started run: `warm` (may be null = cold) is consumed and refilled
/// as described on WarmStart. Results bit-agree with a cold solve of the
/// same instance for exact configurations (epsilon 0, h_weight 1).
SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config, WarmStart* warm);

/// Convenience overload: builds the SearchProblem internally.
SearchResult astar_schedule(const dag::TaskGraph& graph,
                            const machine::Machine& machine,
                            const SearchConfig& config = {},
                            CommMode comm = CommMode::kUnitDistance);

}  // namespace optsched::core
