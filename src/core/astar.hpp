// Serial A* and Aε* scheduling (paper §3.1, §3.2, §3.4).
//
// The search explores partial schedules best-first on f = g + h, with g the
// partial schedule length and h the configured admissible heuristic. With
// all pruning enabled this is the paper's "A*" column; PruneConfig::none()
// gives its "A* full" column; SearchConfig::epsilon > 0 gives the Aε*
// FOCAL variant with a (1+epsilon)-optimality guarantee.
//
// The search is *anytime*: it starts from the linear-time upper-bound
// heuristic's schedule as incumbent, so even when an expansion or time
// limit aborts the search a valid schedule (never worse than that
// heuristic's) is returned with proved_optimal = false.
#pragma once

#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/expansion.hpp"
#include "core/problem.hpp"
#include "sched/schedule.hpp"

namespace optsched::core {

struct SearchStats {
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t pruned_upper_bound = 0;
  std::uint64_t skipped_equivalence = 0;
  std::uint64_t skipped_isomorphism = 0;
  /// Context loads rebuilt from the root vs. delta-replayed from the
  /// previously loaded state (ExpansionContext::move_to), and the total
  /// assignment applications across both — the per-expansion replay cost
  /// the delta path amortizes (assignments_replayed / expanded ≈ mean
  /// replay length; a full-replay engine would pay the mean state depth).
  std::uint64_t loads_full = 0;
  std::uint64_t loads_incremental = 0;
  std::uint64_t assignments_replayed = 0;
  std::size_t max_open_size = 0;
  /// Search-state memory: arena + CLOSED + OPEN for best-first engines,
  /// the bounded DFS working set for IDA*, summed across PPEs for the
  /// parallel engine. 0 means the producing engine does not track memory.
  std::size_t peak_memory_bytes = 0;
  /// The state arena's hot/cold split (core/state.hpp): hot is the
  /// search loop's resident working set, cold holds signatures + finish
  /// times touched only at generation/dedup/transfer time.
  std::size_t arena_hot_bytes = 0;
  std::size_t arena_cold_bytes = 0;
  double elapsed_seconds = 0.0;

  void absorb(const ExpandStats& e) {
    expanded += e.expanded;
    generated += e.generated;
    duplicates_dropped += e.duplicates_dropped;
    pruned_upper_bound += e.pruned_upper_bound;
    skipped_equivalence += e.skipped_equivalence;
    skipped_isomorphism += e.skipped_isomorphism;
    loads_full += e.loads_full;
    loads_incremental += e.loads_incremental;
    assignments_replayed += e.assignments_replayed;
  }
};

struct SearchResult {
  sched::Schedule schedule;   ///< always a valid complete schedule
  double makespan = 0.0;
  bool proved_optimal = false;
  /// Guaranteed makespan <= bound_factor * optimal (1.0 when optimal).
  double bound_factor = 1.0;
  Termination reason = Termination::kOptimal;
  SearchStats stats;
};

/// Run the search on a prepared problem (reusable across configs/threads).
SearchResult astar_schedule(const SearchProblem& problem,
                            const SearchConfig& config = {});

/// Convenience overload: builds the SearchProblem internally.
SearchResult astar_schedule(const dag::TaskGraph& graph,
                            const machine::Machine& machine,
                            const SearchConfig& config = {},
                            CommMode comm = CommMode::kUnitDistance);

}  // namespace optsched::core
