# Shared compile/link options for every optsched target, carried by the
# INTERFACE library optsched::options. Static layer libraries expose it
# PUBLIC so warnings and sanitizer flags propagate to tests, benches, and
# examples without per-target repetition.

add_library(optsched_options INTERFACE)
add_library(optsched::options ALIAS optsched_options)

target_compile_features(optsched_options INTERFACE cxx_std_20)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(optsched_options INTERFACE -Wall -Wextra)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
      AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
    # GCC 12 -Wrestrict false-positives on std::string operator+ chains at
    # -O2 (GCC PR105651, fixed in 13); would break -Werror builds.
    target_compile_options(optsched_options INTERFACE -Wno-restrict)
  endif()
  if(OPTSCHED_WERROR)
    target_compile_options(optsched_options INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(optsched_options INTERFACE /W4)
  if(OPTSCHED_WERROR)
    target_compile_options(optsched_options INTERFACE /WX)
  endif()
endif()

if(OPTSCHED_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "OPTSCHED_SANITIZE requires GCC or Clang")
  endif()
  string(REPLACE ";" "," _optsched_san "${OPTSCHED_SANITIZE}")
  message(STATUS "Sanitizers enabled: ${_optsched_san}")
  target_compile_options(optsched_options INTERFACE
    -fsanitize=${_optsched_san} -fno-omit-frame-pointer -g)
  target_link_options(optsched_options INTERFACE -fsanitize=${_optsched_san})
endif()
