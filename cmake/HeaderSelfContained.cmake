# Header self-containedness check: every header must compile as its own
# translation unit, so no header silently depends on what its includer
# happened to include first. For each header we generate a one-line .cpp
# and compile the lot into an OBJECT library that is part of ALL — a
# non-self-sufficient header is a build error, not a latent landmine.

file(GLOB_RECURSE _optsched_headers CONFIGURE_DEPENDS
  RELATIVE ${PROJECT_SOURCE_DIR}
  ${PROJECT_SOURCE_DIR}/src/*.hpp
  ${PROJECT_SOURCE_DIR}/bench/*.hpp)

set(_optsched_header_tus "")
foreach(_hdr IN LISTS _optsched_headers)
  string(REPLACE "/" "_" _safe "${_hdr}")
  string(REPLACE ".hpp" ".cpp" _safe "${_safe}")
  set(_tu ${CMAKE_BINARY_DIR}/header_checks/${_safe})
  # Headers are included the same way client code includes them: relative
  # to src/ (or bench/ for bench_common.hpp).
  string(REGEX REPLACE "^(src|bench)/" "" _inc "${_hdr}")
  set(_content "#include \"${_inc}\"\n")
  if(EXISTS ${_tu})
    file(READ ${_tu} _existing)
  else()
    set(_existing "")
  endif()
  if(NOT _existing STREQUAL _content)
    file(WRITE ${_tu} "${_content}")
  endif()
  list(APPEND _optsched_header_tus ${_tu})
endforeach()

add_library(optsched_header_selfcontained OBJECT ${_optsched_header_tus})
target_include_directories(optsched_header_selfcontained PRIVATE
  ${PROJECT_SOURCE_DIR}/src
  ${PROJECT_SOURCE_DIR}/bench)
target_link_libraries(optsched_header_selfcontained PRIVATE optsched::options)
