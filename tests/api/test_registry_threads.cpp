// SolverRegistry under concurrent access — the daemon's worker pool
// reads the registry (contains/info/solve) from several threads while
// other code may still be registering engines. The registry serializes
// writers and shares readers (std::shared_mutex); this smoke test drives
// both sides at once under TSan-visible contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "sched/list_scheduler.hpp"

namespace optsched::api {
namespace {

class UpperBoundSolver : public Solver {
 public:
  SolveResult solve(const SolveRequest& request) const override {
    SolveResult out{sched::upper_bound_schedule(*request.graph,
                                                *request.machine,
                                                request.comm)};
    out.makespan = out.schedule.makespan();
    out.reason = core::Termination::kHeuristic;
    return out;
  }
};

TEST(RegistryThreads, ConcurrentReadersAndWriters) {
  auto& registry = SolverRegistry::instance();
  const dag::TaskGraph graph = dag::paper_figure1();
  const machine::Machine machine = machine::Machine::paper_ring3();

  constexpr int kReaders = 6;
  constexpr int kWriters = 2;
  constexpr int kEnginesPerWriter = 8;
  std::atomic<bool> go{false};
  std::atomic<int> read_errors{0};

  std::vector<std::thread> threads;
  // Writers register fresh uniquely-named engines throughout the run.
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&registry, &go, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kEnginesPerWriter; ++i) {
        registry.add({"threads-test-" + std::to_string(w) + "-" +
                          std::to_string(i),
                      "concurrency test double",
                      {},
                      {},
                      [] { return std::make_unique<UpperBoundSolver>(); }});
      }
    });
  // Readers hammer every const entry point, including full solves.
  for (int r = 0; r < kReaders; ++r)
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        if (!registry.contains("astar")) read_errors.fetch_add(1);
        if (registry.info("ida").name != "ida") read_errors.fetch_add(1);
        if (registry.names().empty()) read_errors.fetch_add(1);
        if (registry.names_matching([](const EngineCaps& c) {
              return c.optimal;
            }).empty())
          read_errors.fetch_add(1);
        if (i % 50 == 0) {
          SolveRequest request(graph, machine);
          const SolveResult result = registry.solve("blevel", request);
          if (result.makespan <= 0.0) read_errors.fetch_add(1);
        }
      }
    });

  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(read_errors.load(), 0);
  // Every registration landed exactly once.
  for (int w = 0; w < kWriters; ++w)
    for (int i = 0; i < kEnginesPerWriter; ++i)
      EXPECT_TRUE(registry.contains("threads-test-" + std::to_string(w) +
                                    "-" + std::to_string(i)));
}

}  // namespace
}  // namespace optsched::api
