// Cross-cutting controls through the unified API: cancellation tokens,
// wall-clock deadlines, expansion limits, memory caps, and progress
// callbacks. Engines are selected from the registry by capability
// (caps.anytime), so every current and future anytime engine is covered:
// a limited/cancelled solve must still return a *valid* complete schedule
// with proved_optimal = false and the right termination reason.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace optsched::api {
namespace {

using machine::Machine;

/// Big enough that no engine can prove optimality within the tests'
/// budgets; high CCR makes the state space particularly unforgiving.
dag::TaskGraph hard_graph() {
  dag::RandomDagParams p;
  p.num_nodes = 26;
  p.ccr = 10.0;
  p.seed = 99;
  return dag::random_dag(p);
}

std::vector<std::string> anytime_engines() {
  std::vector<std::string> out;
  for (const auto& name : SolverRegistry::instance().names())
    if (SolverRegistry::instance().info(name).caps.anytime) out.push_back(name);
  return out;
}

class AnytimeEngine : public ::testing::TestWithParam<std::string> {};

TEST_P(AnytimeEngine, PreCancelledReturnsValidIncumbent) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  request.cancel.cancel();  // cancelled before the search starts

  const SolveResult result = solve(GetParam(), request);
  EXPECT_EQ(result.reason, core::Termination::kCancelled) << GetParam();
  EXPECT_FALSE(result.proved_optimal);
  EXPECT_GT(result.makespan, 0.0);
  sched::validate(result.schedule);  // still a complete, valid schedule
}

TEST_P(AnytimeEngine, CancelFromAnotherThreadStopsTheSearch) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  std::thread canceller([token = request.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  const SolveResult result = solve(GetParam(), request);
  canceller.join();

  // The instance is intractable, so the only way out is the cancellation.
  EXPECT_EQ(result.reason, core::Termination::kCancelled) << GetParam();
  EXPECT_FALSE(result.proved_optimal);
  sched::validate(result.schedule);
}

TEST_P(AnytimeEngine, DeadlineReturnsValidIncumbent) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  request.limits.time_budget_ms = 30.0;

  const SolveResult result = solve(GetParam(), request);
  EXPECT_EQ(result.reason, core::Termination::kTimeLimit) << GetParam();
  EXPECT_FALSE(result.proved_optimal);
  sched::validate(result.schedule);
}

TEST_P(AnytimeEngine, ExpansionLimitReturnsValidIncumbent) {
  // The portfolio's members each get the limit; its merged reason may be
  // any member's, so pin this test to the concrete engines.
  if (GetParam() == "portfolio") GTEST_SKIP();
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  request.limits.max_expansions = 10;

  const SolveResult result = solve(GetParam(), request);
  EXPECT_EQ(result.reason, core::Termination::kExpansionLimit) << GetParam();
  EXPECT_FALSE(result.proved_optimal);
  sched::validate(result.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    AllAnytimeEngines, AnytimeEngine, ::testing::ValuesIn(anytime_engines()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(Controls, MemoryCapStopsBestFirstEngines) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);
  for (const char* engine : {"astar", "chenyu", "parallel"}) {
    SolveRequest request(graph, machine);
    request.limits.max_memory_bytes = 512 * 1024;
    const SolveResult result = solve(engine, request);
    EXPECT_EQ(result.reason, core::Termination::kMemoryLimit) << engine;
    EXPECT_FALSE(result.proved_optimal);
    sched::validate(result.schedule);
  }
}

TEST(Controls, ProgressCallbackObservesTheSearch) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  for (const char* engine : {"astar", "ida", "chenyu"}) {
    std::vector<core::ProgressEvent> events;
    SolveRequest request(graph, machine);
    request.limits.max_expansions = 2000;
    request.progress_every = 100;
    request.progress = [&events](const core::ProgressEvent& e) {
      events.push_back(e);
    };
    const SolveResult result = solve(engine, request);
    (void)result;
    ASSERT_GE(events.size(), 2u) << engine;
    for (std::size_t i = 1; i < events.size(); ++i)
      EXPECT_GE(events[i].expanded, events[i - 1].expanded) << engine;
    EXPECT_GT(events.back().incumbent, 0.0) << engine;
  }
}

TEST(Controls, ParallelProgressIsSerialized) {
  const dag::TaskGraph graph = hard_graph();
  const Machine machine = Machine::fully_connected(4);

  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<std::uint64_t> calls{0};
  SolveRequest request(graph, machine);
  request.limits.max_expansions = 5000;
  request.progress_every = 50;
  request.options["ppes"] = "4";
  request.progress = [&](const core::ProgressEvent&) {
    const int now = ++concurrent;
    int seen = max_concurrent.load();
    while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
    }
    ++calls;
    --concurrent;
  };
  const SolveResult result = solve("parallel", request);
  (void)result;
  EXPECT_GT(calls.load(), 0u);
  EXPECT_EQ(max_concurrent.load(), 1) << "progress must be serialized";
}

}  // namespace
}  // namespace optsched::api
