// The portfolio meta-solver: races registered engines, returns the first
// proved-optimal result (cancelling the losers), or the best incumbent
// when nothing can be proved within the limits.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace optsched::api {
namespace {

using machine::Machine;

TEST(Portfolio, SolvesTheFigure1DemoOptimally) {
  const dag::TaskGraph graph = dag::paper_figure1();
  const Machine machine = Machine::paper_ring3();

  const SolveResult result = solve("portfolio", SolveRequest(graph, machine));
  EXPECT_DOUBLE_EQ(result.makespan, 14.0);  // the paper's Figure 4 optimum
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_DOUBLE_EQ(result.bound_factor, 1.0);
  EXPECT_GE(result.stats.engines_raced, 2u);
  EXPECT_TRUE(SolverRegistry::instance().contains(result.engine))
      << "winner '" << result.engine << "' must be a registered engine";
  sched::validate(result.schedule);
}

TEST(Portfolio, MatchesTheOracleOnRandomInstances) {
  for (std::uint64_t seed : {3u, 8u}) {
    dag::RandomDagParams p;
    p.num_nodes = 7;
    p.ccr = 1.0;
    p.seed = seed;
    const dag::TaskGraph graph = dag::random_dag(p);
    const Machine machine = Machine::fully_connected(3);

    const double oracle =
        solve("exhaustive", SolveRequest(graph, machine)).makespan;
    const SolveResult result =
        solve("portfolio", SolveRequest(graph, machine));
    EXPECT_NEAR(result.makespan, oracle, 1e-9) << "seed " << seed;
    EXPECT_TRUE(result.proved_optimal);
  }
}

TEST(Portfolio, ExplicitMemberList) {
  const dag::TaskGraph graph = dag::paper_figure1();
  const Machine machine = Machine::paper_ring3();

  SolveRequest request(graph, machine);
  request.options["engines"] = "astar+ida";
  const SolveResult result = solve("portfolio", request);
  EXPECT_DOUBLE_EQ(result.makespan, 14.0);
  EXPECT_EQ(result.stats.engines_raced, 2u);
  EXPECT_TRUE(result.engine == "astar" || result.engine == "ida")
      << result.engine;
}

TEST(Portfolio, RejectsBadMemberLists) {
  const dag::TaskGraph graph = dag::paper_figure1();
  const Machine machine = Machine::paper_ring3();

  SolveRequest request(graph, machine);
  request.options["engines"] = "astar+no-such-engine";
  EXPECT_THROW(solve("portfolio", request), InvalidRequest);
  request.options["engines"] = "portfolio";
  EXPECT_THROW(solve("portfolio", request), InvalidRequest);
  request.options["engines"] = "++";
  EXPECT_THROW(solve("portfolio", request), InvalidRequest);
}

TEST(Portfolio, DeadlineReturnsBestIncumbent) {
  dag::RandomDagParams p;
  p.num_nodes = 26;
  p.ccr = 10.0;
  p.seed = 99;
  const dag::TaskGraph graph = dag::random_dag(p);
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  request.limits.time_budget_ms = 40.0;
  const SolveResult result = solve("portfolio", request);
  EXPECT_FALSE(result.proved_optimal);
  EXPECT_EQ(result.reason, core::Termination::kTimeLimit);
  EXPECT_GT(result.makespan, 0.0);
  sched::validate(result.schedule);  // a valid schedule even under deadline
}

TEST(Portfolio, ParentCancellationPropagatesToMembers) {
  dag::RandomDagParams p;
  p.num_nodes = 26;
  p.ccr = 10.0;
  p.seed = 99;
  const dag::TaskGraph graph = dag::random_dag(p);
  const Machine machine = Machine::fully_connected(4);

  SolveRequest request(graph, machine);
  std::thread canceller([token = request.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    token.cancel();
  });
  const SolveResult result = solve("portfolio", request);
  canceller.join();
  EXPECT_FALSE(result.proved_optimal);
  EXPECT_EQ(result.reason, core::Termination::kCancelled);
  sched::validate(result.schedule);
}

}  // namespace
}  // namespace optsched::api
