// SolveSession: the warm-start re-solve lifecycle through the public API —
// resolve() must bit-agree with a cold registry solve of the perturbed
// instance, stats must report the reuse, non-warm engines must degrade to
// cold re-solves, and the PR's parallel guardrails (up-front shard memory
// budget, effective-PPE clamp on tiny instances) must be visible here.
#include "api/session.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "sched/validator.hpp"
#include "util/assert.hpp"
#include "workload/scenario.hpp"

namespace optsched::api {
namespace {

using core::DeltaKind;
using core::InstanceDelta;
using workload::Instance;
using workload::ScenarioSpec;

Instance make_instance(const std::string& spec) {
  return ScenarioSpec::parse(spec).materialize();
}

/// Cold reference: one-shot registry solve of the session's current
/// instance (what resolve() must bit-agree with).
SolveResult cold_solve(const std::string& engine, const SolveSession& s,
                       machine::CommMode comm) {
  SolveRequest request(s.graph(), s.machine(), comm);
  return SolverRegistry::instance().solve(engine, request);
}

TEST(SolveSession, ResolveBeforeSolveThrows) {
  SolveSession session("astar");
  EXPECT_THROW(session.resolve({}), InvalidRequest);
  EXPECT_FALSE(session.has_result());
  EXPECT_THROW(session.graph(), util::Error);
}

TEST(SolveSession, UnknownEngineRejectedAtConstruction) {
  EXPECT_THROW(SolveSession("no-such-engine"), InvalidRequest);
}

TEST(SolveSession, WarmResolveChainBitAgreesWithCold) {
  const Instance inst =
      make_instance("family=random nodes=8 ccr=1 machine=clique:3 seed=21");
  SolveSession session("astar");
  EXPECT_TRUE(session.warm_capable());

  SolveRequest request(inst.graph, inst.machine, inst.comm);
  const SolveResult first = session.solve(request);
  EXPECT_TRUE(first.proved_optimal);
  // The initial solve is cold by definition.
  EXPECT_FALSE(first.stats.warm_start_used);
  EXPECT_EQ(first.stats.states_retained, 0u);

  const InstanceDelta chain[] = {
      {.kind = DeltaKind::kTaskCost, .node = 2, .value = 57.0},
      {.kind = DeltaKind::kTaskCost, .node = 6, .value = 3.0},
      {.kind = DeltaKind::kProcAdd, .value = 1.0},
      {.kind = DeltaKind::kTaskCost, .node = 4, .value = 29.0},
  };
  for (const InstanceDelta& delta : chain) {
    const SolveResult warm = session.resolve(delta);
    const SolveResult cold = cold_solve("astar", session, inst.comm);
    ASSERT_TRUE(cold.proved_optimal);
    EXPECT_TRUE(warm.proved_optimal) << to_string(delta.kind);
    EXPECT_NEAR(warm.makespan, cold.makespan, 1e-9) << to_string(delta.kind);
    EXPECT_NO_THROW(sched::validate(warm.schedule));
    // A machine change invalidates every stored state, and the repaired
    // seed may not beat the fresh static bound — reuse is then honestly
    // reported as absent. Graph-only deltas must reuse the arena.
    if (delta.kind != DeltaKind::kProcAdd)
      EXPECT_TRUE(warm.stats.warm_start_used) << to_string(delta.kind);
    EXPECT_EQ(session.last().makespan, warm.makespan);
  }
  // ProcAdd grew the machine inside the session.
  EXPECT_EQ(session.machine().num_procs(), inst.machine.num_procs() + 1);
}

TEST(SolveSession, SkippedPctReportedOnCostOnlyChurn) {
  // A chain stays sequential under any cost change: the repaired seed
  // matches the critical-path bound and the re-solve is an instant proof.
  const Instance inst =
      make_instance("family=chain length=8 machine=clique:2 seed=1");
  SolveSession session("astar");
  SolveRequest request(inst.graph, inst.machine, inst.comm);
  ASSERT_TRUE(session.solve(request).proved_optimal);

  const SolveResult warm = session.resolve(
      {.kind = DeltaKind::kTaskCost, .node = 3, .value = 55.0});
  EXPECT_TRUE(warm.proved_optimal);
  EXPECT_TRUE(warm.stats.warm_start_used);
  EXPECT_EQ(warm.stats.search.expanded, 0u);
  EXPECT_DOUBLE_EQ(warm.stats.search_skipped_pct, 100.0);
}

TEST(SolveSession, NonWarmEngineDegradesToColdResolve) {
  const Instance inst =
      make_instance("family=random nodes=7 ccr=1 machine=clique:2 seed=5");
  for (const std::string engine : {"ida", "chenyu"}) {
    ASSERT_FALSE(SolverRegistry::instance().info(engine).caps.warm_start);
    SolveSession session(engine);
    EXPECT_FALSE(session.warm_capable());
    SolveRequest request(inst.graph, inst.machine, inst.comm);
    ASSERT_TRUE(session.solve(request).proved_optimal) << engine;

    const SolveResult warm = session.resolve(
        {.kind = DeltaKind::kTaskCost, .node = 3, .value = 48.0});
    const SolveResult cold = cold_solve(engine, session, inst.comm);
    EXPECT_FALSE(warm.stats.warm_start_used) << engine;
    EXPECT_EQ(warm.stats.states_retained, 0u) << engine;
    EXPECT_NEAR(warm.makespan, cold.makespan, 1e-9) << engine;
    EXPECT_TRUE(warm.proved_optimal) << engine;
  }
}

TEST(SolveSession, ParallelEngineUsesSeededBound) {
  const Instance inst =
      make_instance("family=random nodes=8 ccr=1 machine=clique:3 seed=31");
  SolveSession session("parallel", {{"ppes", "2"}});
  ASSERT_TRUE(session.warm_capable());
  SolveRequest request(inst.graph, inst.machine, inst.comm);
  ASSERT_TRUE(session.solve(request).proved_optimal);

  const SolveResult warm = session.resolve(
      {.kind = DeltaKind::kTaskCost, .node = 5, .value = 44.0});
  const SolveResult cold = cold_solve("astar", session, inst.comm);
  ASSERT_TRUE(cold.proved_optimal);
  EXPECT_TRUE(warm.proved_optimal);
  EXPECT_NEAR(warm.makespan, cold.makespan, 1e-9);
  // The parallel engine reuses the repaired-incumbent bound (no arena).
  EXPECT_TRUE(warm.stats.warm_start_used);
  EXPECT_EQ(warm.stats.states_retained, 0u);
}

// PR satellite: the work-stealing shard table's memory must fit the
// budget *before* the shards are allocated, as a typed InvalidRequest.
TEST(ParallelGuardrails, ShardBudgetCheckedUpFront) {
  const Instance inst =
      make_instance("family=random nodes=8 ccr=1 machine=clique:2 seed=3");
  SolveRequest request(inst.graph, inst.machine, inst.comm);
  request.options = {{"mode", "ws"}, {"ppes", "4"}};
  request.limits.max_memory_bytes = 1024;  // far below any shard table
  EXPECT_THROW(SolverRegistry::instance().solve("parallel", request),
               InvalidRequest);
  // A workable budget solves fine.
  request.limits.max_memory_bytes = 64u << 20;
  const SolveResult r = SolverRegistry::instance().solve("parallel", request);
  EXPECT_TRUE(r.proved_optimal);
}

// PR satellite: ws mode on a tiny instance clamps the PPE count to what
// the initial frontier can feed instead of reporting idle PPEs as skew.
TEST(ParallelGuardrails, EffectivePpesClampedOnTinyInstances) {
  const Instance inst =
      make_instance("family=chain length=4 machine=clique:2 seed=1");
  SolveRequest request(inst.graph, inst.machine, inst.comm);
  request.options = {{"mode", "ws"}, {"ppes", "8"}};
  const SolveResult r = SolverRegistry::instance().solve("parallel", request);
  EXPECT_TRUE(r.proved_optimal);
  ASSERT_GT(r.stats.effective_ppes, 0u);
  EXPECT_LT(r.stats.effective_ppes, 8u);  // a 4-chain cannot feed 8 PPEs
  EXPECT_LE(r.stats.expanded_per_ppe.size(), r.stats.effective_ppes);
}

}  // namespace
}  // namespace optsched::api
