// The solver registry: built-in engine inventory, capability flags,
// option-string parsing and validation, structured invalid-argument
// errors, and external engine registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "api/registry.hpp"
#include "core/ida_star.hpp"
#include "dag/graph.hpp"
#include "machine/machine.hpp"
#include "sched/list_scheduler.hpp"

namespace optsched::api {
namespace {

SolveRequest figure1_request() {
  static const dag::TaskGraph graph = dag::paper_figure1();
  static const machine::Machine machine = machine::Machine::paper_ring3();
  return SolveRequest(graph, machine);
}

TEST(Registry, ListsAllBuiltinEngines) {
  const auto names = SolverRegistry::instance().names();
  for (const char* expected :
       {"astar", "aeps", "ida", "parallel", "chenyu", "exhaustive", "blevel",
        "hlfet", "mcp", "etf", "portfolio"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << "missing engine " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CapabilityFlags) {
  const auto& r = SolverRegistry::instance();
  EXPECT_TRUE(r.info("astar").caps.optimal);
  EXPECT_TRUE(r.info("astar").caps.anytime);
  EXPECT_FALSE(r.info("astar").caps.parallel);
  EXPECT_FALSE(r.info("aeps").caps.optimal);   // (1+eps) bound, not exact
  EXPECT_TRUE(r.info("aeps").caps.bounded);
  EXPECT_TRUE(r.info("parallel").caps.parallel);
  EXPECT_TRUE(r.info("portfolio").caps.optimal);
  EXPECT_TRUE(r.info("portfolio").caps.parallel);
  EXPECT_FALSE(r.info("exhaustive").caps.anytime);  // ignores limits
  // List heuristics carry no capability flags at all.
  for (const char* h : {"blevel", "hlfet", "mcp", "etf"})
    EXPECT_TRUE(r.info(h).caps.is_heuristic()) << h;
  EXPECT_FALSE(r.info("astar").caps.is_heuristic());
}

TEST(Registry, ParseOptions) {
  EXPECT_TRUE(parse_options("").empty());
  const Options o = parse_options("epsilon=0.2,ppes=8,topology=ring");
  EXPECT_EQ(o.size(), 3u);
  EXPECT_EQ(o.at("epsilon"), "0.2");
  EXPECT_EQ(o.at("ppes"), "8");
  EXPECT_EQ(o.at("topology"), "ring");
  EXPECT_EQ(parse_options("a=1,,b=2,").size(), 2u);  // empties tolerated
  EXPECT_THROW(parse_options("epsilon"), util::Error);
  EXPECT_THROW(parse_options("=0.2"), util::Error);
}

TEST(Registry, UnknownEngineRaisesInvalidRequest) {
  try {
    solve("does-not-exist", figure1_request());
    FAIL() << "expected InvalidRequest";
  } catch (const InvalidRequest& e) {
    EXPECT_NE(std::string(e.what()).find("does-not-exist"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("astar"), std::string::npos)
        << "error should list registered engines";
  }
}

TEST(Registry, UndeclaredOptionRaisesInvalidRequest) {
  SolveRequest request = figure1_request();
  request.options["frobnicate"] = "1";
  try {
    solve("astar", request);
    FAIL() << "expected InvalidRequest";
  } catch (const InvalidRequest& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("prune"), std::string::npos)
        << "error should list the valid option keys";
  }
}

TEST(Registry, BadOptionValueRaisesInvalidRequest) {
  SolveRequest request = figure1_request();
  request.options["epsilon"] = "banana";
  EXPECT_THROW(solve("aeps", request), InvalidRequest);
  request.options["epsilon"] = "-0.5";
  EXPECT_THROW(solve("aeps", request), InvalidRequest);
  // Negative counts must be rejected up front, never wrapped to a huge
  // unsigned value (ppes=-1 would otherwise try to spawn 2^32-1 threads).
  request.options.clear();
  request.options["ppes"] = "-1";
  EXPECT_THROW(solve("parallel", request), InvalidRequest);
  request.options["ppes"] = "0";
  EXPECT_THROW(solve("parallel", request), InvalidRequest);
}

// The IDA* exact-only constraint surfaces as a structured invalid-argument
// error through the API's validation path: `ida` simply does not declare
// an epsilon option, so the request is rejected before any search runs.
TEST(Registry, IdaRejectsEpsilonThroughValidation) {
  SolveRequest request = figure1_request();
  request.options["epsilon"] = "0.2";
  try {
    solve("ida", request);
    FAIL() << "expected InvalidRequest";
  } catch (const InvalidRequest& e) {
    EXPECT_NE(std::string(e.what()).find("ida"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("epsilon"), std::string::npos);
  }
}

// The core entry point itself must throw (never abort) on the same input,
// so non-API callers get a catchable error too.
TEST(Registry, IdaCoreEntryPointThrowsOnEpsilon) {
  const dag::TaskGraph graph = dag::paper_figure1();
  const machine::Machine machine = machine::Machine::paper_ring3();
  core::SearchConfig config;
  config.epsilon = 0.2;
  EXPECT_THROW(core::ida_star_schedule(graph, machine, config), util::Error);
  config.epsilon = 0.0;
  config.h_weight = 2.0;
  EXPECT_THROW(core::ida_star_schedule(graph, machine, config), util::Error);
}

TEST(Registry, ExternalEngineRegistration) {
  class EchoBLevel : public Solver {
   public:
    SolveResult solve(const SolveRequest& request) const override {
      SolveResult out{sched::upper_bound_schedule(*request.graph,
                                                  *request.machine,
                                                  request.comm)};
      out.makespan = out.schedule.makespan();
      out.reason = core::Termination::kHeuristic;
      out.bound_factor = std::numeric_limits<double>::infinity();
      return out;
    }
  };

  auto& registry = SolverRegistry::instance();
  if (!registry.contains("test-custom")) {
    registry.add({"test-custom",
                  "registration test double",
                  {},
                  {},
                  [] { return std::make_unique<EchoBLevel>(); }});
  }
  const SolveResult result = solve("test-custom", figure1_request());
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.engine, "test-custom");
  sched::validate(result.schedule);

  // Duplicate registration fails loudly.
  EXPECT_THROW(registry.add({"astar", "dup", {}, {}, [] {
                  return std::unique_ptr<Solver>();
                }}),
               util::Error);
}

TEST(Registry, EngineTableMentionsEveryEngine) {
  const std::string plain = format_engine_table(false);
  const std::string md = format_engine_table(true);
  for (const auto& name : SolverRegistry::instance().names()) {
    EXPECT_NE(plain.find(name), std::string::npos) << name;
    EXPECT_NE(md.find("`" + name + "`"), std::string::npos) << name;
  }
  EXPECT_NE(md.find("| --- |"), std::string::npos);
}

TEST(Registry, ResultEngineFieldIsFilled) {
  const SolveResult r = solve("mcp", figure1_request());
  EXPECT_EQ(r.engine, "mcp");
  EXPECT_EQ(r.reason, core::Termination::kHeuristic);
  EXPECT_FALSE(r.proved_optimal);
}

}  // namespace
}  // namespace optsched::api
