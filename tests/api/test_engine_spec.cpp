// api::canonical_engine_spec — the engine half of the server's result
// cache key. Two specs that configure bit-identical solves must
// canonicalize to the same string; anything else would split (or worse,
// merge) cache entries.
#include <gtest/gtest.h>

#include "api/solver.hpp"

namespace optsched::api {
namespace {

TEST(CanonicalEngineSpec, BareNamePassesThrough) {
  EXPECT_EQ(canonical_engine_spec("astar"), "astar");
  EXPECT_EQ(canonical_engine_spec("chenyu"), "chenyu");
}

TEST(CanonicalEngineSpec, OptionsSortByKey) {
  EXPECT_EQ(canonical_engine_spec("parallel:ppes=4:mode=ws"),
            "parallel:mode=ws:ppes=4");
  EXPECT_EQ(canonical_engine_spec("parallel:mode=ws:ppes=4"),
            "parallel:mode=ws:ppes=4");
}

TEST(CanonicalEngineSpec, NumericValuesNormalize) {
  // Leading zeros, trailing fraction zeros, and scientific notation all
  // denote the same configuration — one canonical spelling each.
  EXPECT_EQ(canonical_engine_spec("parallel:steal-batch=08"),
            canonical_engine_spec("parallel:steal-batch=8"));
  EXPECT_EQ(canonical_engine_spec("aeps:epsilon=0.20"),
            canonical_engine_spec("aeps:epsilon=0.2"));
  EXPECT_EQ(canonical_engine_spec("aeps:epsilon=2e-1"),
            canonical_engine_spec("aeps:epsilon=0.2"));
  // ...but numerically distinct values stay distinct.
  EXPECT_NE(canonical_engine_spec("aeps:epsilon=0.2"),
            canonical_engine_spec("aeps:epsilon=0.25"));
}

TEST(CanonicalEngineSpec, NonNumericValuesPassThroughVerbatim) {
  EXPECT_EQ(canonical_engine_spec("parallel:mode=ws"), "parallel:mode=ws");
  EXPECT_EQ(canonical_engine_spec("portfolio:engines=astar+ida"),
            "portfolio:engines=astar+ida");
}

TEST(CanonicalEngineSpec, Idempotent) {
  for (const char* spec :
       {"astar", "parallel:ppes=04:mode=ws:steal-batch=8",
        "aeps:epsilon=0.20", "portfolio:engines=astar+ida"}) {
    const std::string once = canonical_engine_spec(spec);
    EXPECT_EQ(canonical_engine_spec(once), once) << "spec: " << spec;
  }
}

TEST(CanonicalEngineSpec, RoundTripsThroughParse) {
  // The canonical form must itself parse back to the same (name, options)
  // pair the original spec parsed to.
  const char* spec = "parallel:ppes=4:mode=ws";
  const auto original = parse_engine_spec(spec);
  const auto canonical = parse_engine_spec(canonical_engine_spec(spec));
  EXPECT_EQ(original.first, canonical.first);
  EXPECT_EQ(original.second, canonical.second);
}

TEST(CanonicalEngineSpec, MalformedSpecThrows) {
  // Purely syntactic failures (a name unknown to the registry is the
  // daemon's job to reject, not this function's).
  EXPECT_THROW(canonical_engine_spec("astar:notkv"), util::Error);
  EXPECT_THROW(canonical_engine_spec("astar:=v"), util::Error);
}

}  // namespace
}  // namespace optsched::api
