// Registry-driven conformance suite: every registered engine is run over
// the small oracle instances through the one SolveRequest/SolveResult
// pair, with per-capability expectations:
//
//   * caps.optimal  — makespan equals the exhaustive oracle's, with
//                     proved_optimal = true and bound_factor = 1;
//   * caps.bounded  — makespan within the engine's reported bound_factor
//                     of the oracle;
//   * heuristics    — a valid schedule no better than the oracle.
//
// Because the suite iterates the registry rather than a hard-coded list,
// any newly registered engine is conformance-checked automatically.
#include <gtest/gtest.h>

#include <cmath>

#include "api/registry.hpp"
#include "dag/generators.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace optsched::api {
namespace {

using machine::Machine;

struct Instance {
  dag::TaskGraph graph;
  Machine machine;
  std::string label;
};

std::vector<Instance> oracle_instances() {
  std::vector<Instance> out;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    dag::RandomDagParams p;
    p.num_nodes = 7;
    p.ccr = seed % 2 ? 1.0 : 10.0;
    p.seed = seed;
    out.push_back({dag::random_dag(p), Machine::fully_connected(2),
                   "rand7-p2-seed" + std::to_string(seed)});
  }
  out.push_back({dag::paper_figure1(), Machine::paper_ring3(), "paper-ring3"});
  out.push_back({dag::fork_join(3, 10, 6), Machine::star(3), "fj-star3"});
  out.push_back({dag::fork_join(3, 10, 6),
                 Machine::fully_connected(2, {1.0, 2.0}), "fj-hetero"});
  return out;
}

class EngineConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineConformance, MatchesOracleOnSmallInstances) {
  const std::string engine = GetParam();
  const auto& registry = SolverRegistry::instance();
  const EngineCaps caps = registry.info(engine).caps;

  for (const auto& instance : oracle_instances()) {
    const double oracle =
        solve("exhaustive",
              SolveRequest(instance.graph, instance.machine))
            .makespan;

    const SolveResult result =
        solve(engine, SolveRequest(instance.graph, instance.machine));
    sched::validate(result.schedule);
    EXPECT_NEAR(result.makespan, result.schedule.makespan(), 1e-9);
    if (engine == "portfolio") {
      // The portfolio reports the member that won the race.
      EXPECT_TRUE(registry.contains(result.engine)) << result.engine;
    } else {
      EXPECT_EQ(result.engine, engine);
    }

    if (caps.optimal) {
      EXPECT_NEAR(result.makespan, oracle, 1e-9)
          << engine << " on " << instance.label;
      EXPECT_TRUE(result.proved_optimal)
          << engine << " on " << instance.label;
      EXPECT_DOUBLE_EQ(result.bound_factor, 1.0);
    } else if (caps.bounded) {
      EXPECT_TRUE(result.proved_optimal);
      EXPECT_TRUE(std::isfinite(result.bound_factor));
      EXPECT_LE(result.makespan, result.bound_factor * oracle + 1e-9)
          << engine << " on " << instance.label;
      EXPECT_GE(result.makespan, oracle - 1e-9);
    } else {
      // Polynomial heuristic: valid, never better than the optimum, and
      // honest about having no guarantee.
      EXPECT_GE(result.makespan, oracle - 1e-9)
          << engine << " on " << instance.label;
      EXPECT_FALSE(result.proved_optimal);
      EXPECT_TRUE(std::isinf(result.bound_factor));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredEngines, EngineConformance,
    ::testing::ValuesIn([] {
      // Every built-in except the oracle itself (it is the reference) and
      // the test doubles other suites may register.
      std::vector<std::string> engines;
      for (const auto& name : SolverRegistry::instance().names())
        if (name != "exhaustive" && name.rfind("test-", 0) != 0)
          engines.push_back(name);
      return engines;
    }()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The unified stats must be populated by every search engine: satellite
// fix for peak_memory_bytes being serial-A*-only (0 = "not tracked" is
// reserved for the heuristics and the oracle).
TEST(EngineConformance, SearchEnginesReportMemory) {
  const Instance instance{dag::paper_figure1(), Machine::paper_ring3(),
                          "fig1"};
  for (const char* engine : {"astar", "aeps", "ida", "parallel", "chenyu"}) {
    const SolveResult r =
        solve(engine, SolveRequest(instance.graph, instance.machine));
    EXPECT_GT(r.stats.search.peak_memory_bytes, 0u) << engine;
    EXPECT_GT(r.stats.search.expanded, 0u) << engine;
  }
}

}  // namespace
}  // namespace optsched::api
