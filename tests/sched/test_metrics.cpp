#include "sched/metrics.hpp"

#include <gtest/gtest.h>

#include "core/astar.hpp"
#include "dag/generators.hpp"

namespace optsched::sched {
namespace {

using machine::Machine;

TEST(Metrics, SerialScheduleBaseline) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  Schedule s(g, m);
  for (dag::NodeId n = 0; n < 6; ++n) s.append(n, 0);
  const ScheduleMetrics x = compute_metrics(s);
  EXPECT_DOUBLE_EQ(x.makespan, 19.0);
  EXPECT_EQ(x.procs_used, 1u);
  EXPECT_DOUBLE_EQ(x.speedup, 1.0);
  EXPECT_DOUBLE_EQ(x.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(x.comm_volume, 0.0);
  EXPECT_DOUBLE_EQ(x.cut_edge_fraction, 0.0);
  EXPECT_DOUBLE_EQ(x.load_imbalance, 1.0);
  // One proc busy 19, two procs idle for 19 each.
  EXPECT_DOUBLE_EQ(x.total_idle, 38.0);
  EXPECT_NEAR(x.utilization, 19.0 / 57.0, 1e-12);
}

TEST(Metrics, OptimalFig1Schedule) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  const auto r = core::astar_schedule(g, m);
  const ScheduleMetrics x = compute_metrics(r.schedule);
  EXPECT_DOUBLE_EQ(x.makespan, 14.0);
  EXPECT_NEAR(x.speedup, 19.0 / 14.0, 1e-12);
  EXPECT_GT(x.comm_volume, 0.0);  // the optimum splits across processors
  EXPECT_GT(x.cut_edge_fraction, 0.0);
  EXPECT_LE(x.cut_edge_fraction, 1.0);
  EXPECT_GE(x.load_imbalance, 1.0);
}

TEST(Metrics, PerfectlyBalancedIndependent) {
  const auto g = dag::independent_tasks(4, 10.0);
  const auto m = Machine::fully_connected(4);
  Schedule s(g, m);
  for (dag::NodeId n = 0; n < 4; ++n) s.append(n, n);
  const ScheduleMetrics x = compute_metrics(s);
  EXPECT_DOUBLE_EQ(x.speedup, 4.0);
  EXPECT_DOUBLE_EQ(x.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(x.utilization, 1.0);
  EXPECT_DOUBLE_EQ(x.total_idle, 0.0);
  EXPECT_DOUBLE_EQ(x.load_imbalance, 1.0);
}

TEST(Metrics, HeterogeneousSpeedupUsesFastestBaseline) {
  // Work 16 on speeds {1, 4}: serial best = 16/4 = 4.
  const auto g = dag::independent_tasks(2, 8.0);
  const auto m = Machine::fully_connected(2, {1.0, 4.0});
  Schedule s(g, m);
  s.append(0, 1);
  s.append(1, 1);  // both on fast proc: makespan 4
  const ScheduleMetrics x = compute_metrics(s);
  EXPECT_DOUBLE_EQ(x.makespan, 4.0);
  EXPECT_DOUBLE_EQ(x.speedup, 1.0);
}

TEST(Metrics, RejectsIncomplete) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  Schedule s(g, m);
  s.append(0, 0);
  EXPECT_THROW(compute_metrics(s), util::Error);
}

TEST(Metrics, FormatMentionsKeyFigures) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  const auto r = core::astar_schedule(g, m);
  const std::string report = format_metrics(compute_metrics(r.schedule));
  EXPECT_NE(report.find("makespan 14"), std::string::npos);
  EXPECT_NE(report.find("utilization"), std::string::npos);
  EXPECT_NE(report.find("communication"), std::string::npos);
}

}  // namespace
}  // namespace optsched::sched
