#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"

namespace optsched::sched {
namespace {

using dag::TaskGraph;
using machine::Machine;

TEST(ListScheduler, UpperBoundScheduleIsValidAndComplete) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  const Schedule s = upper_bound_schedule(g, m);
  EXPECT_TRUE(s.complete());
  EXPECT_NO_THROW(validate(s));
  // Optimal is 14; a sensible heuristic lands within 1.5x of it here.
  EXPECT_GE(s.makespan(), 14.0);
  EXPECT_LE(s.makespan(), 21.0);
}

TEST(ListScheduler, SingleProcessorGivesTotalWork) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::fully_connected(1);
  const Schedule s = upper_bound_schedule(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), g.total_work());
}

TEST(ListScheduler, IndependentTasksBalance) {
  const TaskGraph g = dag::independent_tasks(8, 10.0);
  const Machine m = Machine::fully_connected(4);
  const Schedule s = upper_bound_schedule(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), 20.0);  // perfectly balanced
}

TEST(ListScheduler, ChainStaysOnOneProcessor) {
  // With communication costs, splitting a pure chain only adds delay; the
  // earliest-start rule must keep it sequential on one processor.
  const TaskGraph g = dag::chain(6, 10.0, 5.0);
  const Machine m = Machine::fully_connected(4);
  const Schedule s = upper_bound_schedule(g, m);
  EXPECT_DOUBLE_EQ(s.makespan(), 60.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

class AllHeuristics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllHeuristics, ProduceValidSchedules) {
  dag::RandomDagParams p;
  p.num_nodes = 24;
  p.ccr = 1.0;
  p.seed = GetParam();
  const TaskGraph g = dag::random_dag(p);
  const Machine m = Machine::fully_connected(4);

  for (const Schedule& s :
       {upper_bound_schedule(g, m), hlfet(g, m), mcp(g, m), etf(g, m)}) {
    EXPECT_TRUE(s.complete());
    EXPECT_NO_THROW(validate(s));
    // Never worse than fully serial, never better than the work bound.
    EXPECT_LE(s.makespan(), g.total_work() + 1e-9);
    EXPECT_GE(s.makespan() + 1e-9, g.total_work() / m.num_procs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllHeuristics,
                         ::testing::Values(1, 7, 42, 99, 1234));

TEST(ListScheduler, InsertionNeverWorseOnGap) {
  // Craft a schedule with an exploitable gap: MCP (insertion) fills it.
  TaskGraph g;
  const auto a = g.add_node(10, "a");
  const auto b = g.add_node(1, "b");
  const auto c = g.add_node(2, "c");
  g.add_edge(a, c, 0);
  g.add_edge(b, c, 20);
  g.finalize();
  const Machine m = Machine::fully_connected(2);

  const Schedule append_s = upper_bound_schedule(g, m);
  const Schedule insert_s = mcp(g, m);
  EXPECT_NO_THROW(validate(insert_s));
  EXPECT_LE(insert_s.makespan(), append_s.makespan() + 1e-9);
}

TEST(ListScheduler, EarliestStartHelper) {
  const TaskGraph g = dag::independent_tasks(3, 10.0);
  const Machine m = Machine::fully_connected(1);
  Schedule s(g, m);
  s.place(0, 0, 0.0);    // [0,10)
  s.place(1, 0, 30.0);   // [30,40) leaves a [10,30) gap
  EXPECT_DOUBLE_EQ(earliest_start(s, 2, 0, /*insertion=*/false), 40.0);
  EXPECT_DOUBLE_EQ(earliest_start(s, 2, 0, /*insertion=*/true), 10.0);
}

TEST(ListScheduler, EtfPicksGloballyEarliestStart) {
  const TaskGraph g = dag::fork_join(3, 10.0, 100.0);
  const Machine m = Machine::fully_connected(3);
  const Schedule s = etf(g, m);
  EXPECT_NO_THROW(validate(s));
  // Huge comm: everything serial on one processor beats spreading.
  EXPECT_DOUBLE_EQ(s.makespan(), 50.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(ListScheduler, HeterogeneousPrefersFastProcWithEFT) {
  const TaskGraph g = dag::chain(3, 8.0, 1.0);
  const Machine m = Machine::fully_connected(2, {1.0, 4.0});
  ListConfig cfg;
  cfg.proc_rule = ProcRule::kEarliestFinish;
  const Schedule s = list_schedule(g, m, cfg);
  // All three tasks on the 4x processor: 3 * 2 = 6.
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(ListScheduler, PriorityOrdersDiffer) {
  // Sanity: the four priority modes all produce valid (possibly different)
  // schedules on a graph with heterogeneous levels.
  const TaskGraph g = dag::gaussian_elimination(4, 30, 15);
  const Machine m = Machine::fully_connected(3);
  for (Priority pri : {Priority::kStaticLevel, Priority::kBLevel,
                       Priority::kTLevelPlusBLevel, Priority::kAlap}) {
    ListConfig cfg;
    cfg.priority = pri;
    const Schedule s = list_schedule(g, m, cfg);
    EXPECT_NO_THROW(validate(s));
  }
}

}  // namespace
}  // namespace optsched::sched
