// ScheduleValidator: the differential-oracle backbone must catch every
// class of infeasible schedule and stay quiet on feasible ones.
#include "sched/validator.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "sched/list_scheduler.hpp"

namespace optsched::sched {
namespace {

using machine::Machine;

TEST(ScheduleValidator, AcceptsFeasibleSchedules) {
  const auto g = dag::paper_figure1();
  const Machine m = Machine::ring(3);
  const Schedule s = upper_bound_schedule(g, m);
  const ScheduleValidator validator;
  EXPECT_TRUE(validator.valid(s));
  EXPECT_TRUE(validator.check(s).empty());
  EXPECT_EQ(validator.report(s), "");
}

TEST(ScheduleValidator, ReportsEveryUnplacedTask) {
  const auto g = dag::chain(4, 10, 5);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  s.append(0, 0);  // 3 of 4 tasks left unplaced
  const auto violations = ScheduleValidator().check(s);
  ASSERT_EQ(violations.size(), 3u);
  for (const auto& v : violations)
    EXPECT_EQ(v.kind, Violation::Kind::kUnplaced);
}

TEST(ScheduleValidator, CatchesPrecedenceViolation) {
  const auto g = dag::chain(2, 10, 5);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  s.place(0, 0, 0.0);
  s.place(1, 1, 3.0);  // data arrives at 10 + 5 = 15, starts at 3
  const auto violations = ScheduleValidator().check(s);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().kind, Violation::Kind::kPrecedence);
  EXPECT_EQ(violations.front().node, 1u);
}

TEST(ScheduleValidator, CatchesOverlapOnOneProcessor) {
  const auto g = dag::independent_tasks(2, 10);
  const Machine m = Machine::fully_connected(1);
  Schedule s(g, m);
  s.place(0, 0, 0.0);
  s.place(1, 0, 5.0);  // overlaps [0, 10)
  const auto violations = ScheduleValidator().check(s);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().kind, Violation::Kind::kOverlap);
}

TEST(ScheduleValidator, HonoursCommModeAndHeterogeneousSpeeds) {
  const auto g = dag::chain(2, 8, 4);
  const Machine m = Machine::chain(3);  // hops(0, 2) == 2
  Schedule s(g, m, machine::CommMode::kHopScaled);
  s.place(0, 0, 0.0);
  // Unit-distance would allow a start at 8 + 4 = 12; hop-scaled requires
  // 8 + 4 * 2 = 16.
  s.place(1, 2, 12.0);
  const auto violations = ScheduleValidator().check(s);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations.front().kind, Violation::Kind::kPrecedence);
}

TEST(ScheduleValidator, CollectsMultipleViolationKindsInOnePass) {
  const auto g = dag::chain(3, 10, 5);
  const Machine m = Machine::fully_connected(1);
  Schedule s(g, m);
  s.place(0, 0, 0.0);
  s.place(1, 0, 2.0);  // overlaps task 0 AND starts before its data
  const auto violations = ScheduleValidator().check(s);
  // unplaced (task 2) + overlap + precedence.
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kUnplaced);
  EXPECT_EQ(violations[1].kind, Violation::Kind::kOverlap);
  EXPECT_EQ(violations[2].kind, Violation::Kind::kPrecedence);
  const std::string report = ScheduleValidator().report(s);
  EXPECT_NE(report.find("[unplaced]"), std::string::npos);
  EXPECT_NE(report.find("[overlap]"), std::string::npos);
  EXPECT_NE(report.find("[precedence]"), std::string::npos);
}

TEST(ScheduleValidator, ValidateThrowsFirstViolation) {
  const auto g = dag::chain(2, 10, 5);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  EXPECT_THROW(validate(s), util::Error);  // incomplete
  s.append(0, 0);
  s.append(1, 1);
  EXPECT_NO_THROW(validate(s));
}

}  // namespace
}  // namespace optsched::sched
