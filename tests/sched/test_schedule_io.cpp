#include "sched/schedule_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/astar.hpp"
#include "dag/generators.hpp"

namespace optsched::sched {
namespace {

using machine::Machine;

TEST(ScheduleIo, RoundTripOptimalSchedule) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  const auto r = core::astar_schedule(g, m);

  std::stringstream buffer;
  write_schedule(r.schedule, buffer);
  const Schedule loaded = read_schedule(g, m, buffer);
  EXPECT_DOUBLE_EQ(loaded.makespan(), r.makespan);
  for (dag::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(loaded.placement(n).proc, r.schedule.placement(n).proc);
    EXPECT_DOUBLE_EQ(loaded.placement(n).start, r.schedule.placement(n).start);
  }
}

TEST(ScheduleIo, RejectsIncompleteSchedule) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  Schedule s(g, m);
  s.append(0, 0);
  std::ostringstream out;
  EXPECT_THROW(write_schedule(s, out), util::Error);
}

TEST(ScheduleIo, RejectsWrongCounts) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  std::istringstream in("schedule 5 3 10\n");
  EXPECT_THROW(read_schedule(g, m, in), util::Error);
  std::istringstream in2("schedule 6 2 10\n");
  EXPECT_THROW(read_schedule(g, m, in2), util::Error);
}

TEST(ScheduleIo, RejectsDoublePlacement) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  std::istringstream in(
      "schedule 6 3 14\ntask 0 0 0 2\ntask 0 1 0 2\n");
  EXPECT_THROW(read_schedule(g, m, in), util::Error);
}

TEST(ScheduleIo, RejectsInconsistentFinish) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  std::istringstream in("schedule 6 3 14\ntask 0 0 0 99\n");
  EXPECT_THROW(read_schedule(g, m, in), util::Error);
}

TEST(ScheduleIo, RejectsInvalidScheduleContent) {
  // Well-formed file, but the placements violate precedence: caught by the
  // validator invoked at the end of read_schedule.
  const auto g = dag::chain(2, 5.0, 3.0);
  const auto m = Machine::fully_connected(2);
  std::istringstream in(
      "schedule 2 2 10\ntask 0 0 0 5\ntask 1 1 5 10\n");
  EXPECT_THROW(read_schedule(g, m, in), util::Error);
}

TEST(ScheduleIo, CsvHasHeaderAndRows) {
  const auto g = dag::paper_figure1();
  const auto m = Machine::paper_ring3();
  const auto r = core::astar_schedule(g, m);
  std::ostringstream out;
  write_schedule_csv(r.schedule, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("node,name,proc,start,finish"), std::string::npos);
  EXPECT_NE(csv.find("n6"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);  // header + 6 rows
}

}  // namespace
}  // namespace optsched::sched
