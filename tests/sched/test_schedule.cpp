#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"

namespace optsched::sched {
namespace {

using dag::TaskGraph;
using machine::Machine;

TEST(Schedule, AppendComputesStartAndFinish) {
  // Paper Figure 4's optimal schedule begins n1 on PE0 then n2 on PE0.
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  Schedule s(g, m);

  EXPECT_DOUBLE_EQ(s.append(0, 0), 2.0);   // n1: [0,2) on PE0
  EXPECT_DOUBLE_EQ(s.append(1, 0), 5.0);   // n2: [2,5) on PE0 (no comm)
  EXPECT_DOUBLE_EQ(s.append(2, 1), 6.0);   // n3 on PE1: data at 2+1, [3,6)
  EXPECT_DOUBLE_EQ(s.placement(2).start, 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  EXPECT_EQ(s.num_scheduled(), 3u);
  EXPECT_FALSE(s.complete());
}

TEST(Schedule, DataAvailableTimeMaxesOverParents) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  Schedule s(g, m);
  s.append(0, 0);  // n1 ft 2
  s.append(1, 0);  // n2 ft 5
  s.append(2, 1);  // n3 ft 6
  // n5's parents: n2 (PE0, ft 5, c=1) and n3 (PE1, ft 6, c=1).
  EXPECT_DOUBLE_EQ(s.data_available_time(4, 0), 7.0);  // n3 cross: 6+1
  EXPECT_DOUBLE_EQ(s.data_available_time(4, 1), 6.0);  // n2 cross: 5+1=6, n3 local 6
  EXPECT_DOUBLE_EQ(s.data_available_time(4, 2), 7.0);
}

TEST(Schedule, ProcReadyTimeSerializesTasks) {
  const TaskGraph g = dag::independent_tasks(3, 10.0);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  s.append(0, 0);
  s.append(1, 0);
  s.append(2, 0);
  EXPECT_DOUBLE_EQ(s.placement(2).start, 20.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 30.0);
  EXPECT_EQ(s.procs_used(), 1u);
}

TEST(Schedule, HeterogeneousExecTimes) {
  const TaskGraph g = dag::independent_tasks(2, 8.0);
  const Machine m = Machine::fully_connected(2, {1.0, 4.0});
  Schedule s(g, m);
  s.append(0, 0);
  s.append(1, 1);
  EXPECT_DOUBLE_EQ(s.placement(0).finish, 8.0);
  EXPECT_DOUBLE_EQ(s.placement(1).finish, 2.0);
}

TEST(Schedule, HopScaledCommMode) {
  const TaskGraph g = dag::chain(2, 4.0, 3.0);
  const Machine m = Machine::chain(3);
  Schedule s(g, m, CommMode::kHopScaled);
  s.append(0, 0);
  s.append(1, 2);  // two hops away: comm = 3*2
  EXPECT_DOUBLE_EQ(s.placement(1).start, 4.0 + 6.0);
}

TEST(Schedule, PlaceKeepsSlotsSorted) {
  const TaskGraph g = dag::independent_tasks(3, 5.0);
  const Machine m = Machine::fully_connected(1);
  Schedule s(g, m);
  s.place(0, 0, 20.0);
  s.place(1, 0, 0.0);
  s.place(2, 0, 10.0);
  const auto& slots = s.proc_slots(0);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].node, 1u);
  EXPECT_EQ(slots[1].node, 2u);
  EXPECT_EQ(slots[2].node, 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 25.0);
}

TEST(Validate, AcceptsCompleteValidSchedule) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  Schedule s(g, m);
  for (dag::NodeId n = 0; n < 6; ++n) s.append(n, 0);  // all on one PE
  EXPECT_NO_THROW(validate(s));
  EXPECT_DOUBLE_EQ(s.makespan(), 19.0);  // total work, no comm
}

TEST(Validate, RejectsIncompleteSchedule) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  Schedule s(g, m);
  s.append(0, 0);
  EXPECT_THROW(validate(s), util::Error);
}

TEST(Validate, RejectsOverlap) {
  const TaskGraph g = dag::independent_tasks(2, 10.0);
  const Machine m = Machine::fully_connected(1);
  Schedule s(g, m);
  s.place(0, 0, 0.0);
  s.place(1, 0, 5.0);  // overlaps [0,10)
  EXPECT_THROW(validate(s), util::Error);
}

TEST(Validate, RejectsPrecedenceViolation) {
  const TaskGraph g = dag::chain(2, 5.0, 3.0);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  s.place(0, 0, 0.0);   // ft 5
  s.place(1, 1, 6.0);   // needs 5 + comm 3 = 8
  EXPECT_THROW(validate(s), util::Error);
}

TEST(Validate, AcceptsCrossProcWithCommDelay) {
  const TaskGraph g = dag::chain(2, 5.0, 3.0);
  const Machine m = Machine::fully_connected(2);
  Schedule s(g, m);
  s.place(0, 0, 0.0);
  s.place(1, 1, 8.0);
  EXPECT_NO_THROW(validate(s));
}

TEST(Gantt, RendersAllProcessors) {
  const TaskGraph g = dag::paper_figure1();
  const Machine m = Machine::paper_ring3();
  Schedule s(g, m);
  for (dag::NodeId n = 0; n < 6; ++n) s.append(n, n % 3);
  const std::string gantt = render_gantt(s);
  EXPECT_NE(gantt.find("PE0"), std::string::npos);
  EXPECT_NE(gantt.find("PE2"), std::string::npos);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);
  EXPECT_NE(gantt.find("n1"), std::string::npos);
}

TEST(Schedule, CopyIsIndependent) {
  const TaskGraph g = dag::independent_tasks(2, 5.0);
  const Machine m = Machine::fully_connected(2);
  Schedule a(g, m);
  a.append(0, 0);
  Schedule b = a;
  b.append(1, 0);
  EXPECT_EQ(a.num_scheduled(), 1u);
  EXPECT_EQ(b.num_scheduled(), 2u);
}

}  // namespace
}  // namespace optsched::sched
