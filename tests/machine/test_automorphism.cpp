#include "machine/automorphism.hpp"

#include <gtest/gtest.h>

#include <set>

namespace optsched::machine {
namespace {

std::vector<bool> busy_none(std::uint32_t p) { return std::vector<bool>(p); }

TEST(Automorphism, CompleteHomogeneousShortCircuits) {
  const Machine m = Machine::fully_connected(8);
  const AutomorphismGroup g(m);
  EXPECT_TRUE(g.fully_symmetric());
  std::vector<ProcId> rep;
  g.state_classes(busy_none(8), rep);
  for (ProcId p = 0; p < 8; ++p) EXPECT_EQ(rep[p], 0u);
}

TEST(Automorphism, RingGroupIsDihedral) {
  const Machine m = Machine::ring(6);
  const AutomorphismGroup g(m);
  ASSERT_FALSE(g.fully_symmetric());
  ASSERT_FALSE(g.enumeration_capped());
  // |Aut(C6)| = 2 * 6 (rotations and reflections).
  EXPECT_EQ(g.permutations().size(), 12u);
}

TEST(Automorphism, ChainGroupIsReflection) {
  const Machine m = Machine::chain(5);
  const AutomorphismGroup g(m);
  EXPECT_EQ(g.permutations().size(), 2u);  // identity + reversal
}

TEST(Automorphism, HypercubeGroupOrder) {
  const Machine m = Machine::hypercube(3);
  const AutomorphismGroup g(m);
  // |Aut(Q3)| = 2^3 * 3! = 48.
  EXPECT_EQ(g.permutations().size(), 48u);
}

TEST(Automorphism, GroupAxioms) {
  const Machine m = Machine::ring(5);
  const AutomorphismGroup g(m);
  const auto& perms = g.permutations();
  const std::uint32_t p = m.num_procs();

  // Contains the identity.
  bool has_identity = false;
  for (const auto& pi : perms) {
    bool id = true;
    for (ProcId i = 0; i < p; ++i)
      if (pi[i] != i) id = false;
    if (id) has_identity = true;
  }
  EXPECT_TRUE(has_identity);

  // Each permutation preserves adjacency (is an automorphism).
  for (const auto& pi : perms)
    for (ProcId a = 0; a < p; ++a)
      for (ProcId b = 0; b < p; ++b)
        EXPECT_EQ(m.adjacent(a, b), m.adjacent(pi[a], pi[b]));

  // Closed under composition.
  std::set<std::vector<ProcId>> set(perms.begin(), perms.end());
  for (const auto& pi : perms)
    for (const auto& rho : perms) {
      std::vector<ProcId> composed(p);
      for (ProcId i = 0; i < p; ++i) composed[i] = pi[rho[i]];
      EXPECT_TRUE(set.count(composed));
    }
}

TEST(Automorphism, OrbitsPartitionProcessors) {
  for (const Machine& m :
       {Machine::ring(6), Machine::mesh(2, 3), Machine::star(5)}) {
    const AutomorphismGroup g(m);
    const auto orbits = g.orbits();
    std::set<ProcId> covered;
    for (const auto& orbit : orbits)
      for (const ProcId p : orbit) EXPECT_TRUE(covered.insert(p).second);
    EXPECT_EQ(covered.size(), m.num_procs());
  }
}

TEST(Automorphism, VertexTransitiveTopologiesHaveOneOrbit) {
  for (const Machine& m : {Machine::ring(7), Machine::hypercube(3)}) {
    const AutomorphismGroup g(m);
    EXPECT_EQ(g.orbits().size(), 1u) << m.topology_name();
  }
}

TEST(Automorphism, StarOrbits) {
  const Machine m = Machine::star(6);
  const AutomorphismGroup g(m, /*max_perms=*/100000);
  // Hub alone; 5 leaves together (group order 5! = 120, enumerable).
  EXPECT_EQ(g.orbits().size(), 2u);
}

TEST(Automorphism, StateClassesRespectBusyProcessors) {
  const Machine m = Machine::ring(6);
  const AutomorphismGroup g(m);
  std::vector<bool> busy(6, false);
  busy[0] = true;
  std::vector<ProcId> rep;
  g.state_classes(busy, rep);
  // Busy processors always stand alone.
  EXPECT_EQ(rep[0], 0u);
  // The stabilizer of vertex 0 in C6 is {id, reflection through 0}:
  // 1~5 and 2~4; 3 fixed.
  EXPECT_EQ(rep[1], 1u);
  EXPECT_EQ(rep[5], 1u);
  EXPECT_EQ(rep[2], 2u);
  EXPECT_EQ(rep[4], 2u);
  EXPECT_EQ(rep[3], 3u);
}

TEST(Automorphism, StateClassesAllBusy) {
  const Machine m = Machine::fully_connected(4);
  const AutomorphismGroup g(m);
  std::vector<bool> busy(4, true);
  std::vector<ProcId> rep;
  g.state_classes(busy, rep);
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(rep[p], p);
}

TEST(Automorphism, HeterogeneousSpeedsBreakSymmetry) {
  const Machine m = Machine::fully_connected(3, {1.0, 1.0, 2.0});
  const AutomorphismGroup g(m);
  EXPECT_FALSE(g.fully_symmetric());
  std::vector<ProcId> rep;
  g.state_classes(busy_none(3), rep);
  // Only the two speed-1 processors merge.
  EXPECT_EQ(rep[0], 0u);
  EXPECT_EQ(rep[1], 0u);
  EXPECT_EQ(rep[2], 2u);
}

TEST(Automorphism, CappedEnumerationFallsBackSoundly) {
  // Star with many leaves has (p-1)! automorphisms; cap enumeration low to
  // exercise the weak rule: leaves share identical neighbour sets {hub}.
  const Machine m = Machine::star(8);
  const AutomorphismGroup g(m, /*max_perms=*/10);
  EXPECT_TRUE(g.enumeration_capped());
  std::vector<ProcId> rep;
  g.state_classes(busy_none(8), rep);
  EXPECT_EQ(rep[0], 0u);  // the hub has a different neighbour set
  for (ProcId p = 2; p < 8; ++p) EXPECT_EQ(rep[p], 1u);
}

TEST(Automorphism, MeshCornerSymmetry) {
  const Machine m = Machine::mesh(2, 2);
  const AutomorphismGroup g(m);
  // The 2x2 mesh is C4: all four processors in one orbit.
  EXPECT_EQ(g.orbits().size(), 1u);
  EXPECT_EQ(g.permutations().size(), 8u);
}

}  // namespace
}  // namespace optsched::machine
