#include "machine/machine.hpp"

#include <gtest/gtest.h>

namespace optsched::machine {
namespace {

TEST(Machine, FullyConnectedProperties) {
  const Machine m = Machine::fully_connected(5);
  EXPECT_EQ(m.num_procs(), 5u);
  EXPECT_TRUE(m.homogeneous());
  EXPECT_TRUE(m.fully_connected_topology());
  for (ProcId a = 0; a < 5; ++a)
    for (ProcId b = 0; b < 5; ++b) {
      EXPECT_EQ(m.adjacent(a, b), a != b);
      EXPECT_EQ(m.hop_distance(a, b), a == b ? 0u : 1u);
    }
}

TEST(Machine, RingHopDistances) {
  const Machine m = Machine::ring(6);
  EXPECT_EQ(m.hop_distance(0, 1), 1u);
  EXPECT_EQ(m.hop_distance(0, 2), 2u);
  EXPECT_EQ(m.hop_distance(0, 3), 3u);
  EXPECT_EQ(m.hop_distance(0, 5), 1u);
  EXPECT_FALSE(m.fully_connected_topology());
}

TEST(Machine, SmallRingIsComplete) {
  // A 3-ring is the complete graph on 3 vertices (paper's Figure 1(b)).
  const Machine m = Machine::paper_ring3();
  EXPECT_EQ(m.num_procs(), 3u);
  EXPECT_TRUE(m.fully_connected_topology());
}

TEST(Machine, ChainHopDistances) {
  const Machine m = Machine::chain(4);
  EXPECT_EQ(m.hop_distance(0, 3), 3u);
  EXPECT_EQ(m.hop_distance(1, 2), 1u);
}

TEST(Machine, MeshShape) {
  const Machine m = Machine::mesh(2, 3);
  EXPECT_EQ(m.num_procs(), 6u);
  EXPECT_TRUE(m.adjacent(0, 1));
  EXPECT_TRUE(m.adjacent(0, 3));
  EXPECT_FALSE(m.adjacent(0, 4));
  EXPECT_EQ(m.hop_distance(0, 5), 3u);
}

TEST(Machine, HypercubeShape) {
  const Machine m = Machine::hypercube(3);
  EXPECT_EQ(m.num_procs(), 8u);
  for (ProcId p = 0; p < 8; ++p) EXPECT_EQ(m.neighbors(p).size(), 3u);
  EXPECT_EQ(m.hop_distance(0, 7), 3u);  // Hamming distance
  EXPECT_EQ(m.hop_distance(0, 5), 2u);
}

TEST(Machine, StarShape) {
  const Machine m = Machine::star(5);
  EXPECT_EQ(m.neighbors(0).size(), 4u);
  for (ProcId p = 1; p < 5; ++p) EXPECT_EQ(m.neighbors(p).size(), 1u);
  EXPECT_EQ(m.hop_distance(1, 2), 2u);  // leaf-to-leaf via the hub
  EXPECT_EQ(m.hop_distance(0, 3), 1u);
}

TEST(Machine, HeterogeneousSpeeds) {
  const Machine m = Machine::fully_connected(3, {1.0, 2.0, 4.0});
  EXPECT_FALSE(m.homogeneous());
  EXPECT_DOUBLE_EQ(m.max_speed(), 4.0);
  EXPECT_DOUBLE_EQ(m.exec_time(8.0, 0), 8.0);
  EXPECT_DOUBLE_EQ(m.exec_time(8.0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.min_exec_time(8.0), 2.0);
}

TEST(Machine, CommDelayModes) {
  const Machine m = Machine::chain(3);
  // Same processor: always free.
  EXPECT_DOUBLE_EQ(m.comm_delay(10.0, 1, 1, CommMode::kUnitDistance), 0.0);
  EXPECT_DOUBLE_EQ(m.comm_delay(10.0, 1, 1, CommMode::kHopScaled), 0.0);
  // Unit-distance charges the edge cost regardless of hops (paper model).
  EXPECT_DOUBLE_EQ(m.comm_delay(10.0, 0, 2, CommMode::kUnitDistance), 10.0);
  // Hop-scaled multiplies by topology distance.
  EXPECT_DOUBLE_EQ(m.comm_delay(10.0, 0, 2, CommMode::kHopScaled), 20.0);
}

TEST(Machine, RejectsBadConstruction) {
  EXPECT_THROW(Machine({}, {}), util::Error);
  // Asymmetric adjacency.
  EXPECT_THROW(Machine({{1}, {}}, {}), util::Error);
  // Self-loop.
  EXPECT_THROW(Machine({{0, 1}, {0}}, {}), util::Error);
  // Bad speed.
  EXPECT_THROW(Machine({{1}, {0}}, {1.0, 0.0}), util::Error);
  EXPECT_THROW(Machine({{1}, {0}}, {1.0}), util::Error);  // size mismatch
  // Disconnected.
  EXPECT_THROW(Machine({{1}, {0}, {3}, {2}}, {}), util::Error);
}

TEST(Machine, SingleProcessor) {
  const Machine m = Machine::fully_connected(1);
  EXPECT_EQ(m.num_procs(), 1u);
  EXPECT_TRUE(m.fully_connected_topology());
  EXPECT_EQ(m.hop_distance(0, 0), 0u);
}

TEST(Machine, TopologyNames) {
  EXPECT_EQ(Machine::fully_connected(4).topology_name(), "clique4");
  EXPECT_EQ(Machine::ring(5).topology_name(), "ring5");
  EXPECT_EQ(Machine::mesh(2, 2).topology_name(), "mesh2x2");
}

}  // namespace
}  // namespace optsched::machine
