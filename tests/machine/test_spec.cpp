#include "machine/spec.hpp"

#include <gtest/gtest.h>

namespace optsched::machine {
namespace {

TEST(MachineSpec, Clique) {
  const Machine m = machine_from_spec("clique:4");
  EXPECT_EQ(m.num_procs(), 4u);
  EXPECT_TRUE(m.fully_connected_topology());
}

TEST(MachineSpec, Ring) {
  const Machine m = machine_from_spec("ring:6");
  EXPECT_EQ(m.num_procs(), 6u);
  EXPECT_EQ(m.neighbors(0).size(), 2u);
}

TEST(MachineSpec, Mesh) {
  const Machine m = machine_from_spec("mesh:2x3");
  EXPECT_EQ(m.num_procs(), 6u);
  EXPECT_EQ(m.topology_name(), "mesh2x3");
}

TEST(MachineSpec, Hypercube) {
  EXPECT_EQ(machine_from_spec("hypercube:3").num_procs(), 8u);
}

TEST(MachineSpec, StarAndChain) {
  EXPECT_EQ(machine_from_spec("star:5").num_procs(), 5u);
  EXPECT_EQ(machine_from_spec("chain:4").num_procs(), 4u);
}

TEST(MachineSpec, CliqueWithSpeeds) {
  const Machine m = machine_from_spec("clique:3@1,2,4");
  EXPECT_FALSE(m.homogeneous());
  EXPECT_DOUBLE_EQ(m.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(m.speed(2), 4.0);
}

TEST(MachineSpec, Rejections) {
  EXPECT_THROW(machine_from_spec("clique"), util::Error);       // no colon
  EXPECT_THROW(machine_from_spec("blob:4"), util::Error);       // bad kind
  EXPECT_THROW(machine_from_spec("clique:x"), util::Error);     // bad size
  EXPECT_THROW(machine_from_spec("clique:0"), util::Error);     // zero
  EXPECT_THROW(machine_from_spec("clique:99999"), util::Error); // huge
  EXPECT_THROW(machine_from_spec("mesh:4"), util::Error);       // no RxC
  EXPECT_THROW(machine_from_spec("clique:3@1,2"), util::Error); // short list
  EXPECT_THROW(machine_from_spec("ring:3@1,1,1"), util::Error); // non-clique
  EXPECT_THROW(machine_from_spec("clique:3@a,b,c"), util::Error);
}

}  // namespace
}  // namespace optsched::machine
