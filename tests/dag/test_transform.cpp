#include "dag/transform.hpp"

#include <gtest/gtest.h>

#include "bnb/exhaustive.hpp"
#include "core/astar.hpp"
#include "dag/generators.hpp"
#include "dag/levels.hpp"

namespace optsched::dag {
namespace {

using machine::Machine;

TEST(Transform, ReverseFlipsStructure) {
  const TaskGraph g = paper_figure1();
  const TaskGraph r = reverse(g);
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  // n6 becomes the entry, n1 the exit.
  EXPECT_TRUE(r.is_entry(5));
  EXPECT_TRUE(r.is_exit(0));
  // Edge n5->n6 (cost 5) becomes n6->n5.
  bool found = false;
  for (const auto& [child, cost] : r.children(5))
    if (child == 4) {
      EXPECT_DOUBLE_EQ(cost, 5.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Transform, ReverseIsInvolutive) {
  RandomDagParams p;
  p.num_nodes = 15;
  p.seed = 8;
  const TaskGraph g = random_dag(p);
  const TaskGraph rr = reverse(reverse(g));
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(rr.weight(n), g.weight(n));
    ASSERT_EQ(rr.children(n).size(), g.children(n).size());
    for (std::size_t k = 0; k < g.children(n).size(); ++k) {
      EXPECT_EQ(rr.children(n)[k].node, g.children(n)[k].node);
      EXPECT_EQ(rr.children(n)[k].cost, g.children(n)[k].cost);
    }
  }
}

TEST(Transform, ReverseSwapsLevels) {
  const TaskGraph g = paper_figure1();
  const TaskGraph r = reverse(g);
  const Levels lg = compute_levels(g);
  const Levels lr = compute_levels(r);
  EXPECT_DOUBLE_EQ(lr.cp_length, lg.cp_length);
  // b-level in the reverse equals t-level + weight in the original.
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_DOUBLE_EQ(lr.b_level[n], lg.t_level[n] + g.weight(n)) << n;
}

TEST(Transform, ReversalPreservesOptimalMakespan) {
  // Time-mirroring a schedule of G gives a schedule of reverse(G) with the
  // same length, and vice versa — so optima must agree. A whole-stack
  // property: graph, machine, search and pruning all participate.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomDagParams p;
    p.num_nodes = 7;
    p.ccr = 1.0;
    p.seed = seed;
    const TaskGraph g = random_dag(p);
    const TaskGraph r = reverse(g);
    const auto m = Machine::fully_connected(2);
    EXPECT_DOUBLE_EQ(core::astar_schedule(g, m).makespan,
                     core::astar_schedule(r, m).makespan)
        << seed;
  }
}

TEST(Transform, ReversalOfPaperExample) {
  const auto m = Machine::paper_ring3();
  EXPECT_DOUBLE_EQ(core::astar_schedule(reverse(paper_figure1()), m).makespan,
                   14.0);
}

TEST(Transform, UniformScalingScalesOptimum) {
  for (std::uint64_t seed : {5u, 6u}) {
    RandomDagParams p;
    p.num_nodes = 7;
    p.ccr = 1.0;
    p.seed = seed;
    const TaskGraph g = random_dag(p);
    const auto m = Machine::fully_connected(2);
    const double base = core::astar_schedule(g, m).makespan;
    const double doubled =
        core::astar_schedule(scaled(g, 2.0, 2.0), m).makespan;
    EXPECT_NEAR(doubled, 2.0 * base, 1e-9) << seed;
  }
}

TEST(Transform, CommOnlyScalingNeverShrinksOptimum) {
  RandomDagParams p;
  p.num_nodes = 7;
  p.ccr = 1.0;
  p.seed = 9;
  const TaskGraph g = random_dag(p);
  const auto m = Machine::fully_connected(3);
  const double base = core::astar_schedule(g, m).makespan;
  const double pricier =
      core::astar_schedule(scaled(g, 1.0, 3.0), m).makespan;
  EXPECT_GE(pricier + 1e-9, base);
}

TEST(Transform, ScaledRejectsBadFactors) {
  const TaskGraph g = paper_figure1();
  EXPECT_THROW(scaled(g, 0.0, 1.0), util::Error);
  EXPECT_THROW(scaled(g, 1.0, -2.0), util::Error);
}

}  // namespace
}  // namespace optsched::dag
