#include "dag/stg.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace optsched::dag {
namespace {

constexpr const char* kSample = R"(5
0 0 0
1 4 1 0
2 3 1 0
3 5 2 1 2
4 0 1 3
# trailer comment
)";

TEST(Stg, ParsesSampleGraph) {
  std::istringstream in(kSample);
  const TaskGraph g = read_stg(in);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_DOUBLE_EQ(g.weight(0), 0.0);  // dummy entry kept
  EXPECT_DOUBLE_EQ(g.weight(3), 5.0);
  EXPECT_EQ(g.num_parents(3), 2u);
  EXPECT_EQ(g.name(1), "t1");
  // No communication synthesized by default.
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n)) {
      (void)child;
      EXPECT_EQ(cost, 0.0);
    }
}

TEST(Stg, SynthesizesCommCostsDeterministically) {
  StgOptions opt;
  opt.ccr = 1.0;
  opt.seed = 42;
  std::istringstream in1(kSample), in2(kSample);
  const TaskGraph a = read_stg(in1, opt);
  const TaskGraph b = read_stg(in2, opt);
  double total = 0;
  for (NodeId n = 0; n < a.num_nodes(); ++n)
    for (std::size_t k = 0; k < a.children(n).size(); ++k) {
      EXPECT_EQ(a.children(n)[k].cost, b.children(n)[k].cost);
      total += a.children(n)[k].cost;
    }
  EXPECT_GT(total, 0.0);
}

TEST(Stg, CcrScalesSynthesizedCosts) {
  StgOptions low, high;
  low.ccr = 0.5;
  high.ccr = 10.0;
  std::istringstream in1(kSample), in2(kSample);
  const TaskGraph a = read_stg(in1, low);
  const TaskGraph b = read_stg(in2, high);
  EXPECT_LT(a.mean_communication_cost(), b.mean_communication_cost());
}

TEST(Stg, CommentsAndBlankLinesIgnored) {
  std::istringstream in("# header\n\n2\n0 3 0\n# mid comment\n1 4 1 0\n");
  const TaskGraph g = read_stg(in);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Stg, RejectsForwardPredecessor) {
  std::istringstream in("2\n0 3 1 1\n1 4 0\n");
  EXPECT_THROW(read_stg(in), util::Error);
}

TEST(Stg, RejectsOutOfOrderIds) {
  std::istringstream in("2\n1 3 0\n0 4 0\n");
  EXPECT_THROW(read_stg(in), util::Error);
}

TEST(Stg, RejectsTruncatedFile) {
  std::istringstream in("3\n0 3 0\n1 4 0\n");
  EXPECT_THROW(read_stg(in), util::Error);
}

TEST(Stg, RejectsMissingCount) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(read_stg(in), util::Error);
}

TEST(Stg, RejectsMissingPredecessorIds) {
  std::istringstream in("2\n0 3 0\n1 4 2 0\n");
  EXPECT_THROW(read_stg(in), util::Error);
}

TEST(Stg, MissingFileThrows) {
  EXPECT_THROW(read_stg_file("/nonexistent.stg"), util::Error);
}

}  // namespace
}  // namespace optsched::dag
