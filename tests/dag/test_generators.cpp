#include "dag/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace optsched::dag {
namespace {

TEST(RandomDag, Deterministic) {
  RandomDagParams p;
  p.num_nodes = 20;
  p.seed = 9;
  const TaskGraph a = random_dag(p);
  const TaskGraph b = random_dag(p);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.weight(n), b.weight(n));
    ASSERT_EQ(a.children(n).size(), b.children(n).size());
    for (std::size_t k = 0; k < a.children(n).size(); ++k) {
      EXPECT_EQ(a.children(n)[k].node, b.children(n)[k].node);
      EXPECT_EQ(a.children(n)[k].cost, b.children(n)[k].cost);
    }
  }
}

TEST(RandomDag, SeedChangesGraph) {
  RandomDagParams p;
  p.num_nodes = 20;
  p.seed = 1;
  const TaskGraph a = random_dag(p);
  p.seed = 2;
  const TaskGraph b = random_dag(p);
  bool differs = a.num_edges() != b.num_edges();
  for (NodeId n = 0; !differs && n < a.num_nodes(); ++n)
    differs = a.weight(n) != b.weight(n);
  EXPECT_TRUE(differs);
}

class RandomDagSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(RandomDagSweep, PaperRecipeInvariants) {
  const auto [v, ccr] = GetParam();
  RandomDagParams p;
  p.num_nodes = v;
  p.ccr = ccr;
  p.seed = 1234 + v;
  const TaskGraph g = random_dag(p);

  EXPECT_EQ(g.num_nodes(), v);
  // Weights are positive integers drawn from U{1, 79} (mean 40).
  for (NodeId n = 0; n < v; ++n) {
    EXPECT_GE(g.weight(n), 1.0);
    EXPECT_LE(g.weight(n), 79.0);
    EXPECT_EQ(g.weight(n), std::floor(g.weight(n)));
  }
  // Edges point strictly forward (acyclic by construction) and costs are
  // positive when ccr > 0.
  for (NodeId n = 0; n < v; ++n)
    for (const auto& [child, cost] : g.children(n)) {
      EXPECT_GT(child, n);
      if (ccr > 0) {
        EXPECT_GE(cost, 1.0);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, RandomDagSweep,
    ::testing::Combine(::testing::Values(10u, 16u, 22u, 28u, 32u),
                       ::testing::Values(0.1, 1.0, 10.0)));

TEST(RandomDag, RealizedCcrTracksRequested) {
  // With many samples the empirical CCR should be within ~35% of the
  // request (independent uniform draws around the two means).
  for (double ccr : {0.1, 1.0, 10.0}) {
    RandomDagParams p;
    p.num_nodes = 200;
    p.ccr = ccr;
    p.seed = 5;
    const TaskGraph g = random_dag(p);
    EXPECT_GT(g.num_edges(), 100u);
    EXPECT_NEAR(g.ccr() / ccr, 1.0, 0.35) << "ccr=" << ccr;
  }
}

TEST(RandomDag, ZeroCcrMeansFreeEdges) {
  RandomDagParams p;
  p.num_nodes = 30;
  p.ccr = 0.0;
  const TaskGraph g = random_dag(p);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (const auto& [child, cost] : g.children(n)) {
      (void)child;
      EXPECT_EQ(cost, 0.0);
    }
}

TEST(RandomDag, RejectsBadParams) {
  RandomDagParams p;
  p.num_nodes = 0;
  EXPECT_THROW(random_dag(p), util::Error);
  p.num_nodes = 5;
  p.ccr = -1;
  EXPECT_THROW(random_dag(p), util::Error);
}

TEST(Generators, GaussianEliminationShape) {
  const TaskGraph g = gaussian_elimination(4);
  // m=4: pivots 3, updates 3+2+1 = 6, total 9 nodes.
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);  // first pivot
  // Single sink: the last update column.
  EXPECT_EQ(g.exit_nodes().size(), 1u);
}

TEST(Generators, FftShape) {
  const TaskGraph g = fft(8);
  // log2(8)+1 = 4 ranks of 8 nodes.
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(g.entry_nodes().size(), 8u);
  EXPECT_EQ(g.exit_nodes().size(), 8u);
  EXPECT_EQ(g.num_edges(), 3u * 8u * 2u);
  EXPECT_THROW(fft(12), util::Error);  // not a power of two
}

TEST(Generators, ForkJoinShape) {
  const TaskGraph g = fork_join(5);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_EQ(g.num_children(0), 5u);
  EXPECT_EQ(g.num_parents(1), 5u);
}

TEST(Generators, OutTreeShape) {
  const TaskGraph g = out_tree(2, 4);
  EXPECT_EQ(g.num_nodes(), 15u);  // 1+2+4+8
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 8u);
}

TEST(Generators, InTreeShape) {
  const TaskGraph g = in_tree(2, 4);
  EXPECT_EQ(g.num_nodes(), 15u);
  EXPECT_EQ(g.entry_nodes().size(), 8u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
}

TEST(Generators, LayeredShape) {
  const TaskGraph g = layered(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 2u * 16u);
  EXPECT_EQ(g.entry_nodes().size(), 4u);
  EXPECT_EQ(g.exit_nodes().size(), 4u);
}

TEST(Generators, DiamondShape) {
  const TaskGraph g = diamond(3);
  // widths 1,2,3,2,1 = 9 nodes.
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
}

TEST(Generators, ChainShape) {
  const TaskGraph g = chain(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
}

TEST(Generators, IndependentTasksShape) {
  const TaskGraph g = independent_tasks(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Generators, AllRejectDegenerateArguments) {
  EXPECT_THROW(gaussian_elimination(1), util::Error);
  EXPECT_THROW(fft(1), util::Error);
  EXPECT_THROW(fork_join(0), util::Error);
  EXPECT_THROW(out_tree(0, 2), util::Error);
  EXPECT_THROW(in_tree(2, 0), util::Error);
  EXPECT_THROW(layered(0, 1), util::Error);
  EXPECT_THROW(diamond(0), util::Error);
  EXPECT_THROW(chain(0), util::Error);
  EXPECT_THROW(independent_tasks(0), util::Error);
}

}  // namespace
}  // namespace optsched::dag
