#include "dag/equivalence.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/levels.hpp"

namespace optsched::dag {
namespace {

TEST(NodeEquivalence, PaperExampleN2N3) {
  // In the Figure 1(a) DAG, n2 and n3 are equivalent (same parent n1 with
  // cost 1, same weight 3, same child n5 with cost 1) — the paper's worked
  // example relies on exactly this.
  const TaskGraph g = paper_figure1();
  const NodeEquivalence eq(g);
  EXPECT_TRUE(eq.equivalent(1, 2));   // n2 ~ n3
  EXPECT_EQ(eq.representative(2), 1u);
  EXPECT_FALSE(eq.equivalent(1, 3));  // n2 !~ n4
  EXPECT_FALSE(eq.equivalent(0, 5));  // n1 !~ n6
  EXPECT_EQ(eq.num_classes(), 5u);    // 6 nodes, one merged pair
  EXPECT_EQ(eq.class_of(1), (std::vector<NodeId>{1, 2}));
}

TEST(NodeEquivalence, ForkJoinBranchesCollapse) {
  const TaskGraph g = fork_join(6, 40, 10);
  const NodeEquivalence eq(g);
  // fork (0), join (1), six interchangeable workers.
  EXPECT_EQ(eq.num_classes(), 3u);
  for (NodeId n = 3; n < 8; ++n) EXPECT_TRUE(eq.equivalent(2, n));
  EXPECT_FALSE(eq.equivalent(0, 1));
}

TEST(NodeEquivalence, WeightDifferenceSeparates) {
  TaskGraph g;
  const NodeId root = g.add_node(1);
  const NodeId a = g.add_node(2), b = g.add_node(3);
  g.add_edge(root, a, 1);
  g.add_edge(root, b, 1);
  g.finalize();
  EXPECT_FALSE(NodeEquivalence(g).equivalent(a, b));
}

TEST(NodeEquivalence, EdgeCostDifferenceSeparates) {
  TaskGraph g;
  const NodeId root = g.add_node(1);
  const NodeId a = g.add_node(2), b = g.add_node(2);
  g.add_edge(root, a, 1);
  g.add_edge(root, b, 9);  // same parent set, different cost
  g.finalize();
  EXPECT_FALSE(NodeEquivalence(g).equivalent(a, b));
}

TEST(NodeEquivalence, SuccessorSetDifferenceSeparates) {
  TaskGraph g;
  const NodeId root = g.add_node(1);
  const NodeId a = g.add_node(2), b = g.add_node(2);
  const NodeId x = g.add_node(1), y = g.add_node(1);
  g.add_edge(root, a, 1);
  g.add_edge(root, b, 1);
  g.add_edge(a, x, 1);
  g.add_edge(b, y, 1);
  g.finalize();
  EXPECT_FALSE(NodeEquivalence(g).equivalent(a, b));
}

TEST(NodeEquivalence, IndependentEqualTasksAllEquivalent) {
  const TaskGraph g = independent_tasks(8, 5.0);
  const NodeEquivalence eq(g);
  EXPECT_EQ(eq.num_classes(), 1u);
  EXPECT_EQ(eq.class_of(0).size(), 8u);
}

TEST(NodeEquivalence, IsAnEquivalenceRelation) {
  const TaskGraph g = fork_join(4, 10, 10);
  const NodeEquivalence eq(g);
  const auto v = static_cast<NodeId>(g.num_nodes());
  for (NodeId a = 0; a < v; ++a) {
    EXPECT_TRUE(eq.equivalent(a, a));  // reflexive
    for (NodeId b = 0; b < v; ++b) {
      EXPECT_EQ(eq.equivalent(a, b), eq.equivalent(b, a));  // symmetric
      for (NodeId c = 0; c < v; ++c) {
        if (eq.equivalent(a, b) && eq.equivalent(b, c)) {
          EXPECT_TRUE(eq.equivalent(a, c));  // transitive
        }
      }
    }
  }
}

TEST(NodeEquivalence, RepresentativeIsClassMinimum) {
  RandomDagParams params;
  params.num_nodes = 30;
  params.seed = 77;
  const TaskGraph g = random_dag(params);
  const NodeEquivalence eq(g);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LE(eq.representative(n), n);
    EXPECT_EQ(eq.representative(eq.representative(n)), eq.representative(n));
    EXPECT_EQ(eq.class_of(n).front(), eq.representative(n));
  }
}

TEST(NodeEquivalence, EquivalentNodesShareLevels) {
  // Equivalence implies equal t-levels and b-levels (the paper notes this
  // follows from conditions (i) and (iii)).
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    RandomDagParams params;
    params.num_nodes = 26;
    params.seed = seed;
    const TaskGraph g = random_dag(params);
    const NodeEquivalence eq(g);
    const Levels lv = compute_levels(g);
    for (NodeId a = 0; a < g.num_nodes(); ++a)
      for (NodeId b = a + 1; b < g.num_nodes(); ++b)
        if (eq.equivalent(a, b)) {
          EXPECT_DOUBLE_EQ(lv.t_level[a], lv.t_level[b]);
          EXPECT_DOUBLE_EQ(lv.b_level[a], lv.b_level[b]);
          EXPECT_DOUBLE_EQ(lv.static_level[a], lv.static_level[b]);
        }
  }
}

}  // namespace
}  // namespace optsched::dag
