#include "dag/analysis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dag/generators.hpp"

namespace optsched::dag {
namespace {

TEST(Analysis, PaperFigure1Metrics) {
  const GraphStats s = analyze(paper_figure1());
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 7u);
  EXPECT_DOUBLE_EQ(s.total_work, 19.0);
  EXPECT_DOUBLE_EQ(s.cp_length, 19.0);
  EXPECT_DOUBLE_EQ(s.cp_work, 12.0);  // n1+n2+n5+n6 = 2+3+5+2
  EXPECT_EQ(s.depth, 4u);             // n1 -> {n2,n3,n4} -> n5 -> n6
  EXPECT_EQ(s.max_width, 3u);
  EXPECT_EQ(s.level_widths, (std::vector<std::size_t>{1, 3, 1, 1}));
  EXPECT_NEAR(s.max_speedup, 19.0 / 12.0, 1e-12);
}

TEST(Analysis, ChainHasUnitWidth) {
  const GraphStats s = analyze(chain(5, 10, 5));
  EXPECT_EQ(s.depth, 5u);
  EXPECT_EQ(s.max_width, 1u);
  EXPECT_DOUBLE_EQ(s.max_speedup, 1.0);
}

TEST(Analysis, IndependentTasksAreFlat) {
  const GraphStats s = analyze(independent_tasks(7, 4.0));
  EXPECT_EQ(s.depth, 1u);
  EXPECT_EQ(s.max_width, 7u);
  EXPECT_DOUBLE_EQ(s.max_speedup, 7.0);
}

TEST(Analysis, ForkJoinProfile) {
  const GraphStats s = analyze(fork_join(4, 10, 5));
  EXPECT_EQ(s.level_widths, (std::vector<std::size_t>{1, 4, 1}));
  EXPECT_DOUBLE_EQ(s.max_speedup, 60.0 / 30.0);
}

TEST(Analysis, LevelWidthsSumToNodeCount) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    RandomDagParams p;
    p.num_nodes = 30;
    p.seed = seed;
    const GraphStats s = analyze(random_dag(p));
    EXPECT_EQ(std::accumulate(s.level_widths.begin(), s.level_widths.end(),
                              std::size_t{0}),
              s.num_nodes);
    EXPECT_GE(s.max_speedup, 1.0);
    EXPECT_LE(s.cp_work, s.cp_length + 1e-9);
  }
}

TEST(Analysis, FormatContainsKeyNumbers) {
  const TaskGraph g = paper_figure1();
  const std::string report = format_stats(g, analyze(g));
  EXPECT_NE(report.find("6 tasks"), std::string::npos);
  EXPECT_NE(report.find("critical path 19"), std::string::npos);
  EXPECT_NE(report.find("parallelism profile: 1 3 1 1"), std::string::npos);
}

}  // namespace
}  // namespace optsched::dag
