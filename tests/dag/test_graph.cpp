#include "dag/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace optsched::dag {
namespace {

TEST(TaskGraph, BuildSmallGraph) {
  TaskGraph g;
  const NodeId a = g.add_node(1.0, "a");
  const NodeId b = g.add_node(2.0);
  g.add_edge(a, b, 3.0);
  g.finalize();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weight(a), 1.0);
  EXPECT_EQ(g.name(a), "a");
  EXPECT_EQ(g.name(b), "n2");  // auto-generated 1-based name
  ASSERT_EQ(g.children(a).size(), 1u);
  EXPECT_EQ(g.children(a)[0].node, b);
  EXPECT_EQ(g.children(a)[0].cost, 3.0);
  ASSERT_EQ(g.parents(b).size(), 1u);
  EXPECT_EQ(g.parents(b)[0].node, a);
}

TEST(TaskGraph, EntryAndExitNodes) {
  TaskGraph g;
  const NodeId a = g.add_node(1), b = g.add_node(1), c = g.add_node(1);
  g.add_edge(a, c, 0);
  g.add_edge(b, c, 0);
  g.finalize();
  EXPECT_EQ(std::vector<NodeId>(g.entry_nodes().begin(), g.entry_nodes().end()),
            (std::vector<NodeId>{a, b}));
  EXPECT_EQ(std::vector<NodeId>(g.exit_nodes().begin(), g.exit_nodes().end()),
            (std::vector<NodeId>{c}));
  EXPECT_TRUE(g.is_entry(a));
  EXPECT_TRUE(g.is_exit(c));
  EXPECT_FALSE(g.is_exit(a));
}

TEST(TaskGraph, TopoOrderRespectsEdges) {
  TaskGraph g;
  // Build a reversed chain: edges always point to later-added nodes is NOT
  // required — test a graph whose ids are not topologically sorted.
  const NodeId a = g.add_node(1);
  const NodeId b = g.add_node(1);
  const NodeId c = g.add_node(1);
  g.add_edge(c, b, 1);
  g.add_edge(b, a, 1);
  g.finalize();
  const auto topo = g.topo_order();
  std::vector<std::size_t> pos(g.num_nodes());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  EXPECT_LT(pos[c], pos[b]);
  EXPECT_LT(pos[b], pos[a]);
}

TEST(TaskGraph, CycleRejected) {
  TaskGraph g;
  const NodeId a = g.add_node(1), b = g.add_node(1);
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  EXPECT_THROW(g.finalize(), util::Error);
}

TEST(TaskGraph, SelfEdgeRejected) {
  TaskGraph g;
  const NodeId a = g.add_node(1);
  EXPECT_THROW(g.add_edge(a, a, 1), util::Error);
}

TEST(TaskGraph, DuplicateEdgeRejected) {
  TaskGraph g;
  const NodeId a = g.add_node(1), b = g.add_node(1);
  g.add_edge(a, b, 1);
  g.add_edge(a, b, 2);
  EXPECT_THROW(g.finalize(), util::Error);
}

TEST(TaskGraph, OutOfRangeEdgeRejected) {
  TaskGraph g;
  g.add_node(1);
  EXPECT_THROW(g.add_edge(0, 5, 1), util::Error);
}

TEST(TaskGraph, NegativeWeightRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add_node(-1.0), util::Error);
}

TEST(TaskGraph, NonFiniteCostsRejected) {
  TaskGraph g;
  const NodeId a = g.add_node(1), b = g.add_node(1);
  EXPECT_THROW(g.add_edge(a, b, std::numeric_limits<double>::infinity()),
               util::Error);
  EXPECT_THROW(g.add_node(std::numeric_limits<double>::quiet_NaN()),
               util::Error);
}

TEST(TaskGraph, EmptyGraphRejected) {
  TaskGraph g;
  EXPECT_THROW(g.finalize(), util::Error);
}

TEST(TaskGraph, DoubleFinalizeRejected) {
  TaskGraph g;
  g.add_node(1);
  g.finalize();
  EXPECT_THROW(g.finalize(), util::Error);
  EXPECT_THROW(g.add_node(1), util::Error);
}

TEST(TaskGraph, AggregateCostsAndCcr) {
  TaskGraph g;
  const NodeId a = g.add_node(10), b = g.add_node(30);
  g.add_edge(a, b, 5);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.total_work(), 40.0);
  EXPECT_DOUBLE_EQ(g.mean_computation_cost(), 20.0);
  EXPECT_DOUBLE_EQ(g.mean_communication_cost(), 5.0);
  EXPECT_DOUBLE_EQ(g.ccr(), 0.25);
}

TEST(TaskGraph, PaperFigure1Shape) {
  const TaskGraph g = paper_figure1();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 7u);
  // Weights from Figure 1(a).
  const std::vector<double> weights{2, 3, 3, 4, 5, 2};
  for (NodeId n = 0; n < 6; ++n) EXPECT_EQ(g.weight(n), weights[n]) << n;
  EXPECT_EQ(g.entry_nodes().size(), 1u);
  EXPECT_EQ(g.exit_nodes().size(), 1u);
  EXPECT_DOUBLE_EQ(g.total_work(), 19.0);
}

TEST(TaskGraph, AdjacencySortedByNodeId) {
  TaskGraph g;
  const NodeId a = g.add_node(1);
  const NodeId b = g.add_node(1);
  const NodeId c = g.add_node(1);
  const NodeId d = g.add_node(1);
  g.add_edge(a, d, 1);
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.finalize();
  const auto kids = g.children(a);
  EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end(),
                             [](const Adjacent& x, const Adjacent& y) {
                               return x.node < y.node;
                             }));
}

}  // namespace
}  // namespace optsched::dag
