#include "dag/levels.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"

namespace optsched::dag {
namespace {

TEST(Levels, PaperFigure2Table) {
  // The paper's Figure 2 lists sl, b-level and t-level for every node of
  // the Figure 1(a) DAG. Reproduce the full table.
  const TaskGraph g = paper_figure1();
  const Levels lv = compute_levels(g);

  const double sl[] = {12, 10, 10, 6, 7, 2};
  const double bl[] = {19, 16, 16, 10, 12, 2};
  const double tl[] = {0, 3, 3, 4, 7, 17};
  for (NodeId n = 0; n < 6; ++n) {
    EXPECT_DOUBLE_EQ(lv.static_level[n], sl[n]) << "sl n" << n + 1;
    EXPECT_DOUBLE_EQ(lv.b_level[n], bl[n]) << "bl n" << n + 1;
    EXPECT_DOUBLE_EQ(lv.t_level[n], tl[n]) << "tl n" << n + 1;
  }
  EXPECT_DOUBLE_EQ(lv.cp_length, 19.0);
}

TEST(Levels, CriticalPathOfPaperExample) {
  const TaskGraph g = paper_figure1();
  const Levels lv = compute_levels(g);
  const auto cp = critical_path(g, lv);
  // n1 -> n2 -> n5 -> n6 (2+1+3+1+5+5+2 = 19).
  EXPECT_EQ(cp, (std::vector<NodeId>{0, 1, 4, 5}));
}

TEST(Levels, ChainLevels) {
  const TaskGraph g = chain(4, 10.0, 5.0);
  const Levels lv = compute_levels(g);
  // t-levels: 0, 15, 30, 45. b-levels: 55, 40, 25, 10.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(lv.t_level[n], 15.0 * n);
    EXPECT_DOUBLE_EQ(lv.b_level[n], 55.0 - 15.0 * n);
    EXPECT_DOUBLE_EQ(lv.static_level[n], 40.0 - 10.0 * n);
    EXPECT_TRUE(lv.on_critical_path(n));
  }
  EXPECT_DOUBLE_EQ(lv.cp_length, 55.0);
}

TEST(Levels, IndependentTasks) {
  const TaskGraph g = independent_tasks(5, 7.0);
  const Levels lv = compute_levels(g);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_DOUBLE_EQ(lv.t_level[n], 0.0);
    EXPECT_DOUBLE_EQ(lv.b_level[n], 7.0);
    EXPECT_DOUBLE_EQ(lv.static_level[n], 7.0);
  }
  EXPECT_DOUBLE_EQ(lv.cp_length, 7.0);
}

class LevelsInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelsInvariants, RandomGraphInvariants) {
  RandomDagParams params;
  params.num_nodes = 24;
  params.ccr = 1.0;
  params.seed = GetParam();
  const TaskGraph g = random_dag(params);
  const Levels lv = compute_levels(g);

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    // t + b never exceeds the critical path; equality iff on a CP.
    EXPECT_LE(lv.t_level[n] + lv.b_level[n], lv.cp_length + 1e-9);
    // static level drops edge costs, so sl <= b-level.
    EXPECT_LE(lv.static_level[n], lv.b_level[n] + 1e-9);
    // b-level includes own weight.
    EXPECT_GE(lv.b_level[n], g.weight(n));
    EXPECT_GE(lv.static_level[n], g.weight(n));
    // entry nodes have t-level 0.
    if (g.is_entry(n)) {
      EXPECT_DOUBLE_EQ(lv.t_level[n], 0.0);
    }
    // exit nodes have b-level == sl == weight.
    if (g.is_exit(n)) {
      EXPECT_DOUBLE_EQ(lv.b_level[n], g.weight(n));
      EXPECT_DOUBLE_EQ(lv.static_level[n], g.weight(n));
    }
    // Parent relations are monotone.
    for (const auto& [child, cost] : g.children(n)) {
      EXPECT_GE(lv.t_level[child] + 1e-9,
                lv.t_level[n] + g.weight(n) + cost);
      EXPECT_GE(lv.b_level[n] + 1e-9,
                g.weight(n) + cost + lv.b_level[child]);
      EXPECT_GE(lv.static_level[n] + 1e-9,
                g.weight(n) + lv.static_level[child]);
    }
  }

  // The critical path realizes cp_length.
  const auto cp = critical_path(g, lv);
  ASSERT_FALSE(cp.empty());
  EXPECT_TRUE(g.is_entry(cp.front()));
  EXPECT_TRUE(g.is_exit(cp.back()));
  double len = 0.0;
  for (std::size_t i = 0; i < cp.size(); ++i) {
    len += g.weight(cp[i]);
    if (i + 1 < cp.size()) {
      bool found = false;
      for (const auto& [child, cost] : g.children(cp[i]))
        if (child == cp[i + 1]) {
          len += cost;
          found = true;
        }
      ASSERT_TRUE(found) << "critical path uses a non-edge";
    }
  }
  EXPECT_DOUBLE_EQ(len, lv.cp_length);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelsInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace optsched::dag
