#include "dag/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dag/generators.hpp"

namespace optsched::dag {
namespace {

TEST(Io, RoundTripPaperExample) {
  const TaskGraph g = paper_figure1();
  std::stringstream buffer;
  write_text(g, buffer);
  const TaskGraph h = read_text(buffer);

  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(h.weight(n), g.weight(n));
    EXPECT_EQ(h.name(n), g.name(n));
    ASSERT_EQ(h.children(n).size(), g.children(n).size());
    for (std::size_t k = 0; k < g.children(n).size(); ++k) {
      EXPECT_EQ(h.children(n)[k].node, g.children(n)[k].node);
      EXPECT_EQ(h.children(n)[k].cost, g.children(n)[k].cost);
    }
  }
}

TEST(Io, RoundTripRandomGraph) {
  RandomDagParams p;
  p.num_nodes = 25;
  p.seed = 4;
  const TaskGraph g = random_dag(p);
  std::stringstream buffer;
  write_text(g, buffer);
  const TaskGraph h = read_text(buffer);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(h.ccr(), g.ccr());
}

TEST(Io, ParsesCommentsAndBlankLines) {
  std::istringstream in(R"(# a task graph
nodes 2

node 0 5 first   # trailing comment
node 1 3
edge 0 1 2
)");
  const TaskGraph g = read_text(in);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.name(0), "first");
  EXPECT_EQ(g.children(0)[0].cost, 2.0);
}

TEST(Io, ErrorsCarryLineNumbers) {
  std::istringstream in("nodes 1\nnode 0 5\nbogus 1 2\n");
  try {
    read_text(in);
    FAIL() << "expected parse error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Io, RejectsMissingNodesDirective) {
  std::istringstream in("node 0 5\n");
  EXPECT_THROW(read_text(in), util::Error);
}

TEST(Io, RejectsNodeCountMismatch) {
  std::istringstream in("nodes 3\nnode 0 1\nnode 1 1\n");
  EXPECT_THROW(read_text(in), util::Error);
}

TEST(Io, RejectsOutOfOrderIds) {
  std::istringstream in("nodes 2\nnode 1 1\nnode 0 1\n");
  EXPECT_THROW(read_text(in), util::Error);
}

TEST(Io, RejectsEdgeBeforeEndpoints) {
  std::istringstream in("nodes 2\nnode 0 1\nedge 0 1 1\nnode 1 1\n");
  EXPECT_THROW(read_text(in), util::Error);
}

TEST(Io, RejectsCycleWithGraphContext) {
  std::istringstream in(
      "nodes 2\nnode 0 1\nnode 1 1\nedge 0 1 1\nedge 1 0 1\n");
  try {
    read_text(in);
    FAIL() << "expected cycle error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_text_file("/nonexistent/path/graph.tg"), util::Error);
}

TEST(Io, DotContainsNodesAndEdges) {
  const TaskGraph g = paper_figure1();
  std::ostringstream out;
  write_dot(g, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n1 (2)"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"5\""), std::string::npos);  // edge n5->n6
}

}  // namespace
}  // namespace optsched::dag
